file(REMOVE_RECURSE
  "libreese_core.a"
)

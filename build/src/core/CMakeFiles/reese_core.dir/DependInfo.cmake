
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/area.cpp" "src/core/CMakeFiles/reese_core.dir/area.cpp.o" "gcc" "src/core/CMakeFiles/reese_core.dir/area.cpp.o.d"
  "/root/repo/src/core/franklin.cpp" "src/core/CMakeFiles/reese_core.dir/franklin.cpp.o" "gcc" "src/core/CMakeFiles/reese_core.dir/franklin.cpp.o.d"
  "/root/repo/src/core/fu_pool.cpp" "src/core/CMakeFiles/reese_core.dir/fu_pool.cpp.o" "gcc" "src/core/CMakeFiles/reese_core.dir/fu_pool.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/reese_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/reese_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/reese.cpp" "src/core/CMakeFiles/reese_core.dir/reese.cpp.o" "gcc" "src/core/CMakeFiles/reese_core.dir/reese.cpp.o.d"
  "/root/repo/src/core/rstream.cpp" "src/core/CMakeFiles/reese_core.dir/rstream.cpp.o" "gcc" "src/core/CMakeFiles/reese_core.dir/rstream.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/reese_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/reese_core.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/reese_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/reese_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/reese_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/reese_branch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

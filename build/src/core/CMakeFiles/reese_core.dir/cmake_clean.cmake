file(REMOVE_RECURSE
  "CMakeFiles/reese_core.dir/area.cpp.o"
  "CMakeFiles/reese_core.dir/area.cpp.o.d"
  "CMakeFiles/reese_core.dir/franklin.cpp.o"
  "CMakeFiles/reese_core.dir/franklin.cpp.o.d"
  "CMakeFiles/reese_core.dir/fu_pool.cpp.o"
  "CMakeFiles/reese_core.dir/fu_pool.cpp.o.d"
  "CMakeFiles/reese_core.dir/pipeline.cpp.o"
  "CMakeFiles/reese_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/reese_core.dir/reese.cpp.o"
  "CMakeFiles/reese_core.dir/reese.cpp.o.d"
  "CMakeFiles/reese_core.dir/rstream.cpp.o"
  "CMakeFiles/reese_core.dir/rstream.cpp.o.d"
  "CMakeFiles/reese_core.dir/trace.cpp.o"
  "CMakeFiles/reese_core.dir/trace.cpp.o.d"
  "libreese_core.a"
  "libreese_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reese_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for reese_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libreese_common.a"
)

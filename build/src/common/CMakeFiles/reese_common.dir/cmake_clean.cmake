file(REMOVE_RECURSE
  "CMakeFiles/reese_common.dir/error.cpp.o"
  "CMakeFiles/reese_common.dir/error.cpp.o.d"
  "CMakeFiles/reese_common.dir/flags.cpp.o"
  "CMakeFiles/reese_common.dir/flags.cpp.o.d"
  "CMakeFiles/reese_common.dir/rng.cpp.o"
  "CMakeFiles/reese_common.dir/rng.cpp.o.d"
  "CMakeFiles/reese_common.dir/stats.cpp.o"
  "CMakeFiles/reese_common.dir/stats.cpp.o.d"
  "CMakeFiles/reese_common.dir/strutil.cpp.o"
  "CMakeFiles/reese_common.dir/strutil.cpp.o.d"
  "libreese_common.a"
  "libreese_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reese_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

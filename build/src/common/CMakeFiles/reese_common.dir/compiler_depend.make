# Empty compiler generated dependencies file for reese_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libreese_faults.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/reese_faults.dir/injector.cpp.o"
  "CMakeFiles/reese_faults.dir/injector.cpp.o.d"
  "libreese_faults.a"
  "libreese_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reese_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

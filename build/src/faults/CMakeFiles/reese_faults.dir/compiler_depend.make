# Empty compiler generated dependencies file for reese_faults.
# This may be replaced when dependencies are built.

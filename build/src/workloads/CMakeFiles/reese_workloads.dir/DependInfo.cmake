
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/builder.cpp" "src/workloads/CMakeFiles/reese_workloads.dir/builder.cpp.o" "gcc" "src/workloads/CMakeFiles/reese_workloads.dir/builder.cpp.o.d"
  "/root/repo/src/workloads/extra_spec.cpp" "src/workloads/CMakeFiles/reese_workloads.dir/extra_spec.cpp.o" "gcc" "src/workloads/CMakeFiles/reese_workloads.dir/extra_spec.cpp.o.d"
  "/root/repo/src/workloads/fp_kernels.cpp" "src/workloads/CMakeFiles/reese_workloads.dir/fp_kernels.cpp.o" "gcc" "src/workloads/CMakeFiles/reese_workloads.dir/fp_kernels.cpp.o.d"
  "/root/repo/src/workloads/fuzz.cpp" "src/workloads/CMakeFiles/reese_workloads.dir/fuzz.cpp.o" "gcc" "src/workloads/CMakeFiles/reese_workloads.dir/fuzz.cpp.o.d"
  "/root/repo/src/workloads/gcc_like.cpp" "src/workloads/CMakeFiles/reese_workloads.dir/gcc_like.cpp.o" "gcc" "src/workloads/CMakeFiles/reese_workloads.dir/gcc_like.cpp.o.d"
  "/root/repo/src/workloads/go_like.cpp" "src/workloads/CMakeFiles/reese_workloads.dir/go_like.cpp.o" "gcc" "src/workloads/CMakeFiles/reese_workloads.dir/go_like.cpp.o.d"
  "/root/repo/src/workloads/ijpeg_like.cpp" "src/workloads/CMakeFiles/reese_workloads.dir/ijpeg_like.cpp.o" "gcc" "src/workloads/CMakeFiles/reese_workloads.dir/ijpeg_like.cpp.o.d"
  "/root/repo/src/workloads/li_like.cpp" "src/workloads/CMakeFiles/reese_workloads.dir/li_like.cpp.o" "gcc" "src/workloads/CMakeFiles/reese_workloads.dir/li_like.cpp.o.d"
  "/root/repo/src/workloads/micro.cpp" "src/workloads/CMakeFiles/reese_workloads.dir/micro.cpp.o" "gcc" "src/workloads/CMakeFiles/reese_workloads.dir/micro.cpp.o.d"
  "/root/repo/src/workloads/perl_like.cpp" "src/workloads/CMakeFiles/reese_workloads.dir/perl_like.cpp.o" "gcc" "src/workloads/CMakeFiles/reese_workloads.dir/perl_like.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/reese_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/reese_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/vortex_like.cpp" "src/workloads/CMakeFiles/reese_workloads.dir/vortex_like.cpp.o" "gcc" "src/workloads/CMakeFiles/reese_workloads.dir/vortex_like.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/reese_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/reese_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/reese_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

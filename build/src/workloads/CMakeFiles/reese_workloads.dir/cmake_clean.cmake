file(REMOVE_RECURSE
  "CMakeFiles/reese_workloads.dir/builder.cpp.o"
  "CMakeFiles/reese_workloads.dir/builder.cpp.o.d"
  "CMakeFiles/reese_workloads.dir/extra_spec.cpp.o"
  "CMakeFiles/reese_workloads.dir/extra_spec.cpp.o.d"
  "CMakeFiles/reese_workloads.dir/fp_kernels.cpp.o"
  "CMakeFiles/reese_workloads.dir/fp_kernels.cpp.o.d"
  "CMakeFiles/reese_workloads.dir/fuzz.cpp.o"
  "CMakeFiles/reese_workloads.dir/fuzz.cpp.o.d"
  "CMakeFiles/reese_workloads.dir/gcc_like.cpp.o"
  "CMakeFiles/reese_workloads.dir/gcc_like.cpp.o.d"
  "CMakeFiles/reese_workloads.dir/go_like.cpp.o"
  "CMakeFiles/reese_workloads.dir/go_like.cpp.o.d"
  "CMakeFiles/reese_workloads.dir/ijpeg_like.cpp.o"
  "CMakeFiles/reese_workloads.dir/ijpeg_like.cpp.o.d"
  "CMakeFiles/reese_workloads.dir/li_like.cpp.o"
  "CMakeFiles/reese_workloads.dir/li_like.cpp.o.d"
  "CMakeFiles/reese_workloads.dir/micro.cpp.o"
  "CMakeFiles/reese_workloads.dir/micro.cpp.o.d"
  "CMakeFiles/reese_workloads.dir/perl_like.cpp.o"
  "CMakeFiles/reese_workloads.dir/perl_like.cpp.o.d"
  "CMakeFiles/reese_workloads.dir/registry.cpp.o"
  "CMakeFiles/reese_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/reese_workloads.dir/vortex_like.cpp.o"
  "CMakeFiles/reese_workloads.dir/vortex_like.cpp.o.d"
  "libreese_workloads.a"
  "libreese_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reese_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for reese_workloads.
# This may be replaced when dependencies are built.

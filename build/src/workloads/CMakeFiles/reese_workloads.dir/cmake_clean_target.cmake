file(REMOVE_RECURSE
  "libreese_workloads.a"
)

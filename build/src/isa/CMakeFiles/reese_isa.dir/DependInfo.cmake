
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/assembler.cpp" "src/isa/CMakeFiles/reese_isa.dir/assembler.cpp.o" "gcc" "src/isa/CMakeFiles/reese_isa.dir/assembler.cpp.o.d"
  "/root/repo/src/isa/encoding.cpp" "src/isa/CMakeFiles/reese_isa.dir/encoding.cpp.o" "gcc" "src/isa/CMakeFiles/reese_isa.dir/encoding.cpp.o.d"
  "/root/repo/src/isa/executor.cpp" "src/isa/CMakeFiles/reese_isa.dir/executor.cpp.o" "gcc" "src/isa/CMakeFiles/reese_isa.dir/executor.cpp.o.d"
  "/root/repo/src/isa/instruction.cpp" "src/isa/CMakeFiles/reese_isa.dir/instruction.cpp.o" "gcc" "src/isa/CMakeFiles/reese_isa.dir/instruction.cpp.o.d"
  "/root/repo/src/isa/iss.cpp" "src/isa/CMakeFiles/reese_isa.dir/iss.cpp.o" "gcc" "src/isa/CMakeFiles/reese_isa.dir/iss.cpp.o.d"
  "/root/repo/src/isa/opcode.cpp" "src/isa/CMakeFiles/reese_isa.dir/opcode.cpp.o" "gcc" "src/isa/CMakeFiles/reese_isa.dir/opcode.cpp.o.d"
  "/root/repo/src/isa/program.cpp" "src/isa/CMakeFiles/reese_isa.dir/program.cpp.o" "gcc" "src/isa/CMakeFiles/reese_isa.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/reese_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/reese_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libreese_isa.a"
)

# Empty compiler generated dependencies file for reese_isa.
# This may be replaced when dependencies are built.

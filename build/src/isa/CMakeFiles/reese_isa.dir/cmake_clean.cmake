file(REMOVE_RECURSE
  "CMakeFiles/reese_isa.dir/assembler.cpp.o"
  "CMakeFiles/reese_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/reese_isa.dir/encoding.cpp.o"
  "CMakeFiles/reese_isa.dir/encoding.cpp.o.d"
  "CMakeFiles/reese_isa.dir/executor.cpp.o"
  "CMakeFiles/reese_isa.dir/executor.cpp.o.d"
  "CMakeFiles/reese_isa.dir/instruction.cpp.o"
  "CMakeFiles/reese_isa.dir/instruction.cpp.o.d"
  "CMakeFiles/reese_isa.dir/iss.cpp.o"
  "CMakeFiles/reese_isa.dir/iss.cpp.o.d"
  "CMakeFiles/reese_isa.dir/opcode.cpp.o"
  "CMakeFiles/reese_isa.dir/opcode.cpp.o.d"
  "CMakeFiles/reese_isa.dir/program.cpp.o"
  "CMakeFiles/reese_isa.dir/program.cpp.o.d"
  "libreese_isa.a"
  "libreese_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reese_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libreese_branch.a"
)

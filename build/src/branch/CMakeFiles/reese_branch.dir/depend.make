# Empty dependencies file for reese_branch.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/reese_branch.dir/predictor.cpp.o"
  "CMakeFiles/reese_branch.dir/predictor.cpp.o.d"
  "libreese_branch.a"
  "libreese_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reese_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libreese_sim.a"
)

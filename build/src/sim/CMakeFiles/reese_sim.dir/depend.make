# Empty dependencies file for reese_sim.
# This may be replaced when dependencies are built.

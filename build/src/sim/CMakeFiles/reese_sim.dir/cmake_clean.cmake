file(REMOVE_RECURSE
  "CMakeFiles/reese_sim.dir/experiment.cpp.o"
  "CMakeFiles/reese_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/reese_sim.dir/simulator.cpp.o"
  "CMakeFiles/reese_sim.dir/simulator.cpp.o.d"
  "libreese_sim.a"
  "libreese_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reese_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

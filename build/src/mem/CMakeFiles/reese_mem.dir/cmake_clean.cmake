file(REMOVE_RECURSE
  "CMakeFiles/reese_mem.dir/cache.cpp.o"
  "CMakeFiles/reese_mem.dir/cache.cpp.o.d"
  "CMakeFiles/reese_mem.dir/hierarchy.cpp.o"
  "CMakeFiles/reese_mem.dir/hierarchy.cpp.o.d"
  "CMakeFiles/reese_mem.dir/main_memory.cpp.o"
  "CMakeFiles/reese_mem.dir/main_memory.cpp.o.d"
  "CMakeFiles/reese_mem.dir/tlb.cpp.o"
  "CMakeFiles/reese_mem.dir/tlb.cpp.o.d"
  "libreese_mem.a"
  "libreese_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reese_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libreese_mem.a"
)

# Empty dependencies file for reese_mem.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig7_more_hardware.dir/fig7_more_hardware.cpp.o"
  "CMakeFiles/fig7_more_hardware.dir/fig7_more_hardware.cpp.o.d"
  "fig7_more_hardware"
  "fig7_more_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_more_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig7_more_hardware.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ext_fp_workloads.
# This may be replaced when dependencies are built.

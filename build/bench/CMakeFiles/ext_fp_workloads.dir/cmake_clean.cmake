file(REMOVE_RECURSE
  "CMakeFiles/ext_fp_workloads.dir/ext_fp_workloads.cpp.o"
  "CMakeFiles/ext_fp_workloads.dir/ext_fp_workloads.cpp.o.d"
  "ext_fp_workloads"
  "ext_fp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

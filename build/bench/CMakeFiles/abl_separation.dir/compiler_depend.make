# Empty compiler generated dependencies file for abl_separation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_separation.dir/abl_separation.cpp.o"
  "CMakeFiles/abl_separation.dir/abl_separation.cpp.o.d"
  "abl_separation"
  "abl_separation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/abl_rqueue_size.dir/abl_rqueue_size.cpp.o"
  "CMakeFiles/abl_rqueue_size.dir/abl_rqueue_size.cpp.o.d"
  "abl_rqueue_size"
  "abl_rqueue_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rqueue_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for abl_rqueue_size.
# This may be replaced when dependencies are built.

# Empty dependencies file for abl_area_cost.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_area_cost.dir/abl_area_cost.cpp.o"
  "CMakeFiles/abl_area_cost.dir/abl_area_cost.cpp.o.d"
  "abl_area_cost"
  "abl_area_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_area_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig2_initial.dir/fig2_initial.cpp.o"
  "CMakeFiles/fig2_initial.dir/fig2_initial.cpp.o.d"
  "fig2_initial"
  "fig2_initial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_initial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig2_initial.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_early_release.dir/abl_early_release.cpp.o"
  "CMakeFiles/abl_early_release.dir/abl_early_release.cpp.o.d"
  "abl_early_release"
  "abl_early_release.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_early_release.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

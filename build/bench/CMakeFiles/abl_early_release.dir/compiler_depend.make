# Empty compiler generated dependencies file for abl_early_release.
# This may be replaced when dependencies are built.

# Empty dependencies file for abl_franklin.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_franklin.dir/abl_franklin.cpp.o"
  "CMakeFiles/abl_franklin.dir/abl_franklin.cpp.o.d"
  "abl_franklin"
  "abl_franklin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_franklin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

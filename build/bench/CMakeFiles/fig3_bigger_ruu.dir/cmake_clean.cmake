file(REMOVE_RECURSE
  "CMakeFiles/fig3_bigger_ruu.dir/fig3_bigger_ruu.cpp.o"
  "CMakeFiles/fig3_bigger_ruu.dir/fig3_bigger_ruu.cpp.o.d"
  "fig3_bigger_ruu"
  "fig3_bigger_ruu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_bigger_ruu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

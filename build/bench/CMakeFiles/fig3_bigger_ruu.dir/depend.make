# Empty dependencies file for fig3_bigger_ruu.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig4_wide_datapath.
# This may be replaced when dependencies are built.

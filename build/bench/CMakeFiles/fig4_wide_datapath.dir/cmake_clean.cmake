file(REMOVE_RECURSE
  "CMakeFiles/fig4_wide_datapath.dir/fig4_wide_datapath.cpp.o"
  "CMakeFiles/fig4_wide_datapath.dir/fig4_wide_datapath.cpp.o.d"
  "fig4_wide_datapath"
  "fig4_wide_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_wide_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ext_seed_sensitivity.dir/ext_seed_sensitivity.cpp.o"
  "CMakeFiles/ext_seed_sensitivity.dir/ext_seed_sensitivity.cpp.o.d"
  "ext_seed_sensitivity"
  "ext_seed_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_seed_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

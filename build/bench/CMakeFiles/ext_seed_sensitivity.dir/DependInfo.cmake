
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_seed_sensitivity.cpp" "bench/CMakeFiles/ext_seed_sensitivity.dir/ext_seed_sensitivity.cpp.o" "gcc" "bench/CMakeFiles/ext_seed_sensitivity.dir/ext_seed_sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/reese_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/reese_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/reese_core.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/reese_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/reese_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/reese_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/reese_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/reese_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

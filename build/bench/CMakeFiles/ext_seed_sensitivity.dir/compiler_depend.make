# Empty compiler generated dependencies file for ext_seed_sensitivity.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for abl_partial_rstream.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_partial_rstream.dir/abl_partial_rstream.cpp.o"
  "CMakeFiles/abl_partial_rstream.dir/abl_partial_rstream.cpp.o.d"
  "abl_partial_rstream"
  "abl_partial_rstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_partial_rstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig5_mem_ports.dir/fig5_mem_ports.cpp.o"
  "CMakeFiles/fig5_mem_ports.dir/fig5_mem_ports.cpp.o.d"
  "fig5_mem_ports"
  "fig5_mem_ports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mem_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig5_mem_ports.
# This may be replaced when dependencies are built.

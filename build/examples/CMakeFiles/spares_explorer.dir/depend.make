# Empty dependencies file for spares_explorer.
# This may be replaced when dependencies are built.

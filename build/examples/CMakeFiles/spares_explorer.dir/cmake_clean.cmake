file(REMOVE_RECURSE
  "CMakeFiles/spares_explorer.dir/spares_explorer.cpp.o"
  "CMakeFiles/spares_explorer.dir/spares_explorer.cpp.o.d"
  "spares_explorer"
  "spares_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spares_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

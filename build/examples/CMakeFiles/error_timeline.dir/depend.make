# Empty dependencies file for error_timeline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/error_timeline.dir/error_timeline.cpp.o"
  "CMakeFiles/error_timeline.dir/error_timeline.cpp.o.d"
  "error_timeline"
  "error_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

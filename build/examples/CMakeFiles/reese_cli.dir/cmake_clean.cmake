file(REMOVE_RECURSE
  "CMakeFiles/reese_cli.dir/reese_cli.cpp.o"
  "CMakeFiles/reese_cli.dir/reese_cli.cpp.o.d"
  "reese_cli"
  "reese_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reese_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

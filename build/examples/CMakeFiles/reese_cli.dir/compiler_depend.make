# Empty compiler generated dependencies file for reese_cli.
# This may be replaced when dependencies are built.

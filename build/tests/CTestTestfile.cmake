# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/encoding_test[1]_include.cmake")
include("/root/repo/build/tests/assembler_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/iss_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/branch_test[1]_include.cmake")
include("/root/repo/build/tests/fu_pool_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/reese_invariants_test[1]_include.cmake")
include("/root/repo/build/tests/faults_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/franklin_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/area_test[1]_include.cmake")
include("/root/repo/build/tests/core_structs_test[1]_include.cmake")
include("/root/repo/build/tests/timing_test[1]_include.cmake")
include("/root/repo/build/tests/cache_differential_test[1]_include.cmake")

# Empty dependencies file for reese_invariants_test.
# This may be replaced when dependencies are built.

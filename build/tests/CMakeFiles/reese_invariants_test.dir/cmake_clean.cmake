file(REMOVE_RECURSE
  "CMakeFiles/reese_invariants_test.dir/reese_invariants_test.cpp.o"
  "CMakeFiles/reese_invariants_test.dir/reese_invariants_test.cpp.o.d"
  "reese_invariants_test"
  "reese_invariants_test.pdb"
  "reese_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reese_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/cache_differential_test.dir/cache_differential_test.cpp.o"
  "CMakeFiles/cache_differential_test.dir/cache_differential_test.cpp.o.d"
  "cache_differential_test"
  "cache_differential_test.pdb"
  "cache_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

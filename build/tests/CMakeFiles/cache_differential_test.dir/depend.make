# Empty dependencies file for cache_differential_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/area_test.dir/area_test.cpp.o"
  "CMakeFiles/area_test.dir/area_test.cpp.o.d"
  "area_test"
  "area_test.pdb"
  "area_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/area_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

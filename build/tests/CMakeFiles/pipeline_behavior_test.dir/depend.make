# Empty dependencies file for pipeline_behavior_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pipeline_behavior_test.dir/pipeline_behavior_test.cpp.o"
  "CMakeFiles/pipeline_behavior_test.dir/pipeline_behavior_test.cpp.o.d"
  "pipeline_behavior_test"
  "pipeline_behavior_test.pdb"
  "pipeline_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/franklin_test.dir/franklin_test.cpp.o"
  "CMakeFiles/franklin_test.dir/franklin_test.cpp.o.d"
  "franklin_test"
  "franklin_test.pdb"
  "franklin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/franklin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for franklin_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for core_structs_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/core_structs_test.dir/core_structs_test.cpp.o"
  "CMakeFiles/core_structs_test.dir/core_structs_test.cpp.o.d"
  "core_structs_test"
  "core_structs_test.pdb"
  "core_structs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_structs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

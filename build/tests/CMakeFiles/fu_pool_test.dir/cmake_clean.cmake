file(REMOVE_RECURSE
  "CMakeFiles/fu_pool_test.dir/fu_pool_test.cpp.o"
  "CMakeFiles/fu_pool_test.dir/fu_pool_test.cpp.o.d"
  "fu_pool_test"
  "fu_pool_test.pdb"
  "fu_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fu_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fu_pool_test.
# This may be replaced when dependencies are built.

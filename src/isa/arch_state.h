// Architectural machine state (registers + PC + output hash) and the
// data-memory access interface the executor runs against.
#pragma once

#include <array>

#include "common/types.h"
#include "isa/instruction.h"
#include "mem/main_memory.h"

namespace reese::isa {

/// Abstract data-memory view. The golden ISS and the pipeline's in-order
/// front end run against MainMemory directly; wrong-path (speculative)
/// execution runs against a copy-on-write overlay (core/spec_overlay.h).
class DataSpace {
 public:
  virtual ~DataSpace() = default;
  virtual u64 load(Addr addr, unsigned bytes) = 0;
  virtual void store(Addr addr, unsigned bytes, u64 value) = 0;
};

/// DataSpace backed directly by MainMemory.
class DirectDataSpace final : public DataSpace {
 public:
  explicit DirectDataSpace(mem::MainMemory* memory) : memory_(memory) {}
  u64 load(Addr addr, unsigned bytes) override {
    return memory_->load(addr, bytes);
  }
  void store(Addr addr, unsigned bytes, u64 value) override {
    memory_->store(addr, bytes, value);
  }

 private:
  mem::MainMemory* memory_;
};

/// Registers + PC + halt flag + OUT accumulator. FP registers hold raw
/// IEEE-754 bit patterns so all values (and fault flips) are uniform u64s.
struct ArchState {
  std::array<u64, kIntRegCount> xregs{};
  std::array<u64, kFpRegCount> fregs{};
  Addr pc = 0;
  bool halted = false;

  /// Rolling FNV-style hash of every OUT-ed value; programs use OUT to
  /// publish checksums that equivalence tests compare across simulators.
  u64 out_hash = 0xcbf29ce484222325ULL;
  u64 out_count = 0;

  u64 x(u8 index) const { return index == kZeroReg ? 0 : xregs[index]; }
  void set_x(u8 index, u64 value) {
    if (index != kZeroReg) xregs[index] = value;
  }
  u64 f(u8 index) const { return fregs[index]; }
  void set_f(u8 index, u64 value) { fregs[index] = value; }

  void emit_out(u64 value) {
    for (int i = 0; i < 8; ++i) {
      out_hash ^= (value >> (8 * i)) & 0xFF;
      out_hash *= 0x100000001b3ULL;
    }
    ++out_count;
  }
};

}  // namespace reese::isa

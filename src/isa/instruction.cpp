#include "isa/instruction.h"

#include <cassert>

#include "common/strutil.h"

namespace reese::isa {
namespace {

constexpr std::string_view kIntNames[kIntRegCount] = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0",   "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6",   "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8",   "s9", "s10", "s11", "t3", "t4", "t5", "t6"};

constexpr std::string_view kFpNames[kFpRegCount] = {
    "ft0", "ft1", "ft2",  "ft3",  "ft4", "ft5", "ft6",  "ft7",
    "fs0", "fs1", "fa0",  "fa1",  "fa2", "fa3", "fa4",  "fa5",
    "fa6", "fa7", "fs2",  "fs3",  "fs4", "fs5", "fs6",  "fs7",
    "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11"};

}  // namespace

std::string_view int_reg_name(u8 index) {
  assert(index < kIntRegCount);
  return kIntNames[index];
}

std::string_view fp_reg_name(u8 index) {
  assert(index < kFpRegCount);
  return kFpNames[index];
}

int parse_register(std::string_view name, bool fp) {
  if (!fp) {
    // "xN" raw names.
    if (name.size() >= 2 && name[0] == 'x') {
      i64 n = 0;
      if (parse_int(name.substr(1), &n) && n >= 0 &&
          n < static_cast<i64>(kIntRegCount)) {
        return static_cast<int>(n);
      }
    }
    for (usize i = 0; i < kIntRegCount; ++i) {
      if (name == kIntNames[i]) return static_cast<int>(i);
    }
    // "fp" as alias for s0 (frame pointer).
    if (name == "fp") return 8;
    return -1;
  }
  if (name.size() >= 2 && name[0] == 'f') {
    i64 n = 0;
    if (parse_int(name.substr(1), &n) && n >= 0 &&
        n < static_cast<i64>(kFpRegCount)) {
      return static_cast<int>(n);
    }
  }
  for (usize i = 0; i < kFpRegCount; ++i) {
    if (name == kFpNames[i]) return static_cast<int>(i);
  }
  return -1;
}

std::string disassemble(const Instruction& inst) {
  const OpInfo& info = inst.info();
  const std::string m(info.mnemonic);
  auto rd = [&] {
    return std::string(info.is_fp_rd ? fp_reg_name(inst.rd)
                                     : int_reg_name(inst.rd));
  };
  auto rs1 = [&] {
    return std::string(info.is_fp_rs1 ? fp_reg_name(inst.rs1)
                                      : int_reg_name(inst.rs1));
  };
  auto rs2 = [&] {
    return std::string(info.is_fp_rs2 ? fp_reg_name(inst.rs2)
                                      : int_reg_name(inst.rs2));
  };
  switch (info.format) {
    case Format::kR:
      if (!info.reads_rs2) return m + " " + rd() + ", " + rs1();
      return m + " " + rd() + ", " + rs1() + ", " + rs2();
    case Format::kI:
      return m + " " + rd() + ", " + rs1() + ", " + std::to_string(inst.imm);
    case Format::kU:
      return m + " " + rd() + ", " + std::to_string(inst.imm);
    case Format::kL:
      return m + " " + rd() + ", " + std::to_string(inst.imm) + "(" + rs1() +
             ")";
    case Format::kS:
      return m + " " + rs2() + ", " + std::to_string(inst.imm) + "(" + rs1() +
             ")";
    case Format::kB:
      return m + " " + rs1() + ", " + rs2() + ", " + std::to_string(inst.imm);
    case Format::kJ:
      return m + " " + rd() + ", " + std::to_string(inst.imm);
    case Format::kJr:
      return m + " " + rd() + ", " + rs1() + ", " + std::to_string(inst.imm);
    case Format::kO:
      return m + " " + rs1();
    case Format::kN:
      return m;
  }
  return m;
}

std::string_view flat_reg_name(u8 flat) {
  assert(flat < kFlatRegCount);
  return flat < kIntRegCount ? int_reg_name(flat)
                             : fp_reg_name(static_cast<u8>(flat - kIntRegCount));
}

DefUse def_use(const Instruction& inst) {
  const OpInfo& info = inst.info();
  DefUse du;
  if (info.reads_rs1) du.uses[du.use_count++] = RegRef{inst.rs1, info.is_fp_rs1};
  if (info.reads_rs2) du.uses[du.use_count++] = RegRef{inst.rs2, info.is_fp_rs2};
  if (info.writes_rd) du.defs[du.def_count++] = RegRef{inst.rd, info.is_fp_rd};
  return du;
}

std::optional<Addr> static_target(const Instruction& inst, Addr pc) {
  if (is_cond_branch(inst.op) || inst.op == Opcode::kJal) {
    // Branch/JAL immediates are in instruction words (see Instruction docs).
    return static_cast<Addr>(static_cast<i64>(pc) + 4 * inst.imm);
  }
  return std::nullopt;
}

bool falls_through(Opcode op) {
  return op != Opcode::kJal && op != Opcode::kJalr && op != Opcode::kHalt;
}

}  // namespace reese::isa

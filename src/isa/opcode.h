// The SRV instruction set.
//
// SRV is a small 64-bit load/store RISC ISA defined for this project so the
// whole simulator stack (assembler, functional executor, golden ISS, and the
// cycle-level out-of-order core) is self-contained — the paper's substrate,
// SimpleScalar's PISA, plays the same role there. The ISA is deliberately
// RISC-V-flavoured: 32 integer registers (x0 hardwired to zero), 32 FP
// registers holding IEEE doubles, fixed 32-bit instruction words.
#pragma once

#include <string_view>

#include "common/types.h"

namespace reese::isa {

enum class Opcode : u8 {
  // Integer register-register ALU.
  kAdd, kSub, kAnd, kOr, kXor, kSll, kSrl, kSra, kSlt, kSltu,
  // Integer multiply/divide (long latency).
  kMul, kMulh, kDiv, kDivu, kRem, kRemu,
  // Integer register-immediate ALU.
  kAddi, kAndi, kOri, kXori, kSlli, kSrli, kSrai, kSlti, kSltiu,
  // Upper-immediate constant construction: rd = sext(imm19) << 14.
  kLui,
  // Loads (sign-extending unless 'u').
  kLb, kLbu, kLh, kLhu, kLw, kLwu, kLd,
  // Stores.
  kSb, kSh, kSw, kSd,
  // Conditional branches (PC-relative, instruction-count offset).
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  // Jumps.
  kJal,   // rd = return address; PC-relative target.
  kJalr,  // rd = return address; target = rs1 + imm.
  // Floating point (doubles; FP regs hold raw IEEE-754 bit patterns).
  kFadd, kFsub, kFmul, kFdiv, kFsqrt, kFmin, kFmax, kFneg,
  kFcvtDL,  // int reg -> double FP reg
  kFcvtLD,  // double FP reg -> int reg (truncating)
  kFeq, kFlt, kFle,  // FP compare -> int reg
  kFld, kFsd,        // FP load/store (64-bit)
  kFmvXD,  // bit-move FP reg -> int reg
  kFmvDX,  // bit-move int reg -> FP reg
  // System.
  kOut,   // append rs1's value to the architectural output hash (testing aid)
  kHalt,  // stop the machine
  kNop,
  kCount,
};

constexpr usize kOpcodeCount = static_cast<usize>(Opcode::kCount);

/// Instruction-word layout, selected per opcode.
enum class Format : u8 {
  kR,   // op rd, rs1, rs2
  kI,   // op rd, rs1, imm14
  kU,   // op rd, imm19          (LUI)
  kL,   // op rd, imm14(rs1)     (loads)
  kS,   // op rs2, imm14(rs1)    (stores)
  kB,   // op rs1, rs2, imm14    (branches; imm in instruction words)
  kJ,   // op rd, imm19          (JAL; imm in instruction words)
  kJr,  // op rd, rs1, imm14     (JALR)
  kN,   // op                    (HALT/NOP)
  kO,   // op rs1                (OUT)
};

/// Which execution resource an operation occupies, and its latency class.
/// The core maps these to functional units and latencies from its config
/// (Table 1 of the paper: 4 IntAdd + 1 IntM/D + the FP mirror + mem ports).
enum class ExecClass : u8 {
  kIntAlu,   // 1-cycle integer ops, branches, jumps, address arithmetic
  kIntMul,   // pipelined multiply
  kIntDiv,   // unpipelined divide
  kFpAdd,    // FP add/sub/compare/convert/min/max/neg
  kFpMul,    // pipelined FP multiply
  kFpDiv,    // unpipelined FP divide
  kFpSqrt,   // unpipelined FP sqrt
  kLoad,     // memory port + D-cache access
  kStore,    // address on IntALU; cache write at commit via memory port
  kNone,     // HALT/NOP
};

/// Static properties of one opcode. All decode/execute/schedule logic is
/// table-driven off this.
struct OpInfo {
  std::string_view mnemonic;
  Format format;
  ExecClass exec_class;
  bool reads_rs1;
  bool reads_rs2;
  bool writes_rd;
  bool is_fp_rd;     // destination is an FP register
  bool is_fp_rs1;    // rs1 names an FP register
  bool is_fp_rs2;    // rs2 names an FP register
  u8 mem_bytes;      // 0 for non-memory ops
  bool load_signed;  // sign-extend loaded value
};

/// The per-opcode property table (defined in opcode.cpp). Exposed so
/// op_info and the predicates below can inline into callers — the pipeline
/// queries them several times per simulated instruction, and an opaque
/// cross-TU call was measurably hot.
extern const OpInfo kOpInfoTable[kOpcodeCount];

/// Table lookup; op must be a real opcode (< kCount).
inline const OpInfo& op_info(Opcode op) {
  return kOpInfoTable[static_cast<usize>(op)];
}

/// Derived predicates (header-inline for the hot paths).
inline bool is_load(Opcode op) {
  return op_info(op).exec_class == ExecClass::kLoad;
}
inline bool is_store(Opcode op) {
  return op_info(op).exec_class == ExecClass::kStore;
}
inline bool is_mem(Opcode op) { return is_load(op) || is_store(op); }
inline bool is_cond_branch(Opcode op) {
  return op_info(op).format == Format::kB;
}
inline bool is_jump(Opcode op) {
  return op == Opcode::kJal || op == Opcode::kJalr;
}
/// Any control transfer: conditional branch, JAL, JALR.
inline bool is_control(Opcode op) { return is_cond_branch(op) || is_jump(op); }
bool is_fp(Opcode op);

/// Mnemonic -> opcode; returns kCount if unknown.
Opcode opcode_from_mnemonic(std::string_view mnemonic);

}  // namespace reese::isa

// Decoded instruction representation and register names.
#pragma once

#include <string>

#include "common/types.h"
#include "isa/opcode.h"

namespace reese::isa {

constexpr usize kIntRegCount = 32;
constexpr usize kFpRegCount = 32;
/// x0 reads as zero and ignores writes.
constexpr u8 kZeroReg = 0;
/// ABI register aliases (RISC-V naming, used by the assembler).
constexpr u8 kRaReg = 1;   // return address
constexpr u8 kSpReg = 2;   // stack pointer
constexpr u8 kGpReg = 3;   // global pointer

/// One decoded instruction. `imm` is fully sign-extended at decode; branch
/// and JAL immediates are in units of instruction words (target = pc +
/// 4*imm).
struct Instruction {
  Opcode op = Opcode::kNop;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  i64 imm = 0;

  const OpInfo& info() const { return op_info(op); }

  bool operator==(const Instruction&) const = default;
};

/// "add x5, x6, x7" style disassembly (ABI register names).
std::string disassemble(const Instruction& inst);

/// Register name ("x7"/ABI alias) -> index; returns -1 if unknown.
/// `fp` selects the FP register namespace (f0..f31, fa0.., ft0.., fs0..).
int parse_register(std::string_view name, bool fp);

/// Canonical ABI name of integer register `index`.
std::string_view int_reg_name(u8 index);
/// Canonical name of FP register `index`.
std::string_view fp_reg_name(u8 index);

}  // namespace reese::isa

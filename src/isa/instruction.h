// Decoded instruction representation, register names, and static
// instruction metadata (def/use sets, control-transfer targets) consumed by
// the program-analysis layer (src/analysis).
#pragma once

#include <optional>
#include <string>

#include "common/types.h"
#include "isa/opcode.h"

namespace reese::isa {

constexpr usize kIntRegCount = 32;
constexpr usize kFpRegCount = 32;
/// x0 reads as zero and ignores writes.
constexpr u8 kZeroReg = 0;
/// ABI register aliases (RISC-V naming, used by the assembler).
constexpr u8 kRaReg = 1;   // return address
constexpr u8 kSpReg = 2;   // stack pointer
constexpr u8 kGpReg = 3;   // global pointer

/// One decoded instruction. `imm` is fully sign-extended at decode; branch
/// and JAL immediates are in units of instruction words (target = pc +
/// 4*imm).
struct Instruction {
  Opcode op = Opcode::kNop;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  i64 imm = 0;

  const OpInfo& info() const { return op_info(op); }

  bool operator==(const Instruction&) const = default;
};

/// "add x5, x6, x7" style disassembly (ABI register names).
std::string disassemble(const Instruction& inst);

// --- static instruction metadata (src/analysis consumes these) --------------

/// A register operand: index within its file, plus which file. Int x0 is a
/// real RegRef here; callers that care about its hardwired-zero semantics
/// (def/use analyses) filter it themselves.
struct RegRef {
  u8 index = 0;
  bool fp = false;

  bool operator==(const RegRef&) const = default;
  /// Dense index over both files: int regs 0..31, FP regs 32..63.
  u8 flat() const { return static_cast<u8>(index + (fp ? kIntRegCount : 0)); }
};

constexpr usize kFlatRegCount = kIntRegCount + kFpRegCount;

/// ABI/canonical name for a flat register index (see RegRef::flat()).
std::string_view flat_reg_name(u8 flat);

/// Registers statically read and written by one instruction, derived from
/// its OpInfo row. At most two uses (rs1, rs2) and one def (rd).
struct DefUse {
  RegRef uses[2];
  u8 use_count = 0;
  RegRef defs[1];
  u8 def_count = 0;
};

DefUse def_use(const Instruction& inst);

/// Statically-known control-transfer target of the instruction at `pc`:
/// branches and JAL are PC-relative (target = pc + 4*imm); JALR is dynamic
/// (rs1 + imm) and non-control ops transfer nowhere — both yield nullopt.
std::optional<Addr> static_target(const Instruction& inst, Addr pc);

/// Whether execution can continue at pc+4 after this instruction:
/// false for unconditional transfers (JAL, JALR) and HALT.
bool falls_through(Opcode op);

/// Register name ("x7"/ABI alias) -> index; returns -1 if unknown.
/// `fp` selects the FP register namespace (f0..f31, fa0.., ft0.., fs0..).
int parse_register(std::string_view name, bool fp);

/// Canonical ABI name of integer register `index`.
std::string_view int_reg_name(u8 index);
/// Canonical name of FP register `index`.
std::string_view fp_reg_name(u8 index);

}  // namespace reese::isa

#include "isa/iss.h"

#include "isa/executor.h"

namespace reese::isa {

void InstMix::record(Opcode op, bool taken) {
  ++total;
  const OpInfo& info = op_info(op);
  if (is_cond_branch(op)) {
    ++cond_branches;
    if (taken) ++taken_branches;
    return;
  }
  if (is_jump(op)) {
    ++jumps;
    return;
  }
  switch (info.exec_class) {
    case ExecClass::kIntAlu: ++int_alu; break;
    case ExecClass::kIntMul: ++int_mul; break;
    case ExecClass::kIntDiv: ++int_div; break;
    case ExecClass::kFpAdd:
    case ExecClass::kFpMul:
    case ExecClass::kFpDiv:
    case ExecClass::kFpSqrt: ++fp; break;
    case ExecClass::kLoad: ++loads; break;
    case ExecClass::kStore: ++stores; break;
    case ExecClass::kNone: ++other; break;
  }
}

Iss::Iss(const Program& program) : program_(program) {
  program_.load_data(&memory_);
  state_.pc = program_.entry;
  state_.set_x(kSpReg, kDefaultStackTop);
  state_.set_x(kGpReg, program_.data_base);
}

bool Iss::step_one() {
  if (state_.halted || bad_pc_) return false;
  if (!program_.contains_pc(state_.pc)) {
    bad_pc_ = true;
    return false;
  }
  const Instruction& inst = program_.at(state_.pc);
  const StepOut out = step(&state_, inst, &data_space_);
  mix_.record(inst.op, out.compute.taken);
  ++executed_;
  return !state_.halted;
}

IssResult Iss::run(u64 max_instructions) {
  for (u64 i = 0; i < max_instructions; ++i) {
    if (!step_one()) break;
  }
  IssResult result;
  result.executed_instructions = executed_;
  result.halted = state_.halted;
  result.bad_pc = bad_pc_;
  result.final_pc = state_.pc;
  result.out_hash = state_.out_hash;
  result.out_count = state_.out_count;
  return result;
}

}  // namespace reese::isa

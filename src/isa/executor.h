// Functional execution of SRV instructions.
//
// Two layers:
//  * compute(): a pure function of (instruction, operand values, pc) that
//    yields the result value / branch outcome / effective address. This is
//    the single definition of SRV semantics; both the full step() below and
//    the REESE R-stream re-execution call it, so P and R streams are
//    guaranteed to run the same computation (as they do in hardware, where
//    it is the same functional unit).
//  * step(): advances an ArchState by one instruction against a DataSpace,
//    used by the golden ISS and by the pipeline's dispatch-time in-order
//    execution.
#pragma once

#include <bit>
#include <cassert>
#include <cmath>

#include "common/bitutil.h"
#include "common/types.h"
#include "isa/arch_state.h"
#include "isa/instruction.h"

namespace reese::isa {

/// Result of the pure computation of one instruction.
struct ComputeOut {
  u64 value = 0;       ///< rd value; for stores the value to be stored;
                       ///< for conditional branches taken?1:0
  bool taken = false;  ///< control transfer taken (always true for jumps)
  Addr target = 0;     ///< control target when taken
  Addr addr = 0;       ///< effective address for loads/stores
};

namespace detail {

inline double as_double(u64 bits) { return std::bit_cast<double>(bits); }
inline u64 as_bits(double value) { return std::bit_cast<u64>(value); }

/// RISC-V style total semantics for division: x/0 = -1 (all ones for
/// unsigned), INT_MIN/-1 = INT_MIN; remainders follow.
inline u64 int_div(u64 a, u64 b, bool is_signed, bool want_remainder) {
  if (b == 0) {
    return want_remainder ? a : ~u64{0};
  }
  if (is_signed) {
    const i64 sa = static_cast<i64>(a);
    const i64 sb = static_cast<i64>(b);
    if (sa == INT64_MIN && sb == -1) {
      return want_remainder ? 0 : static_cast<u64>(INT64_MIN);
    }
    return static_cast<u64>(want_remainder ? sa % sb : sa / sb);
  }
  return want_remainder ? a % b : a / b;
}

inline u64 mulh(u64 a, u64 b) {
  const __int128 product = static_cast<__int128>(static_cast<i64>(a)) *
                           static_cast<__int128>(static_cast<i64>(b));
  return static_cast<u64>(static_cast<unsigned __int128>(product) >> 64);
}

}  // namespace detail

/// Pure SRV semantics. `rs1_value`/`rs2_value` are the operand *values*
/// (integer or FP bit pattern as the opcode demands). Does not touch any
/// state; loads produce only the effective address (the memory read itself
/// is the caller's business).
///
/// Header-inline: runs once per dispatched instruction inside step() and
/// once per R-stream re-execution inside the comparator — both hot paths.
inline ComputeOut compute(const Instruction& inst, u64 a, u64 b, Addr pc) {
  ComputeOut out;
  const i64 imm = inst.imm;
  switch (inst.op) {
    case Opcode::kAdd: out.value = a + b; break;
    case Opcode::kSub: out.value = a - b; break;
    case Opcode::kAnd: out.value = a & b; break;
    case Opcode::kOr: out.value = a | b; break;
    case Opcode::kXor: out.value = a ^ b; break;
    case Opcode::kSll: out.value = a << (b & 63); break;
    case Opcode::kSrl: out.value = a >> (b & 63); break;
    case Opcode::kSra:
      out.value = static_cast<u64>(static_cast<i64>(a) >> (b & 63));
      break;
    case Opcode::kSlt:
      out.value = static_cast<i64>(a) < static_cast<i64>(b) ? 1 : 0;
      break;
    case Opcode::kSltu: out.value = a < b ? 1 : 0; break;

    case Opcode::kMul: out.value = a * b; break;
    case Opcode::kMulh: out.value = detail::mulh(a, b); break;
    case Opcode::kDiv: out.value = detail::int_div(a, b, true, false); break;
    case Opcode::kDivu: out.value = detail::int_div(a, b, false, false); break;
    case Opcode::kRem: out.value = detail::int_div(a, b, true, true); break;
    case Opcode::kRemu: out.value = detail::int_div(a, b, false, true); break;

    case Opcode::kAddi: out.value = a + static_cast<u64>(imm); break;
    case Opcode::kAndi: out.value = a & static_cast<u64>(imm); break;
    case Opcode::kOri: out.value = a | static_cast<u64>(imm); break;
    case Opcode::kXori: out.value = a ^ static_cast<u64>(imm); break;
    case Opcode::kSlli: out.value = a << (imm & 63); break;
    case Opcode::kSrli: out.value = a >> (imm & 63); break;
    case Opcode::kSrai:
      out.value = static_cast<u64>(static_cast<i64>(a) >> (imm & 63));
      break;
    case Opcode::kSlti:
      out.value = static_cast<i64>(a) < imm ? 1 : 0;
      break;
    case Opcode::kSltiu:
      out.value = a < static_cast<u64>(imm) ? 1 : 0;
      break;

    case Opcode::kLui:
      out.value = static_cast<u64>(imm) << 14;
      break;

    case Opcode::kLb: case Opcode::kLbu: case Opcode::kLh: case Opcode::kLhu:
    case Opcode::kLw: case Opcode::kLwu: case Opcode::kLd: case Opcode::kFld:
      out.addr = a + static_cast<u64>(imm);
      break;

    case Opcode::kSb: case Opcode::kSh: case Opcode::kSw: case Opcode::kSd:
    case Opcode::kFsd:
      out.addr = a + static_cast<u64>(imm);
      out.value = b;  // value to store
      break;

    case Opcode::kBeq: out.taken = (a == b); break;
    case Opcode::kBne: out.taken = (a != b); break;
    case Opcode::kBlt:
      out.taken = static_cast<i64>(a) < static_cast<i64>(b);
      break;
    case Opcode::kBge:
      out.taken = static_cast<i64>(a) >= static_cast<i64>(b);
      break;
    case Opcode::kBltu: out.taken = a < b; break;
    case Opcode::kBgeu: out.taken = a >= b; break;

    case Opcode::kJal:
      out.taken = true;
      out.target = pc + 4 * static_cast<u64>(imm);
      out.value = pc + 4;  // return address
      break;
    case Opcode::kJalr:
      out.taken = true;
      out.target = (a + static_cast<u64>(imm)) & ~u64{1};
      out.value = pc + 4;
      break;

    case Opcode::kFadd:
      out.value = detail::as_bits(detail::as_double(a) + detail::as_double(b));
      break;
    case Opcode::kFsub:
      out.value = detail::as_bits(detail::as_double(a) - detail::as_double(b));
      break;
    case Opcode::kFmul:
      out.value = detail::as_bits(detail::as_double(a) * detail::as_double(b));
      break;
    case Opcode::kFdiv:
      out.value = detail::as_bits(detail::as_double(a) / detail::as_double(b));
      break;
    case Opcode::kFsqrt:
      out.value = detail::as_bits(std::sqrt(detail::as_double(a)));
      break;
    case Opcode::kFmin:
      out.value =
          detail::as_bits(std::fmin(detail::as_double(a), detail::as_double(b)));
      break;
    case Opcode::kFmax:
      out.value =
          detail::as_bits(std::fmax(detail::as_double(a), detail::as_double(b)));
      break;
    case Opcode::kFneg: out.value = a ^ (u64{1} << 63); break;
    case Opcode::kFcvtDL:
      out.value = detail::as_bits(static_cast<double>(static_cast<i64>(a)));
      break;
    case Opcode::kFcvtLD: {
      const double d = detail::as_double(a);
      // Saturating truncation; NaN maps to 0.
      i64 v;
      if (std::isnan(d)) {
        v = 0;
      } else if (d >= 9.2233720368547758e18) {
        v = INT64_MAX;
      } else if (d <= -9.2233720368547758e18) {
        v = INT64_MIN;
      } else {
        v = static_cast<i64>(d);
      }
      out.value = static_cast<u64>(v);
      break;
    }
    case Opcode::kFeq:
      out.value = detail::as_double(a) == detail::as_double(b) ? 1 : 0;
      break;
    case Opcode::kFlt:
      out.value = detail::as_double(a) < detail::as_double(b) ? 1 : 0;
      break;
    case Opcode::kFle:
      out.value = detail::as_double(a) <= detail::as_double(b) ? 1 : 0;
      break;
    case Opcode::kFmvXD: case Opcode::kFmvDX: out.value = a; break;

    case Opcode::kOut: out.value = a; break;
    case Opcode::kHalt: case Opcode::kNop: break;
    case Opcode::kCount: assert(false && "invalid opcode"); break;
  }

  if (is_cond_branch(inst.op)) {
    out.target = pc + 4 * static_cast<u64>(imm);
    out.value = out.taken ? 1 : 0;
  }
  return out;
}

/// Side effects + values produced by one full step().
struct StepOut {
  ComputeOut compute;       ///< as above
  u64 rs1_value = 0;        ///< operand values actually read (for the RUU)
  u64 rs2_value = 0;
  u64 result = 0;           ///< value written to rd (loads: loaded value)
  bool wrote_reg = false;
  Addr next_pc = 0;
};

/// Execute `inst` at state->pc: read operands, compute, access `data`,
/// update registers/pc/halt/out-hash. The caller guarantees `inst` is the
/// instruction at state->pc.
///
/// Templated over the data-space type: the pipeline's dispatch-time
/// execution runs once per simulated instruction, and calling through the
/// DataSpace vtable there costs an indirect branch per memory op. Callers
/// holding a concrete space (DirectDataSpace, SpecOverlay) instantiate with
/// that type and get direct, inlinable accesses; Space = DataSpace still
/// works through the virtual interface.
template <typename Space>
StepOut step(ArchState* state, const Instruction& inst, Space* data) {
  const OpInfo& info = inst.info();
  StepOut out;

  if (info.reads_rs1) {
    out.rs1_value = info.is_fp_rs1 ? state->f(inst.rs1) : state->x(inst.rs1);
  }
  if (info.reads_rs2) {
    out.rs2_value = info.is_fp_rs2 ? state->f(inst.rs2) : state->x(inst.rs2);
  }

  out.compute = compute(inst, out.rs1_value, out.rs2_value, state->pc);
  out.next_pc = out.compute.taken ? out.compute.target : state->pc + 4;

  switch (info.exec_class) {
    case ExecClass::kLoad: {
      u64 loaded = data->load(out.compute.addr, info.mem_bytes);
      if (info.load_signed && info.mem_bytes < 8) {
        loaded = static_cast<u64>(sign_extend(loaded, 8 * info.mem_bytes));
      }
      out.result = loaded;
      break;
    }
    case ExecClass::kStore:
      data->store(out.compute.addr, info.mem_bytes, out.compute.value);
      out.result = out.compute.value;
      break;
    default:
      out.result = out.compute.value;
      break;
  }

  if (info.writes_rd) {
    if (info.is_fp_rd) {
      state->set_f(inst.rd, out.result);
    } else {
      state->set_x(inst.rd, out.result);
    }
    out.wrote_reg = true;
  }
  if (inst.op == Opcode::kOut) state->emit_out(out.rs1_value);
  if (inst.op == Opcode::kHalt) state->halted = true;

  state->pc = out.next_pc;
  return out;
}

}  // namespace reese::isa

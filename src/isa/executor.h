// Functional execution of SRV instructions.
//
// Two layers:
//  * compute(): a pure function of (instruction, operand values, pc) that
//    yields the result value / branch outcome / effective address. This is
//    the single definition of SRV semantics; both the full step() below and
//    the REESE R-stream re-execution call it, so P and R streams are
//    guaranteed to run the same computation (as they do in hardware, where
//    it is the same functional unit).
//  * step(): advances an ArchState by one instruction against a DataSpace,
//    used by the golden ISS and by the pipeline's dispatch-time in-order
//    execution.
#pragma once

#include "common/types.h"
#include "isa/arch_state.h"
#include "isa/instruction.h"

namespace reese::isa {

/// Result of the pure computation of one instruction.
struct ComputeOut {
  u64 value = 0;       ///< rd value; for stores the value to be stored;
                       ///< for conditional branches taken?1:0
  bool taken = false;  ///< control transfer taken (always true for jumps)
  Addr target = 0;     ///< control target when taken
  Addr addr = 0;       ///< effective address for loads/stores
};

/// Pure SRV semantics. `rs1_value`/`rs2_value` are the operand *values*
/// (integer or FP bit pattern as the opcode demands). Does not touch any
/// state; loads produce only the effective address (the memory read itself
/// is the caller's business).
ComputeOut compute(const Instruction& inst, u64 rs1_value, u64 rs2_value,
                   Addr pc);

/// Side effects + values produced by one full step().
struct StepOut {
  ComputeOut compute;       ///< as above
  u64 rs1_value = 0;        ///< operand values actually read (for the RUU)
  u64 rs2_value = 0;
  u64 result = 0;           ///< value written to rd (loads: loaded value)
  bool wrote_reg = false;
  Addr next_pc = 0;
};

/// Execute `inst` at state->pc: read operands, compute, access `data`,
/// update registers/pc/halt/out-hash. The caller guarantees `inst` is the
/// instruction at state->pc.
StepOut step(ArchState* state, const Instruction& inst, DataSpace* data);

}  // namespace reese::isa

// Two-pass text assembler for SRV.
//
// Syntax (RISC-V flavoured):
//
//   # comment              // comment
//   .text                  .data
//   label:
//     addi  t0, t0, 1
//     ld    a0, 8(sp)
//     beq   t0, t1, label
//     li    t2, 0x12345678abcd      # pseudo, expands as needed
//     la    a1, table               # pseudo, lui+addi
//   .data
//   table:  .dword 1, 2, other_label, label+8
//   name:   .asciiz "text"
//           .space 64
//           .align 8
//           .byte 1, 2   .half ...   .word ...
//
// Pseudo-instructions: li la mv not neg j jr call ret beqz bnez bltz bgez
// blez bgtz ble bgt bleu bgtu seqz snez subi.
//
// Labels may be used wherever an immediate is expected; branch/jal targets
// are converted to instruction-relative offsets. Data values may be
// `label` or `label+N` / `label-N`.
//
// Entry point: the `main` label if defined, otherwise the first instruction.
#pragma once

#include <string_view>

#include "common/error.h"
#include "isa/program.h"

namespace reese::isa {

struct AsmOptions {
  Addr code_base = kDefaultCodeBase;
  Addr data_base = kDefaultDataBase;
};

Result<Program> assemble(std::string_view source, const AsmOptions& options = {});

}  // namespace reese::isa

#include "isa/program.h"

#include <cstdio>
#include <cstdlib>

namespace reese::isa {

Addr Program::symbol(const std::string& name) const {
  auto it = symbols.find(name);
  if (it == symbols.end()) {
    std::fprintf(stderr, "Program::symbol: no symbol named '%s'\n",
                 name.c_str());
    std::abort();
  }
  return it->second;
}

void Program::load_data(mem::MainMemory* memory) const {
  if (!data.empty()) {
    memory->write_block(data_base, data.data(), data.size());
  }
}

}  // namespace reese::isa

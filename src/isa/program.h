// A loadable SRV program image: encoded text segment, initialized data
// segment, entry point and symbol table.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"
#include "mem/main_memory.h"

namespace reese::isa {

/// Default memory layout (all addresses byte-granular):
///   text  at 0x0000'1000
///   data  at 0x0010'0000
///   heap  grows up from the end of data (workload-managed)
///   stack grows down from 0x0800'0000
constexpr Addr kDefaultCodeBase = 0x1000;
constexpr Addr kDefaultDataBase = 0x100000;
constexpr Addr kDefaultStackTop = 0x8000000;

struct Program {
  std::vector<Instruction> code;  ///< decoded text, code[i] at code_base + 4*i
  std::vector<u32> words;         ///< encoded text, same length as `code`
  Addr code_base = kDefaultCodeBase;

  std::vector<u8> data;  ///< initialized data image
  Addr data_base = kDefaultDataBase;

  Addr entry = kDefaultCodeBase;
  std::map<std::string, Addr> symbols;

  /// True iff `pc` addresses an instruction of this program.
  bool contains_pc(Addr pc) const {
    return pc >= code_base && pc < code_base + 4 * code.size() &&
           (pc & 3) == 0;
  }

  /// Instruction at `pc`; pc must satisfy contains_pc().
  const Instruction& at(Addr pc) const { return code[(pc - code_base) / 4]; }

  Addr end_pc() const { return code_base + 4 * code.size(); }

  /// Address of a labelled symbol; aborts if absent (programming error in
  /// tests/workloads, not user input).
  Addr symbol(const std::string& name) const;

  /// Copy the data image into simulated memory. (Code is Harvard-style: the
  /// I-cache is simulated on text addresses but fetch reads `code` directly.)
  void load_data(mem::MainMemory* memory) const;
};

}  // namespace reese::isa

#include "isa/assembler.h"

#include <cassert>
#include <optional>
#include <string>
#include <vector>

#include "common/bitutil.h"
#include "common/strutil.h"
#include "isa/encoding.h"

namespace reese::isa {
namespace {

// ---------------------------------------------------------------------------
// Lexical pieces
// ---------------------------------------------------------------------------

/// Strip comments ('#', '//', ';') outside of string literals.
std::string_view strip_comment(std::string_view line) {
  bool in_string = false;
  for (usize i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"' && (i == 0 || line[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '#' || c == ';') return line.substr(0, i);
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      return line.substr(0, i);
    }
  }
  return line;
}

/// Split an operand list on commas at depth zero (no parens nesting needed,
/// but keeps "8(sp)" together).
std::vector<std::string_view> split_operands(std::string_view s) {
  std::vector<std::string_view> out;
  usize start = 0;
  for (usize i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == ',') {
      const std::string_view piece = trim(s.substr(start, i - start));
      if (!piece.empty()) out.push_back(piece);
      start = i + 1;
    }
  }
  return out;
}

bool valid_label_name(std::string_view s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_' ||
        s[0] == '.')) {
    return false;
  }
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.')) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Parsed source representation (pass 1 output)
// ---------------------------------------------------------------------------

struct SourceInst {
  std::string mnemonic;
  std::vector<std::string> operands;
  int line = 0;
  Addr addr = 0;       // assigned in pass 1
  usize expansion = 1; // encoded instruction count
};

enum class DataKind { kBytes, kSpace, kAlign, kValueList };

struct DataItem {
  DataKind kind;
  std::vector<u8> bytes;              // kBytes (strings)
  u64 amount = 0;                     // kSpace / kAlign
  unsigned value_size = 0;            // kValueList element size
  std::vector<std::string> values;    // kValueList expressions
  int line = 0;
  Addr addr = 0;
};

struct ParsedSource {
  std::vector<SourceInst> insts;
  std::vector<DataItem> data_items;
  std::map<std::string, Addr> symbols;
};

// ---------------------------------------------------------------------------
// Assembler implementation
// ---------------------------------------------------------------------------

class Assembler {
 public:
  explicit Assembler(const AsmOptions& options) : options_(options) {}

  Result<Program> run(std::string_view source) {
    if (auto r = pass1(source); !r.ok()) return r.error();
    if (auto r = pass2(); !r.ok()) return r.error();
    program_.code_base = options_.code_base;
    program_.data_base = options_.data_base;
    program_.symbols = parsed_.symbols;
    auto main_it = parsed_.symbols.find("main");
    program_.entry =
        main_it != parsed_.symbols.end() ? main_it->second : options_.code_base;
    return std::move(program_);
  }

 private:
  Error at(int line, std::string message) const {
    return Error{std::move(message), line};
  }

  /// Number of encoded instructions a (possibly pseudo) source instruction
  /// expands to. `li` needs its literal operand to decide.
  Result<usize> expansion_size(const SourceInst& inst) {
    const std::string& m = inst.mnemonic;
    if (m == "la") return usize{2};
    if (m == "li") {
      if (inst.operands.size() != 2) {
        return at(inst.line, "li needs 2 operands");
      }
      i64 value = 0;
      if (!parse_int(inst.operands[1], &value)) {
        // `li rd, label` is allowed and takes the la expansion.
        if (valid_label_name(inst.operands[1])) return usize{2};
        return at(inst.line, "li: bad immediate '" + inst.operands[1] + "'");
      }
      return li_sequence(0, value).size();
    }
    return usize{1};
  }

  /// Materialize a 64-bit constant into `rd`. Returns the instruction list.
  static std::vector<Instruction> li_sequence(u8 rd, i64 value) {
    std::vector<Instruction> seq;
    if (fits_signed(value, kImm14Bits)) {
      seq.push_back({Opcode::kAddi, rd, kZeroReg, 0, value});
      return seq;
    }
    // Try lui(+addi): covers all values representable as
    // sext19(hi) << 14 + sext14(lo), i.e. signed 33-bit values.
    const i64 lo = sign_extend(static_cast<u64>(value), kImm14Bits);
    const i64 hi = (value - lo) >> 14;
    if (fits_signed(hi, kImm19Bits)) {
      seq.push_back({Opcode::kLui, rd, 0, 0, hi});
      if (lo != 0) seq.push_back({Opcode::kAddi, rd, rd, 0, lo});
      return seq;
    }
    // General case: build from 13-bit unsigned chunks, top-down, to avoid
    // sign-extension carries entirely: value = ((((c4<<13|c3)<<13)|..)<<13)|c0
    // with a possible final negation handled via the signed top chunk.
    const u64 uvalue = static_cast<u64>(value);
    // 64 = 13*4 + 12 -> top chunk is bits [63:52] (12 bits, signed via addi).
    const i64 top = sign_extend(uvalue >> 52, 12);
    seq.push_back({Opcode::kAddi, rd, kZeroReg, 0, top});
    for (int chunk_index = 3; chunk_index >= 0; --chunk_index) {
      const u64 chunk = (uvalue >> (13 * chunk_index)) & 0x1FFF;
      seq.push_back({Opcode::kSlli, rd, rd, 0, 13});
      if (chunk != 0) {
        seq.push_back(
            {Opcode::kAddi, rd, rd, 0, static_cast<i64>(chunk)});
      }
    }
    return seq;
  }

  Result<bool> pass1(std::string_view source) {
    const std::vector<std::string_view> lines = split(source, '\n');
    bool in_text = true;
    usize inst_count = 0;  // encoded instructions so far
    u64 data_offset = 0;

    for (usize line_index = 0; line_index < lines.size(); ++line_index) {
      const int line_no = static_cast<int>(line_index) + 1;
      std::string_view line = trim(strip_comment(lines[line_index]));

      // Labels (possibly several) at the start of the line.
      while (true) {
        const usize colon = line.find(':');
        if (colon == std::string_view::npos) break;
        const std::string_view candidate = trim(line.substr(0, colon));
        if (!valid_label_name(candidate)) break;
        // Don't treat "8(sp):" etc. — valid_label_name guards that.
        const std::string name(candidate);
        if (parsed_.symbols.count(name) != 0) {
          return at(line_no, "duplicate label '" + name + "'");
        }
        parsed_.symbols[name] = in_text
                                    ? options_.code_base + 4 * inst_count
                                    : options_.data_base + data_offset;
        line = trim(line.substr(colon + 1));
      }
      if (line.empty()) continue;

      if (line[0] == '.') {
        // Directive.
        const usize space = line.find_first_of(" \t");
        const std::string directive(
            line.substr(0, space == std::string_view::npos ? line.size()
                                                           : space));
        const std::string_view rest =
            space == std::string_view::npos ? std::string_view{}
                                            : trim(line.substr(space));
        if (directive == ".text") {
          in_text = true;
          continue;
        }
        if (directive == ".data") {
          in_text = false;
          continue;
        }
        if (directive == ".global" || directive == ".globl") continue;
        if (in_text) {
          return at(line_no, "directive " + directive + " not valid in .text");
        }
        DataItem item;
        item.line = line_no;
        item.addr = options_.data_base + data_offset;
        if (directive == ".byte" || directive == ".half" ||
            directive == ".word" || directive == ".dword") {
          item.kind = DataKind::kValueList;
          item.value_size = directive == ".byte"   ? 1
                            : directive == ".half" ? 2
                            : directive == ".word" ? 4
                                                   : 8;
          for (std::string_view v : split_operands(rest)) {
            item.values.emplace_back(v);
          }
          if (item.values.empty()) {
            return at(line_no, directive + " needs at least one value");
          }
          data_offset += item.value_size * item.values.size();
        } else if (directive == ".space") {
          i64 n = 0;
          if (!parse_int(rest, &n) || n < 0) {
            return at(line_no, ".space: bad size");
          }
          item.kind = DataKind::kSpace;
          item.amount = static_cast<u64>(n);
          data_offset += item.amount;
        } else if (directive == ".align") {
          i64 n = 0;
          if (!parse_int(rest, &n) || n <= 0 || !is_pow2(static_cast<u64>(n))) {
            return at(line_no, ".align: need a power-of-two argument");
          }
          item.kind = DataKind::kAlign;
          item.amount = static_cast<u64>(n);
          const u64 aligned =
              (data_offset + item.amount - 1) & ~(item.amount - 1);
          item.bytes.resize(aligned - data_offset);  // reuse as pad size
          data_offset = aligned;
        } else if (directive == ".asciiz" || directive == ".ascii") {
          item.kind = DataKind::kBytes;
          std::string decoded;
          if (!decode_string(rest, &decoded)) {
            return at(line_no, directive + ": bad string literal");
          }
          item.bytes.assign(decoded.begin(), decoded.end());
          if (directive == ".asciiz") item.bytes.push_back(0);
          data_offset += item.bytes.size();
        } else {
          return at(line_no, "unknown directive " + directive);
        }
        parsed_.data_items.push_back(std::move(item));
        continue;
      }

      // Instruction line.
      if (!in_text) {
        return at(line_no, "instruction outside .text: '" + std::string(line) +
                               "'");
      }
      const usize space = line.find_first_of(" \t");
      SourceInst inst;
      inst.line = line_no;
      inst.mnemonic = to_lower(
          line.substr(0, space == std::string_view::npos ? line.size() : space));
      if (space != std::string_view::npos) {
        for (std::string_view piece : split_operands(trim(line.substr(space)))) {
          inst.operands.emplace_back(piece);
        }
      }
      inst.addr = options_.code_base + 4 * inst_count;
      auto size = expansion_size(inst);
      if (!size.ok()) return size.error();
      inst.expansion = size.value();
      inst_count += inst.expansion;
      parsed_.insts.push_back(std::move(inst));
    }
    return true;
  }

  static bool decode_string(std::string_view s, std::string* out) {
    s = trim(s);
    if (s.size() < 2 || s.front() != '"' || s.back() != '"') return false;
    s = s.substr(1, s.size() - 2);
    for (usize i = 0; i < s.size(); ++i) {
      if (s[i] != '\\') {
        out->push_back(s[i]);
        continue;
      }
      if (++i >= s.size()) return false;
      switch (s[i]) {
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case '0': out->push_back('\0'); break;
        case '\\': out->push_back('\\'); break;
        case '"': out->push_back('"'); break;
        default: return false;
      }
    }
    return true;
  }

  /// Evaluate `label`, `label+N`, `label-N`, or an integer literal.
  Result<i64> eval_expr(std::string_view expr, int line) const {
    expr = trim(expr);
    i64 literal = 0;
    if (parse_int(expr, &literal)) return literal;

    usize op_pos = std::string_view::npos;
    for (usize i = 1; i < expr.size(); ++i) {
      if (expr[i] == '+' || expr[i] == '-') {
        op_pos = i;
        break;
      }
    }
    std::string_view base = trim(expr.substr(0, op_pos));
    i64 offset = 0;
    if (op_pos != std::string_view::npos) {
      if (!parse_int(expr.substr(op_pos), &offset)) {
        return at(line, "bad expression '" + std::string(expr) + "'");
      }
    }
    auto it = parsed_.symbols.find(std::string(base));
    if (it == parsed_.symbols.end()) {
      return at(line, "unknown symbol '" + std::string(base) + "'");
    }
    return static_cast<i64>(it->second) + offset;
  }

  struct Operands {
    std::vector<std::string>* raw;
    int line;
  };

  Result<u8> reg_operand(const SourceInst& inst, usize index, bool fp) const {
    if (index >= inst.operands.size()) {
      return at(inst.line, inst.mnemonic + ": missing operand");
    }
    const int reg = parse_register(inst.operands[index], fp);
    if (reg < 0) {
      return at(inst.line, inst.mnemonic + ": bad register '" +
                               inst.operands[index] + "'");
    }
    return static_cast<u8>(reg);
  }

  Result<i64> imm_operand(const SourceInst& inst, usize index) const {
    if (index >= inst.operands.size()) {
      return at(inst.line, inst.mnemonic + ": missing immediate");
    }
    return eval_expr(inst.operands[index], inst.line);
  }

  /// Parse "imm(reg)" or "label" (absolute, reg=zero) memory operand.
  struct MemOperand {
    u8 base;
    i64 offset;
  };
  Result<MemOperand> mem_operand(const SourceInst& inst, usize index) const {
    if (index >= inst.operands.size()) {
      return at(inst.line, inst.mnemonic + ": missing memory operand");
    }
    const std::string& s = inst.operands[index];
    const usize open = s.find('(');
    if (open == std::string::npos) {
      auto value = eval_expr(s, inst.line);
      if (!value.ok()) return value.error();
      return MemOperand{kZeroReg, value.value()};
    }
    const usize close = s.find(')', open);
    if (close == std::string::npos) {
      return at(inst.line, "bad memory operand '" + s + "'");
    }
    const int reg = parse_register(trim(std::string_view(s).substr(
                                       open + 1, close - open - 1)),
                                   false);
    if (reg < 0) {
      return at(inst.line, "bad base register in '" + s + "'");
    }
    i64 offset = 0;
    const std::string_view offset_text = trim(std::string_view(s).substr(0, open));
    if (!offset_text.empty()) {
      auto value = eval_expr(offset_text, inst.line);
      if (!value.ok()) return value.error();
      offset = value.value();
    }
    return MemOperand{static_cast<u8>(reg), offset};
  }

  /// Branch/jump target: label or literal absolute address -> instruction
  /// offset relative to `from`.
  Result<i64> branch_offset(const SourceInst& inst, usize index,
                            Addr from) const {
    auto target = imm_operand(inst, index);
    if (!target.ok()) return target.error();
    const i64 delta = target.value() - static_cast<i64>(from);
    if (delta % 4 != 0) {
      return at(inst.line, "branch target not instruction-aligned");
    }
    return delta / 4;
  }

  void emit(const Instruction& inst) { emitted_.push_back(inst); }

  Result<bool> encode_source_inst(const SourceInst& inst) {
    const std::string& m = inst.mnemonic;
    const usize emitted_before = emitted_.size();

    // --- pseudo-instructions -------------------------------------------
    if (m == "li") {
      auto rd = reg_operand(inst, 0, false);
      if (!rd.ok()) return rd.error();
      i64 value = 0;
      if (parse_int(inst.operands[1], &value)) {
        for (Instruction& i : li_sequence(rd.value(), value)) emit(i);
      } else {
        auto addr = imm_operand(inst, 1);
        if (!addr.ok()) return addr.error();
        emit_la(rd.value(), addr.value());
      }
    } else if (m == "la") {
      auto rd = reg_operand(inst, 0, false);
      if (!rd.ok()) return rd.error();
      auto addr = imm_operand(inst, 1);
      if (!addr.ok()) return addr.error();
      emit_la(rd.value(), addr.value());
    } else if (m == "mv") {
      auto rd = reg_operand(inst, 0, false);
      auto rs = reg_operand(inst, 1, false);
      if (!rd.ok()) return rd.error();
      if (!rs.ok()) return rs.error();
      emit({Opcode::kAddi, rd.value(), rs.value(), 0, 0});
    } else if (m == "not") {
      auto rd = reg_operand(inst, 0, false);
      auto rs = reg_operand(inst, 1, false);
      if (!rd.ok()) return rd.error();
      if (!rs.ok()) return rs.error();
      emit({Opcode::kXori, rd.value(), rs.value(), 0, -1});
    } else if (m == "neg") {
      auto rd = reg_operand(inst, 0, false);
      auto rs = reg_operand(inst, 1, false);
      if (!rd.ok()) return rd.error();
      if (!rs.ok()) return rs.error();
      emit({Opcode::kSub, rd.value(), kZeroReg, rs.value(), 0});
    } else if (m == "seqz") {
      auto rd = reg_operand(inst, 0, false);
      auto rs = reg_operand(inst, 1, false);
      if (!rd.ok()) return rd.error();
      if (!rs.ok()) return rs.error();
      emit({Opcode::kSltiu, rd.value(), rs.value(), 0, 1});
    } else if (m == "snez") {
      auto rd = reg_operand(inst, 0, false);
      auto rs = reg_operand(inst, 1, false);
      if (!rd.ok()) return rd.error();
      if (!rs.ok()) return rs.error();
      emit({Opcode::kSltu, rd.value(), kZeroReg, rs.value(), 0});
    } else if (m == "subi") {
      auto rd = reg_operand(inst, 0, false);
      auto rs = reg_operand(inst, 1, false);
      auto imm = imm_operand(inst, 2);
      if (!rd.ok()) return rd.error();
      if (!rs.ok()) return rs.error();
      if (!imm.ok()) return imm.error();
      emit({Opcode::kAddi, rd.value(), rs.value(), 0, -imm.value()});
    } else if (m == "j") {
      auto offset = branch_offset(inst, 0, inst.addr);
      if (!offset.ok()) return offset.error();
      emit({Opcode::kJal, kZeroReg, 0, 0, offset.value()});
    } else if (m == "jr") {
      auto rs = reg_operand(inst, 0, false);
      if (!rs.ok()) return rs.error();
      emit({Opcode::kJalr, kZeroReg, rs.value(), 0, 0});
    } else if (m == "call") {
      auto offset = branch_offset(inst, 0, inst.addr);
      if (!offset.ok()) return offset.error();
      emit({Opcode::kJal, kRaReg, 0, 0, offset.value()});
    } else if (m == "ret") {
      emit({Opcode::kJalr, kZeroReg, kRaReg, 0, 0});
    } else if (m == "beqz" || m == "bnez" || m == "bltz" || m == "bgez" ||
               m == "blez" || m == "bgtz") {
      auto rs = reg_operand(inst, 0, false);
      if (!rs.ok()) return rs.error();
      auto offset = branch_offset(inst, 1, inst.addr);
      if (!offset.ok()) return offset.error();
      Instruction out;
      out.imm = offset.value();
      if (m == "beqz") out = {Opcode::kBeq, 0, rs.value(), kZeroReg, offset.value()};
      else if (m == "bnez") out = {Opcode::kBne, 0, rs.value(), kZeroReg, offset.value()};
      else if (m == "bltz") out = {Opcode::kBlt, 0, rs.value(), kZeroReg, offset.value()};
      else if (m == "bgez") out = {Opcode::kBge, 0, rs.value(), kZeroReg, offset.value()};
      else if (m == "blez") out = {Opcode::kBge, 0, kZeroReg, rs.value(), offset.value()};
      else out = {Opcode::kBlt, 0, kZeroReg, rs.value(), offset.value()};
      emit(out);
    } else if (m == "ble" || m == "bgt" || m == "bleu" || m == "bgtu") {
      auto rs1 = reg_operand(inst, 0, false);
      auto rs2 = reg_operand(inst, 1, false);
      if (!rs1.ok()) return rs1.error();
      if (!rs2.ok()) return rs2.error();
      auto offset = branch_offset(inst, 2, inst.addr);
      if (!offset.ok()) return offset.error();
      // a<=b == b>=a ; a>b == b<a — swap operands.
      Opcode op = (m == "ble")    ? Opcode::kBge
                  : (m == "bgt")  ? Opcode::kBlt
                  : (m == "bleu") ? Opcode::kBgeu
                                  : Opcode::kBltu;
      emit({op, 0, rs2.value(), rs1.value(), offset.value()});
    } else {
      // --- real opcodes -------------------------------------------------
      const Opcode op = opcode_from_mnemonic(m);
      if (op == Opcode::kCount) {
        return at(inst.line, "unknown mnemonic '" + m + "'");
      }
      auto encoded = encode_real(inst, op);
      if (!encoded.ok()) return encoded.error();
    }

    if (emitted_.size() - emitted_before != inst.expansion) {
      // Pad with NOPs if a pseudo expanded shorter than pass 1 reserved
      // (e.g. lui with zero low part). Never longer — that would corrupt
      // label addresses.
      if (emitted_.size() - emitted_before > inst.expansion) {
        return at(inst.line, "internal: pseudo expansion grew between passes");
      }
      while (emitted_.size() - emitted_before < inst.expansion) {
        emit({Opcode::kNop, 0, 0, 0, 0});
      }
    }
    return true;
  }

  void emit_la(u8 rd, i64 addr) {
    const i64 lo = sign_extend(static_cast<u64>(addr), kImm14Bits);
    const i64 hi = (addr - lo) >> 14;
    assert(fits_signed(hi, kImm19Bits) && "address out of la range");
    emit({Opcode::kLui, rd, 0, 0, hi});
    emit({Opcode::kAddi, rd, rd, 0, lo});
  }

  Result<bool> encode_real(const SourceInst& inst, Opcode op) {
    const OpInfo& info = op_info(op);
    Instruction out;
    out.op = op;
    switch (info.format) {
      case Format::kR: {
        auto rd = reg_operand(inst, 0, info.is_fp_rd);
        if (!rd.ok()) return rd.error();
        auto rs1 = reg_operand(inst, 1, info.is_fp_rs1);
        if (!rs1.ok()) return rs1.error();
        out.rd = rd.value();
        out.rs1 = rs1.value();
        if (info.reads_rs2) {
          auto rs2 = reg_operand(inst, 2, info.is_fp_rs2);
          if (!rs2.ok()) return rs2.error();
          out.rs2 = rs2.value();
        }
        break;
      }
      case Format::kI: {
        auto rd = reg_operand(inst, 0, false);
        auto rs1 = reg_operand(inst, 1, false);
        auto imm = imm_operand(inst, 2);
        if (!rd.ok()) return rd.error();
        if (!rs1.ok()) return rs1.error();
        if (!imm.ok()) return imm.error();
        out.rd = rd.value();
        out.rs1 = rs1.value();
        out.imm = imm.value();
        break;
      }
      case Format::kU: {
        auto rd = reg_operand(inst, 0, false);
        auto imm = imm_operand(inst, 1);
        if (!rd.ok()) return rd.error();
        if (!imm.ok()) return imm.error();
        out.rd = rd.value();
        out.imm = imm.value();
        break;
      }
      case Format::kL: {
        auto rd = reg_operand(inst, 0, info.is_fp_rd);
        if (!rd.ok()) return rd.error();
        auto mem = mem_operand(inst, 1);
        if (!mem.ok()) return mem.error();
        out.rd = rd.value();
        out.rs1 = mem.value().base;
        out.imm = mem.value().offset;
        break;
      }
      case Format::kS: {
        auto rs2 = reg_operand(inst, 0, info.is_fp_rs2);
        if (!rs2.ok()) return rs2.error();
        auto mem = mem_operand(inst, 1);
        if (!mem.ok()) return mem.error();
        out.rs2 = rs2.value();
        out.rs1 = mem.value().base;
        out.imm = mem.value().offset;
        break;
      }
      case Format::kB: {
        auto rs1 = reg_operand(inst, 0, false);
        auto rs2 = reg_operand(inst, 1, false);
        if (!rs1.ok()) return rs1.error();
        if (!rs2.ok()) return rs2.error();
        auto offset = branch_offset(inst, 2, inst.addr);
        if (!offset.ok()) return offset.error();
        out.rs1 = rs1.value();
        out.rs2 = rs2.value();
        out.imm = offset.value();
        break;
      }
      case Format::kJ: {
        auto rd = reg_operand(inst, 0, false);
        if (!rd.ok()) return rd.error();
        auto offset = branch_offset(inst, 1, inst.addr);
        if (!offset.ok()) return offset.error();
        out.rd = rd.value();
        out.imm = offset.value();
        break;
      }
      case Format::kJr: {
        auto rd = reg_operand(inst, 0, false);
        auto rs1 = reg_operand(inst, 1, false);
        if (!rd.ok()) return rd.error();
        if (!rs1.ok()) return rs1.error();
        out.rd = rd.value();
        out.rs1 = rs1.value();
        if (inst.operands.size() > 2) {
          auto imm = imm_operand(inst, 2);
          if (!imm.ok()) return imm.error();
          out.imm = imm.value();
        }
        break;
      }
      case Format::kO: {
        auto rs1 = reg_operand(inst, 0, false);
        if (!rs1.ok()) return rs1.error();
        out.rs1 = rs1.value();
        break;
      }
      case Format::kN:
        break;
    }
    emit(out);
    return true;
  }

  Result<bool> pass2() {
    for (const SourceInst& inst : parsed_.insts) {
      if (auto r = encode_source_inst(inst); !r.ok()) return r.error();
    }
    // Encode to words (also validates immediate ranges).
    program_.code = emitted_;
    program_.words.reserve(emitted_.size());
    for (usize i = 0; i < emitted_.size(); ++i) {
      auto word = encode(emitted_[i]);
      if (!word.ok()) {
        Error e = word.error();
        e.message = "at instruction " + std::to_string(i) + " (" +
                    disassemble(emitted_[i]) + "): " + e.message;
        return e;
      }
      program_.words.push_back(word.value());
    }

    // Emit data image.
    for (const DataItem& item : parsed_.data_items) {
      const u64 offset = item.addr - options_.data_base;
      switch (item.kind) {
        case DataKind::kBytes:
          grow_data(offset + item.bytes.size());
          std::copy(item.bytes.begin(), item.bytes.end(),
                    program_.data.begin() + static_cast<isize_t>(offset));
          break;
        case DataKind::kSpace:
          grow_data(offset + item.amount);
          break;
        case DataKind::kAlign:
          grow_data(offset + item.bytes.size());
          break;
        case DataKind::kValueList: {
          grow_data(offset + item.value_size * item.values.size());
          u64 cursor = offset;
          for (const std::string& expr : item.values) {
            auto value = eval_expr(expr, item.line);
            if (!value.ok()) return value.error();
            const u64 bits = static_cast<u64>(value.value());
            for (unsigned b = 0; b < item.value_size; ++b) {
              program_.data[cursor + b] = static_cast<u8>(bits >> (8 * b));
            }
            cursor += item.value_size;
          }
          break;
        }
      }
    }
    return true;
  }

  using isize_t = std::vector<u8>::difference_type;

  void grow_data(u64 size) {
    if (program_.data.size() < size) program_.data.resize(size, 0);
  }

  AsmOptions options_;
  ParsedSource parsed_;
  std::vector<Instruction> emitted_;
  Program program_;
};

}  // namespace

Result<Program> assemble(std::string_view source, const AsmOptions& options) {
  Assembler assembler(options);
  return assembler.run(source);
}

}  // namespace reese::isa

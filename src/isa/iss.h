// Golden in-order instruction-set simulator.
//
// Executes a Program one instruction at a time with no timing model. Used
// as the functional-correctness reference: every workload's checksum and
// final memory image must match between this ISS and the cycle-level
// pipeline (which executes the same `step()` at dispatch).
#pragma once

#include "common/types.h"
#include "isa/arch_state.h"
#include "isa/program.h"

namespace reese::isa {

struct IssResult {
  u64 executed_instructions = 0;
  bool halted = false;        ///< program executed HALT
  bool bad_pc = false;        ///< fetch left the text segment
  Addr final_pc = 0;
  u64 out_hash = 0;
  u64 out_count = 0;
};

/// Per-opcode-class dynamic instruction mix, reported by profile runs and
/// the Table 2 bench.
struct InstMix {
  u64 total = 0;
  u64 int_alu = 0;
  u64 int_mul = 0;
  u64 int_div = 0;
  u64 fp = 0;
  u64 loads = 0;
  u64 stores = 0;
  u64 cond_branches = 0;
  u64 taken_branches = 0;
  u64 jumps = 0;
  u64 other = 0;

  void record(Opcode op, bool taken);
};

class Iss {
 public:
  /// Loads `program`'s data image into a fresh memory, points the PC at the
  /// entry and initializes SP to the standard stack top.
  explicit Iss(const Program& program);

  /// Run at most `max_instructions`. Returns early on HALT or on a PC
  /// outside the text segment.
  IssResult run(u64 max_instructions);

  ArchState& state() { return state_; }
  const ArchState& state() const { return state_; }
  mem::MainMemory& memory() { return memory_; }
  const InstMix& mix() const { return mix_; }

  /// One instruction; returns false if halted / bad PC.
  bool step_one();

 private:
  const Program& program_;
  mem::MainMemory memory_;
  DirectDataSpace data_space_{&memory_};
  ArchState state_;
  InstMix mix_;
  u64 executed_ = 0;
  bool bad_pc_ = false;
};

}  // namespace reese::isa

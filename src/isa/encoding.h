// Binary encoding of SRV instructions.
//
// Fixed 32-bit words:
//   [31:24] opcode
//   [23:19] field a   [18:14] field b   [13:9] field c
//   [13:0]  imm14 (signed)    [18:0] imm19 (signed)
//
// Field assignment per format (see Format in opcode.h):
//   R : a=rd  b=rs1 c=rs2        I : a=rd  b=rs1 imm14
//   U : a=rd  imm19              L : a=rd  b=rs1 imm14
//   S : a=rs2 b=rs1 imm14        B : a=rs1 b=rs2 imm14
//   J : a=rd  imm19              Jr: a=rd  b=rs1 imm14
//   O : b=rs1                    N : (none)
#pragma once

#include "common/error.h"
#include "isa/instruction.h"

namespace reese::isa {

/// Immediate ranges enforced by encode().
constexpr unsigned kImm14Bits = 14;
constexpr unsigned kImm19Bits = 19;

/// Encode a decoded instruction. Fails if the immediate does not fit the
/// format's field.
Result<u32> encode(const Instruction& inst);

/// Decode a 32-bit word. Fails on an unknown opcode byte.
Result<Instruction> decode(u32 word);

}  // namespace reese::isa

#include "isa/opcode.h"

#include <cassert>
#include <map>

namespace reese::isa {
namespace {

constexpr OpInfo make_r(std::string_view m, ExecClass ec) {
  return OpInfo{m, Format::kR, ec, true, true, true,
                false, false, false, 0, false};
}
constexpr OpInfo make_i(std::string_view m, ExecClass ec) {
  return OpInfo{m, Format::kI, ec, true, false, true,
                false, false, false, 0, false};
}
constexpr OpInfo make_load(std::string_view m, u8 bytes, bool sign, bool fp) {
  return OpInfo{m, Format::kL, ExecClass::kLoad, true, false, true,
                fp, false, false, bytes, sign};
}
constexpr OpInfo make_store(std::string_view m, u8 bytes, bool fp) {
  return OpInfo{m, Format::kS, ExecClass::kStore, true, true, false,
                false, false, fp, bytes, false};
}
constexpr OpInfo make_branch(std::string_view m) {
  return OpInfo{m, Format::kB, ExecClass::kIntAlu, true, true, false,
                false, false, false, 0, false};
}
constexpr OpInfo make_fpr(std::string_view m, ExecClass ec) {
  return OpInfo{m, Format::kR, ec, true, true, true,
                true, true, true, 0, false};
}
// FP unary (rs2 unused).
constexpr OpInfo make_fp1(std::string_view m, ExecClass ec) {
  return OpInfo{m, Format::kR, ec, true, false, true,
                true, true, false, 0, false};
}
// FP compare: FP sources, integer destination.
constexpr OpInfo make_fcmp(std::string_view m) {
  return OpInfo{m, Format::kR, ExecClass::kFpAdd, true, true, true,
                false, true, true, 0, false};
}

}  // namespace

// Constant-initialized (all makers are constexpr); named in opcode.h so the
// hot-path accessors inline.
const OpInfo kOpInfoTable[kOpcodeCount] = {
    /* kAdd  */ make_r("add", ExecClass::kIntAlu),
    /* kSub  */ make_r("sub", ExecClass::kIntAlu),
    /* kAnd  */ make_r("and", ExecClass::kIntAlu),
    /* kOr   */ make_r("or", ExecClass::kIntAlu),
    /* kXor  */ make_r("xor", ExecClass::kIntAlu),
    /* kSll  */ make_r("sll", ExecClass::kIntAlu),
    /* kSrl  */ make_r("srl", ExecClass::kIntAlu),
    /* kSra  */ make_r("sra", ExecClass::kIntAlu),
    /* kSlt  */ make_r("slt", ExecClass::kIntAlu),
    /* kSltu */ make_r("sltu", ExecClass::kIntAlu),
    /* kMul  */ make_r("mul", ExecClass::kIntMul),
    /* kMulh */ make_r("mulh", ExecClass::kIntMul),
    /* kDiv  */ make_r("div", ExecClass::kIntDiv),
    /* kDivu */ make_r("divu", ExecClass::kIntDiv),
    /* kRem  */ make_r("rem", ExecClass::kIntDiv),
    /* kRemu */ make_r("remu", ExecClass::kIntDiv),
    /* kAddi */ make_i("addi", ExecClass::kIntAlu),
    /* kAndi */ make_i("andi", ExecClass::kIntAlu),
    /* kOri  */ make_i("ori", ExecClass::kIntAlu),
    /* kXori */ make_i("xori", ExecClass::kIntAlu),
    /* kSlli */ make_i("slli", ExecClass::kIntAlu),
    /* kSrli */ make_i("srli", ExecClass::kIntAlu),
    /* kSrai */ make_i("srai", ExecClass::kIntAlu),
    /* kSlti */ make_i("slti", ExecClass::kIntAlu),
    /* kSltiu*/ make_i("sltiu", ExecClass::kIntAlu),
    /* kLui  */ OpInfo{"lui", Format::kU, ExecClass::kIntAlu, false, false,
                       true, false, false, false, 0, false},
    /* kLb   */ make_load("lb", 1, true, false),
    /* kLbu  */ make_load("lbu", 1, false, false),
    /* kLh   */ make_load("lh", 2, true, false),
    /* kLhu  */ make_load("lhu", 2, false, false),
    /* kLw   */ make_load("lw", 4, true, false),
    /* kLwu  */ make_load("lwu", 4, false, false),
    /* kLd   */ make_load("ld", 8, false, false),
    /* kSb   */ make_store("sb", 1, false),
    /* kSh   */ make_store("sh", 2, false),
    /* kSw   */ make_store("sw", 4, false),
    /* kSd   */ make_store("sd", 8, false),
    /* kBeq  */ make_branch("beq"),
    /* kBne  */ make_branch("bne"),
    /* kBlt  */ make_branch("blt"),
    /* kBge  */ make_branch("bge"),
    /* kBltu */ make_branch("bltu"),
    /* kBgeu */ make_branch("bgeu"),
    /* kJal  */ OpInfo{"jal", Format::kJ, ExecClass::kIntAlu, false, false,
                       true, false, false, false, 0, false},
    /* kJalr */ OpInfo{"jalr", Format::kJr, ExecClass::kIntAlu, true, false,
                       true, false, false, false, 0, false},
    /* kFadd */ make_fpr("fadd", ExecClass::kFpAdd),
    /* kFsub */ make_fpr("fsub", ExecClass::kFpAdd),
    /* kFmul */ make_fpr("fmul", ExecClass::kFpMul),
    /* kFdiv */ make_fpr("fdiv", ExecClass::kFpDiv),
    /* kFsqrt*/ make_fp1("fsqrt", ExecClass::kFpSqrt),
    /* kFmin */ make_fpr("fmin", ExecClass::kFpAdd),
    /* kFmax */ make_fpr("fmax", ExecClass::kFpAdd),
    /* kFneg */ make_fp1("fneg", ExecClass::kFpAdd),
    /* kFcvtDL */ OpInfo{"fcvt.d.l", Format::kR, ExecClass::kFpAdd, true,
                         false, true, true, false, false, 0, false},
    /* kFcvtLD */ OpInfo{"fcvt.l.d", Format::kR, ExecClass::kFpAdd, true,
                         false, true, false, true, false, 0, false},
    /* kFeq  */ make_fcmp("feq"),
    /* kFlt  */ make_fcmp("flt"),
    /* kFle  */ make_fcmp("fle"),
    /* kFld  */ make_load("fld", 8, false, true),
    /* kFsd  */ make_store("fsd", 8, true),
    /* kFmvXD */ OpInfo{"fmv.x.d", Format::kR, ExecClass::kFpAdd, true, false,
                        true, false, true, false, 0, false},
    /* kFmvDX */ OpInfo{"fmv.d.x", Format::kR, ExecClass::kFpAdd, true, false,
                        true, true, false, false, 0, false},
    /* kOut  */ OpInfo{"out", Format::kO, ExecClass::kIntAlu, true, false,
                       false, false, false, false, 0, false},
    /* kHalt */ OpInfo{"halt", Format::kN, ExecClass::kNone, false, false,
                       false, false, false, false, 0, false},
    /* kNop  */ OpInfo{"nop", Format::kN, ExecClass::kNone, false, false,
                       false, false, false, false, 0, false},
};

bool is_fp(Opcode op) {
  const OpInfo& info = op_info(op);
  return info.is_fp_rd || info.is_fp_rs1 || info.is_fp_rs2;
}

Opcode opcode_from_mnemonic(std::string_view mnemonic) {
  static const std::map<std::string_view, Opcode>* kByName = [] {
    auto* m = new std::map<std::string_view, Opcode>();
    for (usize i = 0; i < kOpcodeCount; ++i) {
      (*m)[kOpInfoTable[i].mnemonic] = static_cast<Opcode>(i);
    }
    return m;
  }();
  auto it = kByName->find(mnemonic);
  return it == kByName->end() ? Opcode::kCount : it->second;
}

}  // namespace reese::isa

#include "isa/encoding.h"

#include "common/bitutil.h"
#include "common/strutil.h"

namespace reese::isa {
namespace {

constexpr u32 field_a(u8 reg) { return static_cast<u32>(reg & 0x1F) << 19; }
constexpr u32 field_b(u8 reg) { return static_cast<u32>(reg & 0x1F) << 14; }
constexpr u32 field_c(u8 reg) { return static_cast<u32>(reg & 0x1F) << 9; }
constexpr u32 field_imm14(i64 imm) {
  return static_cast<u32>(static_cast<u64>(imm) & 0x3FFF);
}
constexpr u32 field_imm19(i64 imm) {
  return static_cast<u32>(static_cast<u64>(imm) & 0x7FFFF);
}

}  // namespace

Result<u32> encode(const Instruction& inst) {
  const OpInfo& info = inst.info();
  u32 word = static_cast<u32>(inst.op) << 24;

  const bool needs14 = info.format == Format::kI || info.format == Format::kL ||
                       info.format == Format::kS || info.format == Format::kB ||
                       info.format == Format::kJr;
  const bool needs19 = info.format == Format::kU || info.format == Format::kJ;
  if (needs14 && !fits_signed(inst.imm, kImm14Bits)) {
    return errorf("%s: immediate %lld out of 14-bit range",
                  std::string(info.mnemonic).c_str(),
                  static_cast<long long>(inst.imm));
  }
  if (needs19 && !fits_signed(inst.imm, kImm19Bits)) {
    return errorf("%s: immediate %lld out of 19-bit range",
                  std::string(info.mnemonic).c_str(),
                  static_cast<long long>(inst.imm));
  }

  switch (info.format) {
    case Format::kR:
      word |= field_a(inst.rd) | field_b(inst.rs1) | field_c(inst.rs2);
      break;
    case Format::kI:
    case Format::kL:
    case Format::kJr:
      word |= field_a(inst.rd) | field_b(inst.rs1) | field_imm14(inst.imm);
      break;
    case Format::kU:
    case Format::kJ:
      word |= field_a(inst.rd) | field_imm19(inst.imm);
      break;
    case Format::kS:
      word |= field_a(inst.rs2) | field_b(inst.rs1) | field_imm14(inst.imm);
      break;
    case Format::kB:
      word |= field_a(inst.rs1) | field_b(inst.rs2) | field_imm14(inst.imm);
      break;
    case Format::kO:
      word |= field_b(inst.rs1);
      break;
    case Format::kN:
      break;
  }
  return word;
}

Result<Instruction> decode(u32 word) {
  const u32 opcode_byte = word >> 24;
  if (opcode_byte >= kOpcodeCount) {
    return errorf("unknown opcode byte 0x%02X", opcode_byte);
  }
  Instruction inst;
  inst.op = static_cast<Opcode>(opcode_byte);
  const OpInfo& info = inst.info();

  const u8 a = static_cast<u8>(extract_bits(word, 19, 5));
  const u8 b = static_cast<u8>(extract_bits(word, 14, 5));
  const u8 c = static_cast<u8>(extract_bits(word, 9, 5));
  const i64 imm14 = sign_extend(extract_bits(word, 0, 14), kImm14Bits);
  const i64 imm19 = sign_extend(extract_bits(word, 0, 19), kImm19Bits);

  switch (info.format) {
    case Format::kR:
      inst.rd = a;
      inst.rs1 = b;
      inst.rs2 = c;
      break;
    case Format::kI:
    case Format::kL:
    case Format::kJr:
      inst.rd = a;
      inst.rs1 = b;
      inst.imm = imm14;
      break;
    case Format::kU:
    case Format::kJ:
      inst.rd = a;
      inst.imm = imm19;
      break;
    case Format::kS:
      inst.rs2 = a;
      inst.rs1 = b;
      inst.imm = imm14;
      break;
    case Format::kB:
      inst.rs1 = a;
      inst.rs2 = b;
      inst.imm = imm14;
      break;
    case Format::kO:
      inst.rs1 = b;
      break;
    case Format::kN:
      break;
  }
  return inst;
}

}  // namespace reese::isa

// Basic-block control-flow graph over a decoded SRV program image.
//
// Blocks are maximal straight-line instruction runs: a leader is the entry
// instruction, any target of an in-range branch/JAL, and any instruction
// following a control transfer. Edges:
//   * fall-through (not after an unconditional transfer or HALT),
//   * the static target of a conditional branch or JAL (when in-range),
//   * calls — JAL/JALR with rd != x0 — additionally get a call-returns
//     fall-through edge to the return site, so code after a call is
//     reachable even though the matching `ret` (an indirect JALR) has no
//     statically-known target. This makes the graph interprocedurally
//     conservative: liveness/definedness flow through both the callee entry
//     and the return site.
//   * plain JALR (rd == x0: `ret`/`jr`) gets NO successor edges — its
//     target is dynamic. Passes that need soundness around indirect jumps
//     check BasicBlock::has_indirect.
// Out-of-range targets produce no edge; the branch-target pass reports
// them, the CFG just records `has_wild_edge` on the block.
//
// This is the substrate every srv-lint pass runs on, and what future
// control-flow-signature detection schemes (CFCSS-style, see arXiv
// 2309.16876 in PAPERS.md) will be built on.
#pragma once

#include <vector>

#include "isa/program.h"

namespace reese::analysis {

struct BasicBlock {
  u32 index = 0;
  /// Instruction index range [first, last] into program.code (inclusive).
  usize first = 0;
  usize last = 0;
  std::vector<u32> succs;
  std::vector<u32> preds;
  bool has_halt = false;      ///< block's terminator is HALT
  bool has_indirect = false;  ///< block's terminator is JALR (dynamic target)
  bool is_call = false;       ///< terminator is JAL/JALR with rd != x0
  bool has_wild_edge = false; ///< a static target fell outside the text segment
  /// True when execution can run off program.end_pc() from this block (the
  /// last instruction of the program falls through).
  bool falls_off_end = false;

  usize size() const { return last - first + 1; }
};

/// True for calls whose callee the CFG cannot model: JALR with rd != x0
/// (indirect call). Direct JAL calls get a callee-entry edge so dataflow
/// sees the callee's code; an indirect callee is invisible, and passes must
/// assume it may read any register before control returns to the call's
/// fall-through successor.
inline bool is_opaque_call(const isa::Instruction& inst) {
  return inst.op == isa::Opcode::kJalr && inst.rd != isa::kZeroReg;
}

class Cfg {
 public:
  /// Builds the CFG; `program` must outlive the Cfg. Programs whose entry
  /// is outside the text segment get an empty block list (the lint passes
  /// report that separately).
  explicit Cfg(const isa::Program& program);

  const isa::Program& program() const { return *program_; }
  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  const BasicBlock& block(u32 index) const { return blocks_[index]; }
  usize block_count() const { return blocks_.size(); }

  /// Block containing instruction index `inst`.
  u32 block_of(usize inst) const { return block_of_[inst]; }
  /// Block whose first instruction is the program entry point.
  u32 entry_block() const { return entry_block_; }

  Addr pc_of(usize inst) const {
    return program_->code_base + 4 * static_cast<Addr>(inst);
  }
  const isa::Instruction& inst(usize index) const {
    return program_->code[index];
  }

  /// Blocks reachable from the entry block (bitmap indexed by block index).
  std::vector<bool> reachable() const;

  /// Reverse-postorder over reachable blocks — the canonical iteration
  /// order for forward dataflow problems.
  std::vector<u32> reverse_postorder() const;

 private:
  const isa::Program* program_;
  std::vector<BasicBlock> blocks_;
  std::vector<u32> block_of_;
  u32 entry_block_ = 0;
};

}  // namespace reese::analysis

// Generic worklist dataflow engine over the basic-block CFG.
//
// A problem supplies a per-block state type plus three operations:
//   boundary(block)       state at the entry (forward) / at an exit block
//                         (backward) — the block is passed so backward
//                         problems can distinguish HALT exits from indirect
//                         jumps whose continuation is unknown
//   top()                 the "no information yet" initial interior state
//   merge(a, b)           lattice meet at control-flow joins
//   transfer(block, in)   flow one block's instructions over the state
// The engine iterates blocks with a FIFO worklist until the per-block
// IN states stop changing and returns them; a pass then re-walks each
// block from its fixed-point IN state to anchor findings to instructions.
//
// States must be comparable (==) and cheap to copy; the passes use
// std::bitset register sets (use-before-def, liveness) and small constant
// vectors (the static address check). Termination is the problem author's
// responsibility: merge/transfer must be monotone over a finite lattice.
// The engine also hard-caps block processings as a backstop against a
// non-monotone problem. The cap is sized well above the true worst case
// for the register lattices used here (every block state can strictly
// change at most 64 times — one per bit / per register level — and each
// change re-enqueues at most the block's neighbours, so processings are
// bounded by ~129*blocks), which no well-formed problem exceeds.
#pragma once

#include <deque>
#include <vector>

#include "analysis/cfg.h"

namespace reese::analysis {

enum class Direction : u8 { kForward, kBackward };

/// Fixed-point IN states (forward: state before block.first; backward:
/// state after block.last), indexed by block.
template <typename Problem>
std::vector<typename Problem::State> solve_dataflow(const Cfg& cfg,
                                                    Direction direction,
                                                    const Problem& problem) {
  using State = typename Problem::State;
  const usize n = cfg.block_count();
  std::vector<State> in(n, problem.top());
  if (n == 0) return in;

  // Seed boundary states. Backward problems treat every exit block (halt,
  // fall-off-end, wild edge, or simply no successors) as a boundary.
  const bool forward = direction == Direction::kForward;
  auto edges_in = [&](const BasicBlock& b) -> const std::vector<u32>& {
    return forward ? b.preds : b.succs;
  };

  std::deque<u32> worklist;
  std::vector<bool> queued(n, false);
  auto enqueue = [&](u32 b) {
    if (!queued[b]) {
      queued[b] = true;
      worklist.push_back(b);
    }
  };
  for (u32 b = 0; b < n; ++b) enqueue(b);

  const usize max_iterations = 512 * n + 64;
  usize iterations = 0;
  while (!worklist.empty() && iterations++ < max_iterations) {
    const u32 b = worklist.front();
    worklist.pop_front();
    queued[b] = false;
    const BasicBlock& block = cfg.block(b);

    State merged = problem.top();
    const bool is_boundary =
        forward ? b == cfg.entry_block()
                : block.succs.empty() || block.has_halt ||
                      block.falls_off_end || block.has_wild_edge;
    if (is_boundary) merged = problem.boundary(block);
    for (u32 other : edges_in(block)) {
      merged = problem.merge(merged, problem.transfer(cfg.block(other),
                                                      in[other]));
    }
    if (merged == in[b]) continue;
    in[b] = merged;
    for (u32 other : forward ? block.succs : block.preds) enqueue(other);
  }
  return in;
}

}  // namespace reese::analysis

#include "analysis/cfg.h"

#include <algorithm>
#include <cassert>

namespace reese::analysis {

namespace {

/// Instruction index of `pc` if it addresses an instruction, else nullopt.
std::optional<usize> inst_index(const isa::Program& program, Addr pc) {
  if (!program.contains_pc(pc)) return std::nullopt;
  return static_cast<usize>((pc - program.code_base) / 4);
}

}  // namespace

Cfg::Cfg(const isa::Program& program) : program_(&program) {
  const usize n = program.code.size();
  block_of_.assign(n, 0);
  if (n == 0) return;

  // Pass 1: mark leaders.
  std::vector<bool> leader(n, false);
  leader[0] = true;
  if (auto entry = inst_index(program, program.entry)) leader[*entry] = true;
  for (usize i = 0; i < n; ++i) {
    const isa::Instruction& inst = program.code[i];
    const bool is_terminator =
        isa::is_control(inst.op) || inst.op == isa::Opcode::kHalt;
    if (!is_terminator) continue;
    if (i + 1 < n) leader[i + 1] = true;
    if (auto target = isa::static_target(inst, pc_of(i))) {
      if (auto t = inst_index(program, *target)) leader[*t] = true;
    }
  }

  // Pass 2: carve blocks.
  for (usize i = 0; i < n; ++i) {
    if (leader[i]) {
      BasicBlock block;
      block.index = static_cast<u32>(blocks_.size());
      block.first = i;
      blocks_.push_back(block);
    }
    BasicBlock& current = blocks_.back();
    current.last = i;
    block_of_[i] = current.index;
  }

  // Pass 3: edges, from each block's terminator.
  for (BasicBlock& block : blocks_) {
    const usize t = block.last;
    const isa::Instruction& term = program.code[t];
    block.has_halt = term.op == isa::Opcode::kHalt;
    block.has_indirect = term.op == isa::Opcode::kJalr;
    block.is_call = isa::is_jump(term.op) && term.rd != isa::kZeroReg;
    if (auto target = isa::static_target(term, pc_of(t))) {
      if (auto ti = inst_index(program, *target)) {
        block.succs.push_back(block_of_[*ti]);
      } else {
        block.has_wild_edge = true;
      }
    }
    // Fall-through: ordinary sequential flow, plus the call-returns edge
    // after JAL/JALR calls (rd != x0) — see the class comment.
    if (isa::falls_through(term.op) || block.is_call) {
      if (t + 1 < n) {
        block.succs.push_back(block_of_[t + 1]);
      } else {
        block.falls_off_end = true;
      }
    }
    // A conditional branch to the next instruction produces a duplicate
    // successor; keep edges unique.
    std::sort(block.succs.begin(), block.succs.end());
    block.succs.erase(std::unique(block.succs.begin(), block.succs.end()),
                      block.succs.end());
  }
  for (const BasicBlock& block : blocks_) {
    for (u32 succ : block.succs) blocks_[succ].preds.push_back(block.index);
  }

  if (auto entry = inst_index(program, program.entry)) {
    entry_block_ = block_of_[*entry];
  }
}

std::vector<bool> Cfg::reachable() const {
  std::vector<bool> seen(blocks_.size(), false);
  if (blocks_.empty()) return seen;
  std::vector<u32> stack = {entry_block_};
  seen[entry_block_] = true;
  while (!stack.empty()) {
    const u32 b = stack.back();
    stack.pop_back();
    for (u32 succ : blocks_[b].succs) {
      if (!seen[succ]) {
        seen[succ] = true;
        stack.push_back(succ);
      }
    }
  }
  return seen;
}

std::vector<u32> Cfg::reverse_postorder() const {
  std::vector<u32> order;
  if (blocks_.empty()) return order;
  order.reserve(blocks_.size());
  std::vector<u8> state(blocks_.size(), 0);  // 0=new 1=open 2=done
  // Iterative DFS with an explicit stack of (block, next-successor) frames.
  std::vector<std::pair<u32, usize>> stack = {{entry_block_, 0}};
  state[entry_block_] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    if (next < blocks_[b].succs.size()) {
      const u32 succ = blocks_[b].succs[next++];
      if (state[succ] == 0) {
        state[succ] = 1;
        stack.emplace_back(succ, 0);
      }
    } else {
      state[b] = 2;
      order.push_back(b);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace reese::analysis

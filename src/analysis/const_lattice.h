// The integer-constant lattice shared by the analysis passes.
//
// ConstVal is the classic three-level constant-propagation lattice
// (undef < const < nac) over integer registers; ConstProblem is its
// forward dataflow problem for the worklist engine. The static-mem lint
// pass uses it to resolve load/store effective addresses; the srv-vuln
// masking analysis (vuln.h) layers on top of it to sharpen demanded-bits
// through AND masks and constant shift amounts.
#pragma once

#include <optional>
#include <vector>

#include "analysis/dataflow.h"
#include "isa/executor.h"

namespace reese::analysis {

struct ConstVal {
  enum Kind : u8 { kUndef, kConst, kNac } kind = kUndef;
  u64 value = 0;

  bool operator==(const ConstVal&) const = default;
  static ConstVal undef() { return {}; }
  static ConstVal of(u64 v) { return {kConst, v}; }
  static ConstVal nac() { return {kNac, 0}; }
};

inline ConstVal merge_const(ConstVal a, ConstVal b) {
  if (a.kind == ConstVal::kUndef) return b;
  if (b.kind == ConstVal::kUndef) return a;
  if (a.kind == ConstVal::kConst && b.kind == ConstVal::kConst &&
      a.value == b.value) {
    return a;
  }
  return ConstVal::nac();
}

/// Integer-register constant state. FP values are not tracked (addresses
/// are integer arithmetic); any FP-sourced integer def is non-constant.
struct ConstState {
  std::vector<ConstVal> regs;  // kIntRegCount entries

  bool operator==(const ConstState&) const = default;
};

/// Flow one instruction over the constant state. Returns the effective
/// address when `inst` is a load/store with a statically-known base.
inline std::optional<Addr> eval_const(const isa::Instruction& inst, Addr pc,
                                      ConstState* s) {
  const isa::OpInfo& info = inst.info();
  auto get = [&](u8 index) -> ConstVal {
    return index == isa::kZeroReg ? ConstVal::of(0) : s->regs[index];
  };
  std::optional<Addr> ea;
  const bool rs1_const =
      !info.reads_rs1 || info.is_fp_rs1 || get(inst.rs1).kind == ConstVal::kConst;
  const bool rs2_const =
      !info.reads_rs2 || info.is_fp_rs2 || get(inst.rs2).kind == ConstVal::kConst;
  const bool int_inputs_known = rs1_const && rs2_const &&
                                !(info.reads_rs1 && info.is_fp_rs1) &&
                                !(info.reads_rs2 && info.is_fp_rs2);
  if (info.mem_bytes > 0 && !info.is_fp_rs1 &&
      get(inst.rs1).kind == ConstVal::kConst) {
    ea = isa::compute(inst, get(inst.rs1).value, 0, pc).addr;
  }
  if (info.writes_rd && !info.is_fp_rd) {
    ConstVal rd = ConstVal::nac();
    if (int_inputs_known && info.mem_bytes == 0) {
      // Pure computation (ALU / LUI / jump link value): reuse the single
      // definition of SRV semantics.
      const u64 a = info.reads_rs1 ? get(inst.rs1).value : 0;
      const u64 b = info.reads_rs2 ? get(inst.rs2).value : 0;
      rd = ConstVal::of(isa::compute(inst, a, b, pc).value);
    }
    if (inst.rd != isa::kZeroReg) s->regs[inst.rd] = rd;
  }
  return ea;
}

struct ConstProblem {
  using State = ConstState;
  const Cfg* cfg;

  State top() const {
    return State{std::vector<ConstVal>(isa::kIntRegCount, ConstVal::undef())};
  }
  State boundary(const BasicBlock&) const {
    State s{std::vector<ConstVal>(isa::kIntRegCount, ConstVal::nac())};
    s.regs[isa::kZeroReg] = ConstVal::of(0);
    return s;
  }
  State merge(const State& a, const State& b) const {
    State s = a;
    for (usize r = 0; r < isa::kIntRegCount; ++r) {
      s.regs[r] = merge_const(a.regs[r], b.regs[r]);
    }
    return s;
  }
  State transfer(const BasicBlock& block, State s) const {
    for (usize i = block.first; i <= block.last; ++i) {
      eval_const(cfg->inst(i), cfg->pc_of(i), &s);
    }
    return s;
  }
};

}  // namespace reese::analysis

#include "analysis/vuln.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>

#include "analysis/const_lattice.h"
#include "analysis/dataflow.h"
#include "common/diag.h"
#include "common/strutil.h"
#include "isa/instruction.h"

namespace reese::analysis {
namespace {

// --- loop nesting depth -----------------------------------------------------

/// Iterative Tarjan SCC restricted to `member` blocks; edges leaving the
/// member set are ignored. Writes scc ids for members into `scc_of` and
/// returns the scc count.
u32 subgraph_sccs(const std::vector<u32>& nodes,
                  const std::vector<std::vector<u32>>& adj,
                  const std::vector<char>& member, std::vector<u32>* scc_of) {
  constexpr u32 kUnvisited = ~u32{0};
  const usize n = adj.size();
  std::vector<u32> index(n, kUnvisited), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<u32> stack;
  u32 next_index = 0, sccs = 0;

  struct Frame {
    u32 block;
    usize next_succ;
  };
  for (u32 root : nodes) {
    if (index[root] != kUnvisited) continue;
    std::vector<Frame> frames = {{root, 0}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const u32 b = frame.block;
      if (frame.next_succ < adj[b].size()) {
        const u32 succ = adj[b][frame.next_succ++];
        if (!member[succ]) continue;
        if (index[succ] == kUnvisited) {
          index[succ] = lowlink[succ] = next_index++;
          stack.push_back(succ);
          on_stack[succ] = true;
          frames.push_back({succ, 0});
        } else if (on_stack[succ]) {
          lowlink[b] = std::min(lowlink[b], index[succ]);
        }
      } else {
        if (lowlink[b] == index[b]) {
          u32 m;
          do {
            m = stack.back();
            stack.pop_back();
            on_stack[m] = false;
            (*scc_of)[m] = sccs;
          } while (m != b);
          ++sccs;
        }
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().block] =
              std::min(lowlink[frames.back().block], lowlink[b]);
        }
      }
    }
  }
  return sccs;
}

bool has_edge(const std::vector<std::vector<u32>>& adj, u32 from, u32 to) {
  return std::find(adj[from].begin(), adj[from].end(), to) != adj[from].end();
}

}  // namespace

std::vector<u32> loop_depths(const Cfg& cfg) {
  const usize n = cfg.block_count();
  std::vector<u32> depth(n, 0);
  if (n == 0) return depth;
  const std::vector<bool> reach = cfg.reachable();

  // Mutable adjacency over the reachable subgraph; back edges get deleted
  // as loops are peeled, so each group is strictly simpler than its parent.
  std::vector<std::vector<u32>> adj(n);
  std::vector<u32> top_nodes;
  for (const BasicBlock& b : cfg.blocks()) {
    if (!reach[b.index]) continue;
    top_nodes.push_back(b.index);
    for (u32 s : b.succs) {
      if (reach[s]) adj[b.index].push_back(s);
    }
  }

  std::vector<std::vector<u32>> work;
  work.push_back(std::move(top_nodes));
  // Every pushed group removed >= 1 edge, so rounds are bounded by the edge
  // count; the guard is a backstop only.
  usize guard = 4 * n + 16;
  while (!work.empty() && guard-- > 0) {
    const std::vector<u32> nodes = std::move(work.back());
    work.pop_back();

    std::vector<char> member(n, 0);
    for (u32 v : nodes) member[v] = 1;
    std::vector<u32> scc_of(n, 0);
    const u32 count = subgraph_sccs(nodes, adj, member, &scc_of);

    std::vector<std::vector<u32>> groups(count);
    for (u32 v : nodes) groups[scc_of[v]].push_back(v);
    for (std::vector<u32>& g : groups) {
      const bool self_loop = g.size() == 1 && has_edge(adj, g[0], g[0]);
      if (g.size() < 2 && !self_loop) continue;  // not a loop
      for (u32 v : g) ++depth[v];

      // Loop header: the entry block if it is a member, else the member
      // with a predecessor outside the group (smallest pc on ties).
      std::vector<char> in_group(n, 0);
      for (u32 v : g) in_group[v] = 1;
      u32 header = g[0];
      bool found = false;
      std::sort(g.begin(), g.end());
      for (u32 v : g) {
        if (v == cfg.entry_block()) {
          header = v;
          found = true;
          break;
        }
        if (found) continue;
        for (u32 p : cfg.block(v).preds) {
          if (reach[p] && !in_group[p]) {
            header = v;
            found = true;
            break;
          }
        }
        if (found) break;
      }
      // Peel the loop: drop its back edges (edges into the header from
      // inside the group) and decompose the body for nested loops.
      for (u32 v : g) {
        std::erase(adj[v], header);
      }
      if (g.size() > 1) work.push_back(std::move(g));
    }
  }
  return depth;
}

double loop_frequency(u32 depth) {
  return std::pow(10.0, static_cast<double>(std::min(depth, kLoopDepthCap)));
}

// --- liveness-window interval analysis --------------------------------------

WindowInterval WindowInterval::hull(WindowInterval a, WindowInterval b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

namespace {

struct WindowState {
  std::array<WindowInterval, isa::kFlatRegCount> regs;

  bool operator==(const WindowState&) const = default;
};

u16 bump(u16 x) {
  return x == 0 ? u16{0} : std::min<u16>(static_cast<u16>(x + 1), kWindowCap);
}

/// Backward transfer of one instruction over the window state: `s` holds
/// per-register distances (from this point) to the last future read before
/// redefinition; the step rewrites it to hold distances from just before
/// `inst`. Applied endpoint-wise — every per-path distance map below is
/// monotone, so interval endpoints transform exactly.
void window_step(const isa::Instruction& inst, WindowState* s) {
  if (is_opaque_call(inst)) {
    // The unknown callee body runs between this call and its fall-through
    // successor and may read any register early.
    for (WindowInterval& w : s->regs) {
      w = WindowInterval::hull(w, WindowInterval::of(1, kUnknownWindow));
    }
  }
  const isa::DefUse du = isa::def_use(inst);
  auto is_used = [&](u8 flat) {
    for (u8 u = 0; u < du.use_count; ++u) {
      if (du.uses[u].flat() == flat) return true;
    }
    return false;
  };
  const bool has_def = du.def_count > 0;
  const u8 def_flat = has_def ? du.defs[0].flat() : 0;
  for (usize r = 0; r < isa::kFlatRegCount; ++r) {
    WindowInterval& w = s->regs[r];
    if (has_def && r == def_flat) {
      // The incoming value dies here; its last read is this instruction
      // itself (distance 1) when the def also reads it, else it is dead.
      const u16 d = is_used(def_flat) ? 1 : 0;
      w = WindowInterval::of(d, d);
    } else if (is_used(static_cast<u8>(r))) {
      if (w.empty()) continue;  // no path info yet; wait for it
      // Read here at distance 1, and possibly again later.
      w = WindowInterval::of(w.lo > 0 ? bump(w.lo) : 1,
                             w.hi > 0 ? bump(w.hi) : 1);
    } else if (!w.empty()) {
      // One instruction farther from the (unchanged) last read.
      w = WindowInterval::of(bump(w.lo), bump(w.hi));
    }
  }
}

struct WindowProblem {
  using State = WindowState;
  const Cfg* cfg;

  State top() const { return {}; }  // all empty (merge identity)
  State boundary(const BasicBlock& block) const {
    State s;
    // After HALT (or falling off the end) nothing is ever read again; an
    // unknown continuation may read anything within the assumed horizon.
    if (block.has_indirect || block.has_wild_edge) {
      s.regs.fill(WindowInterval::of(0, kUnknownWindow));
    } else {
      s.regs.fill(WindowInterval::of(0, 0));
    }
    return s;
  }
  State merge(const State& a, const State& b) const {
    State s;
    for (usize r = 0; r < isa::kFlatRegCount; ++r) {
      s.regs[r] = WindowInterval::hull(a.regs[r], b.regs[r]);
    }
    return s;
  }
  /// `s` is the window state AFTER the block; returns the state before it.
  State transfer(const BasicBlock& block, State s) const {
    for (usize i = block.last + 1; i-- > block.first;) {
      window_step(cfg->inst(i), &s);
    }
    return s;
  }
};

// --- demanded-bits (masking) analysis ---------------------------------------

struct DemandState {
  std::array<u64, isa::kFlatRegCount> regs{};

  bool operator==(const DemandState&) const = default;
};

/// Statically-known integer operand values at one instruction, from the
/// shared constant lattice; used to sharpen AND/OR masks and shifts.
struct OperandConsts {
  bool rs1_known = false;
  bool rs2_known = false;
  u64 rs1 = 0;
  u64 rs2 = 0;
};

std::vector<OperandConsts> operand_consts(const Cfg& cfg) {
  std::vector<OperandConsts> oc(cfg.program().code.size());
  const ConstProblem problem{&cfg};
  const auto in = solve_dataflow(cfg, Direction::kForward, problem);
  const std::vector<bool> reach = cfg.reachable();
  for (const BasicBlock& block : cfg.blocks()) {
    if (!reach[block.index]) continue;
    ConstState state = in[block.index];
    for (usize i = block.first; i <= block.last; ++i) {
      const isa::Instruction& inst = cfg.inst(i);
      const isa::OpInfo& info = inst.info();
      auto capture = [&](u8 index, bool fp, bool* known, u64* value) {
        if (fp) return;
        if (index == isa::kZeroReg) {
          *known = true;
          *value = 0;
        } else if (state.regs[index].kind == ConstVal::kConst) {
          *known = true;
          *value = state.regs[index].value;
        }
      };
      if (info.reads_rs1) {
        capture(inst.rs1, info.is_fp_rs1, &oc[i].rs1_known, &oc[i].rs1);
      }
      if (info.reads_rs2) {
        capture(inst.rs2, info.is_fp_rs2, &oc[i].rs2_known, &oc[i].rs2);
      }
      eval_const(inst, cfg.pc_of(i), &state);
    }
  }
  return oc;
}

/// Smear every set bit downward: bits 0..msb(d) — the carry/borrow cone of
/// addition-like ops.
u64 msb_fill(u64 d) {
  d |= d >> 1;
  d |= d >> 2;
  d |= d >> 4;
  d |= d >> 8;
  d |= d >> 16;
  d |= d >> 32;
  return d;
}

/// Demand mask on the stored value of a store opcode: only the written
/// bytes can ever be observed.
u64 store_value_mask(const isa::OpInfo& info) {
  return info.mem_bytes >= 8 ? ~0ull : (1ull << (8 * info.mem_bytes)) - 1;
}

/// Backward transfer of one instruction over the demanded-bits state.
void demand_step(const isa::Instruction& inst, const OperandConsts& oc,
                 DemandState* s) {
  using isa::Opcode;
  const isa::OpInfo& info = inst.info();
  const isa::DefUse du = isa::def_use(inst);

  u64 d_rd = 0;
  if (du.def_count > 0) {
    const isa::RegRef rd = du.defs[0];
    if (rd.fp || rd.index != isa::kZeroReg) {
      d_rd = s->regs[rd.flat()];
      s->regs[rd.flat()] = 0;
    }
  }

  // Operand demand masks. A pure value producer whose result is dead
  // demands nothing of its operands; otherwise per-op refinement,
  // defaulting to every bit.
  u64 m1 = ~0ull;
  u64 m2 = ~0ull;
  const bool pure =
      info.writes_rd && info.mem_bytes == 0 && !isa::is_control(inst.op);
  if (pure && d_rd == 0) {
    m1 = m2 = 0;
  } else if (pure) {
    constexpr u64 kSign = 1ull << 63;
    switch (inst.op) {
      case Opcode::kAnd:
        m1 = d_rd & (oc.rs2_known ? oc.rs2 : ~0ull);
        m2 = d_rd & (oc.rs1_known ? oc.rs1 : ~0ull);
        break;
      case Opcode::kAndi:
        m1 = d_rd & static_cast<u64>(inst.imm);
        break;
      case Opcode::kOr:
        // Where the other operand is a known 1, the output bit is forced.
        m1 = d_rd & ~(oc.rs2_known ? oc.rs2 : 0ull);
        m2 = d_rd & ~(oc.rs1_known ? oc.rs1 : 0ull);
        break;
      case Opcode::kOri:
        m1 = d_rd & ~static_cast<u64>(inst.imm);
        break;
      case Opcode::kXor:
      case Opcode::kXori:
        m1 = m2 = d_rd;
        break;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kAddi:
      case Opcode::kMul:
        // Carries/borrows/partial products propagate upward only.
        m1 = m2 = msb_fill(d_rd);
        break;
      case Opcode::kSlli:
        m1 = d_rd >> (inst.imm & 63);
        break;
      case Opcode::kSrli:
        m1 = d_rd << (inst.imm & 63);
        break;
      case Opcode::kSrai: {
        const u32 sh = static_cast<u32>(inst.imm & 63);
        m1 = d_rd << sh;
        if (sh > 0 && (d_rd >> (64 - sh)) != 0) m1 |= kSign;  // sign copies
        break;
      }
      case Opcode::kSll:
      case Opcode::kSrl:
      case Opcode::kSra:
        if (oc.rs2_known) {
          const u32 sh = static_cast<u32>(oc.rs2 & 63);
          if (inst.op == Opcode::kSll) {
            m1 = d_rd >> sh;
          } else {
            m1 = d_rd << sh;
            if (inst.op == Opcode::kSra && sh > 0 &&
                (d_rd >> (64 - sh)) != 0) {
              m1 |= kSign;
            }
          }
        }
        m2 = 0x3f;  // only the low 6 bits select the shift amount
        break;
      case Opcode::kSlt:
      case Opcode::kSltu:
      case Opcode::kSlti:
      case Opcode::kSltiu:
      case Opcode::kFeq:
      case Opcode::kFlt:
      case Opcode::kFle:
        // The result is 0 or 1; operands only matter through bit 0.
        m1 = m2 = (d_rd & 1) != 0 ? ~0ull : 0;
        break;
      default:
        break;  // loads, FP arithmetic, LUI, cvt/mv: every bit matters
    }
  } else if (isa::is_store(inst.op)) {
    m2 = store_value_mask(info);  // address bits (m1) always matter
  }

  auto add = [&](u8 index, bool fp, u64 mask) {
    if (!fp && index == isa::kZeroReg) return;
    s->regs[isa::RegRef{index, fp}.flat()] |= mask;
  };
  if (info.reads_rs1) add(inst.rs1, info.is_fp_rs1, m1);
  if (info.reads_rs2) add(inst.rs2, info.is_fp_rs2, m2);
  if (is_opaque_call(inst)) s->regs.fill(~0ull);  // unknown callee
}

struct DemandProblem {
  using State = DemandState;
  const Cfg* cfg;
  const std::vector<OperandConsts>* consts;

  State top() const { return {}; }  // nothing demanded (merge identity)
  State boundary(const BasicBlock& block) const {
    State s;
    if (block.has_indirect || block.has_wild_edge) s.regs.fill(~0ull);
    return s;
  }
  State merge(const State& a, const State& b) const {
    State s;
    for (usize r = 0; r < isa::kFlatRegCount; ++r) {
      s.regs[r] = a.regs[r] | b.regs[r];
    }
    return s;
  }
  State transfer(const BasicBlock& block, State s) const {
    for (usize i = block.last + 1; i-- > block.first;) {
      demand_step(cfg->inst(i), (*consts)[i], &s);
    }
    return s;
  }
};

}  // namespace

// --- report assembly --------------------------------------------------------

std::string_view mask_class_name(MaskClass mask_class) {
  switch (mask_class) {
    case MaskClass::kDead: return "dead";
    case MaskClass::kPartial: return "partial";
    case MaskClass::kLive: return "live";
  }
  return "?";
}

double InstVuln::demanded_fraction() const {
  return static_cast<double>(std::popcount(demanded)) / 64.0;
}

VulnReport analyze_vulnerability(const Cfg& cfg) {
  const isa::Program& program = cfg.program();
  const usize n = program.code.size();

  VulnReport report;
  report.instructions.resize(n);
  for (usize i = 0; i < n; ++i) {
    InstVuln& rec = report.instructions[i];
    rec.index = i;
    rec.pc = cfg.pc_of(i);
    rec.text = isa::disassemble(program.code[i]);
  }

  if (cfg.block_count() > 0) {
    const std::vector<u32> depths = loop_depths(cfg);
    const std::vector<bool> reach = cfg.reachable();
    const std::vector<OperandConsts> oc = operand_consts(cfg);
    const WindowProblem window_problem{&cfg};
    const auto window_out =
        solve_dataflow(cfg, Direction::kBackward, window_problem);
    const DemandProblem demand_problem{&cfg, &oc};
    const auto demand_out =
        solve_dataflow(cfg, Direction::kBackward, demand_problem);

    for (const BasicBlock& block : cfg.blocks()) {
      if (!reach[block.index]) continue;
      const u32 depth = depths[block.index];
      const double freq = loop_frequency(depth);
      WindowState ws = window_out[block.index];
      DemandState ds = demand_out[block.index];
      for (usize i = block.last + 1; i-- > block.first;) {
        const isa::Instruction& inst = cfg.inst(i);
        const isa::OpInfo& info = inst.info();
        InstVuln& rec = report.instructions[i];
        rec.reachable = true;
        rec.depth = depth;
        rec.freq = freq;
        if (info.writes_rd) {
          const isa::RegRef rd{inst.rd, info.is_fp_rd};
          if (rd.fp || rd.index != isa::kZeroReg) {
            // The produced value's window/demand is the state just after
            // this instruction — the current re-walk state.
            rec.window = ws.regs[rd.flat()];
            rec.demanded = ds.regs[rd.flat()];
          }  // else: x0 write, a deliberate discard — stays dead
        } else if (isa::is_store(inst.op)) {
          // The stored value is consumed by the commit-time cache write.
          rec.window = WindowInterval::of(1, 1);
          rec.demanded = store_value_mask(info);
        } else if (isa::is_cond_branch(inst.op) || inst.op == isa::Opcode::kOut) {
          // Branch outcome / output-hash operand: consumed immediately.
          rec.window = WindowInterval::of(1, 1);
          rec.demanded = ~0ull;
        }
        // else HALT/NOP: nothing produced — stays dead.

        if (!rec.window.empty() && rec.window.hi > 0 && rec.demanded != 0) {
          rec.mask_class = std::popcount(rec.demanded) == 64
                               ? MaskClass::kLive
                               : MaskClass::kPartial;
        }
        rec.ace_score = rec.freq * rec.window.expected();
        rec.score = rec.ace_score * rec.demanded_fraction();

        window_step(inst, &ws);
        demand_step(inst, oc[i], &ds);
      }
    }
  }

  report.ranking.resize(n);
  for (usize i = 0; i < n; ++i) report.ranking[i] = i;
  std::stable_sort(report.ranking.begin(), report.ranking.end(),
                   [&](usize a, usize b) {
                     const InstVuln& va = report.instructions[a];
                     const InstVuln& vb = report.instructions[b];
                     if (va.score != vb.score) return va.score > vb.score;
                     return va.pc < vb.pc;
                   });
  return report;
}

VulnReport analyze_vulnerability(const isa::Program& program) {
  const Cfg cfg(program);
  return analyze_vulnerability(cfg);
}

std::string VulnReport::table(std::string_view source, usize top) const {
  const usize limit =
      top == 0 ? ranking.size() : std::min(top, ranking.size());
  std::string out = format(
      "srv-vuln: %.*s: %zu instruction(s), showing top %zu by score\n"
      "rank        pc      score  depth  window  class    bits  inst\n",
      static_cast<int>(source.size()), source.data(), instructions.size(),
      limit);
  for (usize r = 0; r < limit; ++r) {
    const InstVuln& v = instructions[ranking[r]];
    const std::string window =
        v.window.empty() ? std::string("-")
                         : format("[%u,%u]", v.window.lo, v.window.hi);
    out += format("%4zu  0x%06llx  %9.3g  %5u  %6s  %-7s  %4d  %s\n", r + 1,
                  static_cast<unsigned long long>(v.pc), v.score, v.depth,
                  window.c_str(),
                  std::string(mask_class_name(v.mask_class)).c_str(),
                  std::popcount(v.demanded), v.text.c_str());
  }
  return out;
}

std::string VulnReport::json(std::string_view source) const {
  std::string out = format(
      "{\n"
      "  \"schema\": \"reese-avf-v1\",\n"
      "  \"kind\": \"static\",\n"
      "  \"source\": \"%s\",\n"
      "  \"instruction_count\": %zu,\n"
      "  \"instructions\": [",
      json_escape(source).c_str(), instructions.size());
  for (usize i = 0; i < instructions.size(); ++i) {
    const InstVuln& v = instructions[i];
    out += format(
        "%s\n    {\"pc\": %llu, \"inst\": \"%s\", \"reachable\": %s, "
        "\"depth\": %u, \"freq\": %.9g, \"window_lo\": %d, \"window_hi\": %d, "
        "\"window_expected\": %.9g, \"demanded_mask\": \"0x%016llx\", "
        "\"demanded_bits\": %d, \"mask_class\": \"%s\", "
        "\"ace_score\": %.9g, \"score\": %.9g}",
        i == 0 ? "" : ",", static_cast<unsigned long long>(v.pc),
        json_escape(v.text).c_str(), v.reachable ? "true" : "false", v.depth,
        v.freq, v.window.empty() ? -1 : static_cast<int>(v.window.lo),
        v.window.empty() ? -1 : static_cast<int>(v.window.hi),
        v.window.expected(),
        static_cast<unsigned long long>(v.demanded),
        std::popcount(v.demanded),
        std::string(mask_class_name(v.mask_class)).c_str(), v.ace_score,
        v.score);
  }
  out += format(
      "\n  ],\n"
      "  \"ranking\": [");
  for (usize r = 0; r < ranking.size(); ++r) {
    out += format("%s%llu", r == 0 ? "" : ", ",
                  static_cast<unsigned long long>(instructions[ranking[r]].pc));
  }
  out += "]\n}\n";
  return out;
}

}  // namespace reese::analysis

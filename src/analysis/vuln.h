// srv-vuln: static AVF/vulnerability analysis over SRV programs.
//
// A soft error in a produced value matters only if the corrupted bits can
// reach architectural state — the ACE argument (Mukherjee et al.; see
// PAPERS.md). This pass family predicts, per static instruction, how
// exposed its produced value is, using three ingredients on the existing
// CFG/dataflow substrate:
//
//   1. liveness window — a backward interval analysis computing, for the
//      value produced at each instruction, bounds [lo, hi] on the number
//      of instructions until its last consuming read (0 = dead / masked,
//      i.e. overwritten or program exit before any read). The longer a
//      value stays live, the longer a flipped bit survives to be consumed.
//   2. masking — a backward demanded-bits analysis (layered on the
//      constant lattice from const_lattice.h) computing which result bits
//      any downstream consumer can actually observe: AND masks, constant
//      shift amounts, narrow stores and single-bit compares all derate
//      high bits.
//   3. execution frequency — loop nesting depth from recursive SCC
//      decomposition of the CFG; a block at depth d is weighted 10^d
//      (capped), the classic static profile estimate.
//
// The per-instruction score is
//     score = freq(block) * E[window] * popcount(demanded)/64
// and `ace_score` is the same without the masking factor — that is the
// quantity bench/avf_validate cross-checks against measured per-PC fault
// outcomes from the injection campaign (schema reese-avf-v1).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/cfg.h"

namespace reese::analysis {

/// Saturating cap on liveness-window interval endpoints (instructions).
inline constexpr u16 kWindowCap = 64;
/// Assumed read horizon past an unknown continuation (indirect jump, wild
/// edge, opaque call): the value may be read up to this many instructions
/// later, but we cannot see where.
inline constexpr u16 kUnknownWindow = 8;
/// Loop depth cap for the 10^depth frequency estimate.
inline constexpr u32 kLoopDepthCap = 6;

/// Per-block loop nesting depth (0 = straight-line code), from recursive
/// SCC decomposition over the reachable subgraph: every non-trivial SCC
/// adds one level to its members, then its back edges into the loop header
/// are removed and the body is decomposed again for inner loops.
/// Unreachable blocks get depth 0.
std::vector<u32> loop_depths(const Cfg& cfg);

/// Estimated relative execution frequency at nesting depth `depth`:
/// 10^min(depth, kLoopDepthCap).
double loop_frequency(u32 depth);

/// Interval over liveness-window lengths. Default-constructed is empty
/// (bottom — no path information); [0,0] means definitely dead.
struct WindowInterval {
  u16 lo = 1;
  u16 hi = 0;

  bool empty() const { return lo > hi; }
  double expected() const { return empty() ? 0.0 : (lo + hi) / 2.0; }
  bool operator==(const WindowInterval&) const = default;

  static WindowInterval of(u16 lo, u16 hi) { return {lo, hi}; }
  /// Interval hull; empty is the identity.
  static WindowInterval hull(WindowInterval a, WindowInterval b);
};

/// Masking classification of one produced value.
enum class MaskClass : u8 {
  kDead,     ///< never consumed (dead result, x0 write, unreachable)
  kPartial,  ///< consumed, but some bits are derated (masked/narrowed)
  kLive,     ///< all 64 bits reach some consumer on some path
};

/// "dead" / "partial" / "live".
std::string_view mask_class_name(MaskClass mask_class);

/// Static vulnerability record for one instruction.
struct InstVuln {
  usize index = 0;      ///< instruction index into program.code
  Addr pc = 0;
  std::string text;     ///< disassembly
  bool reachable = false;
  u32 depth = 0;        ///< loop nesting depth of the containing block
  double freq = 1.0;    ///< loop_frequency(depth)
  WindowInterval window;///< static ACE window of the produced value
  u64 demanded = 0;     ///< result bits any consumer can observe
  MaskClass mask_class = MaskClass::kDead;
  double ace_score = 0; ///< freq * window.expected()
  double score = 0;     ///< ace_score * popcount(demanded)/64

  double demanded_fraction() const;
};

struct VulnReport {
  /// One record per instruction, in program order.
  std::vector<InstVuln> instructions;
  /// Indices into `instructions`, most vulnerable first (score desc,
  /// pc asc on ties).
  std::vector<usize> ranking;

  /// Human-readable ranking table; `top` = 0 prints every instruction.
  std::string table(std::string_view source, usize top = 0) const;
  /// reese-avf-v1 static report (see DESIGN.md §13).
  std::string json(std::string_view source) const;
};

/// Run the full analysis (loop depths + liveness window + demanded bits)
/// over a prebuilt CFG / a program (building the CFG internally).
VulnReport analyze_vulnerability(const Cfg& cfg);
VulnReport analyze_vulnerability(const isa::Program& program);

}  // namespace reese::analysis

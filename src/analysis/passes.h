// The srv-lint pass registry.
//
// Each pass walks the CFG (plus dataflow fixed points where needed) and
// appends structured Diagnostics. Registered passes:
//
//   name            severity  finding
//   --------------  --------  -------------------------------------------
//   branch-target   error     branch/JAL target outside the text segment
//                             or mid-instruction; control falling off the
//                             end of the text segment; bad entry point
//   static-mem      error/    statically-known load/store address that is
//                   warning   misaligned (error) or outside any plausible
//                             data region (error below text, warning for
//                             text-segment or no-man's-land hits)
//   use-before-def  warning   register read on some path before any
//                             definition reaches it
//   unreachable     warning   basic block unreachable from the entry point
//   dead-store      warning   register written but never read afterwards
//                             (overwritten or program exits first)
//   no-exit-loop    warning   loop (CFG cycle) with no exit edge, HALT, or
//                             indirect jump that could leave it
//
// Error-severity findings are what `--prelint` refuses to run; warnings are
// advisory (several workloads intentionally loop forever, for instance).
#pragma once

#include <string_view>
#include <vector>

#include "analysis/cfg.h"
#include "common/diag.h"

namespace reese::analysis {

using PassFn = void (*)(const Cfg& cfg, std::vector<Diagnostic>* out);

struct PassInfo {
  std::string_view name;
  std::string_view description;
  PassFn run;
};

/// Every registered pass, in canonical execution order.
const std::vector<PassInfo>& all_passes();

/// Lookup by registry name; nullptr if unknown.
const PassInfo* find_pass(std::string_view name);

struct LintOptions {
  /// Drop findings below this severity.
  Severity min_severity = Severity::kNote;
  /// Run only these passes (registry names); empty = all. Unknown names
  /// are ignored here — CLI-level validation happens in srv-lint.
  std::vector<std::string> passes;
};

/// Run the selected passes over a prebuilt CFG / a program (building the
/// CFG internally). Diagnostics come back sorted by pc, then pass name.
std::vector<Diagnostic> run_lint(const Cfg& cfg, const LintOptions& options = {});
std::vector<Diagnostic> run_lint(const isa::Program& program,
                                 const LintOptions& options = {});

}  // namespace reese::analysis

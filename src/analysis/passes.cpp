#include "analysis/passes.h"

#include <algorithm>
#include <bitset>

#include "analysis/const_lattice.h"
#include "analysis/dataflow.h"
#include "common/strutil.h"
#include "isa/executor.h"

namespace reese::analysis {
namespace {

using RegSet = std::bitset<isa::kFlatRegCount>;

std::string reg_name(isa::RegRef reg) {
  return std::string(isa::flat_reg_name(reg.flat()));
}

void emit(std::vector<Diagnostic>* out, Severity severity, Addr pc,
          std::string_view pass, std::string message) {
  out->push_back(Diagnostic{severity, pc, std::string(pass),
                            std::move(message)});
}

// --- branch-target: wild/misaligned control transfers -----------------------

void pass_branch_target(const Cfg& cfg, std::vector<Diagnostic>* out) {
  constexpr std::string_view kPass = "branch-target";
  const isa::Program& program = cfg.program();
  if (!program.contains_pc(program.entry)) {
    emit(out, Severity::kError, program.entry, kPass,
         format("entry point 0x%llx is outside the text segment "
                "[0x%llx, 0x%llx)",
                static_cast<unsigned long long>(program.entry),
                static_cast<unsigned long long>(program.code_base),
                static_cast<unsigned long long>(program.end_pc())));
  }
  for (usize i = 0; i < program.code.size(); ++i) {
    const Addr pc = cfg.pc_of(i);
    const auto target = isa::static_target(program.code[i], pc);
    if (!target || program.contains_pc(*target)) continue;
    const bool inside =
        *target >= program.code_base && *target < program.end_pc();
    emit(out, Severity::kError, pc, kPass,
         format("%s target 0x%llx %s",
                std::string(program.code[i].info().mnemonic).c_str(),
                static_cast<unsigned long long>(*target),
                inside ? "is mid-instruction (not 4-byte aligned)"
                       : "is outside the text segment"));
  }
  for (const BasicBlock& block : cfg.blocks()) {
    if (block.falls_off_end) {
      emit(out, Severity::kError, cfg.pc_of(block.last), kPass,
           "control falls off the end of the text segment "
           "(no HALT or transfer)");
    }
  }
}

// --- use-before-def: forward must-analysis of definitely-assigned regs -----

struct DefinedProblem {
  using State = RegSet;
  const Cfg* cfg;

  State top() const { return State().set(); }  // all defined (merge identity)
  State boundary(const BasicBlock&) const {
    // At entry only x0 (hardwired), sp and gp (set up by the loader/ISS)
    // carry meaningful values; everything else is formally unassigned.
    State s;
    s.set(isa::RegRef{isa::kZeroReg, false}.flat());
    s.set(isa::RegRef{isa::kSpReg, false}.flat());
    s.set(isa::RegRef{isa::kGpReg, false}.flat());
    return s;
  }
  State merge(const State& a, const State& b) const { return a & b; }
  State transfer(const BasicBlock& block, State s) const {
    for (usize i = block.first; i <= block.last; ++i) {
      const isa::DefUse du = isa::def_use(cfg->inst(i));
      for (u8 d = 0; d < du.def_count; ++d) s.set(du.defs[d].flat());
    }
    return s;
  }
};

void pass_use_before_def(const Cfg& cfg, std::vector<Diagnostic>* out) {
  constexpr std::string_view kPass = "use-before-def";
  const DefinedProblem problem{&cfg};
  const auto in = solve_dataflow(cfg, Direction::kForward, problem);
  const std::vector<bool> reach = cfg.reachable();
  for (const BasicBlock& block : cfg.blocks()) {
    if (!reach[block.index]) continue;  // reported by `unreachable` instead
    RegSet defined = in[block.index];
    for (usize i = block.first; i <= block.last; ++i) {
      const isa::DefUse du = isa::def_use(cfg.inst(i));
      for (u8 u = 0; u < du.use_count; ++u) {
        const isa::RegRef reg = du.uses[u];
        if (!reg.fp && reg.index == isa::kZeroReg) continue;
        if (!defined.test(reg.flat())) {
          emit(out, Severity::kWarning, cfg.pc_of(i), kPass,
               format("register %s may be read before any definition "
                      "reaches this instruction",
                      reg_name(reg).c_str()));
        }
      }
      for (u8 d = 0; d < du.def_count; ++d) defined.set(du.defs[d].flat());
    }
  }
}

// --- unreachable: blocks with no path from the entry point -----------------

void pass_unreachable(const Cfg& cfg, std::vector<Diagnostic>* out) {
  constexpr std::string_view kPass = "unreachable";
  const std::vector<bool> reach = cfg.reachable();
  for (const BasicBlock& block : cfg.blocks()) {
    if (reach[block.index]) continue;
    emit(out, Severity::kWarning, cfg.pc_of(block.first), kPass,
         format("basic block of %zu instruction(s) is unreachable from the "
                "entry point",
                block.size()));
  }
}

// --- static-mem: constant-propagated load/store address checks -------------
// (lattice + transfer live in const_lattice.h, shared with the vuln passes)

void pass_static_mem(const Cfg& cfg, std::vector<Diagnostic>* out) {
  constexpr std::string_view kPass = "static-mem";
  const isa::Program& program = cfg.program();
  const ConstProblem problem{&cfg};
  const auto in = solve_dataflow(cfg, Direction::kForward, problem);
  const std::vector<bool> reach = cfg.reachable();
  for (const BasicBlock& block : cfg.blocks()) {
    if (!reach[block.index]) continue;
    ConstState state = in[block.index];
    // Unvisited (top) states can only appear on unreachable blocks, which
    // are skipped above; reachable INs are fully merged.
    for (usize i = block.first; i <= block.last; ++i) {
      const isa::Instruction& inst = cfg.inst(i);
      const std::optional<Addr> ea = eval_const(inst, cfg.pc_of(i), &state);
      if (!ea) continue;
      const u8 bytes = inst.info().mem_bytes;
      const Addr addr = *ea;
      const Addr pc = cfg.pc_of(i);
      const std::string mnemonic(inst.info().mnemonic);
      if (bytes > 1 && addr % bytes != 0) {
        emit(out, Severity::kError, pc, kPass,
             format("%s accesses 0x%llx, misaligned for a %u-byte access",
                    mnemonic.c_str(), static_cast<unsigned long long>(addr),
                    bytes));
      }
      if (static_cast<i64>(addr) < 0 || addr + bytes <= program.code_base) {
        emit(out, Severity::kError, pc, kPass,
             format("%s accesses 0x%llx, below the program image (wild or "
                    "null-like address)",
                    mnemonic.c_str(), static_cast<unsigned long long>(addr)));
      } else if (addr < program.end_pc() && addr + bytes > program.code_base) {
        emit(out, Severity::kWarning, pc, kPass,
             format("%s accesses 0x%llx inside the text segment",
                    mnemonic.c_str(), static_cast<unsigned long long>(addr)));
      } else if (addr + bytes > isa::kDefaultStackTop &&
                 program.data_base < isa::kDefaultStackTop) {
        emit(out, Severity::kWarning, pc, kPass,
             format("%s accesses 0x%llx above the stack top 0x%llx",
                    mnemonic.c_str(), static_cast<unsigned long long>(addr),
                    static_cast<unsigned long long>(
                        Addr{isa::kDefaultStackTop})));
      }
    }
  }
}

// --- dead-store: backward liveness ------------------------------------------

struct LivenessProblem {
  using State = RegSet;
  const Cfg* cfg;

  State top() const { return State(); }  // nothing live (merge identity)
  State boundary(const BasicBlock& block) const {
    // After HALT (or running off the end) nothing is live. After an
    // indirect jump or a wild edge the continuation is unknown, so every
    // register must be assumed live.
    if (block.has_indirect || block.has_wild_edge) return State().set();
    return State();
  }
  State merge(const State& a, const State& b) const { return a | b; }
  /// `s` is the live set AFTER the block; returns the live set before it.
  State transfer(const BasicBlock& block, State s) const {
    for (usize i = block.last + 1; i-- > block.first;) {
      const isa::Instruction& inst = cfg->inst(i);
      // An opaque call runs an unknown callee before control reaches the
      // fall-through successor: every register may be read by the callee.
      if (is_opaque_call(inst)) s.set();
      const isa::DefUse du = isa::def_use(inst);
      for (u8 d = 0; d < du.def_count; ++d) s.reset(du.defs[d].flat());
      for (u8 u = 0; u < du.use_count; ++u) s.set(du.uses[u].flat());
    }
    return s;
  }
};

void pass_dead_store(const Cfg& cfg, std::vector<Diagnostic>* out) {
  constexpr std::string_view kPass = "dead-store";
  const LivenessProblem problem{&cfg};
  const auto out_state = solve_dataflow(cfg, Direction::kBackward, problem);
  const std::vector<bool> reach = cfg.reachable();
  // Walk each block backward from its fixed-point OUT state; report in
  // program order afterwards (run_lint sorts by pc).
  for (const BasicBlock& block : cfg.blocks()) {
    if (!reach[block.index]) continue;
    RegSet live = out_state[block.index];
    for (usize i = block.last + 1; i-- > block.first;) {
      if (is_opaque_call(cfg.inst(i))) live.set();
      const isa::DefUse du = isa::def_use(cfg.inst(i));
      for (u8 d = 0; d < du.def_count; ++d) {
        const isa::RegRef reg = du.defs[d];
        // Writes to x0 are deliberate discards (plain `j` is jal x0, ...).
        if (!reg.fp && reg.index == isa::kZeroReg) continue;
        if (!live.test(reg.flat())) {
          emit(out, Severity::kWarning, cfg.pc_of(i), kPass,
               format("value written to %s is never read (dead store)",
                      reg_name(reg).c_str()));
        }
        live.reset(reg.flat());
      }
      for (u8 u = 0; u < du.use_count; ++u) live.set(du.uses[u].flat());
    }
  }
}

// --- no-exit-loop: CFG cycles that can never leave --------------------------

/// Iterative Tarjan SCC. Returns the SCC id of every block.
std::vector<u32> strongly_connected_components(const Cfg& cfg, u32* scc_count) {
  const usize n = cfg.block_count();
  constexpr u32 kUnvisited = ~u32{0};
  std::vector<u32> index(n, kUnvisited), lowlink(n, 0), scc(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<u32> stack;
  u32 next_index = 0, sccs = 0;

  struct Frame {
    u32 block;
    usize next_succ;
  };
  for (u32 root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    std::vector<Frame> frames = {{root, 0}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const u32 b = frame.block;
      if (frame.next_succ < cfg.block(b).succs.size()) {
        const u32 succ = cfg.block(b).succs[frame.next_succ++];
        if (index[succ] == kUnvisited) {
          index[succ] = lowlink[succ] = next_index++;
          stack.push_back(succ);
          on_stack[succ] = true;
          frames.push_back({succ, 0});
        } else if (on_stack[succ]) {
          lowlink[b] = std::min(lowlink[b], index[succ]);
        }
      } else {
        if (lowlink[b] == index[b]) {
          u32 member;
          do {
            member = stack.back();
            stack.pop_back();
            on_stack[member] = false;
            scc[member] = sccs;
          } while (member != b);
          ++sccs;
        }
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().block] =
              std::min(lowlink[frames.back().block], lowlink[b]);
        }
      }
    }
  }
  *scc_count = sccs;
  return scc;
}

void pass_no_exit_loop(const Cfg& cfg, std::vector<Diagnostic>* out) {
  constexpr std::string_view kPass = "no-exit-loop";
  if (cfg.block_count() == 0) return;
  u32 scc_count = 0;
  const std::vector<u32> scc = strongly_connected_components(cfg, &scc_count);

  struct SccInfo {
    usize blocks = 0;
    bool has_self_edge = false;
    bool can_leave = false;  // exit edge, halt, indirect, or wild edge
    usize first_inst = ~usize{0};
  };
  std::vector<SccInfo> info(scc_count);
  for (const BasicBlock& block : cfg.blocks()) {
    SccInfo& s = info[scc[block.index]];
    ++s.blocks;
    s.first_inst = std::min(s.first_inst, block.first);
    if (block.has_halt || block.has_indirect || block.has_wild_edge ||
        block.falls_off_end) {
      s.can_leave = true;
    }
    for (u32 succ : block.succs) {
      if (scc[succ] != scc[block.index]) s.can_leave = true;
      if (succ == block.index) s.has_self_edge = true;
    }
  }
  for (const SccInfo& s : info) {
    // A single block with no self-edge is not a loop.
    if (s.blocks == 1 && !s.has_self_edge) continue;
    if (s.can_leave) continue;
    emit(out, Severity::kWarning, cfg.pc_of(s.first_inst), kPass,
         format("loop of %zu basic block(s) has no exit edge or HALT "
                "(runs forever)",
                s.blocks));
  }
}

// --- registry ---------------------------------------------------------------

const std::vector<PassInfo> kPasses = {
    {"branch-target",
     "control transfers that leave the text segment or split instructions",
     pass_branch_target},
    {"static-mem",
     "misaligned or out-of-image memory accesses at statically-known "
     "addresses",
     pass_static_mem},
    {"use-before-def", "registers read before any definition reaches them",
     pass_use_before_def},
    {"unreachable", "basic blocks with no path from the entry point",
     pass_unreachable},
    {"dead-store", "register writes whose value is never read",
     pass_dead_store},
    {"no-exit-loop", "CFG cycles with no exit edge, HALT, or indirect jump",
     pass_no_exit_loop},
};

}  // namespace

const std::vector<PassInfo>& all_passes() { return kPasses; }

const PassInfo* find_pass(std::string_view name) {
  for (const PassInfo& pass : kPasses) {
    if (pass.name == name) return &pass;
  }
  return nullptr;
}

std::vector<Diagnostic> run_lint(const Cfg& cfg, const LintOptions& options) {
  std::vector<Diagnostic> diags;
  for (const PassInfo& pass : kPasses) {
    if (!options.passes.empty() &&
        std::find(options.passes.begin(), options.passes.end(), pass.name) ==
            options.passes.end()) {
      continue;
    }
    pass.run(cfg, &diags);
  }
  std::erase_if(diags, [&](const Diagnostic& d) {
    return static_cast<u8>(d.severity) < static_cast<u8>(options.min_severity);
  });
  std::stable_sort(diags.begin(), diags.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.pc != b.pc) return a.pc < b.pc;
                     return a.pass < b.pass;
                   });
  return diags;
}

std::vector<Diagnostic> run_lint(const isa::Program& program,
                                 const LintOptions& options) {
  const Cfg cfg(program);
  return run_lint(cfg, options);
}

}  // namespace reese::analysis

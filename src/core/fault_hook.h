// Interface between the pipeline and the fault-injection framework.
//
// The pipeline asks the hook, once per instruction leaving the RUU toward
// commit, whether to corrupt that instruction's stored P result or its
// recomputed R result; it reports back whether the REESE comparator caught
// the corruption. Keeping this as an interface lets src/core stay
// independent of src/faults.
//
// Injection is *measurement-only*: the architectural (functional) state is
// never corrupted, so a campaign can measure coverage and detection latency
// on a live workload without needing architectural rollback. See DESIGN.md.
#pragma once

#include "common/types.h"
#include "isa/instruction.h"

namespace reese::core {

struct FaultDecision {
  bool flip_p = false;   ///< corrupt the stored P-stream result copy
  bool flip_r = false;   ///< corrupt the R-stream recomputation result
  unsigned bit = 0;      ///< which bit of the 64-bit value to flip
};

/// Which microarchitectural structure a fault campaign targets. kResult is
/// the classic result-flipping model (an upset in a functional unit's output
/// latch, delivered through on_instruction); every other site names a
/// storage structure struck through the per-cycle on_site_cycle poll.
/// DESIGN.md §16 documents the per-site injection and outcome semantics.
enum class FaultSite : u8 {
  kResult = 0,  ///< instruction-result flips (the legacy injector model)
  kRuu,         ///< an RUU entry's stored result field
  kRQueue,      ///< an R-stream Queue slot — REESE's own checker state
  kLsq,         ///< an LSQ entry's effective-address field
  kPredictor,   ///< a gshare pattern-table counter bit
  kBtb,         ///< a BTB entry's target field
  kDCache,      ///< a D-L1 line (poisoned until consumed or evicted)
  kDTlb,        ///< a data-TLB translation entry (same poison model)
};

inline constexpr usize kFaultSiteCount = 8;

inline const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kResult:    return "result";
    case FaultSite::kRuu:       return "ruu";
    case FaultSite::kRQueue:    return "rqueue";
    case FaultSite::kLsq:       return "lsq";
    case FaultSite::kPredictor: return "predictor";
    case FaultSite::kBtb:       return "btb";
    case FaultSite::kDCache:    return "dcache";
    case FaultSite::kDTlb:      return "dtlb";
  }
  return "?";
}

/// How one site strike ended. Every strike resolves to exactly one outcome:
///   kMasked   — the corrupted state was never architecturally consumed
///               (empty slot, squashed entry, overwritten/evicted line, dead
///               value, or timing-only state like predictor bits);
///   kDetected — a comparator mismatch fired and charged the recovery
///               penalty (including false-positive detections of checker
///               self-faults);
///   kSdc      — the corruption reached architecturally-visible state with
///               no detection: silent data corruption.
enum class FaultOutcome : u8 { kMasked, kDetected, kSdc };

inline const char* fault_outcome_name(FaultOutcome outcome) {
  switch (outcome) {
    case FaultOutcome::kMasked:   return "masked";
    case FaultOutcome::kDetected: return "detected";
    case FaultOutcome::kSdc:      return "sdc";
  }
  return "?";
}

/// One per-cycle injection decision for a component site. `cell` selects the
/// struck slot/line (reduced modulo the structure size by the pipeline),
/// `bit` the flipped bit, and `field` which stored field of a multi-field
/// entry is hit — keeping all randomness in the hook keeps the pipeline
/// deterministic and the hook testable.
struct SiteStrike {
  bool strike = false;
  u64 cell = 0;
  unsigned bit = 0;
  u64 field = 0;
};

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Called when instruction `seq` leaves the out-of-order window on its
  /// way to commit (REESE: R-queue entry creation; baseline: commit). `pc`
  /// is the instruction's program counter, so the hook can attribute
  /// outcomes to static instructions. Baseline commit and REESE R-queue
  /// creation call this in program order for EVERY instruction (faulted or
  /// not), which lets a hook observe the committed value stream — the
  /// Franklin scheme calls in completion order instead (documented
  /// approximation for stream-order consumers).
  virtual FaultDecision on_instruction(InstSeq seq, Cycle now, Addr pc,
                                       const isa::Instruction& inst) = 0;

  /// The comparator flagged a mismatch for a faulted instruction.
  virtual void on_detected(InstSeq seq, Cycle injected_at,
                           Cycle detected_at) = 0;

  /// A faulted instruction committed without any comparison catching it
  /// (baseline processor, or a non-re-executed instruction in partial mode).
  virtual void on_undetected(InstSeq seq) = 0;

  // ---- Component-site campaign interface (all optional) -------------------
  //
  // A hook that returns a site other than kResult switches the pipeline into
  // component-strike mode: once per cycle it polls on_site_cycle and, on a
  // strike, corrupts the named structure. Every strike is later resolved to
  // exactly one FaultOutcome via on_site_outcome. The default implementations
  // keep legacy result-flipping hooks working unchanged.

  /// Which structure this hook targets. kResult (the default) keeps the
  /// classic on_instruction result-flipping path; anything else enables the
  /// per-cycle site poll.
  virtual FaultSite site() const { return FaultSite::kResult; }

  /// Polled once per cycle (top of Pipeline::cycle) when site() != kResult.
  virtual SiteStrike on_site_cycle(Cycle now) {
    (void)now;
    return {};
  }

  /// A site strike resolved. `pc` attributes the outcome to the static
  /// instruction that owned (or consumed) the corrupted state; it is 0 when
  /// no instruction is attributable (empty slot, evicted line, ...).
  virtual void on_site_outcome(FaultOutcome outcome, Addr pc,
                               Cycle injected_at, Cycle resolved_at) {
    (void)outcome;
    (void)pc;
    (void)injected_at;
    (void)resolved_at;
  }

  /// An R-queue self-fault killed a pending re-execution: the instruction
  /// will commit unchecked. The strike itself still resolves (as masked —
  /// architectural state is untouched); this counter quantifies the silent
  /// coverage loss.
  virtual void on_checker_loss() {}
};

}  // namespace reese::core

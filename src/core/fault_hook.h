// Interface between the pipeline and the fault-injection framework.
//
// The pipeline asks the hook, once per instruction leaving the RUU toward
// commit, whether to corrupt that instruction's stored P result or its
// recomputed R result; it reports back whether the REESE comparator caught
// the corruption. Keeping this as an interface lets src/core stay
// independent of src/faults.
//
// Injection is *measurement-only*: the architectural (functional) state is
// never corrupted, so a campaign can measure coverage and detection latency
// on a live workload without needing architectural rollback. See DESIGN.md.
#pragma once

#include "common/types.h"
#include "isa/instruction.h"

namespace reese::core {

struct FaultDecision {
  bool flip_p = false;   ///< corrupt the stored P-stream result copy
  bool flip_r = false;   ///< corrupt the R-stream recomputation result
  unsigned bit = 0;      ///< which bit of the 64-bit value to flip
};

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Called when instruction `seq` leaves the out-of-order window on its
  /// way to commit (REESE: R-queue entry creation; baseline: commit). `pc`
  /// is the instruction's program counter, so the hook can attribute
  /// outcomes to static instructions. Baseline commit and REESE R-queue
  /// creation call this in program order for EVERY instruction (faulted or
  /// not), which lets a hook observe the committed value stream — the
  /// Franklin scheme calls in completion order instead (documented
  /// approximation for stream-order consumers).
  virtual FaultDecision on_instruction(InstSeq seq, Cycle now, Addr pc,
                                       const isa::Instruction& inst) = 0;

  /// The comparator flagged a mismatch for a faulted instruction.
  virtual void on_detected(InstSeq seq, Cycle injected_at,
                           Cycle detected_at) = 0;

  /// A faulted instruction committed without any comparison catching it
  /// (baseline processor, or a non-re-executed instruction in partial mode).
  virtual void on_undetected(InstSeq seq) = 0;
};

}  // namespace reese::core

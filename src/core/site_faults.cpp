// Component-targeted fault injection (DESIGN.md §16).
//
// When the installed FaultHook targets a FaultSite other than kResult, the
// pipeline polls it once per cycle and, on a strike, corrupts the named
// microarchitectural structure: an RUU entry's stored result, an R-stream
// Queue slot (REESE's own checker state), an LSQ effective address,
// predictor/BTB bits, or a D-L1/D-TLB line via the poison model in mem/.
// Every strike later resolves to exactly one masked/detected/SDC outcome,
// reported back through FaultHook::on_site_outcome with the static PC that
// owned (or consumed) the corrupted state — the root-cause attribution the
// component-AVF campaigns aggregate.
//
// Resolution points live where the corrupted state dies:
//   * squash (recover_from_mispredict)      -> masked
//   * baseline commit (commit_head_baseline) -> SDC if the value is
//     architecturally live, else masked
//   * REESE commit (reese_commit)           -> detected on mismatch; an
//     escape is SDC for datapath state and masked for checker-only state
//   * cache/TLB poison consumption/eviction  -> drained after data accesses
// Strikes still unresolved at the end of a run (in-flight queue entries,
// un-touched poisoned lines) are finalized as masked by the injector.
#include <cassert>

#include "common/bitutil.h"
#include "core/pipeline.h"

namespace reese::core {

void Pipeline::poll_site_fault() {
  const SiteStrike strike = fault_hook_->on_site_cycle(now_);
  if (!strike.strike) return;
  switch (fault_site_) {
    case FaultSite::kResult:    break;  // poll not armed for kResult
    case FaultSite::kRuu:       strike_ruu(strike); break;
    case FaultSite::kRQueue:    strike_rqueue(strike); break;
    case FaultSite::kLsq:       strike_lsq(strike); break;
    case FaultSite::kPredictor: strike_predictor(strike); break;
    case FaultSite::kBtb:       strike_btb(strike); break;
    case FaultSite::kDCache:    strike_dcache(strike); break;
    case FaultSite::kDTlb:      strike_dtlb(strike); break;
  }
}

void Pipeline::report_site_outcome(FaultOutcome outcome, Addr pc,
                                   Cycle injected_at) {
  fault_hook_->on_site_outcome(outcome, pc, injected_at, now_);
}

void Pipeline::strike_ruu(const SiteStrike& strike) {
  // Strike a physical RUU slot, occupied or not — the structure's
  // vulnerability includes its empty entries, exactly like a hardware
  // campaign hitting a random flop.
  const u32 slot_index = static_cast<u32>(strike.cell % config_.ruu_size);
  RuuEntry& entry = ruu_[slot_index];
  if (!entry.valid) {
    report_site_outcome(FaultOutcome::kMasked, 0, now_);
    return;
  }
  if (entry.released || entry.site_faulted) {
    // Released entries are dead copies (the R-queue owns the live state);
    // a second strike on an already-struck entry adds nothing.
    report_site_outcome(FaultOutcome::kMasked, entry.pc, now_);
    return;
  }
  // Flip a bit of the stored result. Functional execution happened at
  // dispatch, so this is measurement-only for consumers — it corrupts what
  // commit (baseline) or the release-to-R-queue copy (REESE) will see.
  entry.result = flip_bit(entry.result, strike.bit & 63);
  entry.site_faulted = true;
  entry.site_fault_cycle = now_;
}

void Pipeline::strike_rqueue(const SiteStrike& strike) {
  // The headline experiment: the fault lands in REESE's own checker. The
  // strike picks a physical queue slot; hitting an empty one is masked (the
  // queue's vulnerability scales with its occupancy).
  const usize index = static_cast<usize>(strike.cell % rqueue_.capacity());
  if (index >= rqueue_.size()) {
    report_site_outcome(FaultOutcome::kMasked, 0, now_);
    return;
  }
  REntry& entry = rqueue_.at(index);
  if (entry.site_faulted || entry.checker_faulted) {
    report_site_outcome(FaultOutcome::kMasked, entry.pc, now_);
    return;
  }
  entry.fault_cycle = now_;
  switch (strike.field % 4) {
    case 0:
      // The stored result. In hardware this is the value that will be
      // committed to architectural state: an upset caught by a pending
      // comparison is a (correct) detection; one that lands after the
      // comparison — or on a 1-of-k slot that skips re-execution — commits
      // silently (SDC).
      entry.p_result = flip_bit(entry.p_result, strike.bit & 63);
      entry.site_faulted = true;
      break;
    case 1:
      // Stored operand copies feed only the re-execution: a corrupt operand
      // makes the recomputation disagree with a *correct* result — a
      // false-positive detection that charges the recovery penalty. If the
      // operand is never consumed, the upset is masked.
      entry.rs1_value = flip_bit(entry.rs1_value, strike.bit & 63);
      entry.checker_faulted = true;
      break;
    case 2:
      entry.rs2_value = flip_bit(entry.rs2_value, strike.bit & 63);
      entry.checker_faulted = true;
      break;
    case 3:
      // Control-state upset: kill the re-execute flag. The instruction
      // commits its (correct) value unchecked — architecturally masked,
      // but REESE silently lost coverage for it. on_checker_loss()
      // quantifies that window.
      entry.checker_faulted = true;
      if (entry.needs_reexec && !entry.issued) {
        entry.needs_reexec = false;
        fault_hook_->on_checker_loss();
      }
      break;
  }
}

void Pipeline::strike_lsq(const SiteStrike& strike) {
  const u32 position = static_cast<u32>(strike.cell % config_.lsq_size);
  if (position >= lsq_count_) {
    report_site_outcome(FaultOutcome::kMasked, 0, now_);
    return;
  }
  RuuEntry& entry = ruu_[lsq_[lsq_index_at(position)]];
  assert(entry.valid && (entry.is_load() || entry.is_store()));
  if (entry.released || entry.site_faulted) {
    report_site_outcome(FaultOutcome::kMasked, entry.pc, now_);
    return;
  }
  // Flip a bit of the effective address. Loaded/stored *values* stay
  // functional (captured at dispatch), but the corrupted address perturbs
  // cache timing and LSQ ordering for real, reaches the baseline's commit
  // write, and is what REESE's address comparison (aux_diff) checks.
  entry.mem_addr = flip_bit(entry.mem_addr, strike.bit & 63);
  entry.site_faulted = true;
  entry.site_fault_cycle = now_;
}

void Pipeline::strike_predictor(const SiteStrike& strike) {
  // Predictor state is architecturally dead by construction — a flipped
  // pattern counter can only cost a misprediction. The flip is applied for
  // real (the timing perturbation is genuine) and the strike resolves
  // masked immediately: this is the campaign's AVF≈0 ground-truth control.
  if (gshare_ != nullptr) {
    gshare_->flip_counter_bit(strike.cell, strike.bit);
  }
  report_site_outcome(FaultOutcome::kMasked, 0, now_);
}

void Pipeline::strike_btb(const SiteStrike& strike) {
  // Same architecturally-dead contract as the direction predictor: a
  // corrupt BTB target mispredicts, dispatch computes the true target and
  // recovers. (Invalid-entry strikes don't even perturb timing.)
  btb_.flip_target_bit(strike.cell, strike.bit);
  report_site_outcome(FaultOutcome::kMasked, 0, now_);
}

void Pipeline::strike_dcache(const SiteStrike& strike) {
  if (!hierarchy_->dl1().poison_random_line(strike.cell)) {
    report_site_outcome(FaultOutcome::kMasked, 0, now_);
    return;
  }
  mem_poison_pending_.push_back(now_);
}

void Pipeline::strike_dtlb(const SiteStrike& strike) {
  if (!hierarchy_->dtlb().poison_random_entry(strike.cell)) {
    report_site_outcome(FaultOutcome::kMasked, 0, now_);
    return;
  }
  mem_poison_pending_.push_back(now_);
}

void Pipeline::drain_mem_site_events(Addr pc, bool architectural) {
  u32 consumed = 0;
  u32 cleared = 0;
  if (fault_site_ == FaultSite::kDCache) {
    consumed = hierarchy_->dl1().take_poison_consumed();
    cleared = hierarchy_->dl1().take_poison_cleared();
  } else {
    consumed = hierarchy_->dtlb().take_poison_consumed();
    cleared = hierarchy_->dtlb().take_poison_cleared();
  }
  if (consumed == 0 && cleared == 0) return;

  const auto pop_injected_at = [this]() {
    // Poison strikes resolve roughly in injection order; the FIFO gives a
    // deterministic injected_at for the latency measurement.
    if (mem_poison_pending_.empty()) return now_;
    const Cycle injected_at = mem_poison_pending_.front();
    mem_poison_pending_.erase(mem_poison_pending_.begin());
    return injected_at;
  };
  for (u32 i = 0; i < consumed; ++i) {
    // The access that just ran read corrupt data (or translated through a
    // corrupt entry). Both the P access and REESE's R re-access read the
    // SAME corrupted structure, so the comparator sees agreeing copies:
    // REESE is blind here, and an architectural consumer means SDC. A
    // wrong-path consumer squashes — masked.
    report_site_outcome(
        architectural ? FaultOutcome::kSdc : FaultOutcome::kMasked, pc,
        pop_injected_at());
  }
  for (u32 i = 0; i < cleared; ++i) {
    // Overwritten or evicted before any read: the corruption left the
    // structure unconsumed.
    report_site_outcome(FaultOutcome::kMasked, 0, pop_injected_at());
  }
}

}  // namespace reese::core

// REESE-specific pipeline stages: release (RUU -> R-stream Queue), R-stream
// issue into leftover capacity, comparison at R writeback, and the final
// in-order commit from the queue head.
#include <algorithm>
#include <cassert>

#include "common/bitutil.h"
#include "core/pipeline.h"

namespace reese::core {

using isa::ExecClass;
using isa::Opcode;

bool Pipeline::reese_priority() const {
  // §4.3: counters watch the R-queue occupancy; when it runs hot, redundant
  // instructions must be scheduled ahead of primary ones or the queue fills
  // and blocks the whole pipeline. The percentage threshold is folded into
  // an entry count at construction so the per-cycle check is one compare.
  return rqueue_.size() >= rpriority_min_count_;
}

void Pipeline::reese_release() {
  u32 released = 0;
  u32 position = 0;
  while (released < config_.commit_width && position < ruu_count_) {
    const u32 slot_index = ruu_index_at(position);
    RuuEntry& entry = ruu_[slot_index];
    if (entry.released) {
      ++position;
      continue;
    }
    if (!entry.completed) break;
    assert(!entry.spec && "speculative instruction reached the RUU head");
    if (rqueue_.full()) {
      ++stats_.rqueue_full_stall_cycles;
      break;
    }

    REntry& redundant = rqueue_.push_slot();
    redundant.inst = entry.inst;
    redundant.pc = entry.pc;
    redundant.seq = entry.seq;
    redundant.rs1_value = entry.rs1_value;
    redundant.rs2_value = entry.rs2_value;
    redundant.p_result = entry.result;
    redundant.r_base_value = entry.result;  // loads: the reload's value
    redundant.mem_addr = entry.mem_addr;
    redundant.p_taken = entry.taken;
    redundant.p_next = entry.actual_next;
    redundant.p_issue_cycle = entry.issue_cycle;
    redundant.p_complete_cycle = entry.complete_cycle;
    redundant.holds_ruu_slot = !config_.reese.early_release;

    // Partial re-execution (§7 future work): re-execute 1 of every k. The
    // counter rotates in [0, k) so the common k=1 case never divides.
    const u32 k = std::max<u32>(1, config_.reese.reexec_interval);
    redundant.needs_reexec = reexec_counter_ == 0;
    if (++reexec_counter_ >= k) reexec_counter_ = 0;

    if (entry.site_faulted) {
      // A component strike (RUU result or LSQ address) travels with the
      // instruction into the checker. The flipped result seeded BOTH
      // p_result and r_base_value above — so for loads the comparator sees
      // two agreeing corrupt copies (REESE's load-data blind spot), while
      // recomputed classes mismatch and detect.
      entry.site_faulted = false;
      redundant.site_faulted = true;
      redundant.fault_cycle = entry.site_fault_cycle;
    }

    if (fault_hook_ != nullptr) {
      const FaultDecision decision =
          fault_hook_->on_instruction(entry.seq, now_, entry.pc, entry.inst);
      if (decision.flip_p || decision.flip_r) {
        redundant.faulted = true;
        redundant.fault_bit = decision.bit % 64;
        redundant.fault_cycle = now_;
        ++stats_.faults_injected;
        if (decision.flip_p) {
          redundant.p_result = flip_bit(redundant.p_result, redundant.fault_bit);
        }
        redundant.flip_r = decision.flip_r;
      }
    }

    ++stats_.rqueue_enqueued;
    trace(TraceKind::kRelease, redundant.seq, redundant.pc, redundant.inst,
          false);

    if (config_.reese.early_release) {
      assert(position == 0 &&
             "early release must drain contiguously from the head");
      free_ruu_head();
      // Head moved; position 0 is the next entry.
    } else {
      entry.released = true;
      ++position;
    }
    ++released;
  }
}

void Pipeline::reese_issue(u32* budget) {
  // Strict FIFO issue: scan from the head, skip entries already in flight
  // or not selected for re-execution, stop at the first entry that cannot
  // issue this cycle. `issued` and `needs_reexec` never revert while an
  // entry is queued, so the settled head prefix only grows until popped;
  // r_issue_next_id_ remembers the first candidate so the scan does not
  // re-skip the prefix every cycle.
  const usize queue_size = rqueue_.size();
  if (queue_size == 0) return;
  const u64 front_id = rqueue_.front().id;
  if (r_issue_next_id_ < front_id) r_issue_next_id_ = front_id;
  for (usize index = static_cast<usize>(r_issue_next_id_ - front_id);
       index < queue_size && *budget > 0; ++index) {
    REntry& entry = rqueue_.at(index);
    if (!entry.needs_reexec || entry.issued) {
      r_issue_next_id_ += entry.id == r_issue_next_id_ ? 1 : 0;
      continue;
    }

    if (config_.reese.min_separation > 0 &&
        now_ < entry.p_complete_cycle + config_.reese.min_separation) {
      break;  // §2: enforce a minimum P->R separation when configured
    }

    // An R instruction needs a scheduler-window slot while it executes.
    // The head R instruction may always proceed (the comparator stage has
    // a dedicated staging latch), which guarantees forward progress when
    // the window is packed with P entries and the R-queue is full.
    if (config_.reese.window_sharing &&
        ruu_count_ + r_inflight_ >= config_.ruu_size && r_inflight_ > 0) {
      break;
    }

    const ExecClass exec_class = entry.inst.info().exec_class;
    const u32 r_occupancy = std::max<u32>(1, config_.reese.r_fu_occupancy);
    Cycle complete_at = 0;
    if (exec_class == ExecClass::kLoad) {
      // R-stream loads recompute the effective address on an integer ALU
      // and re-access the D-cache through a memory port (§4.4: the P-stream
      // access brought the line in, so the access almost always hits).
      if (!fu_pool_.try_acquire(FuKind::kMemPort, now_, 1)) break;
      complete_at = now_ + hierarchy_->data_access(entry.mem_addr, false);
      if (mem_site_armed()) drain_mem_site_events(entry.pc, true);
    } else if (exec_class == ExecClass::kStore) {
      // Stores re-verify their effective address and value through the
      // memory pipeline (AGU + store-buffer check) or a plain ALU; the
      // single architectural cache write happens at commit.
      const FuKind unit = config_.reese.r_store_uses_port ? FuKind::kMemPort
                                                          : FuKind::kIntAlu;
      if (!fu_pool_.try_acquire(unit, now_, 1)) break;
      complete_at = now_ + 1;
    } else if (exec_class == ExecClass::kNone) {
      complete_at = now_ + 1;
    } else {
      OpTiming timing = op_timing(exec_class, config_);
      // The comparator staging cost applies to the single-cycle ALU paths;
      // long-latency units already have output buffering.
      if (timing.fu == FuKind::kIntAlu || timing.fu == FuKind::kFpAlu) {
        timing.issue_latency = std::max(timing.issue_latency, r_occupancy);
      }
      if (!fu_pool_.try_acquire(timing.fu, now_, timing.issue_latency)) break;
      complete_at = now_ + timing.result_latency;
    }

    entry.issued = true;
    r_issue_next_id_ += entry.id == r_issue_next_id_ ? 1 : 0;
    entry.r_issue_cycle = now_;
    trace(TraceKind::kRIssue, entry.seq, entry.pc, entry.inst, false);
    if (config_.reese.window_sharing) ++r_inflight_;
    stats_.separation.add(now_ - entry.p_issue_cycle);
    schedule_r_event(complete_at, entry.id);
    ++stats_.issued_r;
    --*budget;
  }
}

Pipeline::ReexecOutcome Pipeline::recompute_and_compare(
    const isa::Instruction& inst, Addr pc, u64 rs1_value, u64 rs2_value,
    Addr mem_addr, Addr p_next, u64 p_result, u64 load_value, bool flip_r,
    unsigned fault_bit) const {
  // Re-run the computation from the stored operands — the same semantics
  // function the P stream used, as in hardware where it is the same ALU.
  // The comparator is branch-free: each path accumulates a difference word
  // (XOR of the recomputed and stored values) instead of testing and
  // short-circuiting, and a single final test decides mismatch. This keeps
  // the per-comparison work a straight dependency chain the branch
  // predictor never sees.
  u64 r_value = 0;
  u64 aux_diff = 0;
  const isa::OpInfo& info = inst.info();
  if (info.exec_class == ExecClass::kLoad) {
    // The reload returns the same architecturally-correct value the P load
    // saw (all older stores have committed; younger ones have not).
    r_value = load_value;
    const isa::ComputeOut out = isa::compute(inst, rs1_value, rs2_value, pc);
    aux_diff = out.addr ^ mem_addr;
  } else {
    const isa::ComputeOut out = isa::compute(inst, rs1_value, rs2_value, pc);
    if (info.exec_class == ExecClass::kStore) {
      r_value = out.value;
      aux_diff = out.addr ^ mem_addr;
    } else if (isa::is_cond_branch(inst.op)) {
      r_value = out.taken ? 1 : 0;
      // Not-taken branches carry no target to verify; the all-ones/all-zeros
      // mask zeroes the target term without a second branch.
      aux_diff = (out.target ^ p_next) & (0 - static_cast<u64>(out.taken));
    } else if (isa::is_jump(inst.op)) {
      r_value = out.value;  // link value
      aux_diff = out.target ^ p_next;
    } else if (inst.op == Opcode::kOut) {
      r_value = rs1_value;
    } else {
      r_value = out.value;
    }
  }

  if (flip_r) r_value = flip_bit(r_value, fault_bit);
  const u64 diff = (r_value ^ p_result) | aux_diff;
  return ReexecOutcome{r_value, diff != 0};
}

void Pipeline::reese_complete(u64 entry_id) {
  REntry& entry = rqueue_.by_id(entry_id);
  assert(entry.issued && !entry.completed);

  const ReexecOutcome outcome = recompute_and_compare(
      entry.inst, entry.pc, entry.rs1_value, entry.rs2_value, entry.mem_addr,
      entry.p_next, entry.p_result, entry.r_base_value, entry.flip_r,
      entry.fault_bit);
  entry.r_result = outcome.value;
  entry.mismatch = outcome.mismatch;
  entry.completed = true;
  trace(TraceKind::kRComplete, entry.seq, entry.pc, entry.inst, false);
  // The R instruction holds its scheduler-window slot through the
  // writeback and comparison stages before it is recycled.
  if (config_.reese.window_sharing) {
    r_release_at_.schedule(now_ + config_.reese.compare_stage_cycles, now_, 1u);
  }
  ++stats_.committed_r;
  ++stats_.comparisons;
}

void Pipeline::reese_commit() {
  // Stats deltas accumulate locally and post once per commit group, not per
  // instruction, so the hot loop touches only the queue and the entry.
  u32 group = 0;
  u32 skipped = 0;
  while (group < config_.commit_width && !rqueue_.empty()) {
    REntry& entry = rqueue_.front();
    if (entry.needs_reexec && !entry.completed) break;

    if (isa::is_store(entry.inst.op)) {
      // The single architectural memory write (delayed past comparison,
      // §4.3: "results may not be committed into memory before they have
      // been compared").
      if (!fu_pool_.try_acquire(FuKind::kMemPort, now_, 1)) break;
      hierarchy_->data_access(entry.mem_addr, true);
      if (mem_site_armed()) drain_mem_site_events(entry.pc, true);
    }

    if (entry.mismatch) {
      // Soft error detected. The pipeline and R-queue are flushed and the
      // faulting instruction refetched; we charge that as a fetch freeze
      // (see DESIGN.md — architectural state is never actually corrupted,
      // so the re-execution is not replayed).
      ++stats_.errors_detected;
      trace(TraceKind::kError, entry.seq, entry.pc, entry.inst, false);
      fetch_stall_until_ = std::max(
          fetch_stall_until_, now_ + config_.reese.error_recovery_penalty);
      if (entry.faulted && fault_hook_ != nullptr) {
        fault_hook_->on_detected(entry.seq, entry.fault_cycle, now_);
        stats_.detection_latency.add(now_ - entry.fault_cycle);
      }
    } else if (entry.faulted && fault_hook_ != nullptr) {
      // A fault was injected but no comparison caught it (partial mode
      // skip, or the flip landed on a value the comparator never sees).
      ++stats_.faults_undetected;
      fault_hook_->on_undetected(entry.seq);
    }

    if (entry.site_faulted || entry.checker_faulted) {
      // Component-strike resolution (DESIGN.md §16): a mismatch is a
      // detection (including false positives from corrupted checker
      // state); an escaped datapath corruption (site_faulted) commits as
      // SDC; an escaped checker-only corruption leaves architectural
      // state correct — masked.
      const FaultOutcome outcome = entry.mismatch ? FaultOutcome::kDetected
                                   : entry.site_faulted
                                       ? FaultOutcome::kSdc
                                       : FaultOutcome::kMasked;
      report_site_outcome(outcome, entry.pc, entry.fault_cycle);
    }

    skipped += entry.needs_reexec ? 0 : 1;
    if (entry.holds_ruu_slot) free_ruu_head();
    if (entry.inst.op == Opcode::kHalt) halted_ = true;
    trace(TraceKind::kCommit, entry.seq, entry.pc, entry.inst, false);
    rqueue_.pop_front();
    ++group;
    if (halted_) break;
  }
  stats_.committed += group;
  stats_.rskipped += skipped;
}

}  // namespace reese::core

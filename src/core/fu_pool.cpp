#include "core/fu_pool.h"

#include <cassert>

#include "common/snapshot.h"
#include "common/stats.h"

namespace reese::core {

const char* fu_kind_name(FuKind kind) {
  switch (kind) {
    case FuKind::kIntAlu: return "int-alu";
    case FuKind::kIntMult: return "int-mult";
    case FuKind::kFpAlu: return "fp-alu";
    case FuKind::kFpMult: return "fp-mult";
    case FuKind::kMemPort: return "mem-port";
    case FuKind::kCount: break;
  }
  return "?";
}

FuPool::FuPool(const CoreConfig& config) {
  auto init = [this](FuKind kind, u32 count) {
    next_free_[static_cast<usize>(kind)].assign(count, 0);
  };
  init(FuKind::kIntAlu, config.int_alu_count);
  init(FuKind::kIntMult, config.int_mult_count);
  init(FuKind::kFpAlu, config.fp_alu_count);
  init(FuKind::kFpMult, config.fp_mult_count);
  init(FuKind::kMemPort, config.mem_port_count);
}

double FuPool::utilization(FuKind kind, Cycle cycles) const {
  const usize index = static_cast<usize>(kind);
  if (next_free_[index].empty() || cycles == 0) return 0.0;
  return safe_ratio(ops_issued_[index],
                    cycles * next_free_[index].size());
}

void FuPool::save(SnapshotWriter* writer) const {
  for (usize kind = 0; kind < kFuKindCount; ++kind) {
    writer->put_u64(next_free_[kind].size());
    for (Cycle next_free : next_free_[kind]) writer->put_u64(next_free);
    writer->put_u64(ops_issued_[kind]);
  }
}

void FuPool::load(SnapshotReader* reader) {
  for (usize kind = 0; kind < kFuKindCount; ++kind) {
    const u64 unit_count = reader->get_u64();
    if (!reader->ok()) return;
    if (unit_count != next_free_[kind].size()) {
      reader->fail("functional-unit count mismatch (snapshot built with a "
                   "different configuration)");
      return;
    }
    for (Cycle& next_free : next_free_[kind]) next_free = reader->get_u64();
    ops_issued_[kind] = reader->get_u64();
  }
}

}  // namespace reese::core

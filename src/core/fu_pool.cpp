#include "core/fu_pool.h"

#include <cassert>

#include "common/stats.h"

namespace reese::core {

const char* fu_kind_name(FuKind kind) {
  switch (kind) {
    case FuKind::kIntAlu: return "int-alu";
    case FuKind::kIntMult: return "int-mult";
    case FuKind::kFpAlu: return "fp-alu";
    case FuKind::kFpMult: return "fp-mult";
    case FuKind::kMemPort: return "mem-port";
    case FuKind::kCount: break;
  }
  return "?";
}

OpTiming op_timing(isa::ExecClass exec_class, const CoreConfig& config) {
  using isa::ExecClass;
  switch (exec_class) {
    case ExecClass::kIntAlu:
      return {FuKind::kIntAlu, 1, 1};
    case ExecClass::kIntMul:
      return {FuKind::kIntMult, config.int_mul_latency, 1};
    case ExecClass::kIntDiv:
      return {FuKind::kIntMult, config.int_div_latency,
              config.int_div_latency};
    case ExecClass::kFpAdd:
      return {FuKind::kFpAlu, config.fp_add_latency, 1};
    case ExecClass::kFpMul:
      return {FuKind::kFpMult, config.fp_mul_latency, 1};
    case ExecClass::kFpDiv:
      return {FuKind::kFpMult, config.fp_div_latency, config.fp_div_latency};
    case ExecClass::kFpSqrt:
      return {FuKind::kFpMult, config.fp_sqrt_latency,
              config.fp_sqrt_latency};
    case ExecClass::kLoad:
      return {FuKind::kMemPort, 1, 1};  // + cache latency, added by caller
    case ExecClass::kStore:
    case ExecClass::kNone:
      return {FuKind::kIntAlu, 1, 1};  // see pipeline.cpp for store handling
  }
  return {FuKind::kIntAlu, 1, 1};
}

FuPool::FuPool(const CoreConfig& config) {
  auto init = [this](FuKind kind, u32 count) {
    next_free_[static_cast<usize>(kind)].assign(count, 0);
  };
  init(FuKind::kIntAlu, config.int_alu_count);
  init(FuKind::kIntMult, config.int_mult_count);
  init(FuKind::kFpAlu, config.fp_alu_count);
  init(FuKind::kFpMult, config.fp_mult_count);
  init(FuKind::kMemPort, config.mem_port_count);
}

bool FuPool::try_acquire(FuKind kind, Cycle now, u32 issue_latency) {
  assert(issue_latency >= 1);
  std::vector<Cycle>& units = next_free_[static_cast<usize>(kind)];
  for (Cycle& next_free : units) {
    if (next_free <= now) {
      next_free = now + issue_latency;
      ++ops_issued_[static_cast<usize>(kind)];
      return true;
    }
  }
  return false;
}

bool FuPool::can_acquire(FuKind kind, Cycle now) const {
  for (Cycle next_free : next_free_[static_cast<usize>(kind)]) {
    if (next_free <= now) return true;
  }
  return false;
}

double FuPool::utilization(FuKind kind, Cycle cycles) const {
  const usize index = static_cast<usize>(kind);
  if (next_free_[index].empty() || cycles == 0) return 0.0;
  return safe_ratio(ops_issued_[index],
                    cycles * next_free_[index].size());
}

}  // namespace reese::core

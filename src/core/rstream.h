// The R-stream Queue — REESE's central structure (§4.3 of the paper).
//
// A FIFO sitting between writeback and commit. Each entry is a completed
// P-stream instruction carrying its operand values and result, so its
// R-stream re-execution has no data or control dependencies. Entries issue
// to spare functional-unit capacity in FIFO order, are compared against
// their stored P result when the re-execution completes, and finally
// commit (architecturally) from the head in program order.
#pragma once

#include <algorithm>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"

namespace reese {
class SnapshotReader;
class SnapshotWriter;
}  // namespace reese

namespace reese::core {

struct REntry {
  u64 id = 0;  ///< stable handle for the writeback event queue
  isa::Instruction inst;
  Addr pc = 0;
  InstSeq seq = 0;

  // Captured P-stream execution context.
  u64 rs1_value = 0;
  u64 rs2_value = 0;
  u64 p_result = 0;     ///< P result (stored copy the comparator reads);
                        ///< fault injection may flip a bit of this copy
  u64 r_base_value = 0; ///< loads: the value the R-stream reload returns
                        ///< (see DESIGN.md on timing/function decoupling)
  Addr mem_addr = 0;    ///< P effective address for loads/stores
  bool p_taken = false; ///< P branch outcome
  Addr p_next = 0;      ///< P next-PC
  Cycle p_issue_cycle = 0;
  Cycle p_complete_cycle = 0;

  // R-stream progress.
  bool needs_reexec = true;  ///< false for 1-of-k skipped instructions
  bool issued = false;
  bool completed = false;    ///< re-executed and compared
  Cycle r_issue_cycle = 0;
  u64 r_result = 0;
  bool mismatch = false;

  /// True while the P instruction still occupies its RUU slot (early
  /// release disabled); the final commit must free that slot too.
  bool holds_ruu_slot = false;

  // Fault-injection bookkeeping.
  bool faulted = false;
  bool flip_r = false;       ///< corrupt the R side instead of the P side
  unsigned fault_bit = 0;
  Cycle fault_cycle = 0;

  // Component-site campaigns (DESIGN.md §16). site_faulted marks an upset
  // that came in from upstream (RUU/LSQ strike) or hit this slot's stored
  // values — an escape is SDC. checker_faulted marks corruption of the
  // checker's own redundant state (operand copies, the reexec flag) — the
  // architectural value is still correct, so an escape is masked (possibly
  // with coverage loss) and a mismatch is a false-positive detection.
  bool site_faulted = false;
  bool checker_faulted = false;
};

/// Fixed-capacity ring: the capacity is a hardware parameter known at
/// construction, so the previous std::deque (a chunked allocator paying a
/// heap block every few pushes) is replaced by one flat REntry array that
/// never allocates after construction. REntry is trivially copyable, so
/// pushes are plain stores.
class RStreamQueue {
 public:
  explicit RStreamQueue(u32 capacity)
      : entries_(std::max<u32>(capacity, 1)),
        capacity_(capacity),
        ring_size_(std::max<u32>(capacity, 1)) {}

  bool full() const { return count_ >= capacity_; }
  bool empty() const { return count_ == 0; }
  usize size() const { return count_; }
  u32 capacity() const { return capacity_; }

  /// Enqueue at the tail; returns the entry's stable id. Caller must check
  /// full() first.
  u64 push(const REntry& entry);

  /// Tail-slot emplace: returns a recycled slot for the caller to fill in
  /// place, skipping push()'s stack-copy of the whole REntry. The id is
  /// assigned and the R-stream progress/fault flags are reset here; the
  /// caller owns every field it reads later. Caller must check full() first.
  REntry& push_slot();

  REntry& front() { return entries_[head_]; }
  void pop_front() {
    if (++head_ == ring_size_) head_ = 0;
    --count_;
  }

  /// Entry by stable id; must still be in the queue. Ids are assigned
  /// consecutively at push and the queue is FIFO, so the id's distance from
  /// the head id is its ring offset — O(1), no search.
  REntry& by_id(u64 id);

  /// Program-order access for the in-order R issue scan (0 = head).
  /// The ring size is a config value, not a power of two, so `%` compiles
  /// to a hardware divide; index < count_ <= ring_size_ bounds the sum
  /// under 2*ring_size_, so one compare-subtract wraps it.
  REntry& at(usize index) {
    u32 position = head_ + static_cast<u32>(index);
    if (position >= ring_size_) position -= ring_size_;
    return entries_[position];
  }

  /// Checkpoint serialization. Only called on a drained (empty) queue —
  /// what persists across a snapshot is the id counter, which keeps the
  /// FIFO-consecutive id contract intact across a restore.
  void save(SnapshotWriter* writer) const;
  void load(SnapshotReader* reader);

 private:
  std::vector<REntry> entries_;
  u32 head_ = 0;
  u32 count_ = 0;
  u32 capacity_;
  u32 ring_size_;
  u64 next_id_ = 1;
};

}  // namespace reese::core

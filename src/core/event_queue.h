// Calendar (ring-buffer) event queue for the pipeline's writeback events.
//
// The pipeline schedules every event a bounded number of cycles into the
// future (the worst case is a TLB walk + L1 + L2 + DRAM chain, well under
// 256 cycles), and drains events for exactly one cycle value per call, in
// strictly increasing cycle order. A `std::map<Cycle, vector>` models that
// fine but pays a red-black-tree allocation + rebalance per simulated
// event; this queue instead indexes a fixed power-of-two array of slots by
// `cycle & mask`, so schedule/drain are O(1) with no per-event allocation
// once the slot vectors have warmed up. Events beyond the horizon (none in
// practice; kept for safety against future latency configs) spill into a
// small ordered map.
#pragma once

#include <cassert>
#include <map>
#include <utility>
#include <vector>

#include "common/types.h"

namespace reese::core {

template <typename T>
class CalendarQueue {
 public:
  /// `horizon` must be a power of two and exceed the longest schedule
  /// distance the caller ever uses (asserted in debug builds via the slot
  /// tag check below).
  explicit CalendarQueue(usize horizon = 256) : mask_(horizon - 1) {
    assert((horizon & mask_) == 0 && horizon >= 2);
    slots_.resize(horizon);
  }

  bool empty() const { return pending_ == 0 && overflow_.empty(); }
  usize pending() const { return pending_ + overflow_.size(); }

  /// Schedule `value` for cycle `when`. The caller drains cycle `now`
  /// before scheduling (the pipeline evaluates writeback before issue), so
  /// events must land strictly in the future or they would never drain.
  void schedule(Cycle when, Cycle now, T value) {
    assert(when > now);
    if (when - now <= mask_) {
      Slot& slot = slots_[when & mask_];
      if (slot.when != when) {
        // A stale tag always comes with a drained (empty) item list: the
        // caller drains every cycle, so a slot is reused only after its
        // previous occupant's cycle has passed.
        assert(slot.items.empty());
        slot.when = when;
      }
      slot.items.push_back(std::move(value));
      ++pending_;
    } else {
      overflow_[when].push_back(std::move(value));
    }
  }

  /// Move out everything scheduled for exactly `now`. Must be called for
  /// every cycle value in increasing order (the pipeline's main loop does).
  /// Returns an empty vector when nothing is due.
  std::vector<T> take(Cycle now) {
    std::vector<T> due;
    Slot& slot = slots_[now & mask_];
    if (slot.when == now && !slot.items.empty()) {
      pending_ -= slot.items.size();
      due.swap(slot.items);
      slot.items = std::move(spare_);  // hand the slot a warm vector back
      slot.items.clear();
    }
    if (!overflow_.empty() && overflow_.begin()->first <= now) {
      auto it = overflow_.begin();
      assert(it->first == now && "overflow event skipped a drain cycle");
      if (due.empty()) {
        due = std::move(it->second);
      } else {
        due.insert(due.end(), it->second.begin(), it->second.end());
      }
      overflow_.erase(it);
    }
    return due;
  }

  /// Return a drained vector so its capacity is reused by the next take().
  void recycle(std::vector<T>&& used) {
    used.clear();
    spare_ = std::move(used);
  }

 private:
  struct Slot {
    Cycle when = ~Cycle{0};
    std::vector<T> items;
  };

  std::vector<Slot> slots_;
  std::map<Cycle, std::vector<T>> overflow_;
  std::vector<T> spare_;
  usize mask_;
  usize pending_ = 0;
};

}  // namespace reese::core

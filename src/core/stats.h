// Counters and distributions collected by the pipeline.
#pragma once

#include "common/stats.h"
#include "common/types.h"

namespace reese::core {

struct CoreStats {
  Cycle cycles = 0;

  // Instruction flow.
  u64 fetched = 0;
  u64 dispatched = 0;
  u64 wrongpath_dispatched = 0;
  u64 issued_p = 0;
  u64 issued_r = 0;
  u64 committed = 0;    ///< P-stream instructions architecturally committed
  u64 committed_r = 0;  ///< R-stream executions completed + compared
  u64 rskipped = 0;     ///< instructions not re-executed (partial mode)

  // Front-end stalls.
  u64 ifq_full_stall_cycles = 0;
  u64 ruu_full_stalls = 0;
  u64 lsq_full_stalls = 0;
  u64 icache_stall_cycles = 0;

  // Branches (non-speculative, resolved).
  u64 branches_resolved = 0;
  u64 branch_mispredicts = 0;
  u64 cond_branches_resolved = 0;
  u64 cond_branch_mispredicts = 0;

  // REESE.
  u64 rqueue_enqueued = 0;
  u64 rqueue_full_stall_cycles = 0;  ///< cycles the release stage was blocked
  u64 rpriority_cycles = 0;          ///< cycles the watermark flipped priority
  u64 comparisons = 0;
  u64 errors_detected = 0;

  // Faults.
  u64 faults_injected = 0;
  u64 faults_undetected = 0;  ///< faulty instruction committed unchecked

  // Distributions.
  Histogram separation{4, 64};        ///< R-issue minus P-issue, cycles
  Histogram detection_latency{4, 64}; ///< injection to detection, cycles
  Histogram issue_per_cycle{1, 17};
  RunningStat ruu_occupancy;
  RunningStat lsq_occupancy;
  RunningStat ifq_occupancy;
  RunningStat rqueue_occupancy;

  double ipc() const { return safe_ratio(committed, cycles); }
  double mispredict_rate() const {
    return safe_ratio(cond_branch_mispredicts, cond_branches_resolved);
  }
};

}  // namespace reese::core

// Counters and distributions collected by the pipeline.
#pragma once

#include <array>
#include <string>

#include "common/metrics.h"
#include "common/stats.h"
#include "common/types.h"

namespace reese::core {

/// Per-cycle stall attribution: every simulated cycle is charged to exactly
/// one bucket, so the buckets partition the run (sum == CoreStats::cycles).
/// Classification happens at the end of Pipeline::cycle(), in priority
/// order: a cycle that committed at least one instruction is kBusy; an
/// uncommitting cycle goes to the most downstream blocked structure
/// (rqueue-full > ruu-full > lsq-full > ifq-full > icache); a cycle with no
/// commit and no recorded stall is kIdle (drain, dependency waits,
/// mispredict redirect bubbles).
enum class CycleClass : u8 {
  kBusy,        ///< >= 1 instruction committed this cycle
  kRqueueFull,  ///< release blocked on a full R-stream queue
  kRuuFull,     ///< dispatch blocked on a full RUU window
  kLsqFull,     ///< dispatch blocked on a full LSQ
  kIfqFull,     ///< fetch blocked on a full fetch queue
  kIcache,      ///< fetch waiting on an I-cache miss
  kIdle,        ///< none of the above (dependency/drain bubbles)
};

inline constexpr usize kCycleClassCount = 7;

const char* cycle_class_name(CycleClass cls);

struct CoreStats {
  Cycle cycles = 0;

  // Instruction flow.
  u64 fetched = 0;
  u64 dispatched = 0;
  u64 wrongpath_dispatched = 0;
  u64 issued_p = 0;
  u64 issued_r = 0;
  u64 committed = 0;    ///< P-stream instructions architecturally committed
  u64 committed_r = 0;  ///< R-stream executions completed + compared
  u64 rskipped = 0;     ///< instructions not re-executed (partial mode)

  // Front-end stalls.
  u64 ifq_full_stall_cycles = 0;
  u64 ruu_full_stalls = 0;
  u64 lsq_full_stalls = 0;
  u64 icache_stall_cycles = 0;

  // Branches (non-speculative, resolved).
  u64 branches_resolved = 0;
  u64 branch_mispredicts = 0;
  u64 cond_branches_resolved = 0;
  u64 cond_branch_mispredicts = 0;

  // REESE.
  u64 rqueue_enqueued = 0;
  u64 rqueue_full_stall_cycles = 0;  ///< cycles the release stage was blocked
  u64 rpriority_cycles = 0;          ///< cycles the watermark flipped priority
  u64 comparisons = 0;
  u64 errors_detected = 0;

  // Faults.
  u64 faults_injected = 0;
  u64 faults_undetected = 0;  ///< faulty instruction committed unchecked

  // Per-cycle stall attribution (see CycleClass); sums to `cycles`.
  std::array<u64, kCycleClassCount> cycle_classes{};

  // Distributions.
  Histogram separation{4, 64};        ///< R-issue minus P-issue, cycles
  Histogram detection_latency{4, 64}; ///< injection to detection, cycles
  Histogram issue_per_cycle{1, 17};
  RunningStat ruu_occupancy;
  RunningStat lsq_occupancy;
  RunningStat ifq_occupancy;
  RunningStat rqueue_occupancy;

  double ipc() const { return safe_ratio(committed, cycles); }
  double mispredict_rate() const {
    return safe_ratio(cond_branch_mispredicts, cond_branches_resolved);
  }
  /// Sum of the stall-attribution buckets; equals `cycles` by construction.
  u64 cycle_class_total() const;
  /// One-line "busy 62.1%, rqueue-full 11.0%, ..." rendering.
  std::string cycle_class_summary() const;

  /// Checkpoint serialization: every counter and distribution, so a
  /// restored run reports stats identical to an uninterrupted one.
  void save(SnapshotWriter* writer) const;
  void load(SnapshotReader* reader);
};

/// Export every CoreStats counter/gauge into `registry` under the
/// reese_core_* namespace with `labels` attached (DESIGN.md §12 lists the
/// full metric inventory). Counters are set to the current totals, so
/// calling this again after more simulation refreshes them in place.
void export_core_stats(metrics::Registry* registry, const CoreStats& stats,
                       const metrics::Labels& labels = {});

}  // namespace reese::core

// Pipeline tracing: per-instruction lifecycle events.
//
// A Tracer installed on a Pipeline receives one callback per pipeline
// event (dispatch, issue, completion, R-stream issue/compare, commit,
// squash). TimelineTracer assembles them into per-instruction rows —
// SimpleScalar "pipeview" style — for debugging and teaching:
//
//   seq      pc  instruction            DS IS WB RL RI RC CT
//   17   0x1040  addi t0, t0, -1        12 13 14 16 18 19 21
#pragma once

#include <deque>
#include <string>
#include <unordered_map>

#include "common/types.h"
#include "isa/instruction.h"

namespace reese::core {

enum class TraceKind : u8 {
  kDispatch,   ///< entered the RUU (functionally executed)
  kIssue,      ///< P-stream issue to a functional unit
  kComplete,   ///< P-stream writeback
  kRelease,    ///< moved into the R-stream Queue
  kRIssue,     ///< R-stream (or duplicate) execution issued
  kRComplete,  ///< R-stream execution compared
  kCommit,     ///< architecturally committed
  kSquash,     ///< wrong-path entry squashed
  kError,      ///< comparator mismatch detected
};

const char* trace_kind_name(TraceKind kind);

struct TraceEvent {
  TraceKind kind;
  Cycle cycle;
  InstSeq seq;
  Addr pc;
  isa::Instruction inst;
  bool spec;  ///< event belongs to a wrong-path instruction
};

class Tracer {
 public:
  virtual ~Tracer() = default;
  virtual void record(const TraceEvent& event) = 0;
};

/// Collects the last `capacity` instructions' lifecycles and renders them
/// as a table. Wrong-path instructions show up with a `*` and a squash
/// column.
class TimelineTracer final : public Tracer {
 public:
  explicit TimelineTracer(usize capacity = 64) : capacity_(capacity) {}

  void record(const TraceEvent& event) override;

  struct Row {
    InstSeq seq = 0;
    Addr pc = 0;
    isa::Instruction inst;
    bool spec = false;
    bool squashed = false;
    bool error = false;
    Cycle dispatch = 0;
    Cycle issue = 0;
    Cycle complete = 0;
    Cycle release = 0;
    Cycle r_issue = 0;
    Cycle r_complete = 0;
    Cycle commit = 0;
  };

  const std::deque<Row>& rows() const { return rows_; }
  u64 events_seen() const { return events_seen_; }

  /// Render the collected rows; columns show the cycle of each stage
  /// (blank if it never happened).
  std::string to_string() const;

 private:
  Row* find(InstSeq seq, bool spec);

  /// Index key: wrong-path entries can share a seq with a true-path
  /// instruction, so the spec flag is folded into the low bit.
  static u64 index_key(InstSeq seq, bool spec) {
    return (static_cast<u64>(seq) << 1) | (spec ? 1 : 0);
  }

  usize capacity_;
  std::deque<Row> rows_;
  /// (seq, spec) -> absolute row number (monotonic since construction);
  /// deque position = absolute - evicted_. Keeps find() O(1) where the old
  /// reverse scan was O(capacity) per event — quadratic over a large
  /// window. A key maps to its *most recent* row, matching the reverse
  /// scan's semantics when wrong-path seqs recur.
  std::unordered_map<u64, u64> index_;
  u64 evicted_ = 0;  ///< rows dropped off the front so far
  u64 events_seen_ = 0;
};

}  // namespace reese::core

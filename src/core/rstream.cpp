#include "core/rstream.h"

#include <cassert>

namespace reese::core {

u64 RStreamQueue::push(REntry entry) {
  assert(!full());
  entry.id = next_id_++;
  entries_.push_back(entry);
  return entries_.back().id;
}

REntry& RStreamQueue::by_id(u64 id) {
  assert(!entries_.empty());
  const u64 front_id = entries_.front().id;
  assert(id >= front_id);
  const usize index = static_cast<usize>(id - front_id);
  assert(index < entries_.size());
  assert(entries_[index].id == id);
  return entries_[index];
}

}  // namespace reese::core

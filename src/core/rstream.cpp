#include "core/rstream.h"

#include <cassert>

namespace reese::core {

u64 RStreamQueue::push(const REntry& entry) {
  assert(!full());
  REntry& slot = entries_[(head_ + count_) % entries_.size()];
  slot = entry;
  slot.id = next_id_++;
  ++count_;
  return slot.id;
}

REntry& RStreamQueue::by_id(u64 id) {
  assert(count_ > 0);
  const u64 front_id = front().id;
  assert(id >= front_id);
  const usize index = static_cast<usize>(id - front_id);
  assert(index < count_);
  REntry& entry = at(index);
  assert(entry.id == id);
  return entry;
}

}  // namespace reese::core

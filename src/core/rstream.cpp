#include "core/rstream.h"

#include <cassert>

#include "common/snapshot.h"

namespace reese::core {

u64 RStreamQueue::push(const REntry& entry) {
  assert(!full());
  u32 tail = head_ + count_;
  if (tail >= ring_size_) tail -= ring_size_;
  REntry& slot = entries_[tail];
  slot = entry;
  slot.id = next_id_++;
  ++count_;
  return slot.id;
}

REntry& RStreamQueue::push_slot() {
  assert(!full());
  u32 tail = head_ + count_;
  if (tail >= ring_size_) tail -= ring_size_;
  REntry& slot = entries_[tail];
  slot.id = next_id_++;
  slot.needs_reexec = true;
  slot.issued = false;
  slot.completed = false;
  slot.mismatch = false;
  slot.holds_ruu_slot = false;
  slot.faulted = false;
  slot.flip_r = false;
  slot.fault_bit = 0;
  slot.fault_cycle = 0;
  slot.site_faulted = false;
  slot.checker_faulted = false;
  ++count_;
  return slot;
}

REntry& RStreamQueue::by_id(u64 id) {
  assert(count_ > 0);
  const u64 front_id = front().id;
  assert(id >= front_id);
  const usize index = static_cast<usize>(id - front_id);
  assert(index < count_);
  REntry& entry = at(index);
  assert(entry.id == id);
  return entry;
}

void RStreamQueue::save(SnapshotWriter* writer) const {
  assert(count_ == 0 && "R-stream queue must be drained before snapshot");
  writer->put_u64(next_id_);
}

void RStreamQueue::load(SnapshotReader* reader) {
  next_id_ = reader->get_u64();
  head_ = 0;
  count_ = 0;
}

}  // namespace reese::core

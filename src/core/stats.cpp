#include "core/stats.h"

#include "common/snapshot.h"
#include "common/strutil.h"

namespace reese::core {

const char* cycle_class_name(CycleClass cls) {
  switch (cls) {
    case CycleClass::kBusy: return "busy";
    case CycleClass::kRqueueFull: return "rqueue-full";
    case CycleClass::kRuuFull: return "ruu-full";
    case CycleClass::kLsqFull: return "lsq-full";
    case CycleClass::kIfqFull: return "ifq-full";
    case CycleClass::kIcache: return "icache";
    case CycleClass::kIdle: return "idle";
  }
  return "?";
}

u64 CoreStats::cycle_class_total() const {
  u64 total = 0;
  for (u64 count : cycle_classes) total += count;
  return total;
}

std::string CoreStats::cycle_class_summary() const {
  std::string out;
  for (usize i = 0; i < kCycleClassCount; ++i) {
    if (!out.empty()) out += ", ";
    out += format("%s %.1f%%", cycle_class_name(static_cast<CycleClass>(i)),
                  100.0 * safe_ratio(cycle_classes[i], cycles));
  }
  return out;
}

namespace {

/// The stall-attribution label values drop the '-' (Prometheus label
/// values may contain it, but underscores keep grep/query ergonomics
/// consistent with the metric names).
std::string cycle_class_label(CycleClass cls) {
  std::string label = cycle_class_name(cls);
  for (char& c : label) {
    if (c == '-') c = '_';
  }
  return label;
}

void set_counter(metrics::Registry* registry, const char* name, u64 value,
                 const metrics::Labels& labels, const char* help) {
  if (metrics::Counter* counter = registry->counter(name, labels, help)) {
    counter->set(value);
  }
}

}  // namespace

void export_core_stats(metrics::Registry* registry, const CoreStats& stats,
                       const metrics::Labels& labels) {
  set_counter(registry, "reese_core_cycles_total", stats.cycles, labels,
              "Simulated cycles");
  set_counter(registry, "reese_core_fetched_instructions_total",
              stats.fetched, labels, "Instructions fetched");
  set_counter(registry, "reese_core_dispatched_instructions_total",
              stats.dispatched, labels, "Instructions dispatched to the RUU");
  set_counter(registry, "reese_core_wrongpath_instructions_total",
              stats.wrongpath_dispatched, labels,
              "Wrong-path instructions dispatched");
  set_counter(registry, "reese_core_issued_p_total", stats.issued_p, labels,
              "P-stream issues");
  set_counter(registry, "reese_core_issued_r_total", stats.issued_r, labels,
              "R-stream issues");
  set_counter(registry, "reese_core_committed_instructions_total",
              stats.committed, labels,
              "P-stream instructions architecturally committed");
  set_counter(registry, "reese_core_committed_r_total", stats.committed_r,
              labels, "R-stream executions compared");
  set_counter(registry, "reese_core_rskipped_instructions_total",
              stats.rskipped, labels,
              "Instructions not re-executed (partial mode)");
  set_counter(registry, "reese_core_branches_resolved_total",
              stats.branches_resolved, labels, "Resolved branches");
  set_counter(registry, "reese_core_branch_mispredicts_total",
              stats.branch_mispredicts, labels, "Branch mispredictions");
  set_counter(registry, "reese_core_rqueue_enqueued_total",
              stats.rqueue_enqueued, labels,
              "Instructions released into the R-stream queue");
  set_counter(registry, "reese_core_comparisons_total", stats.comparisons,
              labels, "Comparator checks");
  set_counter(registry, "reese_core_errors_detected_total",
              stats.errors_detected, labels, "Comparator mismatches detected");
  set_counter(registry, "reese_core_faults_injected_total",
              stats.faults_injected, labels, "Faults injected");
  set_counter(registry, "reese_core_faults_undetected_total",
              stats.faults_undetected, labels,
              "Faulty instructions committed unchecked");

  for (usize i = 0; i < kCycleClassCount; ++i) {
    const CycleClass cls = static_cast<CycleClass>(i);
    metrics::Labels class_labels = labels;
    class_labels.emplace_back("class", cycle_class_label(cls));
    set_counter(registry, "reese_core_cycle_class_total", stats.cycle_classes[i],
                class_labels,
                "Per-cycle stall attribution (partitions reese_core_cycles_total)");
  }

  if (metrics::Gauge* gauge =
          registry->gauge("reese_core_ipc", labels,
                          "Committed instructions per cycle")) {
    gauge->set(stats.ipc());
  }
  if (metrics::Gauge* gauge = registry->gauge(
          "reese_core_ruu_occupancy_mean", labels, "Mean RUU occupancy")) {
    gauge->set(stats.ruu_occupancy.mean());
  }
  if (metrics::Gauge* gauge = registry->gauge(
          "reese_core_rqueue_occupancy_mean", labels,
          "Mean R-stream queue occupancy")) {
    gauge->set(stats.rqueue_occupancy.mean());
  }

  // The P->R separation distribution, re-bucketed onto the metric's fixed
  // upper bounds (the Histogram's finite buckets map 1:1).
  const Histogram& separation = stats.separation;
  std::vector<double> bounds;
  bounds.reserve(separation.buckets().size());
  for (usize i = 0; i < separation.buckets().size(); ++i) {
    bounds.push_back(
        static_cast<double>((i + 1) * separation.bucket_width() - 1));
  }
  if (metrics::HistogramMetric* histogram = registry->histogram(
          "reese_core_separation_cycles", bounds, labels,
          "R-issue minus P-issue, cycles")) {
    // Mirror the bucket counts once per (registry, labels): a histogram
    // cannot be set in place like a counter, so re-exports after further
    // simulation leave it at the first export's state.
    if (histogram->count() == 0) {
      for (usize i = 0; i < separation.buckets().size(); ++i) {
        histogram->add_bucket(i, separation.buckets()[i], 0.0);
      }
      // _sum is a histogram-wide scalar: charge the exact accumulated sum
      // in one shot alongside the overflow count.
      histogram->add_bucket(separation.buckets().size(), separation.overflow(),
                            static_cast<double>(separation.sum()));
    }
  }
}

void CoreStats::save(SnapshotWriter* writer) const {
  writer->put_u64(cycles);
  writer->put_u64(fetched);
  writer->put_u64(dispatched);
  writer->put_u64(wrongpath_dispatched);
  writer->put_u64(issued_p);
  writer->put_u64(issued_r);
  writer->put_u64(committed);
  writer->put_u64(committed_r);
  writer->put_u64(rskipped);
  writer->put_u64(ifq_full_stall_cycles);
  writer->put_u64(ruu_full_stalls);
  writer->put_u64(lsq_full_stalls);
  writer->put_u64(icache_stall_cycles);
  writer->put_u64(branches_resolved);
  writer->put_u64(branch_mispredicts);
  writer->put_u64(cond_branches_resolved);
  writer->put_u64(cond_branch_mispredicts);
  writer->put_u64(rqueue_enqueued);
  writer->put_u64(rqueue_full_stall_cycles);
  writer->put_u64(rpriority_cycles);
  writer->put_u64(comparisons);
  writer->put_u64(errors_detected);
  writer->put_u64(faults_injected);
  writer->put_u64(faults_undetected);
  for (u64 count : cycle_classes) writer->put_u64(count);
  separation.save(writer);
  detection_latency.save(writer);
  issue_per_cycle.save(writer);
  ruu_occupancy.save(writer);
  lsq_occupancy.save(writer);
  ifq_occupancy.save(writer);
  rqueue_occupancy.save(writer);
}

void CoreStats::load(SnapshotReader* reader) {
  cycles = reader->get_u64();
  fetched = reader->get_u64();
  dispatched = reader->get_u64();
  wrongpath_dispatched = reader->get_u64();
  issued_p = reader->get_u64();
  issued_r = reader->get_u64();
  committed = reader->get_u64();
  committed_r = reader->get_u64();
  rskipped = reader->get_u64();
  ifq_full_stall_cycles = reader->get_u64();
  ruu_full_stalls = reader->get_u64();
  lsq_full_stalls = reader->get_u64();
  icache_stall_cycles = reader->get_u64();
  branches_resolved = reader->get_u64();
  branch_mispredicts = reader->get_u64();
  cond_branches_resolved = reader->get_u64();
  cond_branch_mispredicts = reader->get_u64();
  rqueue_enqueued = reader->get_u64();
  rqueue_full_stall_cycles = reader->get_u64();
  rpriority_cycles = reader->get_u64();
  comparisons = reader->get_u64();
  errors_detected = reader->get_u64();
  faults_injected = reader->get_u64();
  faults_undetected = reader->get_u64();
  for (u64& count : cycle_classes) count = reader->get_u64();
  separation.load(reader);
  detection_latency.load(reader);
  issue_per_cycle.load(reader);
  ruu_occupancy.load(reader);
  lsq_occupancy.load(reader);
  ifq_occupancy.load(reader);
  rqueue_occupancy.load(reader);
}

}  // namespace reese::core

#include "core/trace.h"

#include "common/strutil.h"

namespace reese::core {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kDispatch: return "dispatch";
    case TraceKind::kIssue: return "issue";
    case TraceKind::kComplete: return "complete";
    case TraceKind::kRelease: return "release";
    case TraceKind::kRIssue: return "r-issue";
    case TraceKind::kRComplete: return "r-complete";
    case TraceKind::kCommit: return "commit";
    case TraceKind::kSquash: return "squash";
    case TraceKind::kError: return "error";
  }
  return "?";
}

TimelineTracer::Row* TimelineTracer::find(InstSeq seq, bool spec) {
  const auto it = index_.find(index_key(seq, spec));
  if (it == index_.end()) return nullptr;
  return &rows_[it->second - evicted_];
}

void TimelineTracer::record(const TraceEvent& event) {
  ++events_seen_;
  if (event.kind == TraceKind::kDispatch) {
    Row row;
    row.seq = event.seq;
    row.pc = event.pc;
    row.inst = event.inst;
    row.spec = event.spec;
    row.dispatch = event.cycle;
    // Most recent row wins the index slot (wrong-path seqs recur).
    index_[index_key(row.seq, row.spec)] = evicted_ + rows_.size();
    rows_.push_back(row);
    if (rows_.size() > capacity_) {
      const Row& oldest = rows_.front();
      const auto it = index_.find(index_key(oldest.seq, oldest.spec));
      // Drop the index entry only if it still points at the evicted row —
      // a newer row with the same key must keep its mapping.
      if (it != index_.end() && it->second == evicted_) index_.erase(it);
      rows_.pop_front();
      ++evicted_;
    }
    return;
  }
  Row* row = find(event.seq, event.spec);
  if (row == nullptr) return;  // scrolled out of the window
  switch (event.kind) {
    case TraceKind::kIssue: row->issue = event.cycle; break;
    case TraceKind::kComplete: row->complete = event.cycle; break;
    case TraceKind::kRelease: row->release = event.cycle; break;
    case TraceKind::kRIssue: row->r_issue = event.cycle; break;
    case TraceKind::kRComplete: row->r_complete = event.cycle; break;
    case TraceKind::kCommit: row->commit = event.cycle; break;
    case TraceKind::kSquash: row->squashed = true; break;
    case TraceKind::kError: row->error = true; break;
    case TraceKind::kDispatch: break;
  }
}

std::string TimelineTracer::to_string() const {
  std::string out = format("  %6s %-9s %-26s %7s %7s %7s %7s %7s %7s %7s\n",
                           "seq", "pc", "instruction", "DS", "IS", "WB", "RL",
                           "RI", "RC", "CT");
  auto cell = [](Cycle cycle) {
    return cycle == 0 ? std::string("      .") : format("%7llu",
        static_cast<unsigned long long>(cycle));
  };
  for (const Row& row : rows_) {
    std::string line = format(
        "  %5llu%c 0x%-7llx %-26s", static_cast<unsigned long long>(row.seq),
        row.spec ? '*' : ' ', static_cast<unsigned long long>(row.pc),
        isa::disassemble(row.inst).c_str());
    line += cell(row.dispatch) + cell(row.issue) + cell(row.complete) +
            cell(row.release) + cell(row.r_issue) + cell(row.r_complete) +
            cell(row.commit);
    if (row.squashed) line += "  SQUASHED";
    if (row.error) line += "  ERROR-DETECTED";
    out += line + "\n";
  }
  return out;
}

}  // namespace reese::core

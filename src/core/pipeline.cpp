#include "core/pipeline.h"

#include <algorithm>
#include <cassert>

#include "common/strutil.h"

namespace reese::core {

using isa::ExecClass;
using isa::Opcode;

const char* stop_reason_name(StopReason reason) {
  switch (reason) {
    case StopReason::kCommitTarget: return "commit-target";
    case StopReason::kHalted: return "halted";
    case StopReason::kBadPc: return "bad-pc";
    case StopReason::kCycleLimit: return "cycle-limit";
  }
  return "?";
}

std::string CoreConfig::summary() const {
  std::string s = format(
      "width=%u ifq=%u ruu=%u lsq=%u ialu=%u imult=%u ports=%u pred=%s",
      issue_width, ifq_size, ruu_size, lsq_size, int_alu_count,
      int_mult_count, mem_port_count,
      branch::predictor_kind_name(predictor));
  if (reese.enabled) {
    if (reese.scheme == RedundancyScheme::kFranklin) {
      s += " FRANKLIN[dual-exec]";
    } else {
      s += format(" REESE[rq=%u early=%d k=%u]", reese.rqueue_size,
                  reese.early_release ? 1 : 0, reese.reexec_interval);
    }
  }
  return s;
}

CoreConfig starting_config() { return CoreConfig{}; }

CoreConfig with_reese(CoreConfig base, u32 spare_alus, u32 spare_mults) {
  base.reese.enabled = true;
  base.int_alu_count += spare_alus;
  base.int_mult_count += spare_mults;
  return base;
}

// ---------------------------------------------------------------------------
// Construction / run loop
// ---------------------------------------------------------------------------

namespace {

/// Create-vector size: 32 integer + 32 FP architectural registers.
constexpr usize kCvSize = isa::kIntRegCount + isa::kFpRegCount;

usize cv_key(u8 reg, bool fp) { return fp ? isa::kIntRegCount + reg : reg; }

}  // namespace

Pipeline::Pipeline(const isa::Program& program, const CoreConfig& config)
    : program_(program),
      config_(config),
      hierarchy_(std::make_unique<mem::Hierarchy>(config.memory)),
      fu_pool_(config),
      direction_(branch::make_predictor(config.predictor)),
      btb_(config.btb_entries, config.btb_associativity),
      ras_(config.ras_depth),
      rqueue_(config.reese.rqueue_size) {
  assert(config_.ruu_size >= 2 && config_.lsq_size >= 1);
  if (config_.predictor == branch::PredictorKind::kGshare) {
    auto gshare =
        std::make_unique<branch::GsharePredictor>(config_.gshare_history_bits);
    gshare_ = gshare.get();
    direction_ = std::move(gshare);
  }
  ruu_mask_scan_ = config_.ruu_size <= 64;
  // occupancy_pct >= watermark  <=>  100*size >= watermark*capacity
  //                             <=>  size >= ceil(watermark*capacity/100).
  rpriority_min_count_ = static_cast<u32>(
      (u64{config_.reese.priority_watermark_pct} * rqueue_.capacity() + 99) /
      100);
  ruu_.resize(config_.ruu_size);
  lsq_.resize(config_.lsq_size);
  cv_.assign(kCvSize, RuuRef{});
  spec_cv_.assign(kCvSize, RuuRef{});

  program_.load_data(&memory_);
  front_state_.pc = program_.entry;
  front_state_.set_x(isa::kSpReg, isa::kDefaultStackTop);
  front_state_.set_x(isa::kGpReg, program_.data_base);
  fetch_pc_ = program_.entry;
  ifq_.init(config_.ifq_size);
  code_ = program_.code.data();
  code_base_ = program_.code_base;
  code_count_ = program_.code.size();
}

Pipeline::~Pipeline() = default;

StopReason Pipeline::run(u64 commit_target, Cycle cycle_limit) {
  const Cycle start = now_;
  while (stats_.committed < commit_target) {
    if (halted_) return StopReason::kHalted;
    if (bad_pc_) return StopReason::kBadPc;
    if (now_ - start >= cycle_limit) return StopReason::kCycleLimit;
    cycle();
  }
  return StopReason::kCommitTarget;
}

void Pipeline::cycle() {
  // Component-site fault campaigns: one strike poll per cycle, before the
  // stages, so the struck state is what this cycle's stages observe
  // (site_faults.cpp). kResult keeps this a single predicted-false branch.
  if (fault_site_ != FaultSite::kResult) poll_site_fault();

  // Stall attribution (CycleClass): sample the stall counters around the
  // stage evaluation and charge this cycle to exactly one bucket below.
  const u64 committed_before = stats_.committed;
  const u64 rqueue_before = stats_.rqueue_full_stall_cycles;
  const u64 ruu_before = stats_.ruu_full_stalls;
  const u64 lsq_before = stats_.lsq_full_stalls;
  const u64 ifq_before = stats_.ifq_full_stall_cycles;
  const u64 icache_before = stats_.icache_stall_cycles;

  stage_commit();
  stage_writeback();
  stage_issue();
  stage_dispatch();
  stage_fetch();

  CycleClass cls = CycleClass::kIdle;
  if (stats_.committed > committed_before) {
    cls = CycleClass::kBusy;
  } else if (stats_.rqueue_full_stall_cycles > rqueue_before) {
    cls = CycleClass::kRqueueFull;
  } else if (stats_.ruu_full_stalls > ruu_before) {
    cls = CycleClass::kRuuFull;
  } else if (stats_.lsq_full_stalls > lsq_before) {
    cls = CycleClass::kLsqFull;
  } else if (stats_.ifq_full_stall_cycles > ifq_before) {
    cls = CycleClass::kIfqFull;
  } else if (stats_.icache_stall_cycles > icache_before) {
    cls = CycleClass::kIcache;
  }
  ++stats_.cycle_classes[static_cast<usize>(cls)];

  stats_.ruu_occupancy.add(static_cast<double>(ruu_count_));
  stats_.lsq_occupancy.add(static_cast<double>(lsq_count_));
  stats_.ifq_occupancy.add(static_cast<double>(ifq_.size()));
  if (config_.reese.enabled) {
    stats_.rqueue_occupancy.add(static_cast<double>(rqueue_.size()));
  }

  ++now_;
  ++stats_.cycles;
}

// ---------------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------------

void Pipeline::predict_control(FetchedInst* fetched) {
  const Opcode op = fetched->inst.op;
  const Addr pc = fetched->pc;
  const Addr fallthrough = pc + 4;

  if (op == Opcode::kJal) {
    // Direct target is computable at fetch from the decoded instruction.
    fetched->predicted_taken = true;
    fetched->predicted_next = pc + 4 * static_cast<u64>(fetched->inst.imm);
    if (fetched->inst.rd == isa::kRaReg) ras_.push(fallthrough);
  } else if (op == Opcode::kJalr) {
    const bool is_return = fetched->inst.rs1 == isa::kRaReg &&
                           fetched->inst.rd == isa::kZeroReg;
    Addr target = 0;
    if (is_return) {
      target = ras_.pop();
      fetched->predicted_taken = true;
      fetched->predicted_next = target;
    } else if (btb_.lookup(pc, &target)) {
      fetched->predicted_taken = true;
      fetched->predicted_next = target;
    } else {
      // No target available: fetch falls through and the jump will repair
      // at dispatch (counts as a misprediction).
      fetched->predicted_taken = false;
      fetched->predicted_next = fallthrough;
    }
    if (fetched->inst.rd == isa::kRaReg) ras_.push(fallthrough);
  } else {
    // Conditional branch.
    bool taken = false;
    switch (config_.predictor) {
      case branch::PredictorKind::kNotTaken:
        taken = false;
        break;
      case branch::PredictorKind::kTaken:
        taken = true;
        break;
      case branch::PredictorKind::kBtfn:
        taken = fetched->inst.imm < 0;
        break;
      default: {
        const branch::BranchPrediction prediction =
            gshare_ != nullptr ? gshare_->predict(pc) : direction_->predict(pc);
        taken = prediction.taken;
        fetched->pred_meta = prediction.meta;
        fetched->used_direction_predictor = true;
        break;
      }
    }
    fetched->predicted_taken = taken;
    fetched->predicted_next =
        taken ? pc + 4 * static_cast<u64>(fetched->inst.imm) : fallthrough;
  }
  fetched->ras_checkpoint = ras_.checkpoint();
}

void Pipeline::stage_fetch() {
  if (fetch_done_ || halted_ || bad_pc_ || drain_fetch_stall_) return;
  if (now_ < fetch_stall_until_) {
    ++stats_.icache_stall_cycles;
    return;
  }
  if (ifq_.size() >= config_.ifq_size) {
    ++stats_.ifq_full_stall_cycles;
    return;
  }

  // One I-cache access covers this cycle's fetch block.
  const u32 latency = hierarchy_->inst_access(fetch_pc_);
  if (latency > config_.memory.il1.hit_latency) {
    fetch_stall_until_ = now_ + (latency - config_.memory.il1.hit_latency);
    ++stats_.icache_stall_cycles;
    return;
  }

  for (u32 fetched_count = 0;
       fetched_count < config_.fetch_width && ifq_.size() < config_.ifq_size;
       ++fetched_count) {
    // Fill the ring slot in place; the slot is recycled, so every field a
    // later stage reads unconditionally is (re)written here.
    FetchedInst& fetched = ifq_.emplace_back();
    fetched.pc = fetch_pc_;
    fetched.predicted_next = fetch_pc_ + 4;
    fetched.predicted_taken = false;
    fetched.used_direction_predictor = false;
    fetched.pred_meta = 0;
    fetched.is_pad = false;
    if (const isa::Instruction* decoded = decoded_at(fetch_pc_)) {
      fetched.inst = *decoded;
    } else {
      // Wrong-path fetch beyond the text segment: fabricate a bubble.
      fetched.inst = isa::Instruction{};  // NOP
      fetched.is_pad = true;
    }

    const bool is_control = isa::is_control(fetched.inst.op);
    if (is_control) predict_control(&fetched);

    fetch_pc_ = fetched.predicted_next;
    ++stats_.fetched;

    // A predicted-taken control transfer ends the fetch block.
    if (is_control && fetched.predicted_taken) break;
    // Stop fetching past HALT on what fetch believes is the path.
    if (fetched.inst.op == Opcode::kHalt) break;
  }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void Pipeline::execute_at_dispatch(RuuEntry* entry) {
  isa::ArchState* state = spec_mode_ ? &spec_state_ : &front_state_;
  state->pc = entry->pc;
  // Concrete-space instantiations: memory accesses dispatch directly
  // instead of through the DataSpace vtable.
  const isa::StepOut out =
      spec_mode_ ? isa::step(state, entry->inst, &spec_overlay_)
                 : isa::step(state, entry->inst, &direct_space_);
  entry->rs1_value = out.rs1_value;
  entry->rs2_value = out.rs2_value;
  entry->result = out.result;
  entry->mem_addr = out.compute.addr;
  entry->taken = out.compute.taken;
  entry->actual_next = out.next_pc;
}

void Pipeline::link_dependencies(RuuEntry* entry, u32 slot_index) {
  std::vector<RuuRef>& cv = spec_mode_ ? spec_cv_ : cv_;
  const isa::OpInfo& info = entry->inst.info();

  // Two unrolled operand links (a lambda here stayed out-of-line and showed
  // up as its own entry in dispatch-stage profiles). A producer's value is
  // available once its *first* execution finished — under the Franklin
  // scheme the entry stays incomplete through its duplicate execution, but
  // its result forwards after the first one.
  if (info.reads_rs1 && (info.is_fp_rs1 || entry->inst.rs1 != isa::kZeroReg)) {
    const RuuRef producer = cv[cv_key(entry->inst.rs1, info.is_fp_rs1)];
    if (ref_alive(producer)) {
      RuuEntry& producer_entry = ruu_[producer.slot];
      if (!producer_entry.completed && !producer_entry.first_done) {
        entry->dep_ready[0] = false;
        producer_entry.consumers.push_back(
            Consumer{{slot_index, entry->gen}, 0});
      }
    }
  }
  if (info.reads_rs2 && (info.is_fp_rs2 || entry->inst.rs2 != isa::kZeroReg)) {
    const RuuRef producer = cv[cv_key(entry->inst.rs2, info.is_fp_rs2)];
    if (ref_alive(producer)) {
      RuuEntry& producer_entry = ruu_[producer.slot];
      if (!producer_entry.completed && !producer_entry.first_done) {
        entry->dep_ready[1] = false;
        producer_entry.consumers.push_back(
            Consumer{{slot_index, entry->gen}, 1});
      }
    }
  }
  if (info.writes_rd && !(entry->inst.rd == isa::kZeroReg && !info.is_fp_rd)) {
    cv[cv_key(entry->inst.rd, info.is_fp_rd)] =
        RuuRef{slot_index, entry->gen};
  }
}

void Pipeline::enter_spec_mode() {
  spec_mode_ = true;
  spec_state_ = front_state_;
  spec_overlay_.clear();
  // Wrong-path dispatches must see the same in-flight producers the true
  // path created so far.
  spec_cv_ = cv_;
}

void Pipeline::stage_dispatch() {
  u32 dispatched_count = 0;
  while (dispatched_count < config_.decode_width && !ifq_.empty()) {
    const FetchedInst& fetched = ifq_.front();

    if (ruu_full()) {
      ++stats_.ruu_full_stalls;
      break;
    }
    const bool is_mem = isa::is_mem(fetched.inst.op);
    if (is_mem && lsq_count_ == config_.lsq_size) {
      ++stats_.lsq_full_stalls;
      break;
    }

    if (!spec_mode_) {
      if (fetched.is_pad || decoded_at(fetched.pc) == nullptr) {
        // The true path left the text segment: a program bug, not a
        // misprediction. Stop the machine.
        bad_pc_ = true;
        return;
      }
      assert(front_state_.pc == fetched.pc &&
             "true-path fetch stream diverged without a detected mispredict");
    }

    // Allocate the RUU slot at the tail.
    const u32 slot_index = ruu_index_at(ruu_count_);
    ++ruu_count_;
    RuuEntry& entry = ruu_[slot_index];
    entry.reset_for_dispatch(entry.gen + 1);
    entry.inst = fetched.inst;
    entry.pc = fetched.pc;
    // Sequence numbers count *true-path* instructions only, so they are
    // pure program order — independent of timing and squash behaviour.
    // (Fault schedules rely on this; wrong-path entries reuse the next
    // number but never reach any consumer of it.)
    entry.seq = next_seq_;
    if (!spec_mode_) ++next_seq_;
    entry.spec = spec_mode_;
    entry.is_control = isa::is_control(fetched.inst.op);
    entry.predicted_next = fetched.predicted_next;
    entry.used_direction_predictor = fetched.used_direction_predictor;
    entry.pred_meta = fetched.pred_meta;
    entry.ras_checkpoint = fetched.ras_checkpoint;
    entry.dispatch_cycle = now_;

    execute_at_dispatch(&entry);

    if (is_mem) {
      entry.lsq_ticket = lsq_ticket_head_ + lsq_count_;
      lsq_[lsq_index_at(lsq_count_)] = slot_index;
      ++lsq_count_;
    }
    link_dependencies(&entry, slot_index);
    // Ready at dispatch → straight into the issue scan; otherwise the
    // producer's completion wakes it into the mask (see complete_entry).
    if (entry.deps_ready()) unissued_mask_ |= ruu_mask_bit(slot_index);

    ++stats_.dispatched;
    if (entry.spec) ++stats_.wrongpath_dispatched;
    trace(TraceKind::kDispatch, entry.seq, entry.pc, entry.inst, entry.spec);
    ++dispatched_count;

    const bool was_spec = entry.spec;
    if (!was_spec && entry.actual_next != entry.predicted_next) {
      // Mispredicted control transfer (or a non-control modelling bug —
      // sequential instructions always match). Recovery happens when this
      // entry reaches writeback; until then the wrong path executes.
      assert(entry.is_control);
      entry.mispredicted = true;
      spec_branch_slot_ = slot_index;
      enter_spec_mode();
    }

    if (!was_spec && entry.inst.op == Opcode::kHalt) {
      // True-path HALT: nothing after it may dispatch or fetch.
      fetch_done_ = true;
      ifq_.clear();
      return;
    }

    ifq_.pop_front();
  }
}

// ---------------------------------------------------------------------------
// Issue
// ---------------------------------------------------------------------------

Pipeline::LoadPlan Pipeline::plan_load(u32 ruu_slot) {
  const RuuEntry& load = ruu_[ruu_slot];
  if (!load.dep_ready[0]) return LoadPlan::kBlocked;
  const Addr load_begin = load.mem_addr;
  const Addr load_end = load_begin + load.inst.info().mem_bytes;

  // Scan older LSQ entries from youngest to oldest; the youngest
  // overlapping store decides. The load locates itself in O(1) via the
  // absolute ticket assigned at dispatch (the previous head-relative scan
  // ran once per blocked-load re-evaluation, every cycle).
  const u32 position_of_load =
      static_cast<u32>(load.lsq_ticket - lsq_ticket_head_);
  assert(position_of_load < lsq_count_ &&
         lsq_[lsq_index_at(position_of_load)] == ruu_slot &&
         "load missing from LSQ");

  u32 index = lsq_index_at(position_of_load);
  for (u32 position = position_of_load; position > 0; --position) {
    index = (index == 0 ? config_.lsq_size : index) - 1;
    const u32 store_slot = lsq_[index];
    const RuuEntry& store = ruu_[store_slot];
    if (!store.is_store()) continue;
    if (!store.dep_ready[0]) return LoadPlan::kBlocked;  // address unknown
    const Addr store_begin = store.mem_addr;
    const Addr store_end = store_begin + store.inst.info().mem_bytes;
    const bool overlap = store_begin < load_end && load_begin < store_end;
    if (!overlap) continue;
    const bool covers = store_begin <= load_begin && store_end >= load_end;
    if (covers) {
      // Store-to-load forwarding once the store data is ready.
      return store.dep_ready[1] ? LoadPlan::kForward : LoadPlan::kBlocked;
    }
    // Partial overlap: wait until the store has fully executed, then go to
    // the cache.
    return store.completed ? LoadPlan::kCache : LoadPlan::kBlocked;
  }
  return LoadPlan::kCache;
}

void Pipeline::stage_issue() {
  u32 budget = config_.issue_width;

  const bool reese_scheme =
      config_.reese.enabled &&
      config_.reese.scheme == RedundancyScheme::kReese;
  const bool r_priority = reese_scheme && reese_priority();
  if (r_priority) {
    ++stats_.rpriority_cycles;
    reese_issue(&budget);
  }

  // P-stream issue: program order over the RUU, visiting only the slots
  // that actually await issue (unissued_mask_). A window full of in-flight
  // instructions costs two count-trailing-zeros loops instead of a walk
  // over the multi-cache-line entries. The two chunks (slots >= head, then
  // slots < head) reproduce ring program order exactly.
  if (ruu_mask_scan_) {
    if (budget > 0 && unissued_mask_ != 0) {
      const u64 head_low_bits = ruu_mask_bit(ruu_head_) - 1;
      const u64 chunks[2] = {unissued_mask_ & ~head_low_bits,
                             unissued_mask_ & head_low_bits};
      for (u64 chunk : chunks) {
        while (chunk != 0 && budget > 0) {
          const u32 slot_index = static_cast<u32>(__builtin_ctzll(chunk));
          chunk &= chunk - 1;
          try_issue_slot(slot_index, &budget);
        }
      }
    }
  } else {
    // ruu_size > 64: position walk (no in-tree config takes this path).
    for (u32 position = 0; position < ruu_count_ && budget > 0; ++position) {
      const u32 slot_index = ruu_index_at(position);
      const RuuEntry& entry = ruu_[slot_index];
      if (!entry.valid || entry.issued || entry.completed) continue;
      try_issue_slot(slot_index, &budget);
    }
  }

  if (reese_scheme && !r_priority) reese_issue(&budget);

  stats_.issue_per_cycle.add(config_.issue_width - budget);
}

void Pipeline::try_issue_slot(u32 slot_index, u32* budget) {
  // Via the mask scan the entry is always operand-ready; via the >64-RUU
  // fallback walk it may not be — the deps_ready checks below cover both.
  RuuEntry& entry = ruu_[slot_index];
  assert(entry.valid && !entry.issued && !entry.completed);

  if (entry.first_done) {
    // Franklin scheme: the duplicate execution competes for leftover
    // capacity under the R-stream resource rules.
    if (franklin_issue_second(slot_index)) --*budget;
    return;
  }

  const ExecClass exec_class = entry.inst.info().exec_class;
  Cycle complete_at = 0;

  if (exec_class == ExecClass::kLoad) {
    switch (plan_load(slot_index)) {
      case LoadPlan::kBlocked:
        return;
      case LoadPlan::kForward:
        complete_at = now_ + 1;
        break;
      case LoadPlan::kCache: {
        if (!fu_pool_.try_acquire(FuKind::kMemPort, now_, 1)) return;
        complete_at = now_ + hierarchy_->data_access(entry.mem_addr, false);
        if (mem_site_armed()) drain_mem_site_events(entry.pc, !entry.spec);
        break;
      }
    }
  } else if (exec_class == ExecClass::kStore) {
    // Address generation + store-buffer write; both operands must be
    // ready. The cache write happens at commit.
    if (!entry.deps_ready()) return;
    complete_at = now_ + 1;
  } else if (exec_class == ExecClass::kNone) {
    complete_at = now_ + 1;
  } else {
    if (!entry.deps_ready()) return;
    const OpTiming timing = op_timing(exec_class, config_);
    if (!fu_pool_.try_acquire(timing.fu, now_, timing.issue_latency)) return;
    complete_at = now_ + timing.result_latency;
  }

  entry.issued = true;
  unissued_mask_ &= ~ruu_mask_bit(slot_index);
  entry.issue_cycle = now_;
  schedule_p_event(complete_at, RuuRef{slot_index, entry.gen});
  trace(TraceKind::kIssue, entry.seq, entry.pc, entry.inst, entry.spec);
  ++stats_.issued_p;
  --*budget;
}

// ---------------------------------------------------------------------------
// Writeback
// ---------------------------------------------------------------------------

void Pipeline::schedule_p_event(Cycle when, RuuRef ref) {
  p_events_.schedule(when, now_, ref);
}

void Pipeline::schedule_r_event(Cycle when, u64 entry_id) {
  r_events_.schedule(when, now_, entry_id);
}

void Pipeline::stage_writeback() {
  // The empty() guards skip the whole take/recycle dance on quiet queues —
  // the R-side queues never hold anything outside REESE mode, and even
  // p_events_ is empty on stall-heavy cycles.

  // Recycle scheduler-window slots whose R instructions have cleared the
  // compare stage this cycle.
  if (!r_release_at_.empty()) {
    std::vector<u32> releases = r_release_at_.take(now_);
    for (u32 count : releases) {
      assert(r_inflight_ >= count);
      r_inflight_ -= count;
    }
    r_release_at_.recycle(std::move(releases));
  }

  if (!p_events_.empty()) {
    // Moved out of the queue: recovery during completion may not touch the
    // list again, but keep iteration robust against future modification.
    std::vector<RuuRef> refs = p_events_.take(now_);
    for (const RuuRef& ref : refs) {
      if (!ref_alive(ref)) continue;  // squashed in the meantime
      if (franklin_mode()) {
        if (!ruu_[ref.slot].first_done) {
          franklin_first_completion(ref.slot);
        } else {
          franklin_second_completion(ref.slot);
        }
      } else {
        complete_entry(ref.slot);
      }
    }
    p_events_.recycle(std::move(refs));
  }

  if (!r_events_.empty()) {
    std::vector<u64> ids = r_events_.take(now_);
    for (u64 id : ids) reese_complete(id);
    r_events_.recycle(std::move(ids));
  }
}

void Pipeline::complete_entry(u32 slot_index) {
  RuuEntry& entry = ruu_[slot_index];
  assert(entry.valid && entry.issued && !entry.completed);
  entry.completed = true;
  entry.complete_cycle = now_;
  trace(TraceKind::kComplete, entry.seq, entry.pc, entry.inst, entry.spec);

  for (const Consumer& consumer : entry.consumers) {
    if (!ref_alive(consumer.ref)) continue;
    RuuEntry& waiter = ruu_[consumer.ref.slot];
    waiter.dep_ready[consumer.operand] = true;
    // Both operands ready: the waiter re-enters the issue scan. (A waiter
    // with a pending dependency can never have issued or completed.)
    if (waiter.deps_ready()) {
      unissued_mask_ |= ruu_mask_bit(consumer.ref.slot);
    }
  }
  entry.consumers.clear();

  if (entry.is_control && !entry.spec) {
    ++stats_.branches_resolved;
    if (isa::is_cond_branch(entry.inst.op)) {
      ++stats_.cond_branches_resolved;
      if (entry.mispredicted) ++stats_.cond_branch_mispredicts;
    }
    if (entry.used_direction_predictor) {
      if (gshare_ != nullptr) {
        gshare_->update(entry.pc, entry.taken, entry.pred_meta);
      } else {
        direction_->update(entry.pc, entry.taken, entry.pred_meta);
      }
    }
    if (entry.taken && entry.inst.op != Opcode::kJal) {
      btb_.update(entry.pc, entry.actual_next);
    }
    if (entry.mispredicted) {
      ++stats_.branch_mispredicts;
      recover_from_mispredict(slot_index);
    }
  }
}

void Pipeline::recover_from_mispredict(u32 branch_slot) {
  assert(spec_mode_ && spec_branch_slot_ == branch_slot);
  const RuuEntry& branch = ruu_[branch_slot];

  // Squash everything younger than the branch (all of it is spec).
  while (ruu_count_ > 0) {
    const u32 tail_slot = ruu_index_at(ruu_count_ - 1);
    if (tail_slot == branch_slot) break;
    RuuEntry& victim = ruu_[tail_slot];
    assert(victim.valid && victim.spec);
    trace(TraceKind::kSquash, victim.seq, victim.pc, victim.inst, true);
    if (isa::is_mem(victim.inst.op)) {
      assert(lsq_count_ > 0);
      assert(lsq_[lsq_index_at(lsq_count_ - 1)] == tail_slot);
      --lsq_count_;
    }
    if (victim.site_faulted) {
      // The corrupted entry dies with the wrong path: masked by squash.
      victim.site_faulted = false;
      report_site_outcome(FaultOutcome::kMasked, victim.pc,
                          victim.site_fault_cycle);
    }
    victim.valid = false;
    ++victim.gen;
    victim.consumers.clear();
    unissued_mask_ &= ~ruu_mask_bit(tail_slot);
    --ruu_count_;
  }

  ifq_.clear();
  spec_mode_ = false;
  spec_overlay_.clear();

  // Repair speculative predictor state.
  if (branch.used_direction_predictor) {
    if (gshare_ != nullptr) {
      gshare_->repair(branch.pred_meta, branch.taken);
    } else {
      direction_->repair(branch.pred_meta, branch.taken);
    }
  }
  ras_.restore(branch.ras_checkpoint);

  // Redirect fetch after the recovery bubble.
  fetch_pc_ = branch.actual_next;
  fetch_stall_until_ =
      std::max(fetch_stall_until_, now_ + 1 + config_.mispredict_penalty);
}

// ---------------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------------

void Pipeline::free_ruu_head() {
  assert(ruu_count_ > 0);
  RuuEntry& head = ruu_[ruu_head_];
  assert(head.valid);
  if (isa::is_mem(head.inst.op)) {
    assert(lsq_count_ > 0 && lsq_[lsq_head_] == ruu_head_);
    if (++lsq_head_ == config_.lsq_size) lsq_head_ = 0;
    --lsq_count_;
    ++lsq_ticket_head_;
  }
  head.valid = false;
  ++head.gen;
  head.consumers.clear();
  unissued_mask_ &= ~ruu_mask_bit(ruu_head_);
  ruu_head_ = ruu_next(ruu_head_);
  --ruu_count_;
}

bool Pipeline::commit_head_baseline() {
  RuuEntry& head = ruu_[ruu_head_];
  if (!head.completed) return false;
  assert(!head.spec && "speculative instruction reached the RUU head");

  if (head.is_store()) {
    if (!fu_pool_.try_acquire(FuKind::kMemPort, now_, 1)) return false;
    hierarchy_->data_access(head.mem_addr, true);
    if (mem_site_armed()) drain_mem_site_events(head.pc, true);
  }

  if (head.site_faulted) {
    // No comparator on this path: the corruption reaches commit. It is SDC
    // when the struck state is architecturally consumed — a written
    // destination register, store data/address, a branch outcome or an OUT
    // operand (the same liveness rule the result-flip injector applies) —
    // and masked otherwise (x0 writes, HALT/NOP).
    const isa::OpInfo& info = head.inst.info();
    const bool live =
        (info.writes_rd &&
         (info.is_fp_rd || head.inst.rd != isa::kZeroReg)) ||
        head.is_store() || isa::is_cond_branch(head.inst.op) ||
        head.inst.op == Opcode::kOut;
    head.site_faulted = false;
    report_site_outcome(live ? FaultOutcome::kSdc : FaultOutcome::kMasked,
                        head.pc, head.site_fault_cycle);
  }

  if (fault_hook_ != nullptr && !config_.reese.enabled) {
    const FaultDecision decision =
        fault_hook_->on_instruction(head.seq, now_, head.pc, head.inst);
    if (decision.flip_p || decision.flip_r) {
      // The baseline has no comparator: every injected fault escapes.
      ++stats_.faults_injected;
      ++stats_.faults_undetected;
      fault_hook_->on_undetected(head.seq);
    }
  }

  if (head.inst.op == Opcode::kHalt) halted_ = true;
  trace(TraceKind::kCommit, head.seq, head.pc, head.inst, false);
  free_ruu_head();
  return true;
}

void Pipeline::stage_commit() {
  if (config_.reese.enabled &&
      config_.reese.scheme == RedundancyScheme::kReese) {
    reese_commit();
    reese_release();
    return;
  }
  // Baseline and Franklin both commit in order from the RUU head (Franklin
  // entries only complete after their duplicate execution compared).
  // Stats are updated once per commit group, not per instruction.
  u32 group = 0;
  while (group < config_.commit_width && ruu_count_ > 0) {
    if (!commit_head_baseline()) break;
    ++group;
    if (halted_) break;
  }
  stats_.committed += group;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

std::string Pipeline::report() const {
  std::string out;
  out += format("cycles %llu, committed %llu, IPC %.3f\n",
                static_cast<unsigned long long>(stats_.cycles),
                static_cast<unsigned long long>(stats_.committed),
                stats_.ipc());
  out += format(
      "  fetched %llu, dispatched %llu (%llu wrong-path), issued P %llu"
      " / R %llu\n",
      static_cast<unsigned long long>(stats_.fetched),
      static_cast<unsigned long long>(stats_.dispatched),
      static_cast<unsigned long long>(stats_.wrongpath_dispatched),
      static_cast<unsigned long long>(stats_.issued_p),
      static_cast<unsigned long long>(stats_.issued_r));
  out += format(
      "  branches %llu, mispredicts %llu (cond rate %.2f%%)\n",
      static_cast<unsigned long long>(stats_.branches_resolved),
      static_cast<unsigned long long>(stats_.branch_mispredicts),
      100.0 * stats_.mispredict_rate());
  out += format(
      "  stalls: ruu-full %llu, lsq-full %llu, icache %llu cycles,"
      " rqueue-full %llu cycles\n",
      static_cast<unsigned long long>(stats_.ruu_full_stalls),
      static_cast<unsigned long long>(stats_.lsq_full_stalls),
      static_cast<unsigned long long>(stats_.icache_stall_cycles),
      static_cast<unsigned long long>(stats_.rqueue_full_stall_cycles));
  out += "  cycle classes: " + stats_.cycle_class_summary() + "\n";
  out += format(
      "  occupancy: ruu %.1f, lsq %.1f, ifq %.1f, rqueue %.1f\n",
      stats_.ruu_occupancy.mean(), stats_.lsq_occupancy.mean(),
      stats_.ifq_occupancy.mean(), stats_.rqueue_occupancy.mean());
  if (config_.reese.enabled) {
    out += format(
        "  REESE: enqueued %llu, compared %llu, skipped %llu,"
        " errors detected %llu\n",
        static_cast<unsigned long long>(stats_.rqueue_enqueued),
        static_cast<unsigned long long>(stats_.comparisons),
        static_cast<unsigned long long>(stats_.rskipped),
        static_cast<unsigned long long>(stats_.errors_detected));
    out += "  " + stats_.separation.to_string("P->R separation") + "\n";
  }
  out += hierarchy_->report();
  return out;
}

}  // namespace reese::core

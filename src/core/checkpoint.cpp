// Pipeline checkpoint/restore: the drain barrier and whole-state
// serialization (DESIGN.md §14).
//
// Snapshots land only on a drained pipeline: drain_to_barrier() suppresses
// fetch and cycles until every in-flight structure is empty, so the state
// that needs to persist collapses to the architectural machine (registers,
// memory, PC), the history structures (predictor, BTB, RAS, cache/TLB tags,
// FU next-free cycles), the monotonic id/sequence counters, and the stats.
// Nothing transient — RUU entries, LSQ, fetch queue, event queues, spec
// overlay, create-vector — is serialized; a freshly constructed pipeline is
// already in the drained configuration for all of it. (The per-slot RUU
// `gen` counters restart at zero after a restore; they only ever compare
// against refs recorded in the same run segment, and every pre-snapshot ref
// is dead either way — slot invalid — so behavior is unaffected.)
#include <cassert>

#include "common/snapshot.h"
#include "core/pipeline.h"

namespace reese::core {

namespace {

// Section tags ("ARCH", "MEMY", ...) checked by load_state so a reader that
// drifts out of sync fails at the next component boundary.
constexpr u32 kTagArch = 0x41524348;
constexpr u32 kTagMemory = 0x4D454D59;
constexpr u32 kTagRun = 0x52554E21;
constexpr u32 kTagBranch = 0x42505244;
constexpr u32 kTagHier = 0x48494552;
constexpr u32 kTagFu = 0x4655504C;
constexpr u32 kTagReese = 0x52455345;
constexpr u32 kTagStats = 0x53544154;

void save_arch(SnapshotWriter* writer, const isa::ArchState& state) {
  for (u64 reg : state.xregs) writer->put_u64(reg);
  for (u64 reg : state.fregs) writer->put_u64(reg);
  writer->put_u64(state.pc);
  writer->put_bool(state.halted);
  writer->put_u64(state.out_hash);
  writer->put_u64(state.out_count);
}

void load_arch(SnapshotReader* reader, isa::ArchState* state) {
  for (u64& reg : state->xregs) reg = reader->get_u64();
  for (u64& reg : state->fregs) reg = reader->get_u64();
  state->pc = reader->get_u64();
  state->halted = reader->get_bool();
  state->out_hash = reader->get_u64();
  state->out_count = reader->get_u64();
}

}  // namespace

bool Pipeline::quiescent() const {
  return ifq_.empty() && ruu_count_ == 0 && lsq_count_ == 0 && !spec_mode_ &&
         rqueue_.empty() && r_inflight_ == 0 && p_events_.empty() &&
         r_events_.empty() && r_release_at_.empty();
}

bool Pipeline::drain_to_barrier(Cycle limit) {
  drain_fetch_stall_ = true;
  const Cycle start = now_;
  while (!quiescent() && !halted_ && !bad_pc_) {
    if (now_ - start >= limit) break;
    cycle();
  }
  drain_fetch_stall_ = false;
  return quiescent();
}

void Pipeline::save_state(SnapshotWriter* writer) const {
  assert(quiescent() && "pipeline must be drained before save_state");

  writer->put_section(kTagArch);
  save_arch(writer, front_state_);

  writer->put_section(kTagMemory);
  memory_.save(writer);

  writer->put_section(kTagRun);
  writer->put_u64(now_);
  writer->put_u64(next_seq_);
  writer->put_u64(fetch_pc_);
  writer->put_u64(fetch_stall_until_);
  writer->put_bool(halted_);
  writer->put_bool(bad_pc_);
  writer->put_bool(fetch_done_);
  writer->put_u64(lsq_ticket_head_);

  writer->put_section(kTagBranch);
  direction_->save_state(writer);
  btb_.save(writer);
  ras_.save(writer);

  writer->put_section(kTagHier);
  hierarchy_->save(writer);

  writer->put_section(kTagFu);
  fu_pool_.save(writer);

  writer->put_section(kTagReese);
  rqueue_.save(writer);
  writer->put_u64(reexec_counter_);
  writer->put_u64(r_issue_next_id_);

  writer->put_section(kTagStats);
  stats_.save(writer);
}

void Pipeline::load_state(SnapshotReader* reader) {
  assert(quiescent() && "load_state target must be freshly constructed");

  if (!reader->expect_section(kTagArch)) return;
  load_arch(reader, &front_state_);

  if (!reader->expect_section(kTagMemory)) return;
  memory_.load(reader);

  if (!reader->expect_section(kTagRun)) return;
  now_ = reader->get_u64();
  next_seq_ = reader->get_u64();
  fetch_pc_ = reader->get_u64();
  fetch_stall_until_ = reader->get_u64();
  halted_ = reader->get_bool();
  bad_pc_ = reader->get_bool();
  fetch_done_ = reader->get_bool();
  lsq_ticket_head_ = reader->get_u64();

  if (!reader->expect_section(kTagBranch)) return;
  direction_->load_state(reader);
  btb_.load(reader);
  ras_.load(reader);

  if (!reader->expect_section(kTagHier)) return;
  hierarchy_->load(reader);

  if (!reader->expect_section(kTagFu)) return;
  fu_pool_.load(reader);

  if (!reader->expect_section(kTagReese)) return;
  rqueue_.load(reader);
  reexec_counter_ = reader->get_u64();
  r_issue_next_id_ = reader->get_u64();

  if (!reader->expect_section(kTagStats)) return;
  stats_.load(reader);
}

}  // namespace reese::core

// Core (pipeline) configuration.
//
// Defaults reproduce Table 1 of the paper — the "starting configuration":
// fetch queue 16, 8-wide pipeline stages, RUU 16, LSQ 8, 4 integer ALUs +
// 1 integer mult/div, mirrored FP units, 2 memory ports, gshare.
#pragma once

#include <string>

#include "branch/predictor.h"
#include "common/types.h"
#include "mem/hierarchy.h"

namespace reese::core {

/// Which time-redundancy scheme the core runs (when redundancy is enabled).
enum class RedundancyScheme : u8 {
  /// The paper's contribution: completed P instructions enter the
  /// R-stream Queue, freeing their RUU slot; re-execution is scheduled
  /// from the queue into idle capacity.
  kReese,
  /// Franklin's scheme ([24], the paper's §3 point of comparison):
  /// instructions are duplicated *at the dynamic scheduler* — each RUU
  /// entry must execute twice before it can commit, holding its window
  /// slot the whole time. No R-queue, no early release.
  kFranklin,
};

/// REESE-specific knobs. `enabled == false` gives the baseline processor.
struct ReeseConfig {
  bool enabled = false;

  RedundancyScheme scheme = RedundancyScheme::kReese;

  /// R-stream Queue capacity (paper: initial maximum of 32 entries).
  u32 rqueue_size = 32;

  /// Release completed P-stream instructions from the RUU head into the
  /// R-stream Queue before their comparison completes (§4.3's "remove
  /// instructions from the pipeline before the instructions are ready to
  /// commit"). Off = the P instruction holds its RUU slot until its R copy
  /// has executed and compared.
  bool early_release = true;

  /// When R-queue occupancy reaches this percentage, R-stream instructions
  /// get issue priority over P-stream ones (the paper's counter-based
  /// "must schedule R" rule; avoids livelock from a full queue).
  u32 priority_watermark_pct = 75;

  /// R-stream instructions re-enter the pipeline through the scheduler
  /// (§5.1) and occupy scheduler-window (RUU) capacity while in flight.
  /// Ablatable to isolate the structural cost from FU contention.
  bool window_sharing = false;

  /// Cycles an R instruction holds its window slot past execution
  /// (writeback + compare stages).
  u32 compare_stage_cycles = 1;

  /// Cycles an R-stream operation occupies its (pipelined) functional unit:
  /// the re-execution result is staged through the unit's output latch into
  /// the comparator, so the unit accepts a new operation every
  /// `r_fu_occupancy` cycles. 1 = same as P stream.
  u32 r_fu_occupancy = 2;

  /// R-stream stores re-verify their address/value through a memory port
  /// (AGU + store-buffer check) instead of a plain ALU. Raises REESE's
  /// port pressure, which is what the paper's Figure 5 relieves.
  bool r_store_uses_port = true;

  /// Re-execute one out of every `reexec_interval` instructions (§7 future
  /// work). 1 = full duplication (the paper's REESE). k>1 trades coverage
  /// for speed; non-selected instructions flow through the queue untested.
  u32 reexec_interval = 1;

  /// Minimum cycles between a P-stream execution and its R-stream
  /// re-execution (§2's Δt: detection is only guaranteed when the two
  /// executions are separated by more than the fault duration). 0 = no
  /// enforcement, the paper's configuration — the queue traversal delay
  /// provides natural separation, measured by stats.separation.
  u32 min_separation = 0;

  /// Cycles fetch freezes when a P/R comparison mismatch is detected
  /// (models the pipeline + R-queue flush and refetch of §4.3).
  u32 error_recovery_penalty = 24;
};

struct CoreConfig {
  // Pipeline widths ("Max IPC for Other Pipeline Stages" = 8 in Table 1).
  u32 fetch_width = 8;
  u32 decode_width = 8;
  u32 issue_width = 8;
  u32 commit_width = 8;

  u32 ifq_size = 16;  ///< fetch queue entries
  u32 ruu_size = 16;  ///< register update unit entries
  u32 lsq_size = 8;   ///< load/store queue entries

  // Functional units (Table 1: 4 IntAdd, 1 IntM/D, same for FP, 2 mem ports).
  u32 int_alu_count = 4;
  u32 int_mult_count = 1;
  u32 fp_alu_count = 4;
  u32 fp_mult_count = 1;
  u32 mem_port_count = 2;

  // Operation latencies (cycles until result; SimpleScalar defaults).
  u32 int_mul_latency = 3;    // pipelined
  u32 int_div_latency = 20;   // unpipelined
  u32 fp_add_latency = 2;     // pipelined
  u32 fp_mul_latency = 4;     // pipelined
  u32 fp_div_latency = 12;    // unpipelined
  u32 fp_sqrt_latency = 24;   // unpipelined

  /// Extra fetch-redirect bubble after a mispredicted branch resolves.
  u32 mispredict_penalty = 2;

  branch::PredictorKind predictor = branch::PredictorKind::kGshare;
  u32 gshare_history_bits = 12;
  u32 btb_entries = 512;
  u32 btb_associativity = 4;
  u32 ras_depth = 16;

  mem::HierarchyConfig memory;
  ReeseConfig reese;

  /// One-line description for reports.
  std::string summary() const;
};

// --- canned configurations used by the experiment harness -------------------

/// Table 1 starting configuration, baseline (no REESE).
CoreConfig starting_config();

/// Enable REESE with `spare_alus` extra integer ALUs and `spare_mults`
/// extra integer multiplier/dividers on top of `base`.
CoreConfig with_reese(CoreConfig base, u32 spare_alus = 0, u32 spare_mults = 0);

}  // namespace reese::core

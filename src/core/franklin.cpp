// Franklin's time-redundancy scheme ("A Study of Time Redundant Fault
// Tolerance Techniques for Superscalar Processors", [24] in the paper) —
// the related work REESE improves on.
//
// Instructions are duplicated at the dynamic scheduler: every RUU entry
// must execute twice before it can commit, occupying its window slot for
// both executions. Dependent instructions are woken by the first
// execution (forwarding before comparison, as in REESE), but the entry
// only becomes committable after the duplicate execution's result has
// been compared. There is no R-stream Queue and no early release — which
// is exactly the structural pressure REESE's queue removes.
#include <algorithm>
#include <cassert>

#include "common/bitutil.h"
#include "core/pipeline.h"

namespace reese::core {

using isa::ExecClass;

void Pipeline::franklin_first_completion(u32 slot_index) {
  RuuEntry& entry = ruu_[slot_index];
  assert(franklin_mode() && !entry.first_done);
  entry.first_done = true;
  entry.complete_cycle = now_;
  trace(TraceKind::kComplete, entry.seq, entry.pc, entry.inst, entry.spec);

  // Wake consumers now: results forward to dependents before comparison
  // (only the commit is gated, §4.3 of the paper describes the same rule).
  for (const Consumer& consumer : entry.consumers) {
    if (!ref_alive(consumer.ref)) continue;
    RuuEntry& waiter = ruu_[consumer.ref.slot];
    waiter.dep_ready[consumer.operand] = true;
    if (waiter.deps_ready()) {
      unissued_mask_ |= ruu_mask_bit(consumer.ref.slot);
    }
  }
  entry.consumers.clear();

  // Branch resolution happens on the primary execution; the duplicate only
  // verifies it.
  if (entry.is_control && !entry.spec) {
    ++stats_.branches_resolved;
    if (isa::is_cond_branch(entry.inst.op)) {
      ++stats_.cond_branches_resolved;
      if (entry.mispredicted) ++stats_.cond_branch_mispredicts;
    }
    if (entry.used_direction_predictor) {
      direction_->update(entry.pc, entry.taken, entry.pred_meta);
    }
    if (entry.taken && entry.inst.op != isa::Opcode::kJal) {
      btb_.update(entry.pc, entry.actual_next);
    }
    if (entry.mispredicted) {
      ++stats_.branch_mispredicts;
      recover_from_mispredict(slot_index);
    }
  }

  // Create the comparator's stored copy; the fault hook may corrupt it
  // (or schedule a flip of the duplicate execution's output).
  entry.fr_p_copy = entry.result;
  if (!entry.spec && fault_hook_ != nullptr) {
    const FaultDecision decision =
        fault_hook_->on_instruction(entry.seq, now_, entry.pc, entry.inst);
    if (decision.flip_p || decision.flip_r) {
      entry.fr_faulted = true;
      entry.fr_fault_bit = decision.bit % 64;
      entry.fr_fault_cycle = now_;
      ++stats_.faults_injected;
      if (decision.flip_p) {
        entry.fr_p_copy = flip_bit(entry.fr_p_copy, entry.fr_fault_bit);
      }
      entry.fr_flip_r = decision.flip_r;
    }
  }

  // Re-arm for the duplicate execution; the entry re-enters the issue scan.
  entry.issued = false;
  unissued_mask_ |= ruu_mask_bit(slot_index);
}

bool Pipeline::franklin_issue_second(u32 slot_index) {
  RuuEntry& entry = ruu_[slot_index];
  assert(entry.first_done && !entry.issued && !entry.completed);

  const ExecClass exec_class = entry.inst.info().exec_class;
  const u32 r_occupancy = std::max<u32>(1, config_.reese.r_fu_occupancy);
  Cycle complete_at = 0;
  if (exec_class == ExecClass::kLoad) {
    if (!fu_pool_.try_acquire(FuKind::kMemPort, now_, 1)) return false;
    complete_at = now_ + hierarchy_->data_access(entry.mem_addr, false);
  } else if (exec_class == ExecClass::kStore) {
    const FuKind unit = config_.reese.r_store_uses_port ? FuKind::kMemPort
                                                        : FuKind::kIntAlu;
    if (!fu_pool_.try_acquire(unit, now_, 1)) return false;
    complete_at = now_ + 1;
  } else if (exec_class == ExecClass::kNone) {
    complete_at = now_ + 1;
  } else {
    OpTiming timing = op_timing(exec_class, config_);
    if (timing.fu == FuKind::kIntAlu || timing.fu == FuKind::kFpAlu) {
      timing.issue_latency = std::max(timing.issue_latency, r_occupancy);
    }
    if (!fu_pool_.try_acquire(timing.fu, now_, timing.issue_latency)) {
      return false;
    }
    complete_at = now_ + timing.result_latency;
  }

  entry.issued = true;
  unissued_mask_ &= ~ruu_mask_bit(slot_index);
  stats_.separation.add(now_ - entry.issue_cycle);
  schedule_p_event(complete_at, RuuRef{slot_index, entry.gen});
  trace(TraceKind::kRIssue, entry.seq, entry.pc, entry.inst, entry.spec);
  ++stats_.issued_r;
  return true;
}

void Pipeline::franklin_second_completion(u32 slot_index) {
  RuuEntry& entry = ruu_[slot_index];
  assert(entry.first_done && !entry.completed);
  entry.completed = true;

  if (entry.spec) return;  // wrong-path duplicates are never compared

  const ReexecOutcome outcome = recompute_and_compare(
      entry.inst, entry.pc, entry.rs1_value, entry.rs2_value, entry.mem_addr,
      entry.actual_next, entry.fr_p_copy, entry.result, entry.fr_flip_r,
      entry.fr_fault_bit);
  ++stats_.comparisons;
  ++stats_.committed_r;
  trace(TraceKind::kRComplete, entry.seq, entry.pc, entry.inst, false);

  if (outcome.mismatch) {
    ++stats_.errors_detected;
    trace(TraceKind::kError, entry.seq, entry.pc, entry.inst, false);
    fetch_stall_until_ = std::max(
        fetch_stall_until_, now_ + config_.reese.error_recovery_penalty);
    if (entry.fr_faulted && fault_hook_ != nullptr) {
      fault_hook_->on_detected(entry.seq, entry.fr_fault_cycle, now_);
      stats_.detection_latency.add(now_ - entry.fr_fault_cycle);
    }
  } else if (entry.fr_faulted && fault_hook_ != nullptr) {
    ++stats_.faults_undetected;
    fault_hook_->on_undetected(entry.seq);
  }
}

}  // namespace reese::core

// The out-of-order superscalar core, SimpleScalar sim-outorder style, with
// the REESE extensions.
//
// Pipeline (Figure 1 of the paper):
//
//   Fetch -> Dispatch -> Sched -> Exec/Mem -> Writeback -> [R-Queue] -> Commit
//
// Modelling approach (execution-driven, like sim-outorder):
//  * Instructions execute *functionally, in program order, at dispatch*
//    against the front-end architectural state. The RUU then tracks only
//    timing: register dependencies via a create-vector, structural hazards
//    via the FU pool, memory ordering via the LSQ.
//  * When a branch dispatches and its predicted next-PC differs from the
//    just-computed actual next-PC, the core enters "spec mode": younger
//    instructions keep dispatching down the wrong path against a
//    copy-on-write register/memory overlay (realistic wrong-path cache
//    pollution) until the branch reaches writeback, which squashes them.
//  * REESE: completed P instructions are released from the RUU head into
//    the R-stream Queue carrying operands + result; leftover issue slots
//    and functional units re-execute them in FIFO order; results are
//    compared, then the instruction commits. A full R-queue back-pressures
//    the RUU (the paper's overflow discussion in §4.3).
//
// Stage evaluation order within one cycle is commit, writeback, issue,
// dispatch, fetch (same as sim-outorder's main loop) so results written
// back in cycle N can feed a dependent issue in cycle N.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "branch/predictor.h"
#include "core/config.h"
#include "core/event_queue.h"
#include "core/fault_hook.h"
#include "core/fu_pool.h"
#include "core/rstream.h"
#include "core/spec_overlay.h"
#include "core/stats.h"
#include "core/trace.h"
#include "isa/executor.h"
#include "isa/program.h"
#include "mem/hierarchy.h"

namespace reese::core {

/// Why run() returned.
enum class StopReason : u8 {
  kCommitTarget,  ///< reached the requested committed-instruction count
  kHalted,        ///< the program executed HALT
  kBadPc,         ///< the true path left the text segment (program bug)
  kCycleLimit,    ///< safety limit hit (likely a modelling deadlock)
};

const char* stop_reason_name(StopReason reason);

class Pipeline {
 public:
  /// `program` must outlive the pipeline. A fresh memory image is created
  /// and the program's data is loaded into it.
  Pipeline(const isa::Program& program, const CoreConfig& config);
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Simulate until `commit_target` instructions have committed (or HALT /
  /// bad PC / `cycle_limit` cycles). Callable repeatedly; state persists.
  StopReason run(u64 commit_target, Cycle cycle_limit = ~Cycle{0});

  /// Advance exactly one cycle.
  void cycle();

  // --- checkpoint/restore (checkpoint.cpp) --------------------------------

  /// True when no in-flight microarchitectural state remains: fetch queue,
  /// RUU, LSQ, event queues and R-stream queue empty, no wrong-path
  /// speculation, no outstanding R executions.
  bool quiescent() const;

  /// Suppress fetch and keep cycling until quiescent() — the drain barrier
  /// snapshots land on. Drain cycles are part of simulated execution (they
  /// advance the clock and the per-cycle stats deterministically), so two
  /// runs that drain at the same commit counts stay bit-identical whether
  /// or not either was killed and resumed in between. Returns false if the
  /// pipeline fails to quiesce within `limit` cycles (a modelling bug).
  bool drain_to_barrier(Cycle limit = 1'000'000);

  /// Serialize the complete simulation state (architectural state, memory
  /// image, predictor/BTB/RAS, cache/TLB tags, FU pool, R-queue id state,
  /// stats). Requires quiescent().
  void save_state(SnapshotWriter* writer) const;

  /// Restore save_state() output into this pipeline. The pipeline must be
  /// freshly constructed from the same program and configuration; errors
  /// (truncation, geometry mismatches) latch on the reader.
  void load_state(SnapshotReader* reader);

  const CoreStats& stats() const { return stats_; }
  const CoreConfig& config() const { return config_; }
  mem::Hierarchy& hierarchy() { return *hierarchy_; }
  FuPool& fu_pool() { return fu_pool_; }

  /// Front-end architectural state (the in-order functional machine). After
  /// draining, this is the golden final state for equivalence checks.
  const isa::ArchState& arch_state() const { return front_state_; }
  mem::MainMemory& memory() { return memory_; }

  bool halted() const { return halted_; }

  /// Install a fault-injection hook (may be nullptr). Not owned. The
  /// hook's site() is cached here: a non-kResult site arms the per-cycle
  /// component-strike poll (site_faults.cpp).
  void set_fault_hook(FaultHook* hook) {
    fault_hook_ = hook;
    fault_site_ = hook != nullptr ? hook->site() : FaultSite::kResult;
  }

  /// Install a pipeline tracer (may be nullptr). Not owned.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Multi-line stats report.
  std::string report() const;

 private:
  // --- internal structures ----------------------------------------------

  /// A fetched instruction waiting in the fetch queue.
  struct FetchedInst {
    isa::Instruction inst;
    Addr pc = 0;
    Addr predicted_next = 0;
    bool predicted_taken = false;
    bool used_direction_predictor = false;
    u64 pred_meta = 0;
    branch::ReturnAddressStack::Checkpoint ras_checkpoint{};
    bool is_pad = false;  ///< fabricated NOP for an out-of-text fetch PC
  };

  /// Handle to an RUU slot that survives slot reuse.
  struct RuuRef {
    u32 slot = 0;
    u32 gen = 0;
  };

  struct Consumer {
    RuuRef ref;
    u8 operand = 0;  ///< 0 = rs1 dependency, 1 = rs2 dependency
  };

  struct RuuEntry {
    bool valid = false;
    u32 gen = 0;
    isa::Instruction inst;
    Addr pc = 0;
    InstSeq seq = 0;
    bool spec = false;

    // Values captured by dispatch-time functional execution.
    u64 rs1_value = 0;
    u64 rs2_value = 0;
    u64 result = 0;
    Addr mem_addr = 0;
    bool taken = false;
    Addr actual_next = 0;

    // Prediction bookkeeping (control instructions).
    bool is_control = false;
    Addr predicted_next = 0;
    bool mispredicted = false;
    bool used_direction_predictor = false;
    u64 pred_meta = 0;
    branch::ReturnAddressStack::Checkpoint ras_checkpoint{};

    // Scheduling state.
    bool dep_ready[2] = {true, true};
    bool issued = false;
    bool completed = false;
    bool released = false;  ///< copied into the R-queue (early release off)

    // Component-site campaigns: a strike landed in this entry's stored
    // result (kRuu) or effective address (kLsq) and has not resolved yet.
    bool site_faulted = false;
    Cycle site_fault_cycle = 0;

    // Franklin-scheme ([24]) dual execution: the entry must execute twice
    // before it may commit; `first_done` marks the primary execution.
    bool first_done = false;
    u64 fr_p_copy = 0;       ///< stored first-execution result (comparator
                             ///< reference; fault flips land here)
    bool fr_faulted = false;
    bool fr_flip_r = false;
    unsigned fr_fault_bit = 0;
    Cycle fr_fault_cycle = 0;
    Cycle dispatch_cycle = 0;
    Cycle issue_cycle = 0;
    Cycle complete_cycle = 0;
    std::vector<Consumer> consumers;

    bool deps_ready() const { return dep_ready[0] && dep_ready[1]; }
    bool is_load() const { return isa::is_load(inst.op); }
    bool is_store() const { return isa::is_store(inst.op); }

    /// Absolute LSQ ticket (memory ops only): position in the LSQ equals
    /// `lsq_ticket - lsq_ticket_head_`, so plan_load never scans to locate
    /// itself.
    u64 lsq_ticket = 0;

    /// Re-arm a recycled slot for a new dispatch. Only the fields dispatch
    /// does not overwrite are reset — a whole-struct `*this = RuuEntry{}`
    /// copied ~200 bytes per dispatched instruction and dominated the
    /// profile. The consumers vector keeps its capacity (the one heap
    /// block in the entry).
    void reset_for_dispatch(u32 new_gen) {
      consumers.clear();
      valid = true;
      gen = new_gen;
      mispredicted = false;
      dep_ready[0] = dep_ready[1] = true;
      issued = false;
      completed = false;
      released = false;
      site_faulted = false;
      site_fault_cycle = 0;
      first_done = false;
      fr_p_copy = 0;
      fr_faulted = false;
      fr_flip_r = false;
      fr_fault_bit = 0;
      fr_fault_cycle = 0;
      issue_cycle = 0;
      complete_cycle = 0;
    }
  };

  /// Fixed-capacity FIFO for the fetch queue. The previous std::vector IFQ
  /// paid an O(n) element shift per dispatched instruction
  /// (`erase(begin())`); this ring pops the head in O(1) and never
  /// reallocates after construction. Ring indices wrap by compare, not by
  /// `%` — the capacity is not a power of two, so modulo is a hardware
  /// divide on the hottest per-instruction paths.
  class FetchRing {
   public:
    void init(u32 capacity) {
      ring_.resize(capacity);
      capacity_ = capacity;
    }
    bool empty() const { return count_ == 0; }
    usize size() const { return count_; }
    FetchedInst& front() { return ring_[head_]; }
    /// Claim the tail slot for in-place filling (avoids copying the
    /// ~100-byte FetchedInst twice per fetched instruction).
    FetchedInst& emplace_back() {
      u32 tail = head_ + count_;
      if (tail >= capacity_) tail -= capacity_;
      ++count_;
      return ring_[tail];
    }
    void pop_front() {
      if (++head_ == capacity_) head_ = 0;
      --count_;
    }
    void clear() {
      head_ = 0;
      count_ = 0;
    }

   private:
    std::vector<FetchedInst> ring_;
    u32 head_ = 0;
    u32 count_ = 0;
    u32 capacity_ = 0;
  };

  // --- per-stage helpers (pipeline.cpp) -----------------------------------

  void stage_fetch();
  void stage_dispatch();
  void stage_issue();
  void stage_writeback();
  void stage_commit();

  /// Predict the next fetch PC for a just-fetched control instruction and
  /// fill the prediction fields of `fetched`.
  void predict_control(FetchedInst* fetched);

  /// Dispatch-time functional execution of one instruction.
  void execute_at_dispatch(RuuEntry* entry);

  /// Register-dependency linking through the create-vector.
  void link_dependencies(RuuEntry* entry, u32 slot);

  /// Issue plan for a load under LSQ ordering rules: blocked (unknown or
  /// unready older store), forwarded from an older store (1 cycle, no
  /// memory port), or a D-cache access (port + cache latency).
  enum class LoadPlan : u8 { kBlocked, kForward, kCache };
  LoadPlan plan_load(u32 ruu_slot);

  /// Mark entry complete, wake consumers, resolve branches.
  void complete_entry(u32 slot);

  /// Squash all RUU/LSQ/IFQ entries younger than `branch_slot` and redirect
  /// fetch to the branch's actual target.
  void recover_from_mispredict(u32 branch_slot);

  /// Baseline commit of the RUU head entry (stores write the cache).
  /// Returns false if the head cannot commit this cycle.
  bool commit_head_baseline();

  // --- REESE (reese.cpp) ---------------------------------------------------

  /// Move completed RUU-head instructions into the R-stream Queue.
  void reese_release();

  /// Issue R-stream instructions into leftover capacity; strict FIFO order.
  /// `budget` is the remaining issue bandwidth this cycle.
  void reese_issue(u32* budget);

  /// An R-stream execution finished: re-run the computation, compare with
  /// the stored P result, flag mismatches.
  void reese_complete(u64 entry_id);

  /// Final in-order commit from the R-queue head.
  void reese_commit();

  /// True when R-stream should get issue priority this cycle (§4.3's
  /// occupancy counters).
  bool reese_priority() const;

  /// Re-run an instruction from stored operands and compare against the
  /// stored primary result — the comparator shared by the REESE R-stream
  /// and the Franklin dual-execution scheme.
  struct ReexecOutcome {
    u64 value = 0;
    bool mismatch = false;
  };
  ReexecOutcome recompute_and_compare(const isa::Instruction& inst, Addr pc,
                                      u64 rs1_value, u64 rs2_value,
                                      Addr mem_addr, Addr p_next,
                                      u64 p_result, u64 load_value,
                                      bool flip_r, unsigned fault_bit) const;

  // --- component fault sites (site_faults.cpp) -----------------------------

  /// Poll the hook for a strike and deliver it to the targeted structure.
  /// Called once per cycle (before the stages) when fault_site_ != kResult.
  void poll_site_fault();
  void strike_ruu(const SiteStrike& strike);
  void strike_rqueue(const SiteStrike& strike);
  void strike_lsq(const SiteStrike& strike);
  void strike_predictor(const SiteStrike& strike);
  void strike_btb(const SiteStrike& strike);
  void strike_dcache(const SiteStrike& strike);
  void strike_dtlb(const SiteStrike& strike);
  /// Report a resolved strike (injected_at = the strike cycle).
  void report_site_outcome(FaultOutcome outcome, Addr pc, Cycle injected_at);
  /// After a data_access(), convert poison consumptions/clears recorded by
  /// the D-L1/D-TLB into site outcomes attributed to `pc`. `architectural`
  /// is false for wrong-path accesses (a squashed consumer masks the upset).
  void drain_mem_site_events(Addr pc, bool architectural);
  /// True when the active site poisons memory structures — gates the
  /// drain calls after the four data-access points.
  bool mem_site_armed() const {
    return fault_site_ == FaultSite::kDCache ||
           fault_site_ == FaultSite::kDTlb;
  }

  // --- Franklin scheme (franklin.cpp) --------------------------------------

  bool franklin_mode() const {
    return config_.reese.enabled &&
           config_.reese.scheme == RedundancyScheme::kFranklin;
  }
  /// First-execution completion: wake consumers, resolve branches, re-arm
  /// the entry for its duplicate execution.
  void franklin_first_completion(u32 slot_index);
  /// Second-execution completion: compare and mark committable.
  void franklin_second_completion(u32 slot_index);
  /// Issue the duplicate execution of `entry` (R-stream resource rules).
  /// Returns false if resources are unavailable this cycle.
  bool franklin_issue_second(u32 slot_index);

  // --- small utilities -----------------------------------------------------

  RuuEntry& slot(u32 index) { return ruu_[index]; }
  bool ref_alive(const RuuRef& ref) const {
    return ruu_[ref.slot].valid && ruu_[ref.slot].gen == ref.gen;
  }
  // Ring arithmetic by compare-and-subtract: the ring sizes are config
  // values (not powers of two), so `%` would be an integer divide on paths
  // run several times per simulated instruction.
  u32 ruu_index_at(u32 position) const {  // position 0 == head
    u32 index = ruu_head_ + position;
    if (index >= config_.ruu_size) index -= config_.ruu_size;
    return index;
  }
  u32 ruu_next(u32 index) const {
    return ++index == config_.ruu_size ? 0 : index;
  }
  u32 lsq_index_at(u32 position) const {  // position 0 == head
    u32 index = lsq_head_ + position;
    if (index >= config_.lsq_size) index -= config_.lsq_size;
    return index;
  }
  /// unissued_mask_ bit for an RUU slot. The &63 keeps the shift defined
  /// even when ruu_size > 64 (the mask is maintained but not scanned then).
  static u64 ruu_mask_bit(u32 slot_index) {
    return u64{1} << (slot_index & 63);
  }
  /// Attempt P-stream issue of one awaiting RUU slot; decrements `*budget`
  /// on success. Shared by the mask scan and the fallback position walk.
  void try_issue_slot(u32 slot_index, u32* budget);
  /// R-stream instructions re-enter the pipeline through the scheduler
  /// (§5.1: they "proceed through the SimpleScalar pipeline"), so while in
  /// flight they occupy scheduler window (RUU) capacity alongside P-stream
  /// entries. P dispatch and R issue both respect the combined limit.
  bool ruu_full() const {
    const u32 shared = config_.reese.window_sharing ? r_inflight_ : 0;
    return ruu_count_ + shared >= config_.ruu_size;
  }
  /// Free the RUU head slot (entry must be at the head).
  void free_ruu_head();

  void schedule_p_event(Cycle when, RuuRef ref);
  void schedule_r_event(Cycle when, u64 entry_id);

  void enter_spec_mode();

  // --- members -------------------------------------------------------------

  const isa::Program& program_;
  CoreConfig config_;

  mem::MainMemory memory_;
  isa::DirectDataSpace direct_space_{&memory_};
  std::unique_ptr<mem::Hierarchy> hierarchy_;
  FuPool fu_pool_;

  std::unique_ptr<branch::DirectionPredictor> direction_;
  /// Non-null iff direction_ is a GsharePredictor (the paper config).
  /// Per-branch predict/update/repair go through this concrete pointer so
  /// the inline gshare methods apply; other predictors use the vtable.
  branch::GsharePredictor* gshare_ = nullptr;
  branch::Btb btb_;
  branch::ReturnAddressStack ras_;

  // Front-end functional state.
  isa::ArchState front_state_;
  bool spec_mode_ = false;
  isa::ArchState spec_state_;  ///< wrong-path register state
  SpecOverlay spec_overlay_{&memory_};
  u32 spec_branch_slot_ = 0;   ///< RUU slot of the mispredicted branch

  // Fetch.
  Addr fetch_pc_;
  Cycle fetch_stall_until_ = 0;
  bool drain_fetch_stall_ = false;  ///< drain_to_barrier() suppresses fetch
  FetchRing ifq_;  ///< FIFO, front = oldest

  // Decoded-text fast path: the program's instructions are pre-decoded at
  // load; fetch reads them through this cached pointer/bounds pair instead
  // of re-walking Program::contains_pc + Program::at per instruction.
  const isa::Instruction* code_ = nullptr;
  Addr code_base_ = 0;
  usize code_count_ = 0;

  /// contains_pc + at() in one bounds check against the cached text span.
  const isa::Instruction* decoded_at(Addr pc) const {
    const Addr offset = pc - code_base_;
    if ((offset & 3) != 0 || (offset >> 2) >= code_count_) return nullptr;
    return code_ + (offset >> 2);
  }

  // RUU ring buffer.
  std::vector<RuuEntry> ruu_;
  u32 ruu_head_ = 0;
  u32 ruu_count_ = 0;

  // LSQ: ring of RUU slot indices in program order.
  std::vector<u32> lsq_;
  u32 lsq_head_ = 0;
  u32 lsq_count_ = 0;
  /// Absolute ticket of the LSQ head entry; RuuEntry::lsq_ticket minus this
  /// is the entry's current LSQ position (see plan_load).
  u64 lsq_ticket_head_ = 0;

  /// One bit per RUU slot that is valid, unissued, and operand-ready
  /// (`valid && !issued && !completed && deps_ready()`) — a ready list.
  /// stage_issue scans these bits in program order instead of walking the
  /// multi-cache-line entries of a mostly in-flight or dependency-blocked
  /// window. Maintained at dispatch (set when ready), consumer wakeup
  /// (set when the last operand arrives), issue (clear), squash/free
  /// (clear), and Franklin first completion (set again — the duplicate
  /// execution re-enters the scan). Only used when ruu_size <= 64 (every
  /// in-tree config); larger windows fall back to the position walk.
  u64 unissued_mask_ = 0;
  bool ruu_mask_scan_ = true;  ///< config_.ruu_size <= 64

  // Create-vectors: architectural register -> in-flight producer. cv_ is
  // the true-path map; spec_cv_ is its wrong-path shadow (copied on spec
  // entry, discarded at recovery).
  std::vector<RuuRef> cv_;
  std::vector<RuuRef> spec_cv_;

  // Writeback event queues (calendar queues indexed by cycle delta; see
  // event_queue.h for why these are not std::map).
  CalendarQueue<RuuRef> p_events_;
  CalendarQueue<u64> r_events_;

  // REESE.
  RStreamQueue rqueue_;
  u64 reexec_counter_ = 0;  ///< rotates over reexec_interval
  u64 r_issue_next_id_ = 1;  ///< first R-queue id not yet issued/skipped;
                             ///< the settled prefix before it is never
                             ///< rescanned (ids are FIFO-consecutive)
  u32 rpriority_min_count_ = 0;  ///< priority_watermark_pct as an entry
                                 ///< count (one compare per cycle)
  u32 r_inflight_ = 0;      ///< R instructions currently occupying
                            ///< scheduler-window capacity
  CalendarQueue<u32> r_release_at_;  ///< deferred r_inflight_ releases

  // Run control.
  Cycle now_ = 0;
  InstSeq next_seq_ = 1;
  bool halted_ = false;
  bool bad_pc_ = false;
  bool fetch_done_ = false;  ///< HALT dispatched on the true path

  FaultHook* fault_hook_ = nullptr;
  /// Cached fault_hook_->site(); kResult keeps the component poll disabled
  /// so legacy campaigns and plain runs pay one branch per cycle.
  FaultSite fault_site_ = FaultSite::kResult;
  /// Strike cycles of outstanding D-L1/D-TLB poisons, oldest first
  /// (site_faults.cpp uses it for detection-latency attribution).
  std::vector<Cycle> mem_poison_pending_;
  Tracer* tracer_ = nullptr;

  /// Emit a trace event if a tracer is installed.
  void trace(TraceKind kind, InstSeq seq, Addr pc,
             const isa::Instruction& inst, bool spec) {
    if (tracer_ == nullptr) return;
    tracer_->record(TraceEvent{kind, now_, seq, pc, inst, spec});
  }

  CoreStats stats_;
};

}  // namespace reese::core

// Die-area cost model for the paper's §7 cost/benefit discussion.
//
// The paper argues: "Depending on its size, the R-stream Queue requires
// slightly more area than the RUU. If the RUU takes up 10% of the die
// area, then we can expect REESE to add a total of about 20% to the die
// area." This model makes that arithmetic explicit and configurable so
// the cost/benefit table (area overhead vs residual IPC overhead) can be
// regenerated for any configuration.
//
// Units are relative: one baseline starting-configuration die == 100.
// The RUU anchor (10% of die per 16 entries) comes straight from §7; the
// remaining coefficients are engineering estimates in the same spirit and
// are exposed for sensitivity analysis.
#pragma once

#include <string>

#include "core/config.h"

namespace reese::core {

struct AreaCoefficients {
  /// §7 anchor: a 16-entry RUU occupies 10% of the baseline die.
  double ruu_pct_of_die = 10.0;
  u32 ruu_ref_entries = 16;

  /// An R-stream Queue entry is "slightly" larger than an RUU entry (it
  /// carries operands + result but no rename state); §7 says the whole
  /// queue needs slightly more area than the RUU.
  double rqueue_entry_vs_ruu_entry = 1.1;

  /// Integer ALU area relative to one RUU entry ("ALUs are relatively
  /// inexpensive additions", §7).
  double int_alu_vs_ruu_entry = 1.5;
  double int_mult_vs_ruu_entry = 6.0;
  double mem_port_vs_ruu_entry = 4.0;

  /// Comparator + forwarding + scheduling logic, as a fraction of the
  /// R-queue area ("very little hardware will be needed", §4.3).
  double glue_fraction_of_rqueue = 0.15;
};

struct AreaEstimate {
  double baseline_die = 100.0;  ///< by construction
  double rqueue_area = 0.0;
  double spare_fu_area = 0.0;
  double glue_area = 0.0;

  double total_added() const {
    return rqueue_area + spare_fu_area + glue_area;
  }
  /// Percent added to the baseline die.
  double overhead_pct() const { return total_added(); }
};

/// Estimate the die-area cost of `config`'s REESE additions relative to
/// `baseline` (same machine without REESE or spares).
AreaEstimate estimate_area(const CoreConfig& baseline,
                           const CoreConfig& config,
                           const AreaCoefficients& coefficients = {});

/// One-line rendering.
std::string area_report(const AreaEstimate& estimate);

}  // namespace reese::core

// Copy-on-write data-memory overlay for wrong-path execution.
//
// After a mispredicted branch dispatches, the front end keeps functionally
// executing down the predicted (wrong) path so that wrong-path loads/stores
// pollute the caches realistically. Those instructions must not disturb the
// true architectural memory, so their stores land in this overlay and their
// loads read through it. Recovery simply discards the overlay.
//
// The overlay lives on the dispatch hot path (every wrong-path load probes
// it), and a wrong-path episode dirties at most a few dozen bytes before
// recovery. A std::unordered_map paid a node allocation per dirty byte and
// re-bucketed on clear(); this open-addressed table keeps a small flat
// power-of-two array of (addr, value) slots, probes linearly, never erases
// individual entries, and clear() just resets the occupancy flags — no
// allocation at steady state.
#pragma once

#include <cassert>
#include <vector>

#include "isa/arch_state.h"

namespace reese::core {

class SpecOverlay final : public isa::DataSpace {
 public:
  explicit SpecOverlay(mem::MainMemory* backing) : backing_(backing) {
    rehash(kInitialSlots);
  }

  u64 load(Addr addr, unsigned bytes) override {
    u64 value = 0;
    for (unsigned i = 0; i < bytes; ++i) {
      value |= static_cast<u64>(load_byte(addr + i)) << (8 * i);
    }
    return value;
  }

  void store(Addr addr, unsigned bytes, u64 value) override {
    for (unsigned i = 0; i < bytes; ++i) {
      store_byte(addr + i, static_cast<u8>(value >> (8 * i)));
    }
  }

  void clear() {
    if (size_ == 0) return;
    for (Slot& slot : slots_) slot.used = false;
    size_ = 0;
  }

  usize dirty_bytes() const { return size_; }

 private:
  struct Slot {
    Addr addr = 0;
    u8 value = 0;
    bool used = false;
  };

  static constexpr usize kInitialSlots = 64;

  static usize hash(Addr addr) {
    // Fibonacci multiplicative hash; adjacent addresses spread apart.
    return static_cast<usize>((addr * 0x9E3779B97F4A7C15ull) >> 32);
  }

  Slot& probe(Addr addr) {
    usize index = hash(addr) & mask_;
    while (slots_[index].used && slots_[index].addr != addr) {
      index = (index + 1) & mask_;
    }
    return slots_[index];
  }

  u8 load_byte(Addr addr) {
    const Slot& slot = probe(addr);
    if (slot.used) return slot.value;
    return backing_->load_u8(addr);
  }

  void store_byte(Addr addr, u8 value) {
    Slot& slot = probe(addr);
    if (!slot.used) {
      slot.used = true;
      slot.addr = addr;
      ++size_;
      if (size_ * 4 >= slots_.size() * 3) {  // keep load factor under 3/4
        rehash(slots_.size() * 2);
        probe(addr).value = value;
        return;
      }
    }
    slot.value = value;
  }

  void rehash(usize new_slot_count) {
    assert((new_slot_count & (new_slot_count - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slot_count, Slot{});
    mask_ = new_slot_count - 1;
    for (const Slot& slot : old) {
      if (!slot.used) continue;
      Slot& fresh = probe(slot.addr);
      fresh = slot;
    }
  }

  mem::MainMemory* backing_;
  std::vector<Slot> slots_;
  usize mask_ = 0;
  usize size_ = 0;
};

}  // namespace reese::core

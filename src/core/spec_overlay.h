// Copy-on-write data-memory overlay for wrong-path execution.
//
// After a mispredicted branch dispatches, the front end keeps functionally
// executing down the predicted (wrong) path so that wrong-path loads/stores
// pollute the caches realistically. Those instructions must not disturb the
// true architectural memory, so their stores land in this overlay and their
// loads read through it. Recovery simply discards the overlay.
#pragma once

#include <unordered_map>

#include "isa/arch_state.h"

namespace reese::core {

class SpecOverlay final : public isa::DataSpace {
 public:
  explicit SpecOverlay(mem::MainMemory* backing) : backing_(backing) {}

  u64 load(Addr addr, unsigned bytes) override {
    u64 value = 0;
    for (unsigned i = 0; i < bytes; ++i) {
      value |= static_cast<u64>(load_byte(addr + i)) << (8 * i);
    }
    return value;
  }

  void store(Addr addr, unsigned bytes, u64 value) override {
    for (unsigned i = 0; i < bytes; ++i) {
      bytes_[addr + i] = static_cast<u8>(value >> (8 * i));
    }
  }

  void clear() { bytes_.clear(); }
  usize dirty_bytes() const { return bytes_.size(); }

 private:
  u8 load_byte(Addr addr) const {
    auto it = bytes_.find(addr);
    if (it != bytes_.end()) return it->second;
    return backing_->load_u8(addr);
  }

  mem::MainMemory* backing_;
  std::unordered_map<Addr, u8> bytes_;
};

}  // namespace reese::core

#include "core/chrome_trace.h"

#include <algorithm>
#include <vector>

#include "common/diag.h"
#include "common/strutil.h"

namespace reese::core {

namespace {

constexpr u32 kPid = 1;
constexpr u32 kPStreamTid = 0;
constexpr u32 kRStreamTid = 1;

std::string metadata_event(const char* name, u32 tid, const char* arg_name,
                           const std::string& arg_value) {
  return format(
      "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
      "\"args\":{\"%s\":\"%s\"}}",
      name, kPid, tid, arg_name, json_escape(arg_value).c_str());
}

std::string slice_args(InstSeq seq, Addr pc, bool spec) {
  return format("{\"seq\":%llu,\"pc\":\"0x%llx\",\"spec\":%s}",
                static_cast<unsigned long long>(seq),
                static_cast<unsigned long long>(pc), spec ? "true" : "false");
}

}  // namespace

FileTraceSink::FileTraceSink(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
}

FileTraceSink::~FileTraceSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileTraceSink::write(const std::string& chunk) {
  if (file_ != nullptr) std::fwrite(chunk.data(), 1, chunk.size(), file_);
}

ChromeTraceTracer::ChromeTraceTracer(TraceSink* sink) : sink_(sink) {
  sink_->write("{\"traceEvents\":[\n");
  emit(metadata_event("process_name", kPStreamTid, "name", "reese-sim"));
  emit(metadata_event("thread_name", kPStreamTid, "name", "P-stream"));
  emit(metadata_event("thread_name", kRStreamTid, "name", "R-stream"));
}

ChromeTraceTracer::~ChromeTraceTracer() { finish(); }

void ChromeTraceTracer::emit(const std::string& event_json) {
  if (first_event_) {
    first_event_ = false;
    sink_->write(event_json);
  } else {
    sink_->write(",\n" + event_json);
  }
  ++events_emitted_;
}

void ChromeTraceTracer::emit_instant(const char* name, Cycle cycle,
                                     InstSeq seq, u32 tid) {
  emit(format(
      "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%llu,\"pid\":%u,\"tid\":%u,"
      "\"s\":\"t\",\"args\":{\"seq\":%llu}}",
      name, static_cast<unsigned long long>(cycle), kPid, tid,
      static_cast<unsigned long long>(seq)));
}

void ChromeTraceTracer::emit_lifecycle(InstSeq seq, const Pending& pending,
                                       Cycle end_cycle, bool squashed) {
  const std::string name = json_escape(isa::disassemble(pending.inst));
  const std::string args = slice_args(seq, pending.pc, pending.spec);

  // P-stream slice: dispatch -> writeback (or wherever the lifecycle
  // stopped). Perfetto wants dur >= 0; same-cycle stages get dur 0.
  const Cycle p_end = pending.complete != 0 ? pending.complete
                      : (end_cycle >= pending.dispatch ? end_cycle
                                                       : pending.dispatch);
  emit(format(
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%llu,"
      "\"dur\":%llu,\"pid\":%u,\"tid\":%u,\"args\":%s}",
      name.c_str(), squashed ? "squashed" : "p-stream",
      static_cast<unsigned long long>(pending.dispatch),
      static_cast<unsigned long long>(p_end - pending.dispatch), kPid,
      kPStreamTid, args.c_str()));

  // R-stream slice + flow arrow, only if the instruction was re-executed.
  if (pending.r_issue != 0) {
    const Cycle r_end =
        pending.r_complete != 0 ? pending.r_complete : pending.r_issue;
    emit(format(
        "{\"name\":\"%s\",\"cat\":\"r-stream\",\"ph\":\"X\",\"ts\":%llu,"
        "\"dur\":%llu,\"pid\":%u,\"tid\":%u,\"args\":%s}",
        name.c_str(), static_cast<unsigned long long>(pending.r_issue),
        static_cast<unsigned long long>(r_end - pending.r_issue), kPid,
        kRStreamTid, args.c_str()));
    // Flow arrow from the P-stream writeback to the R-stream comparison:
    // its length in the UI is the paper's P->R separation. The id must be
    // unique per arrow, so the spec bit is folded in (a wrong-path entry
    // can share its seq with a true-path instruction).
    const Cycle flow_start = pending.complete != 0 ? pending.complete
                                                   : pending.dispatch;
    const u64 flow_id = key(seq, pending.spec);
    emit(format(
        "{\"name\":\"p-to-r\",\"cat\":\"flow\",\"ph\":\"s\",\"ts\":%llu,"
        "\"pid\":%u,\"tid\":%u,\"id\":%llu}",
        static_cast<unsigned long long>(flow_start), kPid, kPStreamTid,
        static_cast<unsigned long long>(flow_id)));
    emit(format(
        "{\"name\":\"p-to-r\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\","
        "\"ts\":%llu,\"pid\":%u,\"tid\":%u,\"id\":%llu}",
        static_cast<unsigned long long>(r_end), kPid, kRStreamTid,
        static_cast<unsigned long long>(flow_id)));
  }
}

void ChromeTraceTracer::record(const TraceEvent& event) {
  if (finished_) return;
  const u64 k = key(event.seq, event.spec);
  switch (event.kind) {
    case TraceKind::kDispatch: {
      Pending pending;
      pending.pc = event.pc;
      pending.inst = event.inst;
      pending.spec = event.spec;
      pending.dispatch = event.cycle;
      pending_[k] = pending;
      return;
    }
    case TraceKind::kIssue:
    case TraceKind::kComplete:
    case TraceKind::kRelease:
    case TraceKind::kRIssue:
    case TraceKind::kRComplete: {
      auto it = pending_.find(k);
      if (it == pending_.end()) return;
      Pending& pending = it->second;
      switch (event.kind) {
        case TraceKind::kIssue: pending.issue = event.cycle; break;
        case TraceKind::kComplete: pending.complete = event.cycle; break;
        case TraceKind::kRelease: pending.release = event.cycle; break;
        case TraceKind::kRIssue: pending.r_issue = event.cycle; break;
        case TraceKind::kRComplete: pending.r_complete = event.cycle; break;
        default: break;
      }
      return;
    }
    case TraceKind::kCommit:
    case TraceKind::kSquash: {
      auto it = pending_.find(k);
      if (it == pending_.end()) return;
      emit_lifecycle(event.seq, it->second, event.cycle,
                     event.kind == TraceKind::kSquash);
      if (event.kind == TraceKind::kSquash) {
        emit_instant("squash", event.cycle, event.seq, kPStreamTid);
      }
      pending_.erase(it);
      return;
    }
    case TraceKind::kError:
      // Errors are detected at comparison time, on the R track.
      emit_instant("error-detected", event.cycle, event.seq, kRStreamTid);
      return;
  }
}

void ChromeTraceTracer::finish() {
  if (finished_) return;
  // Flush still-in-flight lifecycles (run ended mid-pipeline), in a
  // deterministic order for reproducible output.
  std::vector<u64> keys;
  keys.reserve(pending_.size());
  for (const auto& [k, pending] : pending_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  for (u64 k : keys) {
    const Pending& pending = pending_.at(k);
    emit_lifecycle(static_cast<InstSeq>(k >> 1), pending, pending.dispatch,
                   false);
  }
  pending_.clear();
  sink_->write("\n]}\n");
  finished_ = true;
}

void SamplingTracer::record(const TraceEvent& event) {
  const u64 k = key(event.seq, event.spec);
  if (event.kind == TraceKind::kDispatch) {
    const bool in_window =
        event.cycle >= first_cycle_ &&
        (last_cycle_ == 0 || event.cycle < last_cycle_);
    const bool selected = in_window && (event.seq % every_n_ == 0);
    if (!selected) {
      ++dropped_;
      return;
    }
    live_[k] = 0;
    ++forwarded_;
    inner_->record(event);
    return;
  }
  const auto it = live_.find(k);
  if (it == live_.end()) {
    ++dropped_;
    return;
  }
  ++forwarded_;
  inner_->record(event);
  if (event.kind == TraceKind::kCommit || event.kind == TraceKind::kSquash) {
    live_.erase(it);
  }
}

}  // namespace reese::core

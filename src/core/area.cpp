#include "core/area.h"

#include "common/strutil.h"

namespace reese::core {

AreaEstimate estimate_area(const CoreConfig& baseline,
                           const CoreConfig& config,
                           const AreaCoefficients& coefficients) {
  AreaEstimate estimate;

  // Area of one RUU entry in die-percent units, anchored by §7.
  const double ruu_entry_area =
      coefficients.ruu_pct_of_die /
      static_cast<double>(coefficients.ruu_ref_entries);

  if (config.reese.enabled &&
      config.reese.scheme == RedundancyScheme::kReese) {
    estimate.rqueue_area = static_cast<double>(config.reese.rqueue_size) *
                           ruu_entry_area *
                           coefficients.rqueue_entry_vs_ruu_entry;
    estimate.glue_area =
        estimate.rqueue_area * coefficients.glue_fraction_of_rqueue;
  } else if (config.reese.enabled) {
    // Franklin: no queue, but comparator + duplication control glue sized
    // against the RUU it piggybacks on.
    estimate.glue_area = static_cast<double>(config.ruu_size) *
                         ruu_entry_area *
                         coefficients.glue_fraction_of_rqueue;
  }

  auto diff = [](u32 now, u32 before) {
    return now > before ? static_cast<double>(now - before) : 0.0;
  };
  estimate.spare_fu_area =
      diff(config.int_alu_count, baseline.int_alu_count) *
          coefficients.int_alu_vs_ruu_entry * ruu_entry_area +
      diff(config.int_mult_count, baseline.int_mult_count) *
          coefficients.int_mult_vs_ruu_entry * ruu_entry_area +
      diff(config.mem_port_count, baseline.mem_port_count) *
          coefficients.mem_port_vs_ruu_entry * ruu_entry_area;

  return estimate;
}

std::string area_report(const AreaEstimate& estimate) {
  return format(
      "+%.1f%% die (R-queue %.1f%%, spare FUs %.1f%%, compare/glue %.1f%%)",
      estimate.overhead_pct(), estimate.rqueue_area, estimate.spare_fu_area,
      estimate.glue_area);
}

}  // namespace reese::core

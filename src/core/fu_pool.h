// Functional-unit pool: arbitrates per-cycle access to integer ALUs,
// integer multiplier/dividers, FP adders, FP multipliers and memory ports.
//
// Pipelined units accept a new operation every cycle (issue latency 1) even
// while earlier operations are still in flight; unpipelined units (divide,
// sqrt) are busy for their whole latency. A unit is modelled by the next
// cycle at which it can accept an operation.
#pragma once

#include <array>
#include <vector>

#include "common/types.h"
#include "core/config.h"
#include "isa/opcode.h"

namespace reese {
class SnapshotReader;
class SnapshotWriter;
}  // namespace reese

namespace reese::core {

enum class FuKind : u8 { kIntAlu, kIntMult, kFpAlu, kFpMult, kMemPort, kCount };
constexpr usize kFuKindCount = static_cast<usize>(FuKind::kCount);

const char* fu_kind_name(FuKind kind);

/// Resolved latency/resource requirements of one operation.
struct OpTiming {
  FuKind fu = FuKind::kIntAlu;
  u32 result_latency = 1;  ///< cycles until the result is available
  u32 issue_latency = 1;   ///< cycles the unit is blocked (== result for
                           ///< unpipelined ops)
};

/// Map an exec class to its unit + latencies under `config`. kLoad returns
/// the port requirements only — cache latency is added by the caller.
/// kStore/kNone map to a 1-cycle IntALU-free completion (see pipeline.cpp).
/// Inline: evaluated per issue attempt, several times per simulated
/// instruction.
inline OpTiming op_timing(isa::ExecClass exec_class,
                          const CoreConfig& config) {
  using isa::ExecClass;
  switch (exec_class) {
    case ExecClass::kIntAlu:
      return {FuKind::kIntAlu, 1, 1};
    case ExecClass::kIntMul:
      return {FuKind::kIntMult, config.int_mul_latency, 1};
    case ExecClass::kIntDiv:
      return {FuKind::kIntMult, config.int_div_latency,
              config.int_div_latency};
    case ExecClass::kFpAdd:
      return {FuKind::kFpAlu, config.fp_add_latency, 1};
    case ExecClass::kFpMul:
      return {FuKind::kFpMult, config.fp_mul_latency, 1};
    case ExecClass::kFpDiv:
      return {FuKind::kFpMult, config.fp_div_latency, config.fp_div_latency};
    case ExecClass::kFpSqrt:
      return {FuKind::kFpMult, config.fp_sqrt_latency,
              config.fp_sqrt_latency};
    case ExecClass::kLoad:
      return {FuKind::kMemPort, 1, 1};  // + cache latency, added by caller
    case ExecClass::kStore:
    case ExecClass::kNone:
      return {FuKind::kIntAlu, 1, 1};  // see pipeline.cpp for store handling
  }
  return {FuKind::kIntAlu, 1, 1};
}

class FuPool {
 public:
  explicit FuPool(const CoreConfig& config);

  /// Try to claim a unit of `kind` at cycle `now` for `issue_latency`
  /// cycles. Returns false if every unit of that kind is busy.
  bool try_acquire(FuKind kind, Cycle now, u32 issue_latency) {
    std::vector<Cycle>& units = next_free_[static_cast<usize>(kind)];
    for (Cycle& next_free : units) {
      if (next_free <= now) {
        next_free = now + issue_latency;
        ++ops_issued_[static_cast<usize>(kind)];
        return true;
      }
    }
    return false;
  }

  /// True if a unit of `kind` could be claimed at `now` (no side effects).
  /// Used to check multi-resource operations before claiming anything.
  bool can_acquire(FuKind kind, Cycle now) const {
    for (Cycle next_free : next_free_[static_cast<usize>(kind)]) {
      if (next_free <= now) return true;
    }
    return false;
  }

  u32 unit_count(FuKind kind) const {
    return static_cast<u32>(next_free_[static_cast<usize>(kind)].size());
  }

  /// Operations accepted per kind since construction (utilization stats).
  u64 ops_issued(FuKind kind) const {
    return ops_issued_[static_cast<usize>(kind)];
  }

  /// Mean utilization of `kind` over `cycles`: ops issued per unit-cycle.
  /// (For pipelined units this equals occupancy of the issue port, the
  /// quantity the paper's "idle capacity" argument is about.)
  double utilization(FuKind kind, Cycle cycles) const;

  /// Checkpoint serialization: per-unit next-free cycles + issue counters.
  void save(SnapshotWriter* writer) const;
  void load(SnapshotReader* reader);

 private:
  std::array<std::vector<Cycle>, kFuKindCount> next_free_;
  std::array<u64, kFuKindCount> ops_issued_{};
};

}  // namespace reese::core

// Perfetto-loadable pipeline traces (DESIGN.md §12).
//
// ChromeTraceTracer turns the Tracer callback stream (core/trace.h) into
// Chrome trace_event JSON — the format chrome://tracing and Perfetto load
// natively. One simulated cycle maps to one microsecond of trace time:
//
//   * the P-stream and R-stream render as two named tracks (tid 0 / tid 1)
//     of one "reese-sim" process;
//   * each instruction is a complete ("X") slice per stream it touched:
//     dispatch→writeback on the P track, R-issue→R-compare on the R track,
//     named by its disassembly, with seq/pc/cycle args attached;
//   * a flow arrow (ph "s" → "f", id = seq) links every P-stream writeback
//     to its R-stream comparison, making the paper's P→R separation
//     visible as arrow length;
//   * squashes and comparator errors are instant ("i") events.
//
// Events stream to the sink as instructions retire (commit/squash), so
// memory stays bounded by in-flight instructions, not run length. For
// million-instruction runs wrap any tracer in SamplingTracer: keep every
// Nth instruction and/or restrict to a cycle window.
//
// The emitted document is `{"traceEvents": [...]}` — validated structurally
// by tools/trace_check.py.
#pragma once

#include <cstdio>
#include <string>
#include <unordered_map>

#include "core/trace.h"

namespace reese::core {

/// Where ChromeTraceTracer writes events. FileTraceSink is the production
/// implementation; tests capture via StringTraceSink.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const std::string& chunk) = 0;
};

class StringTraceSink final : public TraceSink {
 public:
  void write(const std::string& chunk) override { buffer_ += chunk; }
  const std::string& str() const { return buffer_; }

 private:
  std::string buffer_;
};

/// Owns a FILE*; creation failure is visible via ok().
class FileTraceSink final : public TraceSink {
 public:
  explicit FileTraceSink(const std::string& path);
  ~FileTraceSink() override;
  bool ok() const { return file_ != nullptr; }
  void write(const std::string& chunk) override;

 private:
  std::FILE* file_ = nullptr;
};

class ChromeTraceTracer final : public Tracer {
 public:
  /// `sink` must outlive the tracer. The JSON prologue (process/thread
  /// metadata) is written immediately.
  explicit ChromeTraceTracer(TraceSink* sink);
  /// Emits any still-in-flight instructions and the closing bracket.
  ~ChromeTraceTracer() override;

  void record(const TraceEvent& event) override;

  /// Flush in-flight instructions and close the JSON document. Idempotent;
  /// called by the destructor if not called explicitly. After finish() the
  /// tracer drops further events.
  void finish();

  u64 events_emitted() const { return events_emitted_; }

 private:
  struct Pending {
    Addr pc = 0;
    isa::Instruction inst;
    bool spec = false;
    Cycle dispatch = 0;
    Cycle issue = 0;
    Cycle complete = 0;
    Cycle release = 0;
    Cycle r_issue = 0;
    Cycle r_complete = 0;
  };

  static u64 key(InstSeq seq, bool spec) {
    return (static_cast<u64>(seq) << 1) | (spec ? 1 : 0);
  }

  void emit(const std::string& event_json);
  /// Write the slices/flows/instants for one finished lifecycle.
  void emit_lifecycle(InstSeq seq, const Pending& pending, Cycle end_cycle,
                      bool squashed);
  void emit_instant(const char* name, Cycle cycle, InstSeq seq, u32 tid);

  TraceSink* sink_;
  std::unordered_map<u64, Pending> pending_;
  bool first_event_ = true;
  bool finished_ = false;
  u64 events_emitted_ = 0;
};

/// Decorator that forwards a subset of the event stream to `inner`:
/// every `every_n`-th true-path instruction (seq % every_n == 0; 0 or 1 =
/// all), optionally restricted to dispatches inside [first_cycle,
/// last_cycle) (last_cycle 0 = unbounded). Selection is decided at
/// dispatch and sticky for the instruction's whole lifecycle, so sampled
/// traces contain only complete lifecycles.
class SamplingTracer final : public Tracer {
 public:
  SamplingTracer(Tracer* inner, u64 every_n, Cycle first_cycle = 0,
                 Cycle last_cycle = 0)
      : inner_(inner),
        every_n_(every_n == 0 ? 1 : every_n),
        first_cycle_(first_cycle),
        last_cycle_(last_cycle) {}

  void record(const TraceEvent& event) override;

  u64 forwarded() const { return forwarded_; }
  u64 dropped() const { return dropped_; }

 private:
  static u64 key(InstSeq seq, bool spec) {
    return (static_cast<u64>(seq) << 1) | (spec ? 1 : 0);
  }

  Tracer* inner_;
  u64 every_n_;
  Cycle first_cycle_;
  Cycle last_cycle_;
  /// Lifecycles selected at dispatch and not yet retired.
  std::unordered_map<u64, u64> live_;  ///< key -> remaining-events guess (unused value)
  u64 forwarded_ = 0;
  u64 dropped_ = 0;
};

}  // namespace reese::core

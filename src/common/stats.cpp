#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "common/snapshot.h"

namespace reese {

double safe_ratio(u64 numerator, u64 denominator) {
  if (denominator == 0) return 0.0;
  return static_cast<double>(numerator) / static_cast<double>(denominator);
}

WilsonInterval wilson_interval(u64 successes, u64 trials, double z) {
  assert(successes <= trials);
  if (trials == 0) return {};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  WilsonInterval interval;
  interval.center = center;
  interval.lower = std::max(0.0, center - half);
  interval.upper = std::min(1.0, center + half);
  return interval;
}

Histogram::Histogram(u64 bucket_width, usize bucket_count)
    : bucket_width_(bucket_width), buckets_(bucket_count, 0) {
  assert(bucket_width >= 1);
  assert(bucket_count >= 1);
  if ((bucket_width & (bucket_width - 1)) == 0) {
    width_is_pow2_ = true;
    while ((u64{1} << width_shift_) < bucket_width) ++width_shift_;
  }
}

u64 Histogram::percentile(double fraction) const {
  if (count_ == 0) return 0;
  // Nearest-rank: the smallest value with at least ⌈fraction·n⌉ samples at
  // or below it. Truncating here used to drop overflow samples from high
  // percentiles entirely (p99 of {12, 1000} reported 12).
  const u64 target = std::max<u64>(
      1, static_cast<u64>(
             std::ceil(fraction * static_cast<double>(count_))));
  u64 seen = 0;
  for (usize i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) return (i + 1) * bucket_width_ - 1;
  }
  return max_;
}

std::string Histogram::to_string(const std::string& label) const {
  char line[256];
  std::snprintf(line, sizeof line,
                "%s: n=%llu mean=%.2f min=%llu p50=%llu p95=%llu max=%llu",
                label.c_str(), static_cast<unsigned long long>(count_), mean(),
                static_cast<unsigned long long>(min()),
                static_cast<unsigned long long>(percentile(0.50)),
                static_cast<unsigned long long>(percentile(0.95)),
                static_cast<unsigned long long>(max_));
  std::string out(line);

  // Sparkline over finite buckets.
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  u64 peak = overflow_;
  for (u64 b : buckets_) peak = std::max(peak, b);
  if (peak > 0) {
    out += "\n  [";
    for (u64 b : buckets_) {
      const usize level = (b == 0) ? 0 : 1 + (b * 6) / peak;
      out += kLevels[std::min<usize>(level, 7)];
    }
    out += "]";
    if (overflow_ > 0) {
      out += " +" + std::to_string(overflow_) + " overflow";
    }
  }
  return out;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  overflow_ = 0;
  count_ = 0;
  sum_ = 0;
  min_ = ~u64{0};
  max_ = 0;
}

void Histogram::save(SnapshotWriter* writer) const {
  writer->put_u64(bucket_width_);
  writer->put_u64(buckets_.size());
  for (u64 bucket : buckets_) writer->put_u64(bucket);
  writer->put_u64(overflow_);
  writer->put_u64(count_);
  writer->put_u64(sum_);
  writer->put_u64(min_);
  writer->put_u64(max_);
}

void Histogram::load(SnapshotReader* reader) {
  const u64 width = reader->get_u64();
  const u64 bucket_count = reader->get_u64();
  if (!reader->ok()) return;
  if (width != bucket_width_ || bucket_count != buckets_.size()) {
    reader->fail("histogram geometry mismatch (snapshot built with a "
                 "different configuration)");
    return;
  }
  for (u64& bucket : buckets_) bucket = reader->get_u64();
  overflow_ = reader->get_u64();
  count_ = reader->get_u64();
  sum_ = reader->get_u64();
  min_ = reader->get_u64();
  max_ = reader->get_u64();
}

void RunningStat::save(SnapshotWriter* writer) const {
  writer->put_u64(count_);
  writer->put_f64(sum_);
  writer->put_f64(min_);
  writer->put_f64(max_);
}

void RunningStat::load(SnapshotReader* reader) {
  count_ = reader->get_u64();
  sum_ = reader->get_f64();
  min_ = reader->get_f64();
  max_ = reader->get_f64();
}

namespace {

/// Average ranks (1-based) with ties sharing the mean of their rank span.
std::vector<double> average_ranks(const std::vector<double>& values) {
  const usize n = values.size();
  std::vector<usize> order(n);
  for (usize i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](usize a, usize b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  usize i = 0;
  while (i < n) {
    usize j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Positions i..j (0-based) share the average of ranks i+1..j+1.
    const double rank = static_cast<double>(i + j) / 2.0 + 1.0;
    for (usize k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman_rank_correlation(const std::vector<double>& xs,
                                 const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const std::vector<double> rx = average_ranks(xs);
  const std::vector<double> ry = average_ranks(ys);
  const double n = static_cast<double>(xs.size());
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (usize i = 0; i < xs.size(); ++i) {
    mean_x += rx[i];
    mean_y += ry[i];
  }
  mean_x /= n;
  mean_y /= n;
  double cov = 0.0;
  double var_x = 0.0;
  double var_y = 0.0;
  for (usize i = 0; i < xs.size(); ++i) {
    const double dx = rx[i] - mean_x;
    const double dy = ry[i] - mean_y;
    cov += dx * dy;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  if (var_x == 0.0 || var_y == 0.0) return 0.0;
  return cov / std::sqrt(var_x * var_y);
}

double RunningStat::mean() const {
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(count_);
}

void RunningStat::reset() {
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

}  // namespace reese

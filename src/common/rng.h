// Deterministic pseudo-random number generation.
//
// The simulator must be bit-for-bit reproducible across runs and platforms,
// so all randomized components (workload data generation, fault schedules,
// random cache replacement) draw from an explicitly seeded SplitMix64 stream
// passed in by the owner. std::mt19937 is avoided because distribution
// implementations differ across standard libraries.
#pragma once

#include <cassert>

#include "common/types.h"

namespace reese {

/// SplitMix64: tiny, fast, high-quality 64-bit generator with a one-word
/// state. Passes BigCrush when used as a stream.
class SplitMix64 {
 public:
  explicit SplitMix64(u64 seed) : state_(seed) {}

  /// Next raw 64-bit value.
  u64 next() {
    u64 z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). bound must be nonzero.
  u64 next_below(u64 bound) {
    assert(bound != 0);
    // Multiply-shift rejection-free mapping (Lemire); bias is < 2^-64 * bound,
    // irrelevant for simulation workloads.
    const unsigned __int128 product =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<u64>(product >> 64);
  }

  /// Uniform value in [lo, hi] inclusive.
  u64 next_range(u64 lo, u64 hi) {
    assert(lo <= hi);
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Derive an independent child stream (for giving submodules their own
  /// reproducible sequence).
  SplitMix64 fork() { return SplitMix64(next() ^ 0xA5A5A5A55A5A5A5AULL); }

  /// Raw state access for checkpoint/restore: a restored stream must
  /// continue the exact sequence of the saved one.
  u64 state() const { return state_; }
  void set_state(u64 state) { state_ = state; }

 private:
  u64 state_;
};

}  // namespace reese

#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace reese {

u32 resolve_job_count(u32 requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("REESE_JOBS")) {
    const long value = std::atol(env);
    if (value > 0) return static_cast<u32>(value);
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(u32 workers) {
  const u32 resolved = resolve_job_count(workers);
  threads_.reserve(resolved - 1);
  for (u32 i = 0; i + 1 < resolved; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::parallel_for(usize count,
                              const std::function<void(usize)>& fn) {
  if (count == 0) return;
  if (threads_.empty()) {
    // Single-worker pool: plain sequential loop, no synchronization.
    for (usize i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    next_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    total_ = count;
    ++generation_;
  }
  wake_cv_.notify_all();
  run_share();  // the calling thread is worker 0
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] {
    return done_.load(std::memory_order_acquire) == total_ && active_ == 0;
  });
  fn_ = nullptr;
}

void ThreadPool::run_share() {
  const std::function<void(usize)>& fn = *fn_;
  const usize total = total_;
  while (true) {
    const usize index = next_.fetch_add(1, std::memory_order_relaxed);
    if (index >= total) return;
    fn(index);
    if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
      done_cv_.notify_one();
    }
  }
}

void ThreadPool::worker_loop() {
  u64 seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      ++active_;
    }
    run_share();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace reese

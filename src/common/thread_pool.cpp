#include "common/thread_pool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace reese {

u32 resolve_job_count(u32 requested) {
  if (requested > 0 && requested <= kMaxJobRequest) return requested;
  if (requested > kMaxJobRequest) {
    // Almost certainly a negative value cast through u32 somewhere up the
    // call chain; spawning ~4e9 threads is never what anyone meant.
    std::fprintf(stderr,
                 "jobs: request %u is out of range (max %u); using hardware "
                 "concurrency\n",
                 requested, kMaxJobRequest);
  }
  if (const char* env = std::getenv("REESE_JOBS")) {
    const long value = std::atol(env);
    if (value > 0 && value <= static_cast<long>(kMaxJobRequest)) {
      return static_cast<u32>(value);
    }
    std::fprintf(stderr,
                 "jobs: REESE_JOBS=\"%s\" is not in [1, %u]; using hardware "
                 "concurrency\n",
                 env, kMaxJobRequest);
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

u32 sanitize_job_count(i64 requested, const char* flag) {
  if (requested >= 1 && requested <= static_cast<i64>(kMaxJobRequest)) {
    return static_cast<u32>(requested);
  }
  std::fprintf(stderr,
               "jobs: %s %lld is not in [1, %u]; using hardware concurrency\n",
               flag, static_cast<long long>(requested), kMaxJobRequest);
  return 0;
}

ThreadPool::ThreadPool(u32 workers) {
  const u32 resolved = resolve_job_count(workers);
  threads_.reserve(resolved - 1);
  for (u32 i = 0; i + 1 < resolved; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::parallel_for(usize count,
                              const std::function<void(usize)>& fn) {
  if (count == 0) return;
  if (threads_.empty()) {
    // Single-worker pool: plain sequential loop, no synchronization.
    for (usize i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    next_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    total_ = count;
    ++generation_;
  }
  wake_cv_.notify_all();
  run_share();  // the calling thread is worker 0
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] {
    return done_.load(std::memory_order_acquire) == total_ && active_ == 0;
  });
  fn_ = nullptr;
}

void ThreadPool::run_share() {
  const std::function<void(usize)>& fn = *fn_;
  const usize total = total_;
  while (true) {
    const usize index = next_.fetch_add(1, std::memory_order_relaxed);
    if (index >= total) return;
    fn(index);
    if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
      done_cv_.notify_one();
    }
  }
}

void ThreadPool::worker_loop() {
  u64 seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      ++active_;
    }
    run_share();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
    }
    done_cv_.notify_one();
  }
}

TaskQueue::TaskQueue(u32 workers, usize capacity) : capacity_(capacity) {
  const u32 resolved = resolve_job_count(workers);
  threads_.reserve(resolved);
  for (u32 i = 0; i < resolved; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

TaskQueue::~TaskQueue() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Admitted tasks always run: drain before stopping the workers.
    idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

bool TaskQueue::try_enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(task));
  }
  wake_cv_.notify_one();
  return true;
}

void TaskQueue::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

usize TaskQueue::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

u32 TaskQueue::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

void TaskQueue::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace reese

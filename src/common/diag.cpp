#include "common/diag.h"

#include "common/strutil.h"

namespace reese {

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

usize count_severity(const std::vector<Diagnostic>& diags, Severity severity) {
  usize n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string render_text(const std::vector<Diagnostic>& diags,
                        std::string_view source) {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += format("%.*s:0x%llx: %.*s: [%.*s] %s\n",
                  static_cast<int>(source.size()), source.data(),
                  static_cast<unsigned long long>(d.pc),
                  static_cast<int>(severity_name(d.severity).size()),
                  severity_name(d.severity).data(),
                  static_cast<int>(d.pass.size()), d.pass.data(),
                  d.message.c_str());
  }
  out += format("%zu error(s), %zu warning(s), %zu note(s)\n",
                count_severity(diags, Severity::kError),
                count_severity(diags, Severity::kWarning),
                count_severity(diags, Severity::kNote));
  return out;
}

std::string render_json(const std::vector<Diagnostic>& diags,
                        std::string_view source) {
  std::string out = "{\n";
  out += format("  \"source\": \"%s\",\n",
                json_escape(source).c_str());
  out += "  \"diagnostics\": [";
  for (usize i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out += i ? ",\n    " : "\n    ";
    out += format("{\"severity\": \"%.*s\", \"pc\": %llu, "
                  "\"pass\": \"%s\", \"message\": \"%s\"}",
                  static_cast<int>(severity_name(d.severity).size()),
                  severity_name(d.severity).data(),
                  static_cast<unsigned long long>(d.pc),
                  json_escape(d.pass).c_str(),
                  json_escape(d.message).c_str());
  }
  out += diags.empty() ? "],\n" : "\n  ],\n";
  out += format("  \"errors\": %zu,\n  \"warnings\": %zu,\n  \"notes\": %zu\n",
                count_severity(diags, Severity::kError),
                count_severity(diags, Severity::kWarning),
                count_severity(diags, Severity::kNote));
  out += "}\n";
  return out;
}

}  // namespace

std::string render_diagnostics(const std::vector<Diagnostic>& diags,
                               DiagFormat format, std::string_view source) {
  return format == DiagFormat::kJson ? render_json(diags, source)
                                     : render_text(diags, source);
}

}  // namespace reese

#include "common/json.h"

#include "common/strutil.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace reese::json {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> run() {
    skip_ws();
    Value root;
    if (!parse_value(&root, 0)) return error_;
    skip_ws();
    if (pos_ != text_.size()) {
      return errorf("json: trailing characters at offset %zu", pos_);
    }
    return root;
  }

 private:
  bool parse_value(Value* out, int depth) {
    if (depth > kMaxDepth) return fail(format("nesting deeper than %d", kMaxDepth));
    if (pos_ >= text_.size()) return fail("unexpected end of document");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out->type = Value::Type::kString;
        return parse_string(&out->string);
      case 't': return parse_literal(out, "true");
      case 'f': return parse_literal(out, "false");
      case 'n': return parse_literal(out, "null");
      default: return parse_number(out);
    }
  }

  bool parse_object(Value* out, int depth) {
    out->type = Value::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (peek() != ':') return fail("expected ':' after object key");
      ++pos_;
      skip_ws();
      Value member;
      if (!parse_value(&member, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(Value* out, int depth) {
    out->type = Value::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      Value element;
      if (!parse_value(&element, depth + 1)) return false;
      out->array.push_back(std::move(element));
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string* out) {
    if (peek() != '"') return fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("dangling escape");
      switch (text_[pos_]) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          u32 code = 0;
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return fail("bad \\u escape");
            }
            const char h = text_[pos_];
            code = code * 16 +
                   static_cast<u32>(h <= '9' ? h - '0'
                                             : (h | 0x20) - 'a' + 10);
          }
          // UTF-8 encode the BMP code point; surrogate pairs are passed
          // through as two 3-byte sequences (spec inputs are ASCII in
          // practice — names of workloads, models, variants).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail(format("unknown escape '\\%c'", text_[pos_]));
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool parse_literal(Value* out, const char* word) {
    for (const char* c = word; *c != '\0'; ++c, ++pos_) {
      if (peek() != *c) return fail(format("bad literal (expected %s)", word));
    }
    if (word[0] == 't') {
      out->type = Value::Type::kBool;
      out->boolean = true;
    } else if (word[0] == 'f') {
      out->type = Value::Type::kBool;
      out->boolean = false;
    } else {
      out->type = Value::Type::kNull;
    }
    return true;
  }

  bool parse_number(Value* out) {
    const usize start = pos_;
    bool integral = true;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("expected a value");
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      integral = false;
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digits required after decimal point");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      integral = false;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("digits required in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    out->type = Value::Type::kNumber;
    out->number = std::strtod(token.c_str(), nullptr);
    if (integral) {
      errno = 0;
      if (token[0] == '-') {
        const i64 value = std::strtoll(token.c_str(), nullptr, 10);
        if (errno != ERANGE) {
          out->is_integer = true;
          out->int_value = value;
        }
      } else {
        const u64 value = std::strtoull(token.c_str(), nullptr, 10);
        if (errno != ERANGE) {
          out->is_integer = true;
          out->uint_value = value;
          if (value <= static_cast<u64>(INT64_MAX)) {
            out->int_value = static_cast<i64>(value);
          }
        }
      }
    }
    return true;
  }

  bool fail(std::string message) {
    error_ = Error{"json: " + std::move(message)};
    return false;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  usize pos_ = 0;
  Error error_;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<Value> parse_json(std::string_view text) {
  return Parser(text).run();
}

}  // namespace reese::json

// Dependency-free HTTP/1.1 over blocking POSIX sockets: the transport for
// reesed (tools/reesed.cpp), reese_client (tools/reese_client.cpp) and the
// fleet coordinator (sim/fleet.cpp).
//
// Scope is deliberately small — exactly what a job service and its
// coordinator need:
//  * Server: bind/listen on an IPv4 address (port 0 = ephemeral), then an
//    accept loop that hands each connection to its own thread (bounded by
//    kMaxConnections; beyond that a connection is answered 503 and
//    closed). Connections are HTTP/1.1 keep-alive: a thread serves
//    requests back to back on one socket until the client sends
//    "Connection: close", goes quiet past the idle timeout, or hangs up —
//    so a coordinator polling job state does not pay a TCP handshake per
//    poll. Requests are parsed into method/path/query/headers/body;
//    oversized or malformed input is answered with 4xx (and the
//    connection closed) before the handler runs. The handler is invoked
//    concurrently from connection threads and must be thread-safe
//    (SimulationService::handle is).
//  * Client: a persistent keep-alive Client class (one reusable
//    connection per remote, transparent reconnect on a stale socket) and
//    a one-call request() helper for fire-and-forget use. Both enforce a
//    wall-clock per-attempt deadline — a peer trickling one byte per
//    receive-timeout cannot wedge the caller — and optional bounded
//    retries with exponential backoff + jitter on transport failure and
//    429 backpressure (off by default so tests that count calls stay
//    exact).
//
// Server::request_stop() is async-signal-safe (an atomic store plus
// ::shutdown on the listening socket), which is what lets reesed's SIGTERM
// handler stop the accept loop and hand control back to main for the
// drain; serve() then shuts down the per-connection sockets and joins
// their threads before returning. See DESIGN.md §11 and §15.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"

namespace reese::http {

struct Request {
  std::string method;  ///< "GET", "POST", ... (upper-case as received)
  std::string path;    ///< decoded path without the query string
  std::map<std::string, std::string> query;    ///< ?key=value&... pairs
  std::map<std::string, std::string> headers;  ///< keys lower-cased
  std::string body;
  /// True for HTTP/1.1 requests (keep-alive by default). Requests built in
  /// tests default to 1.1 semantics.
  bool http11 = true;
};

struct Response {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Standard reason phrase for the handful of status codes the service
/// emits; "Unknown" otherwise.
const char* status_reason(int status);

/// Distributed trace context carried on the X-Reese-Trace header
/// (DESIGN.md §17). The fleet coordinator mints one trace id per campaign
/// and a fresh span id per shard attempt; every coordinator→worker request
/// carries "X-Reese-Trace: <trace-16hex>-<span-16hex>", and workers tag
/// the jobs it creates (job status/progress JSON, structured log events)
/// with the inherited pair. trace_id 0 means "no context".
struct TraceContext {
  u64 trace_id = 0;  ///< one per fleet campaign
  u64 span_id = 0;   ///< one per shard dispatch attempt

  bool valid() const { return trace_id != 0; }
  /// "<16 hex>-<16 hex>" (lower-case, zero-padded).
  std::string header_value() const;
  /// Parse a header_value() string. False (out untouched) on malformed
  /// input.
  static bool parse(std::string_view value, TraceContext* out);
};

/// Header name as sent on the wire, and its lower-cased key as it appears
/// in Request::headers after parsing.
inline constexpr const char* kTraceHeader = "X-Reese-Trace";
inline constexpr const char* kTraceHeaderKey = "x-reese-trace";

/// The trace context on a parsed request; invalid (trace_id 0) when the
/// header is absent or malformed.
TraceContext trace_context_of(const Request& request);

class Server {
 public:
  using Handler = std::function<Response(const Request&)>;

  explicit Server(Handler handler);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind and listen. `port` 0 picks an ephemeral port (read it back with
  /// port()). Returns false with a message on stderr on failure.
  bool listen(const std::string& host, u16 port);

  /// The bound port (valid after listen()).
  u16 port() const { return port_; }

  /// Blocking accept loop; returns after request_stop(), once every
  /// connection thread has been joined. Call from the thread that should
  /// own the server's lifetime (reesed's main thread).
  void serve();

  /// Stop the accept loop from another thread or a signal handler
  /// (async-signal-safe: atomic store + ::shutdown of the listen socket).
  /// In-flight connections are shut down by serve() on its way out.
  void request_stop();

  /// Connections accepted so far (tests assert keep-alive reuse with it).
  u64 connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  void handle_connection(int fd);
  void track_fd(int fd, bool add);

  Handler handler_;
  int listen_fd_ = -1;
  u16 port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<u64> connections_accepted_{0};
  std::atomic<u32> active_connections_{0};

  std::mutex mutex_;                ///< guards threads_ and open_fds_
  std::vector<std::thread> threads_;
  std::set<int> open_fds_;
};

/// Per-request client policy. The deadline is wall-clock per attempt — it
/// bounds connect + send + the whole response read, so a slow-writer peer
/// fails the request instead of resetting a per-recv timer forever.
/// Retries are off by default: tests that assert exact call counts (and
/// handlers that are not idempotent) should not be surprised by hidden
/// resubmission. When enabled, a retry fires on transport failure (status
/// 0) and on 429 backpressure, sleeping backoff_ms · 2^attempt (capped at
/// backoff_max_ms) plus uniform jitter in [0, 50%] of the delay.
struct RequestOptions {
  double deadline_s = 10.0;     ///< wall clock per attempt; <= 0 = 10 s
  int max_retries = 0;          ///< extra attempts after the first
  double backoff_ms = 100.0;    ///< first retry delay before jitter
  double backoff_max_ms = 2000.0;
  bool retry_on_429 = true;     ///< also retry 429 (when max_retries > 0)
  u64 jitter_seed = 0;          ///< 0 = derived from the clock
  /// Extra headers, sent verbatim (e.g. {"Authorization", "Bearer t"}).
  std::vector<std::pair<std::string, std::string>> headers;
};

/// A keep-alive HTTP/1.1 client bound to one host:port. request() reuses
/// a single persistent connection across calls, transparently reconnecting
/// when the server closed it in between (one extra attempt on a stale
/// socket, not counted against RequestOptions::max_retries). Transport
/// failures return status 0 with the error in `body`. Not thread-safe —
/// one Client per calling thread (sim/fleet.cpp holds one per worker).
class Client {
 public:
  Client(std::string host, u16 port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Response request(const std::string& method, const std::string& path,
                   const std::string& body = "",
                   const RequestOptions& options = {});

  /// Sockets opened so far — stays at 1 across many requests when
  /// keep-alive reuse works (tests assert exactly that).
  u64 connects() const { return connects_; }
  u64 requests_sent() const { return requests_sent_; }

 private:
  friend Response request(const std::string&, u16, const std::string&,
                          const std::string&, const std::string&,
                          const RequestOptions&);

  /// One attempt on the wire; `reuse` allows picking up the persistent
  /// socket, `close_after` asks the server to close (one-shot mode).
  Response attempt(const std::string& method, const std::string& path,
                   const std::string& body, const RequestOptions& options,
                   bool close_after);
  Response with_retries(const std::string& method, const std::string& path,
                        const std::string& body,
                        const RequestOptions& options, bool close_after);
  void drop_connection();

  std::string host_;
  u16 port_ = 0;
  int fd_ = -1;
  u64 connects_ = 0;
  u64 requests_sent_ = 0;
};

/// One-shot client: connect to host:port, send `method path` with `body`
/// (empty = no body), return the parsed response; the connection is closed
/// after the exchange. Transport failures (connect/deadline/protocol)
/// return status 0 with the error in `body`.
Response request(const std::string& host, u16 port, const std::string& method,
                 const std::string& path, const std::string& body = "",
                 const RequestOptions& options = {});

}  // namespace reese::http

// Dependency-free HTTP/1.1 over blocking POSIX sockets: the transport for
// reesed (tools/reesed.cpp) and reese_client (tools/reese_client.cpp).
//
// Scope is deliberately small — exactly what a loopback job service needs:
//  * Server: bind/listen on an IPv4 address (port 0 = ephemeral), then a
//    blocking accept loop that reads one request per connection, calls the
//    handler, writes the response and closes ("Connection: close"
//    semantics). Requests are parsed into method/path/query/headers/body;
//    oversized or malformed input is answered with 4xx before the handler
//    runs. The loop is serial by design: every reesed handler is a
//    sub-millisecond queue or map operation (simulations run on the job
//    queue's workers, never on the connection thread), so a second
//    listener thread would buy nothing but races. A per-connection receive
//    timeout keeps a stalled client from wedging the listener.
//  * Client: one-call request() helper that opens a connection, sends a
//    request, and parses the response — so tests and reese_client never
//    hand-write HTTP.
//
// Server::request_stop() is async-signal-safe (an atomic store plus
// ::shutdown on the listening socket), which is what lets reesed's SIGTERM
// handler stop the accept loop and hand control back to main for the
// drain. See DESIGN.md §11.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <string>

#include "common/types.h"

namespace reese::http {

struct Request {
  std::string method;  ///< "GET", "POST", ... (upper-case as received)
  std::string path;    ///< decoded path without the query string
  std::map<std::string, std::string> query;    ///< ?key=value&... pairs
  std::map<std::string, std::string> headers;  ///< keys lower-cased
  std::string body;
};

struct Response {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Standard reason phrase for the handful of status codes the service
/// emits; "Unknown" otherwise.
const char* status_reason(int status);

class Server {
 public:
  using Handler = std::function<Response(const Request&)>;

  explicit Server(Handler handler);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind and listen. `port` 0 picks an ephemeral port (read it back with
  /// port()). Returns false with a message on stderr on failure.
  bool listen(const std::string& host, u16 port);

  /// The bound port (valid after listen()).
  u16 port() const { return port_; }

  /// Blocking accept loop; returns after request_stop(). Call from the
  /// thread that should own request handling (reesed's main thread).
  void serve();

  /// Stop the accept loop from another thread or a signal handler
  /// (async-signal-safe: atomic store + ::shutdown of the listen socket).
  void request_stop();

 private:
  void handle_connection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  u16 port_ = 0;
  std::atomic<bool> stop_{false};
};

/// One-shot client: connect to host:port, send `method path` with `body`
/// (empty = no body), return the parsed response. Transport failures
/// (connect/timeout/protocol) return status 0 with the error in `body`.
Response request(const std::string& host, u16 port, const std::string& method,
                 const std::string& path, const std::string& body = "");

}  // namespace reese::http

#include "common/http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/rng.h"
#include "common/strutil.h"

namespace reese::http {

namespace {

// Untrusted-input bounds: a spec for a full campaign grid is ~1 KiB; a
// megabyte of headroom is generous without letting a client balloon the
// server's memory.
constexpr usize kMaxHeaderBytes = 64 * 1024;
constexpr usize kMaxBodyBytes = 4 * 1024 * 1024;
// Responses the *client* is willing to buffer. Much larger than the
// request-body cap: a coordinator fetching a shard's serialized
// CampaignMatrix (?format=cells) pulls per-cell strata for thousands of
// cells in one response.
constexpr usize kMaxResponseBytes = 256 * 1024 * 1024;
constexpr int kRecvTimeoutSeconds = 10;
/// Concurrent connection threads the server will run; connection number
/// kMaxConnections + 1 is answered 503 and closed.
constexpr u32 kMaxConnections = 64;

using Clock = std::chrono::steady_clock;

void set_recv_timeout(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

// --- server-side blocking I/O (per-recv timeout; the connection thread is
// --- expendable, the listener is not) ---------------------------------------

/// Read from `fd` until `terminator` is present in `buffer` (keeps reading
/// past it into `buffer`; the caller splits). False on EOF/error/overflow.
bool read_until(int fd, std::string* buffer, const char* terminator,
                usize max_bytes, usize* terminator_pos) {
  char chunk[4096];
  while (true) {
    const usize found = buffer->find(terminator);
    if (found != std::string::npos) {
      *terminator_pos = found;
      return true;
    }
    if (buffer->size() > max_bytes) return false;
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<usize>(n));
  }
}

bool read_exact_total(int fd, std::string* buffer, usize total) {
  char chunk[4096];
  while (buffer->size() < total) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<usize>(n));
  }
  return true;
}

bool send_all(int fd, std::string_view data) {
  usize sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<usize>(n);
  }
  return true;
}

// --- client-side deadline I/O ------------------------------------------------
// The client socket runs non-blocking; every wait goes through poll() with
// the *remaining* wall-clock budget, so the deadline bounds the whole
// request (connect + send + full response), not one recv at a time.

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

/// Wait for `events` on `fd` until `deadline`. Returns false on timeout or
/// poll error.
bool wait_fd(int fd, short events, Clock::time_point deadline) {
  while (true) {
    const int budget = remaining_ms(deadline);
    if (budget <= 0) return false;
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, budget);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

bool send_all_deadline(int fd, std::string_view data,
                       Clock::time_point deadline, std::string* error) {
  usize sent = 0;
  while (sent < data.size()) {
    if (!wait_fd(fd, POLLOUT, deadline)) {
      *error = "request deadline exceeded (send)";
      return false;
    }
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      *error = format("send: %s", std::strerror(errno));
      return false;
    }
    if (n == 0) {
      *error = "send: connection closed";
      return false;
    }
    sent += static_cast<usize>(n);
  }
  return true;
}

enum class RecvStatus { kData, kEof, kTimeout, kError };

RecvStatus recv_some_deadline(int fd, std::string* buffer,
                              Clock::time_point deadline, std::string* error) {
  if (!wait_fd(fd, POLLIN, deadline)) {
    *error = "request deadline exceeded (response not complete in time)";
    return RecvStatus::kTimeout;
  }
  char chunk[65536];
  while (true) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer->append(chunk, static_cast<usize>(n));
      return RecvStatus::kData;
    }
    if (n == 0) return RecvStatus::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // poll said readable but the kernel changed its mind; re-poll.
      if (!wait_fd(fd, POLLIN, deadline)) {
        *error = "request deadline exceeded (response not complete in time)";
        return RecvStatus::kTimeout;
      }
      continue;
    }
    *error = format("recv: %s", std::strerror(errno));
    return RecvStatus::kError;
  }
}

/// Non-blocking connect bounded by `deadline`. Returns the connected fd
/// (left in non-blocking mode) or -1 with a message in `*error`.
int connect_with_deadline(const std::string& host, u16 port,
                          Clock::time_point deadline, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = format("socket: %s", std::strerror(errno));
    return -1;
  }
  fcntl(fd, F_SETFL, fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    *error = format("bad address %s", host.c_str());
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    *error = format("connect %s:%u: %s", host.c_str(), port,
                    std::strerror(errno));
    ::close(fd);
    return -1;
  }
  if (!wait_fd(fd, POLLOUT, deadline)) {
    *error = format("connect %s:%u: deadline exceeded", host.c_str(), port);
    ::close(fd);
    return -1;
  }
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
      so_error != 0) {
    *error = format("connect %s:%u: %s", host.c_str(), port,
                    std::strerror(so_error != 0 ? so_error : errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

// --- parsing -----------------------------------------------------------------

void parse_query(std::string_view query_string,
                 std::map<std::string, std::string>* out) {
  for (std::string_view pair : split(query_string, '&')) {
    if (pair.empty()) continue;
    const usize eq = pair.find('=');
    if (eq == std::string_view::npos) {
      (*out)[std::string(pair)] = "";
    } else {
      (*out)[std::string(pair.substr(0, eq))] =
          std::string(pair.substr(eq + 1));
    }
  }
}

/// Parse "METHOD /path?query HTTP/1.1" + headers out of `head`. Returns
/// false on malformed input.
bool parse_request_head(std::string_view head, Request* request) {
  const std::vector<std::string_view> lines = split(head, '\n');
  if (lines.empty()) return false;
  // Request line (split() leaves the '\r' on each line; trim per line).
  const std::vector<std::string_view> parts =
      split_whitespace(trim(lines[0]));
  if (parts.size() != 3) return false;
  request->method = std::string(parts[0]);
  if (!starts_with(parts[2], "HTTP/1.")) return false;
  request->http11 = parts[2] != "HTTP/1.0";
  std::string_view target = parts[1];
  const usize question = target.find('?');
  if (question != std::string_view::npos) {
    parse_query(target.substr(question + 1), &request->query);
    target = target.substr(0, question);
  }
  request->path = std::string(target);
  for (usize i = 1; i < lines.size(); ++i) {
    const std::string_view line = trim(lines[i]);
    if (line.empty()) continue;
    const usize colon = line.find(':');
    if (colon == std::string_view::npos) return false;
    request->headers[to_lower(trim(line.substr(0, colon)))] =
        std::string(trim(line.substr(colon + 1)));
  }
  return true;
}

std::string render_response(const Response& response, bool keep_alive) {
  std::string out = format("HTTP/1.1 %d %s\r\n", response.status,
                           status_reason(response.status));
  out += format("Content-Type: %s\r\n", response.content_type.c_str());
  out += format("Content-Length: %zu\r\n", response.body.size());
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 410: return "Gone";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

// --- Trace context -----------------------------------------------------------

std::string TraceContext::header_value() const {
  return format("%016llx-%016llx", static_cast<unsigned long long>(trace_id),
                static_cast<unsigned long long>(span_id));
}

bool TraceContext::parse(std::string_view value, TraceContext* out) {
  const auto parse_hex16 = [](std::string_view hex, u64* parsed) {
    if (hex.size() != 16) return false;
    u64 result = 0;
    for (char c : hex) {
      u64 digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<u64>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<u64>(c - 'a' + 10);
      } else {
        return false;
      }
      result = (result << 4) | digit;
    }
    *parsed = result;
    return true;
  };
  const std::string_view trimmed = trim(value);
  const usize dash = trimmed.find('-');
  if (dash == std::string_view::npos) return false;
  u64 trace_id = 0;
  u64 span_id = 0;
  if (!parse_hex16(trimmed.substr(0, dash), &trace_id) ||
      !parse_hex16(trimmed.substr(dash + 1), &span_id) || trace_id == 0) {
    return false;
  }
  out->trace_id = trace_id;
  out->span_id = span_id;
  return true;
}

TraceContext trace_context_of(const Request& request) {
  TraceContext context;
  const auto it = request.headers.find(kTraceHeaderKey);
  if (it != request.headers.end()) TraceContext::parse(it->second, &context);
  return context;
}

// --- Server ------------------------------------------------------------------

Server::Server(Handler handler) : handler_(std::move(handler)) {}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool Server::listen(const std::string& host, u16 port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    std::perror("http: socket");
    return false;
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "http: bad listen address %s\n", host.c_str());
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::perror("http: bind");
    return false;
  }
  if (::listen(listen_fd_, 64) != 0) {
    std::perror("http: listen");
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    std::perror("http: getsockname");
    return false;
  }
  port_ = ntohs(bound.sin_port);
  return true;
}

void Server::track_fd(int fd, bool add) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (add) {
    open_fds_.insert(fd);
  } else {
    open_fds_.erase(fd);
  }
}

void Server::serve() {
  // Connection threads whose handler has returned; joined opportunistically
  // from the accept loop so a long-lived daemon does not accumulate one
  // zombie thread per past connection.
  std::vector<std::thread::id> finished;
  std::mutex finished_mutex;

  const auto reap = [&](bool all) {
    std::vector<std::thread::id> ids;
    {
      std::lock_guard<std::mutex> lock(finished_mutex);
      ids.swap(finished);
    }
    if (all) {
      // Join OUTSIDE mutex_: a connection thread's epilogue takes mutex_
      // (track_fd), so joining a still-running thread under the lock
      // deadlocks the shutdown path. Only serve() appends to threads_ and
      // the accept loop has exited, so swapping the vector out is safe.
      std::vector<std::thread> doomed;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        doomed.swap(threads_);
      }
      for (std::thread& thread : doomed) thread.join();
      return;
    }
    // Non-stop reaps join only threads that already recorded their id —
    // past every mutex_ touch — so holding the lock here cannot deadlock.
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::thread::id id : ids) {
      for (auto it = threads_.begin(); it != threads_.end(); ++it) {
        if (it->get_id() == id) {
          it->join();
          threads_.erase(it);
          break;
        }
      }
    }
  };

  while (!stop_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      // The listen socket is gone (request_stop raced the flag, or a real
      // error); either way the loop cannot make progress.
      break;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    reap(/*all=*/false);
    if (active_connections_.load(std::memory_order_acquire) >=
        kMaxConnections) {
      send_all(fd, render_response(
                       {503, "application/json",
                        "{\"error\": \"connection limit reached\"}\n"},
                       /*keep_alive=*/false));
      ::close(fd);
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_acq_rel);
    track_fd(fd, true);
    std::lock_guard<std::mutex> lock(mutex_);
    threads_.emplace_back([this, fd, &finished, &finished_mutex] {
      handle_connection(fd);
      track_fd(fd, false);
      ::close(fd);
      active_connections_.fetch_sub(1, std::memory_order_acq_rel);
      std::lock_guard<std::mutex> done_lock(finished_mutex);
      finished.push_back(std::this_thread::get_id());
    });
  }

  // Stopping: unblock every connection thread (they are at worst inside a
  // 10 s recv timeout), then join them all before the locals above go out
  // of scope.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  reap(/*all=*/true);
}

void Server::request_stop() {
  stop_.store(true, std::memory_order_release);
  // Wake a blocked accept(). shutdown() is async-signal-safe; the fd is
  // closed later by the destructor, not here, so a concurrent accept never
  // sees the descriptor number reused. In-flight connection sockets are
  // shut down by serve() on its way out (not here: walking open_fds_ takes
  // a lock, which a signal handler must not).
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void Server::handle_connection(int fd) {
  set_recv_timeout(fd, kRecvTimeoutSeconds);
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // Keep-alive loop: serve requests back to back on this socket until the
  // client asks for close, goes idle past the recv timeout, hangs up, or
  // sends something malformed. Leftover bytes after one request stay in
  // `buffer` — pipelined requests are simply the next loop iteration.
  std::string buffer;
  while (!stop_.load(std::memory_order_acquire)) {
    usize head_end = 0;
    if (!read_until(fd, &buffer, "\r\n\r\n", kMaxHeaderBytes, &head_end)) {
      // Nothing of a request arrived: an idle keep-alive client timing out
      // or hanging up, which is the normal end of a connection — close
      // quietly. A partial head is a protocol error worth a 400.
      if (!buffer.empty()) {
        send_all(fd, render_response(
                         {400, "application/json",
                          "{\"error\": \"malformed or oversized request "
                          "head\"}\n"},
                         false));
      }
      return;
    }

    Request request;
    if (!parse_request_head(std::string_view(buffer).substr(0, head_end),
                            &request)) {
      send_all(fd,
               render_response({400, "application/json",
                                "{\"error\": \"malformed request line\"}\n"},
                               false));
      return;
    }

    const usize body_start = head_end + 4;
    usize content_length = 0;
    if (const auto it = request.headers.find("content-length");
        it != request.headers.end()) {
      i64 parsed = 0;
      if (!parse_int(it->second, &parsed) || parsed < 0) {
        send_all(fd, render_response({400, "application/json",
                                      "{\"error\": \"bad content-length\"}\n"},
                                     false));
        return;
      }
      content_length = static_cast<usize>(parsed);
    }
    if (content_length > kMaxBodyBytes) {
      send_all(fd, render_response({413, "application/json",
                                    "{\"error\": \"body too large\"}\n"},
                                   false));
      return;
    }
    if (!read_exact_total(fd, &buffer, body_start + content_length)) {
      send_all(fd, render_response({400, "application/json",
                                    "{\"error\": \"truncated body\"}\n"},
                                   false));
      return;
    }
    request.body = buffer.substr(body_start, content_length);

    bool keep_alive = request.http11;
    if (const auto it = request.headers.find("connection");
        it != request.headers.end()) {
      const std::string value = to_lower(it->second);
      if (value == "close") keep_alive = false;
      if (value == "keep-alive") keep_alive = true;
    }
    if (stop_.load(std::memory_order_acquire)) keep_alive = false;

    const Response response = handler_(request);
    if (!send_all(fd, render_response(response, keep_alive))) return;
    if (!keep_alive) return;
    buffer.erase(0, body_start + content_length);
  }
}

// --- Client ------------------------------------------------------------------

Client::Client(std::string host, u16 port)
    : host_(std::move(host)), port_(port) {}

Client::~Client() { drop_connection(); }

void Client::drop_connection() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Response Client::attempt(const std::string& method, const std::string& path,
                         const std::string& body,
                         const RequestOptions& options, bool close_after) {
  Response failure;
  failure.status = 0;
  failure.content_type = "text/plain";

  const double deadline_s =
      options.deadline_s > 0.0 ? options.deadline_s : 10.0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(deadline_s));

  const bool reused = fd_ >= 0;
  if (fd_ < 0) {
    fd_ = connect_with_deadline(host_, port_, deadline, &failure.body);
    if (fd_ < 0) return failure;
    ++connects_;
  }

  std::string wire = format("%s %s HTTP/1.1\r\n", method.c_str(), path.c_str());
  wire += format("Host: %s:%u\r\n", host_.c_str(), port_);
  for (const auto& [key, value] : options.headers) {
    wire += format("%s: %s\r\n", key.c_str(), value.c_str());
  }
  if (!body.empty()) wire += "Content-Type: application/json\r\n";
  wire += format("Content-Length: %zu\r\n", body.size());
  wire += close_after ? "Connection: close\r\n\r\n"
                      : "Connection: keep-alive\r\n\r\n";
  wire += body;

  ++requests_sent_;
  std::string buffer;
  const auto stale_failure = [&](const std::string& message) {
    drop_connection();
    failure.body = message;
    if (reused && buffer.empty()) {
      // The server closed the persistent connection between requests
      // (keep-alive race): it never saw this request, so one transparent
      // attempt on a fresh socket is safe and expected.
      return attempt(method, path, body, options, close_after);
    }
    return failure;
  };

  std::string io_error;
  if (!send_all_deadline(fd_, wire, deadline, &io_error)) {
    return stale_failure(io_error);
  }

  // Response head.
  usize head_end = std::string::npos;
  while (true) {
    const usize found = buffer.find("\r\n\r\n");
    if (found != std::string::npos) {
      head_end = found;
      break;
    }
    if (buffer.size() > kMaxHeaderBytes) {
      drop_connection();
      failure.body = "oversized response head";
      return failure;
    }
    const RecvStatus status =
        recv_some_deadline(fd_, &buffer, deadline, &io_error);
    if (status == RecvStatus::kEof) return stale_failure("connection closed");
    if (status != RecvStatus::kData) {
      drop_connection();
      failure.body = io_error;
      return failure;
    }
  }

  const std::string_view head = std::string_view(buffer).substr(0, head_end);
  const std::vector<std::string_view> lines = split(head, '\n');
  const std::vector<std::string_view> status_parts =
      split_whitespace(trim(lines[0]));
  Response response;
  i64 status = 0;
  if (status_parts.size() < 2 || !starts_with(status_parts[0], "HTTP/1.") ||
      !parse_int(status_parts[1], &status)) {
    drop_connection();
    failure.body = "malformed status line";
    return failure;
  }
  response.status = static_cast<int>(status);

  usize content_length = std::string::npos;
  bool server_closes = false;
  for (usize i = 1; i < lines.size(); ++i) {
    const std::string_view line = trim(lines[i]);
    const usize colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string key = to_lower(trim(line.substr(0, colon)));
    const std::string_view value = trim(line.substr(colon + 1));
    if (key == "content-length") {
      i64 parsed = 0;
      if (parse_int(value, &parsed) && parsed >= 0) {
        content_length = static_cast<usize>(parsed);
      }
    } else if (key == "content-type") {
      response.content_type = std::string(value);
    } else if (key == "connection") {
      server_closes = to_lower(std::string(value)) == "close";
    }
  }

  const usize body_start = head_end + 4;
  if (content_length != std::string::npos) {
    if (content_length > kMaxResponseBytes) {
      drop_connection();
      failure.body = "response body too large";
      return failure;
    }
    while (buffer.size() < body_start + content_length) {
      const RecvStatus recv_status =
          recv_some_deadline(fd_, &buffer, deadline, &io_error);
      if (recv_status != RecvStatus::kData) {
        drop_connection();
        failure.body = recv_status == RecvStatus::kEof
                           ? "truncated response body"
                           : io_error;
        return failure;
      }
    }
    response.body = buffer.substr(body_start, content_length);
    // Bytes past the response body would be pipelined responses we never
    // requested; drop the connection rather than desync.
    if (buffer.size() > body_start + content_length) server_closes = true;
  } else {
    // No Content-Length: read to EOF (Connection: close semantics).
    while (true) {
      if (buffer.size() > kMaxResponseBytes) {
        drop_connection();
        failure.body = "response body too large";
        return failure;
      }
      const RecvStatus recv_status =
          recv_some_deadline(fd_, &buffer, deadline, &io_error);
      if (recv_status == RecvStatus::kEof) break;
      if (recv_status != RecvStatus::kData) {
        drop_connection();
        failure.body = io_error;
        return failure;
      }
    }
    response.body = buffer.substr(body_start);
    server_closes = true;
  }

  if (close_after || server_closes) drop_connection();
  return response;
}

Response Client::with_retries(const std::string& method,
                              const std::string& path, const std::string& body,
                              const RequestOptions& options,
                              bool close_after) {
  Response response = attempt(method, path, body, options, close_after);
  if (options.max_retries <= 0) return response;

  SplitMix64 jitter(options.jitter_seed != 0
                        ? options.jitter_seed
                        : static_cast<u64>(
                              Clock::now().time_since_epoch().count()));
  double delay_ms = options.backoff_ms > 0.0 ? options.backoff_ms : 100.0;
  for (int retry = 0; retry < options.max_retries; ++retry) {
    const bool transient =
        response.status == 0 ||
        (response.status == 429 && options.retry_on_429);
    if (!transient) return response;
    // Exponential backoff with uniform jitter in [0, 50%] of the delay,
    // so a fleet of clients retrying a restarted daemon does not stampede.
    const double jittered =
        delay_ms * (1.0 + 0.5 * (static_cast<double>(jitter.next() >> 11) /
                                 9007199254740992.0));
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(jittered));
    delay_ms = std::min(delay_ms * 2.0, options.backoff_max_ms > 0.0
                                            ? options.backoff_max_ms
                                            : 2000.0);
    response = attempt(method, path, body, options, close_after);
  }
  return response;
}

Response Client::request(const std::string& method, const std::string& path,
                         const std::string& body,
                         const RequestOptions& options) {
  return with_retries(method, path, body, options, /*close_after=*/false);
}

Response request(const std::string& host, u16 port, const std::string& method,
                 const std::string& path, const std::string& body,
                 const RequestOptions& options) {
  Client client(host, port);
  return client.with_retries(method, path, body, options,
                             /*close_after=*/true);
}

}  // namespace reese::http

#include "common/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/strutil.h"

namespace reese::http {

namespace {

// Untrusted-input bounds: a spec for a full campaign grid is ~1 KiB; a
// megabyte of headroom is generous without letting a client balloon the
// server's memory.
constexpr usize kMaxHeaderBytes = 64 * 1024;
constexpr usize kMaxBodyBytes = 4 * 1024 * 1024;
constexpr int kRecvTimeoutSeconds = 10;

void set_recv_timeout(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Read from `fd` until `terminator` is present in `buffer` (keeps reading
/// past it into `buffer`; the caller splits). False on EOF/error/overflow.
bool read_until(int fd, std::string* buffer, const char* terminator,
                usize max_bytes, usize* terminator_pos) {
  char chunk[4096];
  while (true) {
    const usize found = buffer->find(terminator);
    if (found != std::string::npos) {
      *terminator_pos = found;
      return true;
    }
    if (buffer->size() > max_bytes) return false;
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<usize>(n));
  }
}

bool read_exact_total(int fd, std::string* buffer, usize total) {
  char chunk[4096];
  while (buffer->size() < total) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<usize>(n));
  }
  return true;
}

bool send_all(int fd, std::string_view data) {
  usize sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<usize>(n);
  }
  return true;
}

void parse_query(std::string_view query_string,
                 std::map<std::string, std::string>* out) {
  for (std::string_view pair : split(query_string, '&')) {
    if (pair.empty()) continue;
    const usize eq = pair.find('=');
    if (eq == std::string_view::npos) {
      (*out)[std::string(pair)] = "";
    } else {
      (*out)[std::string(pair.substr(0, eq))] =
          std::string(pair.substr(eq + 1));
    }
  }
}

/// Parse "METHOD /path?query HTTP/1.1" + headers out of `head`. Returns
/// false on malformed input.
bool parse_request_head(std::string_view head, Request* request) {
  const std::vector<std::string_view> lines = split(head, '\n');
  if (lines.empty()) return false;
  // Request line (split() leaves the '\r' on each line; trim per line).
  const std::vector<std::string_view> parts =
      split_whitespace(trim(lines[0]));
  if (parts.size() != 3) return false;
  request->method = std::string(parts[0]);
  if (!starts_with(parts[2], "HTTP/1.")) return false;
  std::string_view target = parts[1];
  const usize question = target.find('?');
  if (question != std::string_view::npos) {
    parse_query(target.substr(question + 1), &request->query);
    target = target.substr(0, question);
  }
  request->path = std::string(target);
  for (usize i = 1; i < lines.size(); ++i) {
    const std::string_view line = trim(lines[i]);
    if (line.empty()) continue;
    const usize colon = line.find(':');
    if (colon == std::string_view::npos) return false;
    request->headers[to_lower(trim(line.substr(0, colon)))] =
        std::string(trim(line.substr(colon + 1)));
  }
  return true;
}

std::string render_response(const Response& response) {
  std::string out = format("HTTP/1.1 %d %s\r\n", response.status,
                           status_reason(response.status));
  out += format("Content-Type: %s\r\n", response.content_type.c_str());
  out += format("Content-Length: %zu\r\n", response.body.size());
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

Server::Server(Handler handler) : handler_(std::move(handler)) {}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool Server::listen(const std::string& host, u16 port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    std::perror("http: socket");
    return false;
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "http: bad listen address %s\n", host.c_str());
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::perror("http: bind");
    return false;
  }
  if (::listen(listen_fd_, 64) != 0) {
    std::perror("http: listen");
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    std::perror("http: getsockname");
    return false;
  }
  port_ = ntohs(bound.sin_port);
  return true;
}

void Server::serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      // The listen socket is gone (request_stop raced the flag, or a real
      // error); either way the loop cannot make progress.
      break;
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void Server::request_stop() {
  stop_.store(true, std::memory_order_release);
  // Wake a blocked accept(). shutdown() is async-signal-safe; the fd is
  // closed later by the destructor, not here, so a concurrent accept never
  // sees the descriptor number reused.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void Server::handle_connection(int fd) {
  set_recv_timeout(fd, kRecvTimeoutSeconds);

  std::string buffer;
  usize head_end = 0;
  if (!read_until(fd, &buffer, "\r\n\r\n", kMaxHeaderBytes, &head_end)) {
    send_all(fd, render_response(
                     {400, "application/json",
                      "{\"error\": \"malformed or oversized request head\"}\n"}));
    return;
  }

  Request request;
  if (!parse_request_head(std::string_view(buffer).substr(0, head_end),
                          &request)) {
    send_all(fd, render_response({400, "application/json",
                                  "{\"error\": \"malformed request line\"}\n"}));
    return;
  }

  const usize body_start = head_end + 4;
  usize content_length = 0;
  if (const auto it = request.headers.find("content-length");
      it != request.headers.end()) {
    i64 parsed = 0;
    if (!parse_int(it->second, &parsed) || parsed < 0) {
      send_all(fd, render_response({400, "application/json",
                                    "{\"error\": \"bad content-length\"}\n"}));
      return;
    }
    content_length = static_cast<usize>(parsed);
  }
  if (content_length > kMaxBodyBytes) {
    send_all(fd, render_response({413, "application/json",
                                  "{\"error\": \"body too large\"}\n"}));
    return;
  }
  if (!read_exact_total(fd, &buffer, body_start + content_length)) {
    send_all(fd, render_response({400, "application/json",
                                  "{\"error\": \"truncated body\"}\n"}));
    return;
  }
  request.body = buffer.substr(body_start, content_length);

  const Response response = handler_(request);
  send_all(fd, render_response(response));
}

Response request(const std::string& host, u16 port, const std::string& method,
                 const std::string& path, const std::string& body) {
  Response failure;
  failure.status = 0;
  failure.content_type = "text/plain";

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    failure.body = format("socket: %s", std::strerror(errno));
    return failure;
  }
  set_recv_timeout(fd, kRecvTimeoutSeconds);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    failure.body = format("bad address %s", host.c_str());
    return failure;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    failure.body = format("connect %s:%u: %s", host.c_str(), port,
                          std::strerror(errno));
    ::close(fd);
    return failure;
  }

  std::string wire = format("%s %s HTTP/1.1\r\n", method.c_str(), path.c_str());
  wire += format("Host: %s:%u\r\n", host.c_str(), port);
  if (!body.empty()) wire += "Content-Type: application/json\r\n";
  wire += format("Content-Length: %zu\r\n", body.size());
  wire += "Connection: close\r\n\r\n";
  wire += body;
  if (!send_all(fd, wire)) {
    ::close(fd);
    failure.body = "send failed";
    return failure;
  }

  std::string buffer;
  usize head_end = 0;
  if (!read_until(fd, &buffer, "\r\n\r\n", kMaxHeaderBytes, &head_end)) {
    ::close(fd);
    failure.body = "malformed response head";
    return failure;
  }
  const std::string_view head = std::string_view(buffer).substr(0, head_end);
  const std::vector<std::string_view> lines = split(head, '\n');
  const std::vector<std::string_view> status_parts =
      split_whitespace(trim(lines[0]));
  Response response;
  i64 status = 0;
  if (status_parts.size() < 2 || !starts_with(status_parts[0], "HTTP/1.") ||
      !parse_int(status_parts[1], &status)) {
    ::close(fd);
    failure.body = "malformed status line";
    return failure;
  }
  response.status = static_cast<int>(status);

  usize content_length = std::string::npos;
  for (usize i = 1; i < lines.size(); ++i) {
    const std::string_view line = trim(lines[i]);
    const usize colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string key = to_lower(trim(line.substr(0, colon)));
    const std::string_view value = trim(line.substr(colon + 1));
    if (key == "content-length") {
      i64 parsed = 0;
      if (parse_int(value, &parsed) && parsed >= 0) {
        content_length = static_cast<usize>(parsed);
      }
    } else if (key == "content-type") {
      response.content_type = std::string(value);
    }
  }

  const usize body_start = head_end + 4;
  if (content_length != std::string::npos) {
    if (content_length > kMaxBodyBytes ||
        !read_exact_total(fd, &buffer, body_start + content_length)) {
      ::close(fd);
      failure.body = "truncated response body";
      return failure;
    }
    response.body = buffer.substr(body_start, content_length);
  } else {
    // No Content-Length: read to EOF (Connection: close).
    char chunk[4096];
    ssize_t n = 0;
    while ((n = recv(fd, chunk, sizeof(chunk), 0)) > 0) {
      buffer.append(chunk, static_cast<usize>(n));
    }
    response.body = buffer.substr(body_start);
  }
  ::close(fd);
  return response;
}

}  // namespace reese::http

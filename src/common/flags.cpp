#include "common/flags.h"

#include <cstdio>
#include <cstdlib>

#include <fstream>
#include <sstream>

#include "common/strutil.h"

namespace reese {

Result<bool> FlagSet::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.size() < 2 || token[0] != '-') {
      positional_.push_back(token);
      continue;
    }
    usize name_start = (token[1] == '-') ? 2 : 1;
    std::string body = token.substr(name_start);

    // "-name:value" or "--name=value" forms.
    for (char sep : {':', '='}) {
      const usize pos = body.find(sep);
      if (pos != std::string::npos) {
        values_[body.substr(0, pos)] = body.substr(pos + 1);
        body.clear();
        break;
      }
    }
    if (body.empty()) continue;

    // "-name value" form; a bare trailing "-name" is treated as boolean true.
    if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
  return true;
}

Result<bool> FlagSet::parse_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) return errorf("cannot open config file '%s'", path.c_str());
  std::vector<std::string> tokens;
  std::string line;
  while (std::getline(file, line)) {
    const usize comment = line.find('#');
    if (comment != std::string::npos) line = line.substr(0, comment);
    for (std::string_view token : split_whitespace(line)) {
      tokens.emplace_back(token);
    }
  }
  // Reuse the argv parser; command-line values win over file values.
  FlagSet from_file;
  std::vector<const char*> argv = {"config"};
  for (const std::string& token : tokens) argv.push_back(token.c_str());
  if (auto parsed = from_file.parse(static_cast<int>(argv.size()),
                                    argv.data());
      !parsed.ok()) {
    return parsed.error();
  }
  for (const auto& [name, value] : from_file.values()) {
    values_.emplace(name, value);  // emplace: does not overwrite existing
  }
  for (const std::string& positional : from_file.positional()) {
    positional_.push_back(positional);
  }
  return true;
}

bool FlagSet::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string FlagSet::get_string(const std::string& name,
                                const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

i64 FlagSet::get_i64(const std::string& name, i64 def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  i64 out = 0;
  if (!parse_int(it->second, &out)) {
    std::fprintf(stderr, "flag -%s: '%s' is not an integer\n", name.c_str(),
                 it->second.c_str());
    std::exit(2);
  }
  return out;
}

u64 FlagSet::get_u64(const std::string& name, u64 def) const {
  const i64 v = get_i64(name, static_cast<i64>(def));
  if (v < 0) {
    std::fprintf(stderr, "flag -%s: must be non-negative\n", name.c_str());
    std::exit(2);
  }
  return static_cast<u64>(v);
}

double FlagSet::get_double(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "flag -%s: '%s' is not a number\n", name.c_str(),
                 it->second.c_str());
    std::exit(2);
  }
  return v;
}

bool FlagSet::get_bool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string v = to_lower(it->second);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace reese

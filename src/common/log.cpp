#include "common/log.h"

#include <chrono>
#include <cmath>

#include "common/diag.h"
#include "common/strutil.h"

namespace reese::log {

namespace {

double wall_clock_now() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string quoted(std::string_view value) {
  return "\"" + json_escape(value) + "\"";
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
  }
  return "?";
}

bool level_from_name(std::string_view name, Level* out) {
  if (name == "debug") {
    *out = Level::kDebug;
  } else if (name == "info") {
    *out = Level::kInfo;
  } else if (name == "warn") {
    *out = Level::kWarn;
  } else if (name == "error") {
    *out = Level::kError;
  } else {
    return false;
  }
  return true;
}

Field field(std::string key, std::string_view value) {
  return {std::move(key), quoted(value)};
}
Field field(std::string key, const char* value) {
  return {std::move(key), quoted(value == nullptr ? "" : value)};
}
Field field(std::string key, const std::string& value) {
  return {std::move(key), quoted(value)};
}
Field field(std::string key, u64 value) {
  return {std::move(key),
          format("%llu", static_cast<unsigned long long>(value))};
}
Field field(std::string key, u32 value) {
  return field(std::move(key), static_cast<u64>(value));
}
Field field(std::string key, i64 value) {
  return {std::move(key), format("%lld", static_cast<long long>(value))};
}
Field field(std::string key, int value) {
  return field(std::move(key), static_cast<i64>(value));
}
Field field(std::string key, double value) {
  if (!std::isfinite(value)) return {std::move(key), "null"};
  return {std::move(key), format("%.6f", value)};
}
Field field(std::string key, bool value) {
  return {std::move(key), value ? "true" : "false"};
}

Logger::~Logger() {
  if (file_ != nullptr) std::fclose(file_);
}

void Logger::set_level(Level level) {
  std::lock_guard<std::mutex> lock(mutex_);
  level_ = level;
}

Level Logger::level() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return level_;
}

bool Logger::open_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = file;
  return true;
}

void Logger::set_clock(Clock clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = std::move(clock);
}

void Logger::set_registry(metrics::Registry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  registry_ = registry;
}

metrics::Registry* Logger::registry() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return registry_;
}

u64 Logger::events_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_written_;
}

void Logger::set_capture(std::string* capture) {
  std::lock_guard<std::mutex> lock(mutex_);
  capture_ = capture;
}

void Logger::log(Level level, std::string_view kind, std::string_view message,
                 const std::vector<Field>& fields) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (level < level_) return;
  const double ts = clock_ ? clock_() : wall_clock_now();
  std::string line = format("{\"ts\": %.6f, \"level\": \"%s\", ", ts,
                            level_name(level));
  line += "\"kind\": " + quoted(kind) + ", \"msg\": " + quoted(message);
  for (const Field& f : fields) {
    line += ", " + quoted(f.key) + ": " + f.json;
  }
  line += "}\n";
  if (capture_ != nullptr) {
    *capture_ += line;
  } else {
    std::FILE* sink = file_ != nullptr ? file_ : stderr;
    std::fwrite(line.data(), 1, line.size(), sink);
    std::fflush(sink);
  }
  ++events_written_;
  if (registry_ != nullptr) {
    if (metrics::Counter* counter = registry_->counter(
            "reese_fleet_events_total", {{"kind", std::string(kind)}},
            "Structured log events by kind")) {
      counter->inc();
    }
  }
}

Logger& global() {
  static Logger logger;
  return logger;
}

}  // namespace reese::log

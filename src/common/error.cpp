#include "common/error.h"

#include <cstdarg>
#include <cstdio>

namespace reese {

std::string Error::to_string() const {
  if (line > 0) return "line " + std::to_string(line) + ": " + message;
  return message;
}

Error errorf(const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return Error{std::string(buf), 0};
}

}  // namespace reese

// A small fixed-size thread pool with an index-claiming parallel_for.
//
// Built for the experiment grid runner: a batch of independent, similarly
// sized jobs (one simulation per (workload, model, seed) cell) is fanned
// across hardware threads. Work distribution is dynamic — every worker
// (including the calling thread) claims the next unstarted index from one
// atomic counter, so a worker that finishes early immediately steals from
// the remaining tail instead of idling behind a static partition.
//
// Determinism contract: parallel_for imposes no ordering on job execution,
// so jobs must not share mutable state; each writes only its own result
// slot. Under that contract the results are bit-identical to a sequential
// loop regardless of worker count (see tests/experiment_parallel_test.cpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"

namespace reese {

/// Upper bound on a believable explicit worker-count request. Anything
/// larger is treated as garbage (the classic bug: a negative CLI value
/// cast through u32 lands near 4·10⁹ and the pool tries to spawn that many
/// threads) and normalized to auto with a warning.
inline constexpr u32 kMaxJobRequest = 1024;

/// Resolve a worker-count request: any positive sane `requested` wins;
/// 0 means auto — $REESE_JOBS if set and positive, else
/// hardware_concurrency(). Out-of-range requests (including a $REESE_JOBS
/// value that is not a positive integer) warn on stderr and fall back to
/// auto. Always at least 1.
u32 resolve_job_count(u32 requested);

/// Normalize a signed worker-count request from an untrusted source (CLI
/// flag, JSON spec): values in [1, kMaxJobRequest] pass through; everything
/// else (0, negative, absurd) warns on stderr — labelled with `flag` — and
/// becomes 0 (auto, i.e. hardware concurrency via resolve_job_count).
u32 sanitize_job_count(i64 requested, const char* flag = "--jobs");

class ThreadPool {
 public:
  /// `workers` is the total parallelism including the calling thread, so
  /// the pool spawns `workers - 1` threads; 1 means "run everything inline"
  /// (no threads at all). 0 resolves via resolve_job_count.
  explicit ThreadPool(u32 workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (spawned threads + the calling thread).
  u32 worker_count() const { return static_cast<u32>(threads_.size()) + 1; }

  /// Run fn(0) .. fn(count - 1), each exactly once, across the pool and the
  /// calling thread; returns when all have finished. Not reentrant and not
  /// thread-safe — one batch at a time, driven from the owning thread.
  void parallel_for(usize count, const std::function<void(usize)>& fn);

 private:
  void run_share();
  void worker_loop();

  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable wake_cv_;   ///< signals workers: new batch / stop
  std::condition_variable done_cv_;   ///< signals the caller: batch drained
  const std::function<void(usize)>* fn_ = nullptr;
  std::atomic<usize> next_{0};
  std::atomic<usize> done_{0};
  usize total_ = 0;
  u64 generation_ = 0;  ///< bumped per batch so workers wake exactly once
  u32 active_ = 0;      ///< pool workers currently inside run_share
  bool stop_ = false;
};

/// A bounded FIFO task queue drained by a fixed set of worker threads —
/// the long-lived sibling of ThreadPool's one-batch parallel_for, built
/// for reesed's job manager (sim/service.h): jobs arrive one at a time
/// over HTTP and must be admitted or refused immediately.
///
/// Admission control is the point: try_enqueue refuses (returns false)
/// when `capacity` tasks are already waiting, which the service maps to
/// HTTP 429 backpressure. Tasks already admitted always run — drain()
/// blocks until the queue is empty and every worker is idle (reesed's
/// SIGTERM path). The destructor drains too, so an admitted job is never
/// silently dropped.
class TaskQueue {
 public:
  /// Spawns `workers` dedicated threads (resolved via resolve_job_count;
  /// unlike ThreadPool the calling thread is NOT a worker — it stays free
  /// to accept connections). `capacity` bounds the *waiting* queue;
  /// running tasks do not count against it.
  TaskQueue(u32 workers, usize capacity);
  ~TaskQueue();

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  /// Admit a task, or refuse it when `capacity` tasks are already queued
  /// (or the queue is stopping). Never blocks.
  bool try_enqueue(std::function<void()> task);

  /// Block until every admitted task has finished and all workers are
  /// idle. New tasks may still be admitted afterwards.
  void drain();

  usize queued() const;
  u32 running() const;
  u32 worker_count() const { return static_cast<u32>(threads_.size()); }
  usize capacity() const { return capacity_; }

 private:
  void worker_loop();

  const usize capacity_;
  mutable std::mutex mutex_;
  std::condition_variable wake_cv_;  ///< workers: task available / stop
  std::condition_variable idle_cv_;  ///< drain(): queue empty, workers idle
  std::deque<std::function<void()>> queue_;
  u32 running_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace reese

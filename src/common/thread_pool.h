// A small fixed-size thread pool with an index-claiming parallel_for.
//
// Built for the experiment grid runner: a batch of independent, similarly
// sized jobs (one simulation per (workload, model, seed) cell) is fanned
// across hardware threads. Work distribution is dynamic — every worker
// (including the calling thread) claims the next unstarted index from one
// atomic counter, so a worker that finishes early immediately steals from
// the remaining tail instead of idling behind a static partition.
//
// Determinism contract: parallel_for imposes no ordering on job execution,
// so jobs must not share mutable state; each writes only its own result
// slot. Under that contract the results are bit-identical to a sequential
// loop regardless of worker count (see tests/experiment_parallel_test.cpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"

namespace reese {

/// Resolve a worker-count request: any positive `requested` wins; 0 means
/// auto — $REESE_JOBS if set and positive, else hardware_concurrency().
/// Always at least 1.
u32 resolve_job_count(u32 requested);

class ThreadPool {
 public:
  /// `workers` is the total parallelism including the calling thread, so
  /// the pool spawns `workers - 1` threads; 1 means "run everything inline"
  /// (no threads at all). 0 resolves via resolve_job_count.
  explicit ThreadPool(u32 workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (spawned threads + the calling thread).
  u32 worker_count() const { return static_cast<u32>(threads_.size()) + 1; }

  /// Run fn(0) .. fn(count - 1), each exactly once, across the pool and the
  /// calling thread; returns when all have finished. Not reentrant and not
  /// thread-safe — one batch at a time, driven from the owning thread.
  void parallel_for(usize count, const std::function<void(usize)>& fn);

 private:
  void run_share();
  void worker_loop();

  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable wake_cv_;   ///< signals workers: new batch / stop
  std::condition_variable done_cv_;   ///< signals the caller: batch drained
  const std::function<void(usize)>* fn_ = nullptr;
  std::atomic<usize> next_{0};
  std::atomic<usize> done_{0};
  usize total_ = 0;
  u64 generation_ = 0;  ///< bumped per batch so workers wake exactly once
  u32 active_ = 0;      ///< pool workers currently inside run_share
  bool stop_ = false;
};

}  // namespace reese

// Structured diagnostics for program-analysis tooling (srv-lint, --prelint).
//
// A Diagnostic is one finding anchored to a program counter: which pass
// produced it, how severe it is, and a human-readable message. Reporters
// render a batch of diagnostics as plain text (one finding per line, grep-
// and editor-friendly) or as a JSON array (machine-readable, stable field
// names) so CI and external tooling can consume lint output without parsing
// free-form text.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace reese {

enum class Severity : u8 {
  kNote,     ///< informational; never affects exit status
  kWarning,  ///< suspicious but runnable
  kError,    ///< the program is malformed; --prelint refuses to run it
};

/// "note" / "warning" / "error".
std::string_view severity_name(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kWarning;
  Addr pc = 0;        ///< anchor instruction address; 0 = whole-program
  std::string pass;   ///< registry name of the pass that produced it
  std::string message;
};

/// Count of diagnostics at exactly `severity`.
usize count_severity(const std::vector<Diagnostic>& diags, Severity severity);

/// Output format for render_diagnostics.
enum class DiagFormat : u8 { kText, kJson };

/// Render a batch of findings.
///
/// Text:  "<source>:0x<pc>: <severity>: [<pass>] <message>\n" per finding
///        plus a one-line summary ("N errors, M warnings, K notes").
/// JSON:  {"source": ..., "diagnostics": [{"severity","pc","pass",
///        "message"}...], "errors": N, "warnings": M, "notes": K}
/// `source` labels the program (file name or workload name).
std::string render_diagnostics(const std::vector<Diagnostic>& diags,
                               DiagFormat format,
                               std::string_view source = "<program>");

/// Escape a string for embedding in a JSON string literal (no surrounding
/// quotes). Exposed for reporters that build larger JSON documents.
std::string json_escape(std::string_view s);

}  // namespace reese

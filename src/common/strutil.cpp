#include "common/strutil.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace reese {

std::string_view trim(std::string_view s) {
  usize begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  usize end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> parts;
  usize start = 0;
  for (usize i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::vector<std::string_view> split_whitespace(std::string_view s) {
  std::vector<std::string_view> parts;
  usize i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    const usize start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) parts.push_back(s.substr(start, i - start));
  }
  return parts;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool parse_int(std::string_view s, i64* out) {
  s = trim(s);
  if (s.empty()) return false;

  bool negative = false;
  if (s[0] == '+' || s[0] == '-') {
    negative = (s[0] == '-');
    s.remove_prefix(1);
    if (s.empty()) return false;
  }

  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    s.remove_prefix(2);
  } else if (s.size() > 2 && s[0] == '0' && (s[1] == 'b' || s[1] == 'B')) {
    base = 2;
    s.remove_prefix(2);
  }
  if (s.empty()) return false;

  u64 magnitude = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = 10 + (c - 'a');
    } else if (c >= 'A' && c <= 'F') {
      digit = 10 + (c - 'A');
    } else {
      return false;
    }
    if (digit >= base) return false;
    const u64 next = magnitude * static_cast<u64>(base) + static_cast<u64>(digit);
    if (next < magnitude) return false;  // overflow
    magnitude = next;
  }

  if (negative) {
    if (magnitude > (u64{1} << 63)) return false;
    *out = -static_cast<i64>(magnitude);
  } else {
    if (magnitude > static_cast<u64>(INT64_MAX)) return false;
    *out = static_cast<i64>(magnitude);
  }
  return true;
}

std::string format(const char* fmt, ...) {
  char buf[2048];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return std::string(buf);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace reese

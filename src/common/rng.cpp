// SplitMix64 is header-only; this translation unit exists so the common
// library has a stable archive even if all other members become header-only.
#include "common/rng.h"

namespace reese {
// Intentionally empty.
}  // namespace reese

// String helpers shared by the assembler, flag parser and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace reese {

/// Remove leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a single delimiter character; empty fields preserved.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Split on runs of whitespace; no empty fields.
std::vector<std::string_view> split_whitespace(std::string_view s);

/// Case-sensitive prefix/suffix checks (C++20 has starts_with; kept for
/// symmetry and readability at call sites).
bool starts_with(std::string_view s, std::string_view prefix);

/// Parse a signed 64-bit integer with optional 0x/0b prefix and sign.
/// Returns false on any trailing garbage or overflow.
bool parse_int(std::string_view s, i64* out);

/// printf into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Lower-case an ASCII string.
std::string to_lower(std::string_view s);

}  // namespace reese

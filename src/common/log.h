// Structured event log: leveled JSON-lines for the daemon-side components
// (DESIGN.md §17).
//
// The fleet coordinator, the simulation service and reesed itself narrate
// their lifecycle through this logger instead of raw fprintf(stderr): one
// JSON object per line, so `grep '"kind":"worker_dead"'` and log shippers
// both work on the same stream. Each event carries a timestamp, a level, a
// machine-matchable `kind`, a human message and arbitrary typed fields
// (trace/span context, worker addresses, shard indices, ...).
//
// Determinism and observability contracts:
//   * the wall clock is injected (set_clock) so tests can byte-compare
//     emitted lines;
//   * every emitted event bumps reese_fleet_events_total{kind=...} in the
//     attached metrics registry (set_registry), making log volume itself
//     scrapeable on /v1/metrics;
//   * emission is mutex-serialized — events from concurrent worker threads
//     never interleave within a line.
//
// The process-wide instance behind reesed's --log-file / --log-level flags
// is log::global(); components accept a Logger* (nullptr = global) so tests
// can capture events in isolation.
#pragma once

#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"

namespace reese::log {

enum class Level : u8 { kDebug = 0, kInfo, kWarn, kError };

/// "debug" / "info" / "warn" / "error".
const char* level_name(Level level);

/// Parse a level_name() string (the --log-level flag). False on unknown.
bool level_from_name(std::string_view name, Level* out);

/// One key plus a pre-rendered JSON value. Build with the field()
/// overloads; the free-form string overload escapes, the numeric ones
/// render exact literals.
struct Field {
  std::string key;
  std::string json;
};

Field field(std::string key, std::string_view value);
Field field(std::string key, const char* value);
Field field(std::string key, const std::string& value);
Field field(std::string key, u64 value);
Field field(std::string key, u32 value);
Field field(std::string key, i64 value);
Field field(std::string key, int value);
Field field(std::string key, double value);
Field field(std::string key, bool value);

class Logger {
 public:
  /// Seconds since the Unix epoch; injectable for deterministic tests.
  using Clock = std::function<double()>;

  Logger() = default;
  ~Logger();

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Events below this level are dropped (default kInfo).
  void set_level(Level level);
  Level level() const;

  /// Append events to `path` instead of stderr (the --log-file flag).
  /// False (and the sink unchanged) when the file cannot be opened.
  bool open_file(const std::string& path);

  void set_clock(Clock clock);

  /// Attach a metrics registry: every emitted event increments
  /// reese_fleet_events_total{kind=<kind>}. The registry must outlive the
  /// attachment — detach with set_registry(nullptr) before destroying it.
  void set_registry(metrics::Registry* registry);
  metrics::Registry* registry() const;

  /// Emit one event. `kind` is the stable machine-readable discriminator
  /// ("worker_dead", "job_submitted", ...); `message` is for humans.
  void log(Level level, std::string_view kind, std::string_view message,
           const std::vector<Field>& fields = {});

  void debug(std::string_view kind, std::string_view message,
             const std::vector<Field>& fields = {}) {
    log(Level::kDebug, kind, message, fields);
  }
  void info(std::string_view kind, std::string_view message,
            const std::vector<Field>& fields = {}) {
    log(Level::kInfo, kind, message, fields);
  }
  void warn(std::string_view kind, std::string_view message,
            const std::vector<Field>& fields = {}) {
    log(Level::kWarn, kind, message, fields);
  }
  void error(std::string_view kind, std::string_view message,
             const std::vector<Field>& fields = {}) {
    log(Level::kError, kind, message, fields);
  }

  /// Events actually written (post level filter); tests assert on it.
  u64 events_written() const;

  /// Capture emitted lines into a string instead of a FILE* (tests).
  /// Pass nullptr to return to the FILE*/stderr sink.
  void set_capture(std::string* capture);

 private:
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;  ///< owned; nullptr = stderr
  std::string* capture_ = nullptr;
  Level level_ = Level::kInfo;
  Clock clock_;
  metrics::Registry* registry_ = nullptr;
  u64 events_written_ = 0;
};

/// The process-wide logger (reesed's --log-file/--log-level target).
Logger& global();

}  // namespace reese::log

// Metrics registry: the cross-layer observability spine (DESIGN.md §12).
//
// Every layer that wants to be observable — the core's CoreStats, the
// experiment/campaign grid runners, the reesed service — registers named
// counters, gauges and histograms here instead of inventing one-off report
// formats. A registry snapshot serializes two ways:
//   * Prometheus text exposition (GET /v1/metrics on reesed), so a stock
//     Prometheus/Grafana stack can scrape a long-lived daemon;
//   * JSON, for tests and ad-hoc tooling.
//
// Naming convention (enforced by register-time validation):
//   reese_<subsystem>_<noun>[_<unit>][_total]
//   e.g. reese_core_committed_instructions_total,
//        reese_service_queue_depth, reese_grid_cell_seconds.
// Counters end in "_total"; gauges and histograms never do. Label names
// follow the same [a-z_][a-z0-9_]* shape.
//
// Concurrency contract: metric handles returned by the registry are stable
// for the registry's lifetime and every mutation (Counter::inc, Gauge::set,
// HistogramMetric::observe) is lock-free on atomics, so simulation worker
// threads can bump counters without serializing on the registry mutex. The
// mutex guards only registration and snapshotting.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.h"

namespace reese::metrics {

/// Label set: ordered (name, value) pairs. Order is part of the metric
/// identity — callers pass labels in a fixed order, which keeps lookup a
/// plain vector compare and serialization deterministic.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter (u64, lock-free).
class Counter {
 public:
  void inc(u64 delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  u64 value() const { return value_.load(std::memory_order_relaxed); }
  /// Counters are monotonic by contract; set() exists for exporters that
  /// mirror an externally-accumulated total (e.g. CoreStats fields) and
  /// must never be used to move a counter backwards.
  void set(u64 value) { value_.store(value, std::memory_order_relaxed); }

 private:
  std::atomic<u64> value_{0};
};

/// Instantaneous value (double, lock-free set/add).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Cumulative histogram with caller-defined upper bounds (Prometheus "le"
/// semantics: bucket i counts samples <= bounds[i]; +Inf is implicit).
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> bounds);

  void observe(double sample);

  /// Bulk import for exporters mirroring an externally-accumulated
  /// distribution: add `count` samples to bucket `index` (index ==
  /// bounds().size() is the +Inf bucket) and `sum_delta` to the sum —
  /// O(1) instead of one observe() per sample.
  void add_bucket(usize index, u64 count, double sum_delta);

  u64 count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative per-bucket counts; index bounds_.size() is +Inf.
  std::vector<u64> bucket_counts() const;

 private:
  std::vector<double> bounds_;  ///< strictly increasing upper bounds
  std::vector<std::atomic<u64>> buckets_;  ///< bounds_.size() + 1 (+Inf)
  std::atomic<u64> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricType : u8 { kCounter, kGauge, kHistogram };

const char* metric_type_name(MetricType type);

/// One metric's state at snapshot time.
struct Sample {
  std::string name;
  MetricType type = MetricType::kCounter;
  std::string help;
  Labels labels;
  double value = 0.0;              ///< counter/gauge value
  std::vector<double> bounds;      ///< histogram only
  std::vector<u64> buckets;        ///< histogram only (+Inf last)
  u64 count = 0;                   ///< histogram only
  double sum = 0.0;                ///< histogram only
};

/// Validate a metric or label name against the naming convention above.
bool valid_metric_name(const std::string& name);
bool valid_label_name(const std::string& name);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Register-or-fetch. The same (name, labels) always returns the same
  /// handle; a name that is already registered with a different type, an
  /// invalid name/label, or a counter not ending in "_total" (or a
  /// gauge/histogram that does) returns nullptr. `help` is kept from the
  /// first registration of a name.
  Counter* counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge* gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = "");
  /// `bounds` must be strictly increasing and non-empty; they are fixed by
  /// the first registration of `name` (subsequent label sets share them).
  HistogramMetric* histogram(const std::string& name,
                             std::vector<double> bounds,
                             const Labels& labels = {},
                             const std::string& help = "");

  /// Consistent point-in-time view, sorted by (name, labels).
  std::vector<Sample> snapshot() const;

  /// Federation merge (DESIGN.md §17): fold `samples` (typically another
  /// registry's snapshot, or parse_prometheus of a scraped /v1/metrics
  /// body) into this registry with `extra` labels appended to every
  /// series. Semantics per type:
  ///   * counters add their value to the target series (merging N workers
  ///     with distinct `extra` labels keeps them separate; merging the
  ///     same source twice sums — counter semantics);
  ///   * gauges set the target (per-worker labels keep workers apart, a
  ///     re-merge takes the latest value);
  ///   * histograms require identical bounds and add per-bucket counts
  ///     and the sum.
  /// Label collision rule: when a sample already carries one of the
  /// `extra` label names, the extra value wins (the federator owns the
  /// worker identity) — the sample's own value is replaced in place, so
  /// label order (part of series identity) is unchanged. Stops at the
  /// first sample that cannot be merged (invalid name, type conflict,
  /// histogram bounds mismatch) and returns false with a diagnostic.
  bool merge_from(const std::vector<Sample>& samples, const Labels& extra,
                  std::string* error = nullptr);

  /// Prometheus text exposition format (version 0.0.4): one # HELP/# TYPE
  /// header per family, then one line per label set (histograms expand to
  /// _bucket/_sum/_count series).
  std::string prometheus() const;

  /// JSON: {"metrics": [{name, type, labels{}, value | buckets}...]}.
  std::string json() const;

  usize size() const;

 private:
  struct Entry {
    std::string name;
    MetricType type;
    std::string help;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  Entry* find_or_create(const std::string& name, MetricType type,
                        const Labels& labels, const std::string& help);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// Parse the subset of the Prometheus text exposition format that
/// Registry::prometheus() emits back into samples — the inverse the fleet
/// coordinator needs to federate scraped worker metrics (DESIGN.md §17).
/// Histogram families (# TYPE ... histogram) are reassembled from their
/// _bucket/_sum/_count series, with cumulative buckets converted back to
/// the per-bucket counts Sample carries. A registry rebuilt via
/// merge_from(parsed, {}) re-exports byte-identical text. False with a
/// diagnostic on any line that does not fit the emitted grammar.
bool parse_prometheus(std::string_view text, std::vector<Sample>* out,
                      std::string* error);

}  // namespace reese::metrics

// Statistics primitives: counters with ratio helpers, fixed-bucket
// histograms, and a running mean/max accumulator.
//
// Every architectural component (caches, predictors, pipeline, R-stream
// queue) exposes its activity through these so the experiment harness can
// print uniform reports.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/types.h"

namespace reese {

class SnapshotReader;
class SnapshotWriter;

/// Ratio helper that is safe for zero denominators.
double safe_ratio(u64 numerator, u64 denominator);

/// Wilson score confidence interval for a binomial proportion.
///
/// The fault campaigns report detection coverage over n injections; the
/// naive Wald interval collapses to zero width at p̂ = 0 or 1 — exactly the
/// endpoints a 100%-coverage claim lives at — so coverage claims use the
/// Wilson score interval instead, which stays honest at the boundaries:
/// with x = n successes the lower bound is n / (n + z²), not 1.
struct WilsonInterval {
  double lower = 0.0;
  double center = 0.0;  ///< adjusted point estimate (not x/n)
  double upper = 0.0;
};

/// Interval for `successes` out of `trials`; `z` is the normal quantile
/// (1.96 ≈ 95% two-sided). Returns all-zero when trials == 0.
WilsonInterval wilson_interval(u64 successes, u64 trials, double z = 1.96);

/// A histogram over u64 samples with caller-defined bucket width. Samples
/// beyond the last bucket accumulate in an overflow bucket. Used for P→R
/// separation, queue-occupancy and latency distributions.
class Histogram {
 public:
  /// `bucket_width` samples per bucket, `bucket_count` finite buckets.
  Histogram(u64 bucket_width, usize bucket_count);

  /// Inline: called once per committed instruction on several distributions
  /// (separation, issue width, occupancies) — hundreds of millions of calls
  /// per paper-scale run. Every in-tree width is a power of two, so the
  /// bucket divide is a shift on the hot path.
  void add(u64 sample) {
    const u64 index =
        width_is_pow2_ ? (sample >> width_shift_) : (sample / bucket_width_);
    if (index < buckets_.size()) {
      ++buckets_[index];
    } else {
      ++overflow_;
    }
    ++count_;
    sum_ += sample;
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }

  u64 count() const { return count_; }
  u64 sum() const { return sum_; }
  u64 min() const { return count_ == 0 ? 0 : min_; }
  u64 max() const { return max_; }
  double mean() const { return safe_ratio(sum_, count_); }

  u64 bucket_width() const { return bucket_width_; }
  /// Finite buckets; buckets().back() is NOT the overflow bucket.
  const std::vector<u64>& buckets() const { return buckets_; }
  u64 overflow() const { return overflow_; }

  /// Smallest sample value v such that at least `fraction` of samples are
  /// <= v, computed from bucket upper bounds (approximate).
  u64 percentile(double fraction) const;

  /// Multi-line human-readable rendering (label, mean, p50/p95, sparkline).
  std::string to_string(const std::string& label) const;

  void reset();

  /// Checkpoint serialization. load() requires a histogram constructed with
  /// the same geometry (width/bucket count come from configuration, not
  /// from the snapshot) and latches a reader error on mismatch.
  void save(SnapshotWriter* writer) const;
  void load(SnapshotReader* reader);

 private:
  u64 bucket_width_;
  std::vector<u64> buckets_;
  u64 overflow_ = 0;
  u64 count_ = 0;
  u64 sum_ = 0;
  u64 min_ = ~u64{0};
  u64 max_ = 0;
  u32 width_shift_ = 0;
  bool width_is_pow2_ = false;
};

/// Spearman rank-correlation coefficient between two paired samples.
///
/// Ranks use the average-rank convention for ties, then Pearson correlation
/// of the rank vectors — the standard tie-corrected Spearman ρ. Used by the
/// AVF validation bench to compare the static vulnerability ranking against
/// measured per-PC fault outcomes, where a monotone relationship (not a
/// linear one) is the claim under test. Returns 0.0 when the vectors are
/// shorter than 2, differ in length, or either side is constant (rank
/// variance zero — correlation is undefined there).
double spearman_rank_correlation(const std::vector<double>& xs,
                                 const std::vector<double>& ys);

/// Running mean/min/max of double-valued samples (per-cycle occupancies,
/// utilizations).
class RunningStat {
 public:
  /// Inline for the same reason as Histogram::add — per-cycle call sites.
  void add(double sample) {
    if (count_ == 0) {
      min_ = sample;
      max_ = sample;
    } else {
      min_ = std::min(min_, sample);
      max_ = std::max(max_, sample);
    }
    ++count_;
    sum_ += sample;
  }
  u64 count() const { return count_; }
  double mean() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  void reset();

  void save(SnapshotWriter* writer) const;
  void load(SnapshotReader* reader);

 private:
  u64 count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace reese

#include "common/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/diag.h"
#include "common/strutil.h"

namespace reese::metrics {

namespace {

bool valid_identifier(const std::string& name) {
  if (name.empty()) return false;
  if (!(std::islower(static_cast<unsigned char>(name[0])) || name[0] == '_')) {
    return false;
  }
  for (char c : name) {
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

bool ends_with(const std::string& s, const char* suffix) {
  const usize n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool valid_labels(const Labels& labels) {
  for (const auto& [name, value] : labels) {
    (void)value;
    if (!valid_label_name(name)) return false;
  }
  return true;
}

/// Type suffix rules from the header: counters end in _total, others don't.
bool name_fits_type(const std::string& name, MetricType type) {
  return type == MetricType::kCounter ? ends_with(name, "_total")
                                      : !ends_with(name, "_total");
}

/// Render a double the way Prometheus expects: integers without a mantissa,
/// everything else with enough digits to round-trip.
std::string render_value(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (std::isnan(value)) return "NaN";
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    return format("%.0f", value);
  }
  return format("%.9g", value);
}

/// {a="b",c="d"} — empty string for no labels.
std::string render_label_block(const Labels& labels,
                               const char* extra_name = nullptr,
                               const std::string& extra_value = "") {
  if (labels.empty() && extra_name == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += name + "=\"" + json_escape(value) + "\"";
  }
  if (extra_name != nullptr) {
    if (!first) out += ",";
    out += std::string(extra_name) + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

const char* metric_type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

bool valid_metric_name(const std::string& name) {
  return valid_identifier(name) && starts_with(name, "reese_");
}

bool valid_label_name(const std::string& name) { return valid_identifier(name); }

HistogramMetric::HistogramMetric(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void HistogramMetric::observe(double sample) {
  usize index = bounds_.size();  // +Inf by default
  for (usize i = 0; i < bounds_.size(); ++i) {
    if (sample <= bounds_[i]) {
      index = i;
      break;
    }
  }
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + sample,
                                     std::memory_order_relaxed)) {
  }
}

void HistogramMetric::add_bucket(usize index, u64 count, double sum_delta) {
  if (index >= buckets_.size()) return;
  buckets_[index].fetch_add(count, std::memory_order_relaxed);
  count_.fetch_add(count, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + sum_delta,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<u64> HistogramMetric::bucket_counts() const {
  std::vector<u64> counts(buckets_.size());
  for (usize i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

Registry::Entry* Registry::find_or_create(const std::string& name,
                                          MetricType type,
                                          const Labels& labels,
                                          const std::string& help) {
  if (!valid_metric_name(name) || !valid_labels(labels) ||
      !name_fits_type(name, type)) {
    return nullptr;
  }
  for (const auto& entry : entries_) {
    if (entry->name != name) continue;
    // A name owns its type: a second registration with another type is a
    // programming error surfaced as nullptr, not a silent second family.
    if (entry->type != type) return nullptr;
    if (entry->labels == labels) return entry.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->type = type;
  entry->labels = labels;
  entry->help = help;
  if (help.empty()) {
    // Share the help text across label sets of the same family.
    for (const auto& existing : entries_) {
      if (existing->name == name) {
        entry->help = existing->help;
        break;
      }
    }
  }
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

Counter* Registry::counter(const std::string& name, const Labels& labels,
                           const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = find_or_create(name, MetricType::kCounter, labels, help);
  if (entry == nullptr) return nullptr;
  if (entry->counter == nullptr) entry->counter = std::make_unique<Counter>();
  return entry->counter.get();
}

Gauge* Registry::gauge(const std::string& name, const Labels& labels,
                       const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = find_or_create(name, MetricType::kGauge, labels, help);
  if (entry == nullptr) return nullptr;
  if (entry->gauge == nullptr) entry->gauge = std::make_unique<Gauge>();
  return entry->gauge.get();
}

HistogramMetric* Registry::histogram(const std::string& name,
                                     std::vector<double> bounds,
                                     const Labels& labels,
                                     const std::string& help) {
  if (bounds.empty()) return nullptr;
  for (usize i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) return nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = find_or_create(name, MetricType::kHistogram, labels, help);
  if (entry == nullptr) return nullptr;
  if (entry->histogram == nullptr) {
    // First label set fixes the family's bounds; later sets must agree so
    // the exposition stays scrapeable as one family.
    for (const auto& existing : entries_) {
      if (existing.get() != entry && existing->name == name &&
          existing->histogram != nullptr &&
          existing->histogram->bounds() != bounds) {
        return nullptr;
      }
    }
    entry->histogram = std::make_unique<HistogramMetric>(std::move(bounds));
  } else if (entry->histogram->bounds() != bounds) {
    return nullptr;
  }
  return entry->histogram.get();
}

usize Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<Sample> Registry::snapshot() const {
  std::vector<Sample> samples;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    samples.reserve(entries_.size());
    for (const auto& entry : entries_) {
      Sample sample;
      sample.name = entry->name;
      sample.type = entry->type;
      sample.help = entry->help;
      sample.labels = entry->labels;
      switch (entry->type) {
        case MetricType::kCounter:
          sample.value = static_cast<double>(entry->counter->value());
          break;
        case MetricType::kGauge:
          sample.value = entry->gauge->value();
          break;
        case MetricType::kHistogram:
          sample.bounds = entry->histogram->bounds();
          sample.buckets = entry->histogram->bucket_counts();
          sample.count = entry->histogram->count();
          sample.sum = entry->histogram->sum();
          break;
      }
      samples.push_back(std::move(sample));
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return samples;
}

std::string Registry::prometheus() const {
  const std::vector<Sample> samples = snapshot();
  std::string out;
  std::string current_family;
  for (const Sample& sample : samples) {
    if (sample.name != current_family) {
      current_family = sample.name;
      if (!sample.help.empty()) {
        out += "# HELP " + sample.name + " " + sample.help + "\n";
      }
      out += "# TYPE " + sample.name + " " +
             metric_type_name(sample.type) + "\n";
    }
    if (sample.type == MetricType::kHistogram) {
      u64 cumulative = 0;
      for (usize i = 0; i < sample.buckets.size(); ++i) {
        cumulative += sample.buckets[i];
        const std::string le = i < sample.bounds.size()
                                   ? render_value(sample.bounds[i])
                                   : "+Inf";
        out += sample.name + "_bucket" +
               render_label_block(sample.labels, "le", le) +
               format(" %llu\n", static_cast<unsigned long long>(cumulative));
      }
      out += sample.name + "_sum" + render_label_block(sample.labels) + " " +
             render_value(sample.sum) + "\n";
      out += sample.name + "_count" + render_label_block(sample.labels) +
             format(" %llu\n", static_cast<unsigned long long>(sample.count));
    } else {
      out += sample.name + render_label_block(sample.labels) + " " +
             render_value(sample.value) + "\n";
    }
  }
  return out;
}

std::string Registry::json() const {
  const std::vector<Sample> samples = snapshot();
  std::string out = "{\n  \"metrics\": [\n";
  for (usize i = 0; i < samples.size(); ++i) {
    const Sample& sample = samples[i];
    out += "    {";
    out += format("\"name\": \"%s\", \"type\": \"%s\", ", sample.name.c_str(),
                  metric_type_name(sample.type));
    out += "\"labels\": {";
    for (usize l = 0; l < sample.labels.size(); ++l) {
      out += format("%s\"%s\": \"%s\"", l == 0 ? "" : ", ",
                    sample.labels[l].first.c_str(),
                    json_escape(sample.labels[l].second).c_str());
    }
    out += "}, ";
    if (sample.type == MetricType::kHistogram) {
      out += "\"bounds\": [";
      for (usize b = 0; b < sample.bounds.size(); ++b) {
        out += format("%s%s", b == 0 ? "" : ", ",
                      render_value(sample.bounds[b]).c_str());
      }
      out += "], \"buckets\": [";
      for (usize b = 0; b < sample.buckets.size(); ++b) {
        out += format("%s%llu", b == 0 ? "" : ", ",
                      static_cast<unsigned long long>(sample.buckets[b]));
      }
      out += format("], \"count\": %llu, \"sum\": %s",
                    static_cast<unsigned long long>(sample.count),
                    render_value(sample.sum).c_str());
    } else {
      out += format("\"value\": %s", render_value(sample.value).c_str());
    }
    out += format("}%s\n", i + 1 < samples.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace reese::metrics

#include "common/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string_view>

#include "common/diag.h"
#include "common/strutil.h"

namespace reese::metrics {

namespace {

bool valid_identifier(const std::string& name) {
  if (name.empty()) return false;
  if (!(std::islower(static_cast<unsigned char>(name[0])) || name[0] == '_')) {
    return false;
  }
  for (char c : name) {
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

bool ends_with(const std::string& s, const char* suffix) {
  const usize n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool valid_labels(const Labels& labels) {
  for (const auto& [name, value] : labels) {
    (void)value;
    if (!valid_label_name(name)) return false;
  }
  return true;
}

/// Type suffix rules from the header: counters end in _total, others don't.
bool name_fits_type(const std::string& name, MetricType type) {
  return type == MetricType::kCounter ? ends_with(name, "_total")
                                      : !ends_with(name, "_total");
}

/// Render a double the way Prometheus expects: integers without a mantissa,
/// everything else with enough digits to round-trip.
std::string render_value(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (std::isnan(value)) return "NaN";
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    return format("%.0f", value);
  }
  return format("%.9g", value);
}

/// {a="b",c="d"} — empty string for no labels.
std::string render_label_block(const Labels& labels,
                               const char* extra_name = nullptr,
                               const std::string& extra_value = "") {
  if (labels.empty() && extra_name == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += name + "=\"" + json_escape(value) + "\"";
  }
  if (extra_name != nullptr) {
    if (!first) out += ",";
    out += std::string(extra_name) + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

const char* metric_type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

bool valid_metric_name(const std::string& name) {
  return valid_identifier(name) && starts_with(name, "reese_");
}

bool valid_label_name(const std::string& name) { return valid_identifier(name); }

HistogramMetric::HistogramMetric(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void HistogramMetric::observe(double sample) {
  usize index = bounds_.size();  // +Inf by default
  for (usize i = 0; i < bounds_.size(); ++i) {
    if (sample <= bounds_[i]) {
      index = i;
      break;
    }
  }
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + sample,
                                     std::memory_order_relaxed)) {
  }
}

void HistogramMetric::add_bucket(usize index, u64 count, double sum_delta) {
  if (index >= buckets_.size()) return;
  buckets_[index].fetch_add(count, std::memory_order_relaxed);
  count_.fetch_add(count, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + sum_delta,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<u64> HistogramMetric::bucket_counts() const {
  std::vector<u64> counts(buckets_.size());
  for (usize i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

Registry::Entry* Registry::find_or_create(const std::string& name,
                                          MetricType type,
                                          const Labels& labels,
                                          const std::string& help) {
  if (!valid_metric_name(name) || !valid_labels(labels) ||
      !name_fits_type(name, type)) {
    return nullptr;
  }
  for (const auto& entry : entries_) {
    if (entry->name != name) continue;
    // A name owns its type: a second registration with another type is a
    // programming error surfaced as nullptr, not a silent second family.
    if (entry->type != type) return nullptr;
    if (entry->labels == labels) return entry.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->type = type;
  entry->labels = labels;
  entry->help = help;
  if (help.empty()) {
    // Share the help text across label sets of the same family.
    for (const auto& existing : entries_) {
      if (existing->name == name) {
        entry->help = existing->help;
        break;
      }
    }
  }
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

Counter* Registry::counter(const std::string& name, const Labels& labels,
                           const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = find_or_create(name, MetricType::kCounter, labels, help);
  if (entry == nullptr) return nullptr;
  if (entry->counter == nullptr) entry->counter = std::make_unique<Counter>();
  return entry->counter.get();
}

Gauge* Registry::gauge(const std::string& name, const Labels& labels,
                       const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = find_or_create(name, MetricType::kGauge, labels, help);
  if (entry == nullptr) return nullptr;
  if (entry->gauge == nullptr) entry->gauge = std::make_unique<Gauge>();
  return entry->gauge.get();
}

HistogramMetric* Registry::histogram(const std::string& name,
                                     std::vector<double> bounds,
                                     const Labels& labels,
                                     const std::string& help) {
  if (bounds.empty()) return nullptr;
  for (usize i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) return nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = find_or_create(name, MetricType::kHistogram, labels, help);
  if (entry == nullptr) return nullptr;
  if (entry->histogram == nullptr) {
    // First label set fixes the family's bounds; later sets must agree so
    // the exposition stays scrapeable as one family.
    for (const auto& existing : entries_) {
      if (existing.get() != entry && existing->name == name &&
          existing->histogram != nullptr &&
          existing->histogram->bounds() != bounds) {
        return nullptr;
      }
    }
    entry->histogram = std::make_unique<HistogramMetric>(std::move(bounds));
  } else if (entry->histogram->bounds() != bounds) {
    return nullptr;
  }
  return entry->histogram.get();
}

usize Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<Sample> Registry::snapshot() const {
  std::vector<Sample> samples;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    samples.reserve(entries_.size());
    for (const auto& entry : entries_) {
      Sample sample;
      sample.name = entry->name;
      sample.type = entry->type;
      sample.help = entry->help;
      sample.labels = entry->labels;
      switch (entry->type) {
        case MetricType::kCounter:
          sample.value = static_cast<double>(entry->counter->value());
          break;
        case MetricType::kGauge:
          sample.value = entry->gauge->value();
          break;
        case MetricType::kHistogram:
          sample.bounds = entry->histogram->bounds();
          sample.buckets = entry->histogram->bucket_counts();
          sample.count = entry->histogram->count();
          sample.sum = entry->histogram->sum();
          break;
      }
      samples.push_back(std::move(sample));
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return samples;
}

bool Registry::merge_from(const std::vector<Sample>& samples,
                          const Labels& extra, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  for (const Sample& sample : samples) {
    // Compose the target label set: extra labels append, but an extra name
    // the sample already carries replaces in place (the federator owns the
    // worker identity; keeping the position keeps series identity stable).
    Labels labels = sample.labels;
    for (const auto& [extra_name, extra_value] : extra) {
      bool replaced = false;
      for (auto& [name, value] : labels) {
        if (name == extra_name) {
          value = extra_value;
          replaced = true;
          break;
        }
      }
      if (!replaced) labels.emplace_back(extra_name, extra_value);
    }
    switch (sample.type) {
      case MetricType::kCounter: {
        Counter* target = counter(sample.name, labels, sample.help);
        if (target == nullptr) {
          return fail("cannot merge counter " + sample.name +
                      " (invalid name/labels or type conflict)");
        }
        const double value = sample.value < 0.0 ? 0.0 : sample.value;
        target->inc(static_cast<u64>(std::llround(value)));
        break;
      }
      case MetricType::kGauge: {
        Gauge* target = gauge(sample.name, labels, sample.help);
        if (target == nullptr) {
          return fail("cannot merge gauge " + sample.name +
                      " (invalid name/labels or type conflict)");
        }
        target->set(sample.value);
        break;
      }
      case MetricType::kHistogram: {
        HistogramMetric* target =
            histogram(sample.name, sample.bounds, labels, sample.help);
        if (target == nullptr) {
          return fail("cannot merge histogram " + sample.name +
                      " (type conflict or bucket-bounds mismatch)");
        }
        const usize bucket_count = sample.bounds.size() + 1;
        for (usize i = 0; i < sample.buckets.size() && i < bucket_count; ++i) {
          target->add_bucket(i, sample.buckets[i], 0.0);
        }
        target->add_bucket(0, 0, sample.sum);
        break;
      }
    }
  }
  return true;
}

std::string Registry::prometheus() const {
  const std::vector<Sample> samples = snapshot();
  std::string out;
  std::string current_family;
  for (const Sample& sample : samples) {
    if (sample.name != current_family) {
      current_family = sample.name;
      if (!sample.help.empty()) {
        out += "# HELP " + sample.name + " " + sample.help + "\n";
      }
      out += "# TYPE " + sample.name + " " +
             metric_type_name(sample.type) + "\n";
    }
    if (sample.type == MetricType::kHistogram) {
      u64 cumulative = 0;
      for (usize i = 0; i < sample.buckets.size(); ++i) {
        cumulative += sample.buckets[i];
        const std::string le = i < sample.bounds.size()
                                   ? render_value(sample.bounds[i])
                                   : "+Inf";
        out += sample.name + "_bucket" +
               render_label_block(sample.labels, "le", le) +
               format(" %llu\n", static_cast<unsigned long long>(cumulative));
      }
      out += sample.name + "_sum" + render_label_block(sample.labels) + " " +
             render_value(sample.sum) + "\n";
      out += sample.name + "_count" + render_label_block(sample.labels) +
             format(" %llu\n", static_cast<unsigned long long>(sample.count));
    } else {
      out += sample.name + render_label_block(sample.labels) + " " +
             render_value(sample.value) + "\n";
    }
  }
  return out;
}

std::string Registry::json() const {
  const std::vector<Sample> samples = snapshot();
  std::string out = "{\n  \"metrics\": [\n";
  for (usize i = 0; i < samples.size(); ++i) {
    const Sample& sample = samples[i];
    out += "    {";
    out += format("\"name\": \"%s\", \"type\": \"%s\", ", sample.name.c_str(),
                  metric_type_name(sample.type));
    out += "\"labels\": {";
    for (usize l = 0; l < sample.labels.size(); ++l) {
      out += format("%s\"%s\": \"%s\"", l == 0 ? "" : ", ",
                    sample.labels[l].first.c_str(),
                    json_escape(sample.labels[l].second).c_str());
    }
    out += "}, ";
    if (sample.type == MetricType::kHistogram) {
      out += "\"bounds\": [";
      for (usize b = 0; b < sample.bounds.size(); ++b) {
        out += format("%s%s", b == 0 ? "" : ", ",
                      render_value(sample.bounds[b]).c_str());
      }
      out += "], \"buckets\": [";
      for (usize b = 0; b < sample.buckets.size(); ++b) {
        out += format("%s%llu", b == 0 ? "" : ", ",
                      static_cast<unsigned long long>(sample.buckets[b]));
      }
      out += format("], \"count\": %llu, \"sum\": %s",
                    static_cast<unsigned long long>(sample.count),
                    render_value(sample.sum).c_str());
    } else {
      out += format("\"value\": %s", render_value(sample.value).c_str());
    }
    out += format("}%s\n", i + 1 < samples.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

namespace {

/// Inverse of json_escape (common/diag.h) for label values.
bool unescape_label_value(std::string_view in, std::string* out) {
  out->clear();
  for (usize i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c != '\\') {
      *out += c;
      continue;
    }
    if (i + 1 >= in.size()) return false;
    const char escape = in[++i];
    switch (escape) {
      case '"': *out += '"'; break;
      case '\\': *out += '\\'; break;
      case 'n': *out += '\n'; break;
      case 't': *out += '\t'; break;
      case 'r': *out += '\r'; break;
      case 'u': {
        if (i + 4 >= in.size()) return false;
        unsigned value = 0;
        for (usize d = 1; d <= 4; ++d) {
          const char hex = in[i + d];
          value <<= 4;
          if (hex >= '0' && hex <= '9') {
            value |= static_cast<unsigned>(hex - '0');
          } else if (hex >= 'a' && hex <= 'f') {
            value |= static_cast<unsigned>(hex - 'a' + 10);
          } else if (hex >= 'A' && hex <= 'F') {
            value |= static_cast<unsigned>(hex - 'A' + 10);
          } else {
            return false;
          }
        }
        if (value > 0xFF) return false;  // our escaper emits \u00XX only
        *out += static_cast<char>(value);
        i += 4;
        break;
      }
      default: return false;
    }
  }
  return true;
}

/// Parse `{a="b",c="d"}`; advances *pos past the closing brace.
bool parse_label_block(std::string_view line, usize* pos, Labels* labels,
                       std::string* message) {
  usize i = *pos + 1;  // past '{'
  while (i < line.size() && line[i] != '}') {
    const usize eq = line.find('=', i);
    if (eq == std::string_view::npos || eq + 1 >= line.size() ||
        line[eq + 1] != '"') {
      *message = "malformed label block";
      return false;
    }
    const std::string name(line.substr(i, eq - i));
    usize value_end = eq + 2;
    while (value_end < line.size() &&
           (line[value_end] != '"' || line[value_end - 1] == '\\')) {
      ++value_end;
    }
    if (value_end >= line.size()) {
      *message = "unterminated label value";
      return false;
    }
    std::string value;
    if (!unescape_label_value(line.substr(eq + 2, value_end - eq - 2),
                              &value)) {
      *message = "bad escape in label value";
      return false;
    }
    labels->emplace_back(name, std::move(value));
    i = value_end + 1;
    if (i < line.size() && line[i] == ',') ++i;
  }
  if (i >= line.size()) {
    *message = "unterminated label block";
    return false;
  }
  *pos = i + 1;
  return true;
}

}  // namespace

bool parse_prometheus(std::string_view text, std::vector<Sample>* out,
                      std::string* error) {
  const auto fail = [error](usize line_number, const std::string& message) {
    if (error != nullptr) {
      *error = format("prometheus line %zu: %s", line_number, message.c_str());
    }
    return false;
  };

  std::vector<std::pair<std::string, MetricType>> types;
  std::vector<std::pair<std::string, std::string>> helps;
  const auto type_of = [&types](const std::string& name) -> const MetricType* {
    for (const auto& [family, type] : types) {
      if (family == name) return &type;
    }
    return nullptr;
  };
  const auto help_of = [&helps](const std::string& name) {
    for (const auto& [family, help] : helps) {
      if (family == name) return help;
    }
    return std::string();
  };

  // Histogram families reassemble from their _bucket/_sum/_count series;
  // cumulative bucket counts convert back to Sample's per-bucket counts at
  // the end.
  struct HistogramBuild {
    Sample sample;
    std::vector<std::pair<double, u64>> cumulative;  ///< (le, count) in order
  };
  std::vector<HistogramBuild> histogram_builds;

  usize line_number = 0;
  for (std::string_view raw_line : split(text, '\n')) {
    ++line_number;
    const std::string_view line = trim(raw_line);
    if (line.empty()) continue;
    if (starts_with(line, "# HELP ")) {
      const std::string_view rest = line.substr(7);
      const usize space = rest.find(' ');
      if (space == std::string_view::npos) {
        return fail(line_number, "malformed # HELP");
      }
      helps.emplace_back(std::string(rest.substr(0, space)),
                         std::string(rest.substr(space + 1)));
      continue;
    }
    if (starts_with(line, "# TYPE ")) {
      const std::string_view rest = line.substr(7);
      const usize space = rest.find(' ');
      if (space == std::string_view::npos) {
        return fail(line_number, "malformed # TYPE");
      }
      const std::string_view type_token = rest.substr(space + 1);
      MetricType type;
      if (type_token == "counter") {
        type = MetricType::kCounter;
      } else if (type_token == "gauge") {
        type = MetricType::kGauge;
      } else if (type_token == "histogram") {
        type = MetricType::kHistogram;
      } else {
        return fail(line_number,
                    "unknown metric type \"" + std::string(type_token) + "\"");
      }
      types.emplace_back(std::string(rest.substr(0, space)), type);
      continue;
    }
    if (line[0] == '#') continue;  // other comments are legal, ignored

    // Sample line: name[{labels}] value
    usize pos = 0;
    while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
    const std::string series_name(line.substr(0, pos));
    Labels labels;
    if (pos < line.size() && line[pos] == '{') {
      std::string message;
      if (!parse_label_block(line, &pos, &labels, &message)) {
        return fail(line_number, message);
      }
    }
    const std::string_view value_token = trim(line.substr(pos));
    if (value_token.empty()) return fail(line_number, "missing sample value");
    const std::string value_string(value_token);
    char* end = nullptr;
    const double value = std::strtod(value_string.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return fail(line_number, "bad sample value \"" + value_string + "\"");
    }

    // Resolve the family: a direct # TYPE match, or a histogram series
    // suffix whose stripped family is a declared histogram.
    const MetricType* type = type_of(series_name);
    if (type != nullptr && *type != MetricType::kHistogram) {
      Sample sample;
      sample.name = series_name;
      sample.type = *type;
      sample.help = help_of(series_name);
      sample.labels = std::move(labels);
      sample.value = value;
      out->push_back(std::move(sample));
      continue;
    }
    std::string family;
    std::string_view role;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      if (ends_with(series_name, suffix)) {
        const std::string candidate = series_name.substr(
            0, series_name.size() - std::char_traits<char>::length(suffix));
        const MetricType* candidate_type = type_of(candidate);
        if (candidate_type != nullptr &&
            *candidate_type == MetricType::kHistogram) {
          family = candidate;
          role = std::string_view(suffix).substr(1);
          break;
        }
      }
    }
    if (family.empty()) {
      return fail(line_number,
                  "series " + series_name + " has no # TYPE declaration");
    }

    double le = 0.0;
    if (role == "bucket") {
      bool found = false;
      for (usize l = 0; l < labels.size(); ++l) {
        if (labels[l].first == "le") {
          const std::string& le_value = labels[l].second;
          le = le_value == "+Inf"
                   ? std::numeric_limits<double>::infinity()
                   : std::strtod(le_value.c_str(), nullptr);
          labels.erase(labels.begin() + static_cast<std::ptrdiff_t>(l));
          found = true;
          break;
        }
      }
      if (!found) return fail(line_number, "histogram bucket without le");
    }
    HistogramBuild* build = nullptr;
    for (HistogramBuild& candidate : histogram_builds) {
      if (candidate.sample.name == family &&
          candidate.sample.labels == labels) {
        build = &candidate;
        break;
      }
    }
    if (build == nullptr) {
      histogram_builds.emplace_back();
      build = &histogram_builds.back();
      build->sample.name = family;
      build->sample.type = MetricType::kHistogram;
      build->sample.help = help_of(family);
      build->sample.labels = labels;
    }
    if (role == "bucket") {
      build->cumulative.emplace_back(
          le, static_cast<u64>(std::llround(value < 0.0 ? 0.0 : value)));
    } else if (role == "sum") {
      build->sample.sum = value;
    } else {
      build->sample.count =
          static_cast<u64>(std::llround(value < 0.0 ? 0.0 : value));
    }
  }

  for (HistogramBuild& build : histogram_builds) {
    if (build.cumulative.empty() ||
        !std::isinf(build.cumulative.back().first)) {
      if (error != nullptr) {
        *error = "histogram " + build.sample.name + " lacks a +Inf bucket";
      }
      return false;
    }
    u64 previous = 0;
    for (const auto& [bound, cumulative] : build.cumulative) {
      if (cumulative < previous) {
        if (error != nullptr) {
          *error = "histogram " + build.sample.name +
                   " has non-monotonic cumulative buckets";
        }
        return false;
      }
      if (!std::isinf(bound)) build.sample.bounds.push_back(bound);
      build.sample.buckets.push_back(cumulative - previous);
      previous = cumulative;
    }
    out->push_back(std::move(build.sample));
  }
  return true;
}

}  // namespace reese::metrics

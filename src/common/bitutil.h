// Small bit-manipulation helpers shared by the ISA encoder, caches and the
// fault injector.
#pragma once

#include <bit>
#include <cassert>

#include "common/types.h"

namespace reese {

/// Sign-extend the low `bits` bits of `value` to 64 bits.
constexpr i64 sign_extend(u64 value, unsigned bits) {
  assert(bits >= 1 && bits <= 64);
  if (bits == 64) return static_cast<i64>(value);
  const u64 mask = (u64{1} << bits) - 1;
  const u64 sign = u64{1} << (bits - 1);
  const u64 v = value & mask;
  return static_cast<i64>((v ^ sign) - sign);
}

/// Extract bits [lo, lo+len) of `value`.
constexpr u64 extract_bits(u64 value, unsigned lo, unsigned len) {
  assert(len >= 1 && len <= 64 && lo < 64);
  const u64 shifted = value >> lo;
  if (len == 64) return shifted;
  return shifted & ((u64{1} << len) - 1);
}

/// True iff `value` fits in a signed `bits`-bit immediate.
constexpr bool fits_signed(i64 value, unsigned bits) {
  assert(bits >= 1 && bits <= 63);
  const i64 lo = -(i64{1} << (bits - 1));
  const i64 hi = (i64{1} << (bits - 1)) - 1;
  return value >= lo && value <= hi;
}

/// True iff `value` fits in an unsigned `bits`-bit field.
constexpr bool fits_unsigned(u64 value, unsigned bits) {
  assert(bits >= 1 && bits <= 63);
  return value < (u64{1} << bits);
}

/// True iff `value` is a power of two (zero is not).
constexpr bool is_pow2(u64 value) { return std::has_single_bit(value); }

/// log2 of a power of two.
constexpr unsigned log2_exact(u64 value) {
  assert(is_pow2(value));
  return static_cast<unsigned>(std::countr_zero(value));
}

/// Flip bit `bit` of `value` — the fault injector's primitive.
constexpr u64 flip_bit(u64 value, unsigned bit) {
  assert(bit < 64);
  return value ^ (u64{1} << bit);
}

}  // namespace reese

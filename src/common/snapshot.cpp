#include "common/snapshot.h"

#include <bit>
#include <cstdio>
#include <cstring>

#include "common/strutil.h"

namespace reese {

namespace {

constexpr usize kHeaderSize = 8 + 4 + 8;  // magic + version + payload size

u64 read_le(const u8* data, unsigned bytes) {
  u64 value = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    value |= static_cast<u64>(data[i]) << (8 * i);
  }
  return value;
}

void write_le(u8* out, u64 value, unsigned bytes) {
  for (unsigned i = 0; i < bytes; ++i) {
    out[i] = static_cast<u8>(value >> (8 * i));
  }
}

}  // namespace

u64 snapshot_fnv1a(const u8* data, usize size, u64 seed) {
  u64 hash = seed;
  for (usize i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// --- SnapshotWriter ----------------------------------------------------------

void SnapshotWriter::put_le(u64 value, unsigned bytes) {
  for (unsigned i = 0; i < bytes; ++i) {
    buf_.push_back(static_cast<u8>(value >> (8 * i)));
  }
}

void SnapshotWriter::put_f64(double value) {
  put_u64(std::bit_cast<u64>(value));
}

void SnapshotWriter::put_bytes(const u8* data, usize size) {
  buf_.insert(buf_.end(), data, data + size);
}

void SnapshotWriter::put_string(const std::string& value) {
  put_u32(static_cast<u32>(value.size()));
  put_bytes(reinterpret_cast<const u8*>(value.data()), value.size());
}

namespace {

std::vector<u8> render_container(const std::vector<u8>& payload, u32 version) {
  std::vector<u8> file;
  file.reserve(kHeaderSize + payload.size() + 8);
  file.resize(kHeaderSize);
  std::memcpy(file.data(), kSnapshotMagic, 8);
  write_le(file.data() + 8, version, 4);
  write_le(file.data() + 12, payload.size(), 8);
  file.insert(file.end(), payload.begin(), payload.end());
  u8 trailer[8];
  write_le(trailer, snapshot_fnv1a(file.data(), file.size()), 8);
  file.insert(file.end(), trailer, trailer + 8);
  return file;
}

}  // namespace

std::string SnapshotWriter::to_buffer(u32 version) const {
  const std::vector<u8> file = render_container(buf_, version);
  return std::string(reinterpret_cast<const char*>(file.data()), file.size());
}

bool SnapshotWriter::write_file(const std::string& path, u32 version,
                                std::string* error) const {
  const std::vector<u8> file = render_container(buf_, version);

  const std::string tmp = path + ".tmp";
  FILE* fp = std::fopen(tmp.c_str(), "wb");
  if (fp == nullptr) {
    if (error != nullptr) *error = "cannot open " + tmp + " for writing";
    return false;
  }
  const bool wrote = std::fwrite(file.data(), 1, file.size(), fp) ==
                     file.size();
  const bool closed = std::fclose(fp) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    if (error != nullptr) *error = "short write to " + tmp;
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (error != nullptr) *error = "cannot rename " + tmp + " to " + path;
    return false;
  }
  return true;
}

// --- SnapshotReader ----------------------------------------------------------

bool SnapshotReader::open_file(const std::string& path, u32 expected_version) {
  ok_ = false;
  pos_ = 0;
  buf_.clear();

  FILE* fp = std::fopen(path.c_str(), "rb");
  if (fp == nullptr) {
    error_ = "cannot open snapshot " + path;
    return false;
  }
  std::vector<u8> file;
  u8 chunk[1 << 16];
  usize got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), fp)) > 0) {
    file.insert(file.end(), chunk, chunk + got);
  }
  std::fclose(fp);

  return open_container(file.data(), file.size(), "snapshot " + path,
                        expected_version);
}

bool SnapshotReader::open_buffer(std::string_view data, u32 expected_version) {
  ok_ = false;
  pos_ = 0;
  buf_.clear();
  return open_container(reinterpret_cast<const u8*>(data.data()), data.size(),
                        "snapshot buffer", expected_version);
}

bool SnapshotReader::open_container(const u8* data, usize size,
                                    const std::string& label,
                                    u32 expected_version) {
  if (size < kHeaderSize + 8) {
    error_ = label + " is truncated (no header)";
    return false;
  }
  if (std::memcmp(data, kSnapshotMagic, 8) != 0) {
    error_ = label + " has bad magic (not a REESE snapshot)";
    return false;
  }
  version_ = static_cast<u32>(read_le(data + 8, 4));
  if (version_ != expected_version) {
    error_ = format("%s is format version %u, expected %u", label.c_str(),
                    version_, expected_version);
    return false;
  }
  const u64 payload_size = read_le(data + 12, 8);
  if (size != kHeaderSize + payload_size + 8) {
    error_ = format("%s is truncated: header claims %llu payload "
                    "bytes, container has %llu",
                    label.c_str(),
                    static_cast<unsigned long long>(payload_size),
                    static_cast<unsigned long long>(size - kHeaderSize - 8));
    return false;
  }
  const u64 stored = read_le(data + kHeaderSize + payload_size, 8);
  const u64 computed = snapshot_fnv1a(data, kHeaderSize + payload_size);
  if (stored != computed) {
    error_ = label + " failed its checksum (corrupt)";
    return false;
  }

  buf_.assign(data + kHeaderSize, data + kHeaderSize + payload_size);
  ok_ = true;
  error_.clear();
  return true;
}

u64 SnapshotReader::get_le(unsigned bytes) {
  if (!ok_) return 0;
  if (pos_ + bytes > buf_.size()) {
    fail("snapshot payload over-read (truncated or out-of-sync)");
    return 0;
  }
  const u64 value = read_le(buf_.data() + pos_, bytes);
  pos_ += bytes;
  return value;
}

u8 SnapshotReader::get_u8() { return static_cast<u8>(get_le(1)); }

double SnapshotReader::get_f64() { return std::bit_cast<double>(get_u64()); }

void SnapshotReader::get_bytes(u8* out, usize size) {
  if (!ok_) return;
  if (pos_ + size > buf_.size()) {
    fail("snapshot payload over-read (truncated or out-of-sync)");
    return;
  }
  std::memcpy(out, buf_.data() + pos_, size);
  pos_ += size;
}

std::string SnapshotReader::get_string() {
  const u32 size = get_u32();
  if (!ok_ || pos_ + size > buf_.size()) {
    fail("snapshot payload over-read (truncated or out-of-sync)");
    return {};
  }
  std::string value(reinterpret_cast<const char*>(buf_.data() + pos_), size);
  pos_ += size;
  return value;
}

bool SnapshotReader::expect_section(u32 tag) {
  const u32 mark = get_u32();
  const u32 found = get_u32();
  if (!ok_) return false;
  if (mark != 0x53454354 || found != tag) {
    fail(format("snapshot section mismatch: expected tag 0x%08x, found "
                "0x%08x (mark 0x%08x)",
                tag, found, mark));
    return false;
  }
  return true;
}

void SnapshotReader::fail(const std::string& message) {
  if (ok_) {
    ok_ = false;
    error_ = message;
  }
}

}  // namespace reese

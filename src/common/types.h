// Fixed-width integer aliases used throughout the REESE codebase.
//
// The simulator models a 64-bit machine: architectural registers are u64,
// addresses are u64, instruction words are u32.
#pragma once

#include <cstddef>
#include <cstdint>

namespace reese {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;

/// Simulated byte address.
using Addr = u64;
/// Simulation cycle number.
using Cycle = u64;
/// Monotonically increasing instruction sequence number (program order).
using InstSeq = u64;

}  // namespace reese

// Tiny command-line flag parser used by the example CLI and the bench
// harnesses. Supports "-name value" and "-name:value" in the SimpleScalar
// style, plus "--name=value".
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace reese {

class FlagSet {
 public:
  /// Parse argv; unknown tokens that do not start with '-' become positional
  /// arguments. Returns an Error for a dangling "-name" with no value.
  Result<bool> parse(int argc, const char* const* argv);

  /// Parse a SimpleScalar-style config file: whitespace-separated
  /// "-flag value" tokens, '#' comments, blank lines. Values already set
  /// (e.g. from the command line) take precedence over file values.
  Result<bool> parse_file(const std::string& path);

  bool has(const std::string& name) const;

  /// Typed getters with defaults. get_i64/get_u64 abort the program with a
  /// clear message on malformed numbers (a CLI usage error, not a bug).
  std::string get_string(const std::string& name, const std::string& def) const;
  i64 get_i64(const std::string& name, i64 def) const;
  u64 get_u64(const std::string& name, u64 def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// All "-name value" pairs seen, for echoing configuration in reports.
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace reese

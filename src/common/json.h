// Minimal JSON document parser for the simulation service (reesed).
//
// The repo deliberately carries no third-party JSON dependency; reports are
// emitted with printf-style builders (campaign.cpp, diag.cpp) and checked
// with tests/json_checker.h. The service is the first component that must
// *read* JSON — request specs arrive over HTTP — so this adds the smallest
// parser that covers RFC 8259 documents: objects, arrays, strings with the
// standard escapes, numbers, true/false/null. Documents are parsed into a
// tree of Value nodes; object members preserve insertion order.
//
// Numbers keep an exact unsigned/signed integer view when the token is
// integral and in range (seeds are full-width u64; a double would round
// above 2^53), plus the double view for everything else.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace reese::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  /// Exact integer view: valid when `is_integer` (token had no '.'/'e' and
  /// fit). Negative integers set `int_value` (and `uint_value` only when
  /// non-negative).
  bool is_integer = false;
  u64 uint_value = 0;
  i64 int_value = 0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
};

/// Parse one complete JSON document (trailing garbage is an error).
/// Nesting deeper than 64 levels is rejected (stack safety on untrusted
/// network input).
Result<Value> parse_json(std::string_view text);

}  // namespace reese::json

// Lightweight error type + Result<T> for fallible tool-side operations
// (assembling, config parsing, workload construction).
//
// The simulator hot path never constructs these; internal invariant
// violations there are asserts. Result is used at module boundaries where a
// caller-facing message matters (the C++ Core Guidelines E.* rules: use
// exceptions or expected-style returns for errors, asserts for bugs — we use
// the expected style since the hot loop is built with -fno-exceptions-like
// discipline).
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "common/types.h"

namespace reese {

/// A human-readable error with an optional source location (line number for
/// assembler diagnostics).
struct Error {
  std::string message;
  int line = 0;  ///< 1-based source line; 0 when not applicable.

  std::string to_string() const;
};

Error errorf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Minimal expected-like result. C++20 has no std::expected; this covers the
/// subset the codebase needs.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  T& value() & { return std::get<T>(storage_); }
  const T& value() const& { return std::get<T>(storage_); }
  T&& value() && { return std::get<T>(std::move(storage_)); }

  const Error& error() const { return std::get<Error>(storage_); }

 private:
  std::variant<T, Error> storage_;
};

}  // namespace reese

// Versioned binary snapshot serialization (checkpoint/restore).
//
// A snapshot file is:
//
//   offset 0   magic "REESESNP" (8 bytes)
//   offset 8   u32 format version (little-endian, like everything below)
//   offset 12  u64 payload size in bytes
//   offset 20  payload
//   trailer    u64 FNV-1a checksum over bytes [0, 20 + payload size)
//
// SnapshotWriter accumulates the payload in memory and writes the file
// atomically (temp file + rename), so a crash mid-save never leaves a
// half-written snapshot where a valid one stood. SnapshotReader validates
// magic, version, size and checksum up front, then exposes bounds-checked
// typed reads: any over-read or section-tag mismatch latches an error
// instead of touching out-of-range memory, so truncated or corrupt files
// fail with a message, never undefined behavior.
//
// Components serialize themselves with save(SnapshotWriter*) /
// load(SnapshotReader*) methods. Sections (put_section/expect_section) tag
// the component boundaries so a reader that drifts out of sync fails at the
// next boundary with the names of both tags.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace reese {

inline constexpr char kSnapshotMagic[8] = {'R', 'E', 'E', 'S',
                                           'E', 'S', 'N', 'P'};

/// FNV-1a over a byte range (the snapshot integrity hash).
u64 snapshot_fnv1a(const u8* data, usize size, u64 seed = 0xcbf29ce484222325ULL);

class SnapshotWriter {
 public:
  void put_u8(u8 value) { buf_.push_back(value); }
  void put_bool(bool value) { buf_.push_back(value ? 1 : 0); }
  void put_u32(u32 value) { put_le(value, 4); }
  void put_u64(u64 value) { put_le(value, 8); }
  void put_f64(double value);
  void put_bytes(const u8* data, usize size);
  /// Length-prefixed (u32) byte string.
  void put_string(const std::string& value);
  /// Component boundary marker; reader must expect_section the same tag.
  void put_section(u32 tag) {
    put_u32(kSectionMark);
    put_u32(tag);
  }

  const std::vector<u8>& bytes() const { return buf_; }

  /// Write magic + version + payload + checksum to `path` via a temp file
  /// in the same directory and an atomic rename. Returns false with a
  /// message in `*error` on any I/O failure.
  bool write_file(const std::string& path, u32 version,
                  std::string* error) const;

  /// Render the same container (magic + version + payload + checksum) to an
  /// in-memory byte string — the wire form for shipping snapshots over HTTP
  /// (campaign shard results, sim/fleet.*) instead of through a file.
  std::string to_buffer(u32 version) const;

 private:
  static constexpr u32 kSectionMark = 0x53454354;  // "SECT"
  void put_le(u64 value, unsigned bytes);
  std::vector<u8> buf_;

  friend class SnapshotReader;
};

class SnapshotReader {
 public:
  /// Read and validate `path`. `expected_version` must match the file's
  /// version exactly; mismatches (and bad magic, truncation, checksum
  /// failures) return false with a diagnostic in error().
  bool open_file(const std::string& path, u32 expected_version);

  /// Validate an in-memory container (SnapshotWriter::to_buffer wire form).
  /// Same checks as open_file: magic, version, size, checksum.
  bool open_buffer(std::string_view data, u32 expected_version);

  /// Typed reads. On over-read the reader latches an error and returns
  /// zero values; callers check ok() once at the end of a section rather
  /// than after every field.
  u8 get_u8();
  bool get_bool() { return get_u8() != 0; }
  u32 get_u32() { return static_cast<u32>(get_le(4)); }
  u64 get_u64() { return get_le(8); }
  double get_f64();
  void get_bytes(u8* out, usize size);
  std::string get_string();
  /// Consume a section marker; tag mismatch latches an error naming both.
  bool expect_section(u32 tag);

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  /// The file's format version (valid after a successful open_file).
  u32 version() const { return version_; }
  /// True when the payload has been fully consumed.
  bool at_end() const { return pos_ == buf_.size(); }

  /// Latch a caller-detected semantic error (e.g. fingerprint mismatch).
  void fail(const std::string& message);

 private:
  u64 get_le(unsigned bytes);
  bool open_container(const u8* data, usize size, const std::string& label,
                      u32 expected_version);

  std::vector<u8> buf_;  ///< payload only (header/trailer stripped)
  usize pos_ = 0;
  u32 version_ = 0;
  bool ok_ = false;
  std::string error_ = "snapshot not opened";
};

}  // namespace reese

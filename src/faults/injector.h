// Transient-fault injector.
//
// Implements core::FaultHook: as instructions leave the out-of-order window
// it decides — deterministically, from a seeded RNG or an explicit schedule
// — whether to flip a bit in the instruction's stored P-stream result or in
// its R-stream recomputation. The REESE comparator reports back detections;
// everything is recorded for coverage/latency analysis.
//
// This models the paper's §2/§4.2 error model: "soft errors that affect
// instruction results" — arithmetic, logical, effective address and branch
// resolution outcomes. Faults are measurement-only (architectural state is
// never corrupted); see DESIGN.md.
//
// Bookkeeping invariants (the 10⁵-injection campaigns depend on these):
//  * Records are identified by (seq, injected_at), not seq alone: a
//    mismatch flush can refetch an instruction under a reused sequence
//    number, and the two faults must resolve independently.
//  * Resolution is idempotent. A record resolves exactly once; duplicate
//    reports never move the detected/undetected counters (they are counted
//    in duplicate_reports() and, for truly unknown seqs, assert in debug
//    builds).
//  * Resolution is O(1): unresolved records are indexed by seq in a hash
//    map, so campaign cost is linear in injections, not quadratic.
#pragma once

#include <set>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "core/fault_hook.h"
#include "isa/opcode.h"

namespace reese::faults {

/// Which copy of the value the flip lands in.
enum class FaultTarget : u8 {
  kPResult,  ///< the stored P-stream result (comparator's reference copy)
  kRResult,  ///< the R-stream recomputation output
  kEither,   ///< 50/50 per fault
};

const char* fault_target_name(FaultTarget target);

struct InjectorConfig {
  /// Probability of injecting into any given instruction. Typical campaign
  /// values are 1e-4..1e-3 so faults are far rarer than pipeline events.
  double rate = 0.0;

  /// Explicit instruction sequence numbers to fault (in addition to the
  /// rate-driven ones). Useful for deterministic unit tests.
  std::vector<InstSeq> schedule;

  FaultTarget target = FaultTarget::kEither;
  u64 seed = 0xFA17;

  /// Cap on total injections (0 = unlimited).
  u64 max_faults = 0;
};

struct FaultRecord {
  InstSeq seq = 0;
  Cycle injected_at = 0;
  bool hit_p = false;        ///< the flip landed in the P copy
  isa::ExecClass exec_class = isa::ExecClass::kNone;
  bool resolved = false;     ///< a detection or an escape has been reported
  bool detected = false;
  Cycle detected_at = 0;
};

class Injector final : public core::FaultHook {
 public:
  explicit Injector(const InjectorConfig& config);

  core::FaultDecision on_instruction(InstSeq seq, Cycle now,
                                     const isa::Instruction& inst) override;
  void on_detected(InstSeq seq, Cycle injected_at, Cycle detected_at) override;
  void on_undetected(InstSeq seq) override;

  u64 injected() const { return records_.size(); }
  u64 detected() const { return detected_; }
  u64 undetected() const { return undetected_; }
  /// Faults injected but never resolved (still in flight at end of run).
  u64 pending() const { return records_.size() - detected_ - undetected_; }
  /// Resolution reports that found no unresolved record (duplicates).
  u64 duplicate_reports() const { return duplicate_reports_; }
  /// Detected / resolved; pending (still in flight) faults are excluded.
  double coverage() const;
  const std::vector<FaultRecord>& records() const { return records_; }
  const Histogram& latency() const { return latency_; }

 private:
  /// Unresolved record for `seq`; when `injected_at` is non-null it must
  /// match exactly (detections carry it), otherwise the oldest unresolved
  /// record with that seq wins (escapes resolve in FIFO order).
  FaultRecord* find_unresolved(InstSeq seq, const Cycle* injected_at);
  /// Remove one resolved record index from the pending index.
  void unindex(InstSeq seq, usize record_index);

  InjectorConfig config_;
  SplitMix64 rng_;
  std::set<InstSeq> fired_;  ///< scheduled seqs already injected
  std::vector<FaultRecord> records_;
  /// seq -> indices into records_ of unresolved faults, oldest first.
  /// Normally one entry per seq; refetch aliasing can make it several.
  std::unordered_map<InstSeq, std::vector<usize>> pending_;
  u64 detected_ = 0;
  u64 undetected_ = 0;
  u64 duplicate_reports_ = 0;
  Histogram latency_{4, 64};
};

}  // namespace reese::faults

// Transient-fault injector.
//
// Implements core::FaultHook: as instructions leave the out-of-order window
// it decides — deterministically, from a seeded RNG or an explicit schedule
// — whether to flip a bit in the instruction's stored P-stream result or in
// its R-stream recomputation. The REESE comparator reports back detections;
// everything is recorded for coverage/latency analysis.
//
// This models the paper's §2/§4.2 error model: "soft errors that affect
// instruction results" — arithmetic, logical, effective address and branch
// resolution outcomes. Faults are measurement-only (architectural state is
// never corrupted); see DESIGN.md.
//
// Bookkeeping invariants (the 10⁵-injection campaigns depend on these):
//  * Records are identified by (seq, injected_at), not seq alone: a
//    mismatch flush can refetch an instruction under a reused sequence
//    number, and the two faults must resolve independently.
//  * Resolution is idempotent. A record resolves exactly once; duplicate
//    reports never move the detected/undetected counters (they are counted
//    in duplicate_reports() and, for truly unknown seqs, assert in debug
//    builds).
//  * Resolution is O(1): unresolved records are indexed by seq in a hash
//    map, so campaign cost is linear in injections, not quadratic.
//
// ACE-window measurement (srv-vuln cross-validation): because the hook is
// called for EVERY instruction in the committed stream — not only faulted
// ones — the injector can watch each faulted value's destination register
// until it is read or overwritten. A fault is ACE (architecturally
// correct execution would change) when the value is read at least once
// before redefinition; its live window is the instruction distance to the
// last such read. Faults into stores/branches/OUT are consumed
// immediately (window 1); faults into x0 writes or HALT/NOP are masked.
// Windows still open at end of run are finalized by finalize_windows().
// With the Franklin scheme the hook fires in completion order, so window
// lengths there are an approximation; baseline commit order is exact.
#pragma once

#include <array>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "core/fault_hook.h"
#include "isa/opcode.h"

namespace reese::faults {

/// Which copy of the value the flip lands in.
enum class FaultTarget : u8 {
  kPResult,  ///< the stored P-stream result (comparator's reference copy)
  kRResult,  ///< the R-stream recomputation output
  kEither,   ///< 50/50 per fault
};

const char* fault_target_name(FaultTarget target);

struct InjectorConfig {
  /// Probability of injecting into any given instruction. Typical campaign
  /// values are 1e-4..1e-3 so faults are far rarer than pipeline events.
  double rate = 0.0;

  /// Explicit instruction sequence numbers to fault (in addition to the
  /// rate-driven ones). Useful for deterministic unit tests.
  std::vector<InstSeq> schedule;

  FaultTarget target = FaultTarget::kEither;
  u64 seed = 0xFA17;

  /// Cap on total injections (0 = unlimited).
  u64 max_faults = 0;

  /// Which microarchitectural structure to strike (DESIGN.md §16). The
  /// default, kResult, keeps the classic result-flipping model above; any
  /// other value switches the injector into site mode: `rate` becomes a
  /// per-CYCLE strike probability, on_instruction stops injecting, and
  /// outcomes arrive through on_site_outcome as masked/detected/SDC.
  core::FaultSite site = core::FaultSite::kResult;
};

/// Per-static-PC outcome tally in site mode (root-cause attribution).
struct SitePcOutcomes {
  u64 injected = 0;
  u64 detected = 0;
  u64 masked = 0;
  u64 sdc = 0;
};

struct FaultRecord {
  InstSeq seq = 0;
  Cycle injected_at = 0;
  Addr pc = 0;               ///< static instruction the flip landed on
  bool hit_p = false;        ///< the flip landed in the P copy
  isa::ExecClass exec_class = isa::ExecClass::kNone;
  bool resolved = false;     ///< a detection or an escape has been reported
  bool detected = false;
  Cycle detected_at = 0;

  // Dynamic ACE-window measurement (see the header comment).
  bool window_closed = false;  ///< the value was read or overwritten (or
                               ///< finalize_windows() ran); until then the
                               ///< window fields below are provisional
  bool ace = false;            ///< read at least once before redefinition
  u64 live_window = 0;         ///< instructions to the last consuming read
};

class Injector final : public core::FaultHook {
 public:
  explicit Injector(const InjectorConfig& config);

  core::FaultDecision on_instruction(InstSeq seq, Cycle now, Addr pc,
                                     const isa::Instruction& inst) override;
  void on_detected(InstSeq seq, Cycle injected_at, Cycle detected_at) override;
  void on_undetected(InstSeq seq) override;

  // Site mode (config.site != kResult).
  core::FaultSite site() const override { return config_.site; }
  core::SiteStrike on_site_cycle(Cycle now) override;
  void on_site_outcome(core::FaultOutcome outcome, Addr pc, Cycle injected_at,
                       Cycle resolved_at) override;
  void on_checker_loss() override { ++checker_loss_; }

  /// Close every still-open ACE window at end of run: a value read at
  /// least once counts as ACE with its window so far; an unread value is
  /// masked (the program produced it and ended without consuming it).
  /// Idempotent; call once the committed stream is complete.
  void finalize_windows();

  u64 injected() const { return records_.size(); }
  u64 detected() const { return detected_; }
  u64 undetected() const { return undetected_; }
  /// Faults injected but never resolved (still in flight at end of run).
  u64 pending() const { return records_.size() - detected_ - undetected_; }
  /// Resolution reports that found no unresolved record (duplicates).
  u64 duplicate_reports() const { return duplicate_reports_; }
  /// Detected / resolved; pending (still in flight) faults are excluded.
  double coverage() const;
  const std::vector<FaultRecord>& records() const { return records_; }
  const Histogram& latency() const { return latency_; }

  bool site_mode() const { return config_.site != core::FaultSite::kResult; }
  u64 site_fired() const { return site_fired_; }
  u64 site_detected() const { return site_detected_; }
  u64 site_masked() const { return site_masked_; }
  u64 site_sdc() const { return site_sdc_; }
  /// R-queue needs_reexec kills: instructions that committed unchecked
  /// because a strike silently disabled their re-execution.
  u64 checker_loss() const { return checker_loss_; }
  /// Root-cause attribution: outcomes keyed by the static PC that owned or
  /// consumed the corrupted state (strikes on dead state carry pc 0 and
  /// are not attributed). Ordered for deterministic reports.
  const std::map<Addr, SitePcOutcomes>& site_by_pc() const {
    return site_by_pc_;
  }

 private:
  /// Unresolved record for `seq`; when `injected_at` is non-null it must
  /// match exactly (detections carry it), otherwise the oldest unresolved
  /// record with that seq wins (escapes resolve in FIFO order).
  FaultRecord* find_unresolved(InstSeq seq, const Cycle* injected_at);
  /// Remove one resolved record index from the pending index.
  void unindex(InstSeq seq, usize record_index);

  /// One faulted value being tracked to its last read: the destination
  /// register holds record `record_index` since stream position `def_pos`.
  struct OpenWindow {
    static constexpr usize kNone = ~usize{0};
    usize record_index = kNone;
    u64 def_pos = 0;
    u64 last_use_pos = 0;  ///< == def_pos until the first read
  };
  /// Close the window over `open` (value read/overwritten/run ended).
  void close_window(OpenWindow* open);

  InjectorConfig config_;
  SplitMix64 rng_;
  std::set<InstSeq> fired_;  ///< scheduled seqs already injected
  u64 stream_pos_ = 0;       ///< committed-stream instruction counter
  std::array<OpenWindow, isa::kFlatRegCount> open_windows_{};
  std::vector<FaultRecord> records_;
  /// seq -> indices into records_ of unresolved faults, oldest first.
  /// Normally one entry per seq; refetch aliasing can make it several.
  std::unordered_map<InstSeq, std::vector<usize>> pending_;
  u64 detected_ = 0;
  u64 undetected_ = 0;
  u64 duplicate_reports_ = 0;
  Histogram latency_{4, 64};

  // Site-mode counters. site_fired_ counts strikes handed to the pipeline;
  // every strike resolves to exactly one of detected/masked/sdc, either via
  // on_site_outcome or (for strikes still unresolved at end of run — queued
  // poison, in-flight entries) as masked in finalize_windows().
  u64 site_fired_ = 0;
  u64 site_detected_ = 0;
  u64 site_masked_ = 0;
  u64 site_sdc_ = 0;
  u64 checker_loss_ = 0;
  std::map<Addr, SitePcOutcomes> site_by_pc_;
};

}  // namespace reese::faults

#include "faults/injector.h"

#include <algorithm>
#include <cassert>

namespace reese::faults {

const char* fault_target_name(FaultTarget target) {
  switch (target) {
    case FaultTarget::kPResult: return "p";
    case FaultTarget::kRResult: return "r";
    case FaultTarget::kEither: return "either";
  }
  return "?";
}

Injector::Injector(const InjectorConfig& config)
    : config_(config), rng_(config.seed) {
  std::sort(config_.schedule.begin(), config_.schedule.end());
}

void Injector::close_window(OpenWindow* open) {
  FaultRecord& record = records_[open->record_index];
  record.window_closed = true;
  record.ace = open->last_use_pos > open->def_pos;
  record.live_window = record.ace ? open->last_use_pos - open->def_pos : 0;
  open->record_index = OpenWindow::kNone;
}

void Injector::finalize_windows() {
  for (OpenWindow& open : open_windows_) {
    if (open.record_index != OpenWindow::kNone) close_window(&open);
  }
  // Site mode: strikes whose corrupted state was still live at end of run
  // (in-flight queue entries, unconsumed poisoned lines) never reached an
  // architectural consumer — masked. Idempotent: once the counts balance,
  // the difference is zero.
  const u64 resolved = site_detected_ + site_masked_ + site_sdc_;
  if (site_fired_ > resolved) site_masked_ += site_fired_ - resolved;
}

core::SiteStrike Injector::on_site_cycle(Cycle now) {
  (void)now;
  if (config_.max_faults != 0 && site_fired_ >= config_.max_faults) return {};
  if (config_.rate <= 0.0 || !rng_.next_bool(config_.rate)) return {};
  ++site_fired_;
  // All randomness stays here so the pipeline's strike handling is a pure
  // function of the strike — campaigns are bit-identical for any --jobs
  // split as long as each cell owns its own seeded injector.
  core::SiteStrike strike;
  strike.strike = true;
  strike.cell = rng_.next();
  strike.bit = static_cast<unsigned>(rng_.next_below(64));
  strike.field = rng_.next();
  return strike;
}

void Injector::on_site_outcome(core::FaultOutcome outcome, Addr pc,
                               Cycle injected_at, Cycle resolved_at) {
  switch (outcome) {
    case core::FaultOutcome::kMasked: ++site_masked_; break;
    case core::FaultOutcome::kDetected:
      ++site_detected_;
      latency_.add(resolved_at - injected_at);
      break;
    case core::FaultOutcome::kSdc: ++site_sdc_; break;
  }
  if (pc == 0) return;  // strike on dead state: no root cause to attribute
  SitePcOutcomes& tally = site_by_pc_[pc];
  ++tally.injected;
  switch (outcome) {
    case core::FaultOutcome::kMasked: ++tally.masked; break;
    case core::FaultOutcome::kDetected: ++tally.detected; break;
    case core::FaultOutcome::kSdc: ++tally.sdc; break;
  }
}

core::FaultDecision Injector::on_instruction(InstSeq seq, Cycle now, Addr pc,
                                             const isa::Instruction& inst) {
  // Site mode strikes structures per cycle, not instruction results.
  if (site_mode()) return {};

  // Advance the committed-stream ACE tracking before the injection
  // decision: this instruction's reads consume earlier faulted values, and
  // its definition closes the previous value's window even when the
  // instruction is itself about to be faulted.
  ++stream_pos_;
  const isa::DefUse du = isa::def_use(inst);
  for (u8 u = 0; u < du.use_count; ++u) {
    OpenWindow& open = open_windows_[du.uses[u].flat()];
    if (open.record_index != OpenWindow::kNone) {
      open.last_use_pos = stream_pos_;
    }
  }
  OpenWindow* def_window = nullptr;
  if (du.def_count > 0) {
    def_window = &open_windows_[du.defs[0].flat()];
    if (def_window->record_index != OpenWindow::kNone) {
      close_window(def_window);
    }
  }

  if (config_.max_faults != 0 && records_.size() >= config_.max_faults) {
    return {};
  }

  bool inject = false;
  // Explicit schedule: binary search (callers may report instructions out
  // of program order, e.g. the Franklin scheme's completion-order hook).
  if (std::binary_search(config_.schedule.begin(), config_.schedule.end(),
                         seq) &&
      fired_.insert(seq).second) {
    inject = true;
  }
  if (!inject && config_.rate > 0.0) inject = rng_.next_bool(config_.rate);
  if (!inject) return {};

  core::FaultDecision decision;
  bool hit_p = false;
  switch (config_.target) {
    case FaultTarget::kPResult: hit_p = true; break;
    case FaultTarget::kRResult: hit_p = false; break;
    case FaultTarget::kEither: hit_p = rng_.next_bool(0.5); break;
  }
  decision.flip_p = hit_p;
  decision.flip_r = !hit_p;
  decision.bit = static_cast<unsigned>(rng_.next_below(64));

  FaultRecord record;
  record.seq = seq;
  record.injected_at = now;
  record.pc = pc;
  record.hit_p = hit_p;
  record.exec_class = inst.info().exec_class;
  const usize record_index = records_.size();
  pending_[seq].push_back(record_index);
  records_.push_back(record);

  // Start the ACE-window measurement for the faulted value.
  const isa::OpInfo& info = inst.info();
  if (info.writes_rd && (info.is_fp_rd || inst.rd != isa::kZeroReg)) {
    *def_window = {record_index, stream_pos_, stream_pos_};
  } else {
    FaultRecord& rec = records_.back();
    rec.window_closed = true;
    if (info.exec_class == isa::ExecClass::kStore ||
        isa::is_cond_branch(inst.op) || inst.op == isa::Opcode::kOut) {
      // The flipped value (stored data, branch outcome, output-hash
      // operand) is consumed by this very instruction.
      rec.ace = true;
      rec.live_window = 1;
    }
    // else: x0 write, HALT or NOP — masked immediately.
  }
  return decision;
}

FaultRecord* Injector::find_unresolved(InstSeq seq, const Cycle* injected_at) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return nullptr;
  for (usize index : it->second) {
    FaultRecord& record = records_[index];
    if (injected_at == nullptr || record.injected_at == *injected_at) {
      return &record;
    }
  }
  return nullptr;
}

void Injector::unindex(InstSeq seq, usize record_index) {
  const auto it = pending_.find(seq);
  assert(it != pending_.end());
  std::vector<usize>& indices = it->second;
  indices.erase(std::find(indices.begin(), indices.end(), record_index));
  if (indices.empty()) pending_.erase(it);
}

void Injector::on_detected(InstSeq seq, Cycle injected_at, Cycle detected_at) {
  FaultRecord* record = find_unresolved(seq, &injected_at);
  if (record == nullptr) {
    // Re-resolution of an already-settled record is an idempotent no-op
    // (and must never move the counters); a report for a seq that was
    // never injected at all is a pipeline bug.
    ++duplicate_reports_;
    assert(fired_.count(seq) != 0 ||
           std::any_of(records_.begin(), records_.end(),
                       [&](const FaultRecord& r) { return r.seq == seq; }));
    return;
  }
  record->resolved = true;
  record->detected = true;
  record->detected_at = detected_at;
  unindex(seq, static_cast<usize>(record - records_.data()));
  ++detected_;
  latency_.add(detected_at - injected_at);
}

void Injector::on_undetected(InstSeq seq) {
  FaultRecord* record = find_unresolved(seq, nullptr);
  if (record == nullptr) {
    ++duplicate_reports_;
    assert(fired_.count(seq) != 0 ||
           std::any_of(records_.begin(), records_.end(),
                       [&](const FaultRecord& r) { return r.seq == seq; }));
    return;
  }
  record->resolved = true;
  unindex(seq, static_cast<usize>(record - records_.data()));
  ++undetected_;
}

double Injector::coverage() const {
  const u64 resolved = detected_ + undetected_;
  return safe_ratio(detected_, resolved);
}

}  // namespace reese::faults

#include "faults/injector.h"

#include <algorithm>
#include <cassert>

namespace reese::faults {

Injector::Injector(const InjectorConfig& config)
    : config_(config), rng_(config.seed) {
  std::sort(config_.schedule.begin(), config_.schedule.end());
}

core::FaultDecision Injector::on_instruction(InstSeq seq, Cycle now,
                                             const isa::Instruction&) {
  if (config_.max_faults != 0 && records_.size() >= config_.max_faults) {
    return {};
  }

  bool inject = false;
  // Explicit schedule: binary search (callers may report instructions out
  // of program order, e.g. the Franklin scheme's completion-order hook).
  if (std::binary_search(config_.schedule.begin(), config_.schedule.end(),
                         seq) &&
      fired_.insert(seq).second) {
    inject = true;
  }
  if (!inject && config_.rate > 0.0) inject = rng_.next_bool(config_.rate);
  if (!inject) return {};

  core::FaultDecision decision;
  bool hit_p = false;
  switch (config_.target) {
    case FaultTarget::kPResult: hit_p = true; break;
    case FaultTarget::kRResult: hit_p = false; break;
    case FaultTarget::kEither: hit_p = rng_.next_bool(0.5); break;
  }
  decision.flip_p = hit_p;
  decision.flip_r = !hit_p;
  decision.bit = static_cast<unsigned>(rng_.next_below(64));

  records_.push_back(FaultRecord{seq, now, false, 0});
  return decision;
}

FaultRecord* Injector::find(InstSeq seq) {
  // Faults resolve in near-FIFO order; scan from the tail of the
  // unresolved region (records are few).
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->seq == seq) return &*it;
  }
  return nullptr;
}

void Injector::on_detected(InstSeq seq, Cycle injected_at, Cycle detected_at) {
  FaultRecord* record = find(seq);
  assert(record != nullptr && "detection reported for unknown fault");
  if (record == nullptr) return;
  record->detected = true;
  record->detected_at = detected_at;
  ++detected_;
  latency_.add(detected_at - injected_at);
}

void Injector::on_undetected(InstSeq seq) {
  FaultRecord* record = find(seq);
  // Baseline pipelines report undetected faults they were never told about
  // injecting... no: on_instruction always precedes. Keep the assert.
  assert(record != nullptr && "escape reported for unknown fault");
  if (record == nullptr) return;
  ++undetected_;
}

double Injector::coverage() const {
  const u64 resolved = detected_ + undetected_;
  return safe_ratio(detected_, resolved);
}

}  // namespace reese::faults

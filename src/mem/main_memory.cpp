#include "mem/main_memory.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <vector>

#include "common/snapshot.h"

namespace reese::mem {

MainMemory::MainMemory(const MainMemory& other) { *this = other; }

MainMemory& MainMemory::operator=(const MainMemory& other) {
  if (this == &other) return *this;
  pages_.clear();
  pages_.reserve(other.pages_.size());
  for (const auto& [page_index, page] : other.pages_) {
    pages_.emplace(page_index, std::make_unique<Page>(*page));
  }
  invalidate_page_cache();
  return *this;
}

MainMemory::MainMemory(MainMemory&& other) noexcept
    : pages_(std::move(other.pages_)) {
  other.invalidate_page_cache();
}

MainMemory& MainMemory::operator=(MainMemory&& other) noexcept {
  if (this == &other) return *this;
  pages_ = std::move(other.pages_);
  invalidate_page_cache();
  other.invalidate_page_cache();
  return *this;
}

const MainMemory::Page* MainMemory::find_page(Addr addr) const {
  const u64 index = addr >> kPageBits;
  if (index == cached_index_) return cached_page_;
  auto it = pages_.find(index);
  if (it == pages_.end()) return nullptr;
  cached_index_ = index;
  cached_page_ = it->second.get();
  return cached_page_;
}

MainMemory::Page& MainMemory::touch_page(Addr addr) {
  const u64 index = addr >> kPageBits;
  if (index == cached_index_) return *cached_page_;
  auto& slot = pages_[index];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  cached_index_ = index;
  cached_page_ = slot.get();
  return *slot;
}

u64 MainMemory::load_slow(Addr addr, unsigned bytes) const {
  assert(bytes >= 1 && bytes <= 8);
  // In-page access that missed the page cache.
  const usize offset = addr & (kPageSize - 1);
  if (offset + bytes <= kPageSize) {
    const Page* page = find_page(addr);
    if (page == nullptr) return 0;
    u64 value = 0;
    std::memcpy(&value, page->data() + offset, bytes);
    return value;
  }
  // Page-straddling access: byte loop (each byte re-enters the fast path).
  u64 value = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    value |= static_cast<u64>(load_u8(addr + i)) << (8 * i);
  }
  return value;
}

void MainMemory::store_slow(Addr addr, unsigned bytes, u64 value) {
  assert(bytes >= 1 && bytes <= 8);
  const usize offset = addr & (kPageSize - 1);
  if (offset + bytes <= kPageSize) {
    std::memcpy(touch_page(addr).data() + offset, &value, bytes);
    return;
  }
  for (unsigned i = 0; i < bytes; ++i) {
    store_u8(addr + i, static_cast<u8>(value >> (8 * i)));
  }
}

void MainMemory::write_block(Addr addr, const u8* data, usize size) {
  for (usize i = 0; i < size;) {
    const usize offset = (addr + i) & (kPageSize - 1);
    const usize chunk = std::min(size - i, kPageSize - offset);
    std::memcpy(touch_page(addr + i).data() + offset, data + i, chunk);
    i += chunk;
  }
}

u64 MainMemory::content_hash() const {
  std::vector<u64> indices;
  indices.reserve(pages_.size());
  for (const auto& [page_index, page] : pages_) indices.push_back(page_index);
  std::sort(indices.begin(), indices.end());

  u64 hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  auto mix = [&hash](u64 v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xFF;
      hash *= 0x100000001b3ULL;
    }
  };
  for (u64 index : indices) {
    const Page& page = *pages_.at(index);
    // Skip all-zero pages so "touched but zero" equals "never touched".
    bool all_zero = true;
    for (u8 b : page) {
      if (b != 0) {
        all_zero = false;
        break;
      }
    }
    if (all_zero) continue;
    mix(index);
    for (u8 b : page) {
      hash ^= b;
      hash *= 0x100000001b3ULL;
    }
  }
  return hash;
}

void MainMemory::save(SnapshotWriter* writer) const {
  std::vector<u64> indices;
  indices.reserve(pages_.size());
  for (const auto& [page_index, page] : pages_) indices.push_back(page_index);
  std::sort(indices.begin(), indices.end());

  writer->put_u64(indices.size());
  for (u64 index : indices) {
    writer->put_u64(index);
    writer->put_bytes(pages_.at(index)->data(), kPageSize);
  }
  writer->put_u64(content_hash());
}

void MainMemory::load(SnapshotReader* reader) {
  pages_.clear();
  invalidate_page_cache();
  const u64 page_count = reader->get_u64();
  for (u64 i = 0; i < page_count && reader->ok(); ++i) {
    const u64 index = reader->get_u64();
    auto page = std::make_unique<Page>();
    reader->get_bytes(page->data(), kPageSize);
    pages_.emplace(index, std::move(page));
  }
  const u64 stored_hash = reader->get_u64();
  if (reader->ok() && stored_hash != content_hash()) {
    reader->fail("memory image hash mismatch after restore");
  }
}

}  // namespace reese::mem

// Sparse, paged simulated main memory.
//
// Backing store for the functional machine state. Pages are allocated on
// first touch so workloads can use widely separated code/data/stack/heap
// regions without reserving gigabytes. All multi-byte accesses are
// little-endian and support arbitrary (unaligned) addresses.
#pragma once

#include <array>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "common/types.h"

namespace reese {
class SnapshotReader;
class SnapshotWriter;
}  // namespace reese

namespace reese::mem {

class MainMemory {
 public:
  static constexpr usize kPageBits = 12;
  static constexpr usize kPageSize = usize{1} << kPageBits;

  MainMemory() = default;

  // Deep-copyable: the speculative overlay machinery and tests snapshot
  // memory images. All special members reset the page-pointer cache — a
  // moved-from map still owns nothing, and a stale cached pointer would
  // alias a page now owned by another image.
  MainMemory(const MainMemory& other);
  MainMemory& operator=(const MainMemory& other);
  MainMemory(MainMemory&& other) noexcept;
  MainMemory& operator=(MainMemory&& other) noexcept;

  // The load/store fast path is inline: when the access hits the cached
  // page (the overwhelmingly common case — see the cache comment below) it
  // indexes the page's flat byte array directly, with no out-of-line call.
  // Misses, first touches, and page-straddling accesses take the _slow
  // out-of-line path.

  u8 load_u8(Addr addr) const {
    if ((addr >> kPageBits) == cached_index_) {
      return (*cached_page_)[addr & (kPageSize - 1)];
    }
    return static_cast<u8>(load_slow(addr, 1));
  }
  void store_u8(Addr addr, u8 value) {
    if ((addr >> kPageBits) == cached_index_) {
      (*cached_page_)[addr & (kPageSize - 1)] = value;
      return;
    }
    store_slow(addr, 1, value);
  }

  /// Load `bytes` (1..8) little-endian; unallocated memory reads as zero.
  u64 load(Addr addr, unsigned bytes) const {
    const usize offset = addr & (kPageSize - 1);
    if ((addr >> kPageBits) == cached_index_ && offset + bytes <= kPageSize) {
      u64 value = 0;
      std::memcpy(&value, cached_page_->data() + offset, bytes);
      return value;
    }
    return load_slow(addr, bytes);
  }
  /// Store the low `bytes` (1..8) of `value` little-endian.
  void store(Addr addr, unsigned bytes, u64 value) {
    const usize offset = addr & (kPageSize - 1);
    if ((addr >> kPageBits) == cached_index_ && offset + bytes <= kPageSize) {
      std::memcpy(cached_page_->data() + offset, &value, bytes);
      return;
    }
    store_slow(addr, bytes, value);
  }

  /// Bulk copy-in used by the program loader.
  void write_block(Addr addr, const u8* data, usize size);

  /// Number of distinct pages touched (memory footprint diagnostics).
  usize allocated_pages() const { return pages_.size(); }

  /// FNV-1a hash over all allocated pages in address order — the functional
  /// equivalence fingerprint used by tests (golden ISS vs pipeline).
  u64 content_hash() const;

  /// Checkpoint serialization: a sparse page dump (every allocated page,
  /// address-ordered) followed by the content hash, which load() recomputes
  /// and verifies so a corrupted memory image fails loudly at restore time.
  void save(SnapshotWriter* writer) const;
  void load(SnapshotReader* reader);

 private:
  using Page = std::array<u8, kPageSize>;

  const Page* find_page(Addr addr) const;
  Page& touch_page(Addr addr);

  u64 load_slow(Addr addr, unsigned bytes) const;
  void store_slow(Addr addr, unsigned bytes, u64 value);

  void invalidate_page_cache() const {
    cached_index_ = kNoPage;
    cached_page_ = nullptr;
  }

  std::unordered_map<u64, std::unique_ptr<Page>> pages_;

  // Last-page pointer cache: workload access streams are strongly
  // page-local (sequential scans, stack frames, hot loops), so remembering
  // the last page touched lets the common case skip the unordered_map hash
  // + probe entirely and index straight into the page's flat byte array.
  // Not a thread-safety hazard: a MainMemory belongs to exactly one
  // simulated core (parallel experiment cells each own their image).
  static constexpr u64 kNoPage = ~u64{0};
  mutable u64 cached_index_ = kNoPage;
  mutable Page* cached_page_ = nullptr;
};

}  // namespace reese::mem

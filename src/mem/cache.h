// Timing model of one set-associative cache level.
//
// Function and timing are decoupled in this simulator (as in SimpleScalar):
// data values live in MainMemory, while Cache only tracks tags to decide
// hit/miss and compute access latency. An access returns its total latency
// in cycles, recursing into the next level on a miss.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace reese {
class SnapshotReader;
class SnapshotWriter;
}  // namespace reese

namespace reese::mem {

enum class ReplacementPolicy : u8 { kLru, kFifo, kRandom };

enum class WritePolicy : u8 {
  kWriteBack,     // dirty lines written to the next level on eviction
  kWriteThrough,  // every write also updates the next level (no dirty state)
};

struct CacheConfig {
  std::string name = "cache";
  u64 size_bytes = 32 * 1024;
  u32 line_bytes = 32;
  u32 associativity = 2;
  u32 hit_latency = 1;        ///< cycles for a hit (includes lookup)
  ReplacementPolicy replacement = ReplacementPolicy::kLru;
  WritePolicy write_policy = WritePolicy::kWriteBack;
  bool write_allocate = true;

  u64 set_count() const { return size_bytes / (u64{line_bytes} * associativity); }
  /// Validates power-of-two geometry; aborts with a message on bad configs
  /// (configuration bugs, not user input).
  void validate() const;
};

struct CacheStats {
  u64 accesses = 0;
  u64 hits = 0;
  u64 misses = 0;
  u64 read_accesses = 0;
  u64 write_accesses = 0;
  u64 evictions = 0;
  u64 writebacks = 0;

  double miss_rate() const;
};

/// Interface for the level below a cache (another cache or main memory).
class MemoryLevel {
 public:
  virtual ~MemoryLevel() = default;
  /// Latency of serving a whole-line access at `addr`.
  virtual u32 access(Addr addr, bool is_write) = 0;
  virtual const std::string& name() const = 0;
};

/// Flat DRAM model: fixed first-word latency (SimpleScalar's chunked model
/// collapses to this for single-line fills).
class FlatMemoryLevel final : public MemoryLevel {
 public:
  explicit FlatMemoryLevel(u32 latency, std::string name = "dram")
      : latency_(latency), name_(std::move(name)) {}
  u32 access(Addr, bool) override {
    ++accesses_;
    return latency_;
  }
  const std::string& name() const override { return name_; }
  u64 accesses() const { return accesses_; }

  void save(SnapshotWriter* writer) const;
  void load(SnapshotReader* reader);

 private:
  u32 latency_;
  std::string name_;
  u64 accesses_ = 0;
};

class Cache final : public MemoryLevel {
 public:
  /// `next` is the level to fetch misses from / write through to; it must
  /// outlive this cache. `seed` feeds random replacement only.
  Cache(const CacheConfig& config, MemoryLevel* next, u64 seed = 0x5EED);

  /// Simulate an access of up to one line at `addr`; returns total latency.
  /// Accesses that straddle a line boundary charge both lines (worst case).
  u32 access(Addr addr, bool is_write) override;

  /// Probe without changing state (for tests and warmth queries).
  bool contains(Addr addr) const;

  /// Drop all lines (dirty lines are written back for accounting). Used on
  /// REESE error recovery only if configured to flush; normally unused.
  void invalidate_all();

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }
  const std::string& name() const override { return config_.name; }

  /// Checkpoint serialization: tag array, stats, LRU tick, RNG state. The
  /// geometry comes from the config, so load() into a cache built with a
  /// different line count latches a reader error.
  /// Poison state (component-site campaigns) is deliberately NOT serialized:
  /// site campaigns run whole cells without mid-cell snapshots.
  void save(SnapshotWriter* writer) const;
  void load(SnapshotReader* reader);

  // --- component-site fault campaigns (DESIGN.md §16) ----------------------
  // A poisoned line models a particle strike in the data array: function and
  // timing are decoupled here, so the corruption cannot change a loaded
  // value — instead the pipeline observes *when* the poisoned line is next
  // read (the corrupt data is consumed → potential SDC) versus overwritten
  // or evicted (masked) and classifies the strike accordingly.

  /// Poison the line selected by `cell` (reduced modulo the line count).
  /// Returns false if that way is invalid or already poisoned — nothing to
  /// corrupt, the strike is trivially masked.
  bool poison_random_line(u64 cell) {
    const usize index = static_cast<usize>(cell % lines_.size());
    if (!lines_[index].valid || poison_[index] != 0) return false;
    poison_[index] = 1;
    ++poison_active_;
    return true;
  }
  /// Number of poisoned lines whose data was read since the last take — and
  /// reset the counter. The caller attributes these to the access it just
  /// simulated.
  u32 take_poison_consumed() {
    const u32 count = poison_consumed_;
    poison_consumed_ = 0;
    return count;
  }
  /// Same for poisoned lines that were overwritten or evicted (masked).
  u32 take_poison_cleared() {
    const u32 count = poison_cleared_;
    poison_cleared_ = 0;
    return count;
  }
  u32 poison_active() const { return poison_active_; }

 private:
  struct Line {
    u64 tag = 0;
    bool valid = false;
    bool dirty = false;
    u64 stamp = 0;  ///< LRU: last-use time; FIFO: fill time
  };

  u32 access_one_line(Addr addr, bool is_write);
  usize victim_way(usize set_base);

  Addr line_addr(Addr addr) const { return addr & ~(Addr{config_.line_bytes} - 1); }
  u64 set_index(Addr addr) const {
    return (addr / config_.line_bytes) & (config_.set_count() - 1);
  }
  u64 tag_bits(Addr addr) const {
    return addr / config_.line_bytes / config_.set_count();
  }

  CacheConfig config_;
  MemoryLevel* next_;
  std::vector<Line> lines_;  ///< set-major: lines_[set * assoc + way]
  CacheStats stats_;
  u64 tick_ = 0;
  SplitMix64 rng_;

  // Component-site poison bitmap, parallel to lines_. poison_active_ != 0
  // gates every hot-path check so campaigns without cache sites pay one
  // compare per access.
  std::vector<u8> poison_;
  u32 poison_active_ = 0;
  u32 poison_consumed_ = 0;
  u32 poison_cleared_ = 0;
};

}  // namespace reese::mem

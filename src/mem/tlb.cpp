#include "mem/tlb.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "common/bitutil.h"
#include "common/snapshot.h"

namespace reese::mem {

Tlb::Tlb(const TlbConfig& config) : config_(config) {
  if (config_.associativity == 0 || config_.entries == 0 ||
      config_.entries % config_.associativity != 0 ||
      !is_pow2(config_.entries / config_.associativity)) {
    std::fprintf(stderr, "tlb '%s': bad geometry\n", config_.name.c_str());
    std::abort();
  }
  set_count_ = config_.entries / config_.associativity;
  entries_.resize(config_.entries);
  poison_.resize(entries_.size(), 0);
}

u32 Tlb::access(Addr addr) {
  ++tick_;
  ++stats_.accesses;
  const u64 vpn = addr >> config_.page_bits;
  const u64 set_base = (vpn & (set_count_ - 1)) * config_.associativity;

  for (u32 way = 0; way < config_.associativity; ++way) {
    Entry& entry = entries_[set_base + way];
    if (entry.valid && entry.vpn == vpn) {
      if (poison_active_ != 0 && poison_[set_base + way] != 0) {
        // The access translated through a corrupted entry.
        poison_[set_base + way] = 0;
        --poison_active_;
        ++poison_consumed_;
      }
      entry.stamp = tick_;
      return 0;
    }
  }

  ++stats_.misses;
  // LRU fill.
  usize victim = 0;
  u64 oldest = ~u64{0};
  for (u32 way = 0; way < config_.associativity; ++way) {
    Entry& entry = entries_[set_base + way];
    if (!entry.valid) {
      victim = way;
      break;
    }
    if (entry.stamp < oldest) {
      oldest = entry.stamp;
      victim = way;
    }
  }
  if (poison_active_ != 0 && poison_[set_base + victim] != 0) {
    // Refill over a poisoned victim: the corrupt translation was never used.
    poison_[set_base + victim] = 0;
    --poison_active_;
    ++poison_cleared_;
  }
  entries_[set_base + victim] = Entry{vpn, true, tick_};
  return config_.miss_latency;
}

void Tlb::save(SnapshotWriter* writer) const {
  writer->put_u64(entries_.size());
  for (const Entry& entry : entries_) {
    writer->put_u64(entry.vpn);
    writer->put_bool(entry.valid);
    writer->put_u64(entry.stamp);
  }
  writer->put_u64(stats_.accesses);
  writer->put_u64(stats_.misses);
  writer->put_u64(tick_);
}

void Tlb::load(SnapshotReader* reader) {
  const u64 entry_count = reader->get_u64();
  if (!reader->ok()) return;
  if (entry_count != entries_.size()) {
    reader->fail("tlb '" + config_.name +
                 "' geometry mismatch (snapshot built with a different "
                 "configuration)");
    return;
  }
  for (Entry& entry : entries_) {
    entry.vpn = reader->get_u64();
    entry.valid = reader->get_bool();
    entry.stamp = reader->get_u64();
  }
  stats_.accesses = reader->get_u64();
  stats_.misses = reader->get_u64();
  tick_ = reader->get_u64();
}

}  // namespace reese::mem

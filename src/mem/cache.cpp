#include "mem/cache.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "common/bitutil.h"
#include "common/snapshot.h"
#include "common/stats.h"

namespace reese::mem {

double CacheStats::miss_rate() const { return safe_ratio(misses, accesses); }

void CacheConfig::validate() const {
  auto die = [this](const char* what) {
    std::fprintf(stderr, "cache '%s': %s\n", name.c_str(), what);
    std::abort();
  };
  if (!is_pow2(line_bytes) || line_bytes < 4) die("line size must be pow2 >= 4");
  if (associativity == 0) die("associativity must be >= 1");
  if (size_bytes == 0 || size_bytes % (u64{line_bytes} * associativity) != 0) {
    die("size must be a multiple of line_bytes * associativity");
  }
  if (!is_pow2(set_count())) die("set count must be a power of two");
  if (hit_latency == 0) die("hit latency must be >= 1");
}

Cache::Cache(const CacheConfig& config, MemoryLevel* next, u64 seed)
    : config_(config), next_(next), rng_(seed) {
  config_.validate();
  assert(next_ != nullptr && "cache needs a next level");
  lines_.resize(config_.set_count() * config_.associativity);
  poison_.resize(lines_.size(), 0);
}

bool Cache::contains(Addr addr) const {
  const u64 set_base = set_index(addr) * config_.associativity;
  const u64 tag = tag_bits(addr);
  for (u32 way = 0; way < config_.associativity; ++way) {
    const Line& line = lines_[set_base + way];
    if (line.valid && line.tag == tag) return true;
  }
  return false;
}

usize Cache::victim_way(usize set_base) {
  // Prefer an invalid way.
  for (u32 way = 0; way < config_.associativity; ++way) {
    if (!lines_[set_base + way].valid) return way;
  }
  switch (config_.replacement) {
    case ReplacementPolicy::kRandom:
      return static_cast<usize>(rng_.next_below(config_.associativity));
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo: {
      usize victim = 0;
      u64 oldest = ~u64{0};
      for (u32 way = 0; way < config_.associativity; ++way) {
        if (lines_[set_base + way].stamp < oldest) {
          oldest = lines_[set_base + way].stamp;
          victim = way;
        }
      }
      return victim;
    }
  }
  return 0;
}

u32 Cache::access_one_line(Addr addr, bool is_write) {
  ++tick_;
  ++stats_.accesses;
  if (is_write) {
    ++stats_.write_accesses;
  } else {
    ++stats_.read_accesses;
  }

  const u64 set_base = set_index(addr) * config_.associativity;
  const u64 tag = tag_bits(addr);

  for (u32 way = 0; way < config_.associativity; ++way) {
    Line& line = lines_[set_base + way];
    if (line.valid && line.tag == tag) {
      ++stats_.hits;
      if (poison_active_ != 0 && poison_[set_base + way] != 0) {
        // Poisoned line touched: a read consumes the corrupt data (SDC
        // candidate); a write overwrites it (masked). Either way the
        // poison is spent.
        poison_[set_base + way] = 0;
        --poison_active_;
        if (is_write) {
          ++poison_cleared_;
        } else {
          ++poison_consumed_;
        }
      }
      if (config_.replacement == ReplacementPolicy::kLru) line.stamp = tick_;
      u32 latency = config_.hit_latency;
      if (is_write) {
        if (config_.write_policy == WritePolicy::kWriteThrough) {
          // Write-through: the write proceeds to the next level but the
          // pipeline does not wait for it (write buffer assumed).
          next_->access(addr, true);
        } else {
          line.dirty = true;
        }
      }
      return latency;
    }
  }

  // Miss.
  ++stats_.misses;
  u32 latency = config_.hit_latency;

  const bool allocate = !is_write || config_.write_allocate;
  if (allocate) {
    const usize way = victim_way(set_base);
    Line& line = lines_[set_base + way];
    if (poison_active_ != 0 && poison_[set_base + way] != 0) {
      // Fill over a poisoned victim: the corrupt data leaves the cache
      // unread (a dirty writeback of it is charged to the same event).
      poison_[set_base + way] = 0;
      --poison_active_;
      ++poison_cleared_;
    }
    if (line.valid) {
      ++stats_.evictions;
      if (line.dirty) {
        ++stats_.writebacks;
        // Victim writeback goes to a write buffer; its latency is not on
        // the critical path of this access.
        const Addr victim_addr =
            (line.tag * config_.set_count() + set_index(addr)) *
            config_.line_bytes;
        next_->access(victim_addr, true);
      }
    }
    latency += next_->access(line_addr(addr), false);
    line.valid = true;
    line.tag = tag;
    line.dirty = is_write && config_.write_policy == WritePolicy::kWriteBack;
    line.stamp = tick_;
  } else {
    // Write miss, no-allocate: pass through.
    latency += next_->access(addr, true);
  }
  return latency;
}

u32 Cache::access(Addr addr, bool is_write) {
  const Addr first_line = line_addr(addr);
  return access_one_line(first_line, is_write);
}

void Cache::invalidate_all() {
  for (Line& line : lines_) {
    if (line.valid && line.dirty) ++stats_.writebacks;
    line = Line{};
  }
  if (poison_active_ != 0) {
    for (u8& flag : poison_) flag = 0;
    poison_cleared_ += poison_active_;
    poison_active_ = 0;
  }
}

void Cache::save(SnapshotWriter* writer) const {
  writer->put_u64(lines_.size());
  for (const Line& line : lines_) {
    writer->put_u64(line.tag);
    writer->put_bool(line.valid);
    writer->put_bool(line.dirty);
    writer->put_u64(line.stamp);
  }
  writer->put_u64(stats_.accesses);
  writer->put_u64(stats_.hits);
  writer->put_u64(stats_.misses);
  writer->put_u64(stats_.read_accesses);
  writer->put_u64(stats_.write_accesses);
  writer->put_u64(stats_.evictions);
  writer->put_u64(stats_.writebacks);
  writer->put_u64(tick_);
  writer->put_u64(rng_.state());
}

void Cache::load(SnapshotReader* reader) {
  const u64 line_count = reader->get_u64();
  if (!reader->ok()) return;
  if (line_count != lines_.size()) {
    reader->fail("cache '" + config_.name +
                 "' geometry mismatch (snapshot built with a different "
                 "configuration)");
    return;
  }
  for (Line& line : lines_) {
    line.tag = reader->get_u64();
    line.valid = reader->get_bool();
    line.dirty = reader->get_bool();
    line.stamp = reader->get_u64();
  }
  stats_.accesses = reader->get_u64();
  stats_.hits = reader->get_u64();
  stats_.misses = reader->get_u64();
  stats_.read_accesses = reader->get_u64();
  stats_.write_accesses = reader->get_u64();
  stats_.evictions = reader->get_u64();
  stats_.writebacks = reader->get_u64();
  tick_ = reader->get_u64();
  rng_.set_state(reader->get_u64());
}

void FlatMemoryLevel::save(SnapshotWriter* writer) const {
  writer->put_u64(accesses_);
}

void FlatMemoryLevel::load(SnapshotReader* reader) {
  accesses_ = reader->get_u64();
}

}  // namespace reese::mem

// The full memory hierarchy of the simulated machine (Table 1 of the
// paper): split L1 I/D caches, a unified L2, flat DRAM behind it, and
// I/D TLBs.
//
//   L1 I: 32 KB, 2-way, 2-cycle hit        L1 D: 32 KB, 2-way, 2-cycle hit
//   L2  : 512 KB, 4-way, 12-cycle hit (shared by I and D)
//   DRAM: fixed 60-cycle access
#pragma once

#include <memory>
#include <string>

#include "mem/cache.h"
#include "mem/tlb.h"

namespace reese::mem {

struct HierarchyConfig {
  CacheConfig il1{.name = "il1",
                  .size_bytes = 32 * 1024,
                  .line_bytes = 32,
                  .associativity = 2,
                  .hit_latency = 2};
  CacheConfig dl1{.name = "dl1",
                  .size_bytes = 32 * 1024,
                  .line_bytes = 32,
                  .associativity = 2,
                  .hit_latency = 2};
  CacheConfig ul2{.name = "ul2",
                  .size_bytes = 512 * 1024,
                  .line_bytes = 64,
                  .associativity = 4,
                  .hit_latency = 12};
  TlbConfig itlb{.name = "itlb", .entries = 64};
  TlbConfig dtlb{.name = "dtlb", .entries = 128};
  u32 memory_latency = 60;
  bool enable_tlbs = true;
};

/// Owns the cache/TLB objects and answers "how many cycles does this access
/// take". TLB miss latency is additive (walk overlaps nothing), matching
/// sim-outorder's treatment.
class Hierarchy {
 public:
  explicit Hierarchy(const HierarchyConfig& config);

  /// Instruction fetch of the line containing `pc`.
  u32 inst_access(Addr pc);

  /// Data access latency (loads and committed stores).
  u32 data_access(Addr addr, bool is_write);

  Cache& il1() { return *il1_; }
  Cache& dl1() { return *dl1_; }
  Cache& ul2() { return *ul2_; }
  const Cache& il1() const { return *il1_; }
  const Cache& dl1() const { return *dl1_; }
  const Cache& ul2() const { return *ul2_; }
  Tlb& itlb() { return *itlb_; }
  Tlb& dtlb() { return *dtlb_; }
  const HierarchyConfig& config() const { return config_; }

  u64 dram_accesses() const { return dram_->accesses(); }

  /// Checkpoint serialization of every level's tag/stat state.
  void save(SnapshotWriter* writer) const;
  void load(SnapshotReader* reader);

  /// Multi-line summary for reports.
  std::string report() const;

 private:
  HierarchyConfig config_;
  std::unique_ptr<FlatMemoryLevel> dram_;
  std::unique_ptr<Cache> ul2_;
  std::unique_ptr<Cache> il1_;
  std::unique_ptr<Cache> dl1_;
  std::unique_ptr<Tlb> itlb_;
  std::unique_ptr<Tlb> dtlb_;
};

}  // namespace reese::mem

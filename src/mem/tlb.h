// Translation lookaside buffer timing model.
//
// Like the caches, the TLB is timing-only: the simulated machine is flat
// physically-addressed, so the TLB merely charges a miss penalty (modelling
// a hardware page-table walk) with SimpleScalar-style defaults.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace reese {
class SnapshotReader;
class SnapshotWriter;
}  // namespace reese

namespace reese::mem {

struct TlbConfig {
  std::string name = "tlb";
  u32 entries = 64;
  u32 associativity = 4;
  u32 page_bits = 12;        ///< 4 KiB pages
  u32 miss_latency = 30;     ///< cycles to walk on a miss
};

struct TlbStats {
  u64 accesses = 0;
  u64 misses = 0;
};

class Tlb {
 public:
  explicit Tlb(const TlbConfig& config);

  /// Returns the extra latency this access pays (0 on hit).
  u32 access(Addr addr);

  const TlbStats& stats() const { return stats_; }
  const TlbConfig& config() const { return config_; }

  void save(SnapshotWriter* writer) const;
  void load(SnapshotReader* reader);

 private:
  struct Entry {
    u64 vpn = 0;
    bool valid = false;
    u64 stamp = 0;
  };

  TlbConfig config_;
  u32 set_count_;
  std::vector<Entry> entries_;
  TlbStats stats_;
  u64 tick_ = 0;
};

}  // namespace reese::mem

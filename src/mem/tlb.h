// Translation lookaside buffer timing model.
//
// Like the caches, the TLB is timing-only: the simulated machine is flat
// physically-addressed, so the TLB merely charges a miss penalty (modelling
// a hardware page-table walk) with SimpleScalar-style defaults.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace reese {
class SnapshotReader;
class SnapshotWriter;
}  // namespace reese

namespace reese::mem {

struct TlbConfig {
  std::string name = "tlb";
  u32 entries = 64;
  u32 associativity = 4;
  u32 page_bits = 12;        ///< 4 KiB pages
  u32 miss_latency = 30;     ///< cycles to walk on a miss
};

struct TlbStats {
  u64 accesses = 0;
  u64 misses = 0;
};

class Tlb {
 public:
  explicit Tlb(const TlbConfig& config);

  /// Returns the extra latency this access pays (0 on hit).
  u32 access(Addr addr);

  const TlbStats& stats() const { return stats_; }
  const TlbConfig& config() const { return config_; }

  void save(SnapshotWriter* writer) const;
  void load(SnapshotReader* reader);

  // --- component-site fault campaigns (DESIGN.md §16) ----------------------
  // Same poison model as Cache: a poisoned entry models a corrupted
  // translation. A later hit on it uses the corrupt translation (SDC
  // candidate); a refill that overwrites it clears the upset unread
  // (masked). Poison is not serialized (site campaigns are whole-cell).

  /// Poison the entry selected by `cell` (modulo the entry count). Returns
  /// false if that entry is invalid or already poisoned.
  bool poison_random_entry(u64 cell) {
    const usize index = static_cast<usize>(cell % entries_.size());
    if (!entries_[index].valid || poison_[index] != 0) return false;
    poison_[index] = 1;
    ++poison_active_;
    return true;
  }
  u32 take_poison_consumed() {
    const u32 count = poison_consumed_;
    poison_consumed_ = 0;
    return count;
  }
  u32 take_poison_cleared() {
    const u32 count = poison_cleared_;
    poison_cleared_ = 0;
    return count;
  }
  u32 poison_active() const { return poison_active_; }

 private:
  struct Entry {
    u64 vpn = 0;
    bool valid = false;
    u64 stamp = 0;
  };

  TlbConfig config_;
  u32 set_count_;
  std::vector<Entry> entries_;
  TlbStats stats_;
  u64 tick_ = 0;

  // Component-site poison bitmap, parallel to entries_ (see Cache).
  std::vector<u8> poison_;
  u32 poison_active_ = 0;
  u32 poison_consumed_ = 0;
  u32 poison_cleared_ = 0;
};

}  // namespace reese::mem

#include "mem/hierarchy.h"

#include "common/snapshot.h"
#include "common/strutil.h"

namespace reese::mem {

Hierarchy::Hierarchy(const HierarchyConfig& config) : config_(config) {
  dram_ = std::make_unique<FlatMemoryLevel>(config_.memory_latency);
  ul2_ = std::make_unique<Cache>(config_.ul2, dram_.get(), /*seed=*/0x12);
  il1_ = std::make_unique<Cache>(config_.il1, ul2_.get(), /*seed=*/0x34);
  dl1_ = std::make_unique<Cache>(config_.dl1, ul2_.get(), /*seed=*/0x56);
  itlb_ = std::make_unique<Tlb>(config_.itlb);
  dtlb_ = std::make_unique<Tlb>(config_.dtlb);
}

u32 Hierarchy::inst_access(Addr pc) {
  u32 latency = il1_->access(pc, /*is_write=*/false);
  if (config_.enable_tlbs) latency += itlb_->access(pc);
  return latency;
}

u32 Hierarchy::data_access(Addr addr, bool is_write) {
  u32 latency = dl1_->access(addr, is_write);
  if (config_.enable_tlbs) latency += dtlb_->access(addr);
  return latency;
}

void Hierarchy::save(SnapshotWriter* writer) const {
  dram_->save(writer);
  ul2_->save(writer);
  il1_->save(writer);
  dl1_->save(writer);
  itlb_->save(writer);
  dtlb_->save(writer);
}

void Hierarchy::load(SnapshotReader* reader) {
  dram_->load(reader);
  ul2_->load(reader);
  il1_->load(reader);
  dl1_->load(reader);
  itlb_->load(reader);
  dtlb_->load(reader);
}

std::string Hierarchy::report() const {
  std::string out;
  for (const Cache* cache : {il1_.get(), dl1_.get(), ul2_.get()}) {
    const CacheStats& s = cache->stats();
    out += format("  %-4s: %10llu accesses, %9llu misses (%.3f%% miss rate)\n",
                  cache->name().c_str(),
                  static_cast<unsigned long long>(s.accesses),
                  static_cast<unsigned long long>(s.misses),
                  100.0 * s.miss_rate());
  }
  out += format("  dram: %10llu accesses\n",
                static_cast<unsigned long long>(dram_->accesses()));
  return out;
}

}  // namespace reese::mem

// Simulation-level checkpoint/restore (DESIGN.md §14).
//
// A snapshot file (common/snapshot.h format) carries a META section — a
// fingerprint of (workload name, config summary) so a snapshot can only be
// restored into a simulator built from the same cell — followed by the
// pipeline's complete drained state (core/checkpoint.cpp).
//
// run_with_checkpoints() is the resumable replacement for Simulator::run:
// it cuts the instruction budget into `interval`-sized chunks, drains to
// the snapshot barrier after each full chunk, and rewrites the snapshot
// atomically. Draining is deterministic simulated execution, so two runs
// with the same interval commit the same boundaries and produce
// bit-identical results whether or not one of them was killed and resumed
// from the snapshot in between. (A checkpointed run is NOT bit-identical
// to an interval-0 run of the same cell — the drains add cycles — which is
// why the interval is part of the experiment spec, not a transparent knob.)
#pragma once

#include <string>

#include "sim/simulator.h"

namespace reese::sim {

/// Bumped whenever the snapshot payload layout changes; readers reject
/// files with any other version.
inline constexpr u32 kSnapshotFormatVersion = 1;

/// Identity hash binding a snapshot to the (workload, configuration) cell
/// it was taken from.
u64 snapshot_fingerprint(const std::string& workload_name,
                         const core::CoreConfig& config);

/// Drain the pipeline to the snapshot barrier and write its state to
/// `path` (atomic temp+rename). Returns false with a message in `*error`
/// on drain or I/O failure.
bool save_snapshot(Simulator* simulator, const std::string& path,
                   std::string* error);

/// Restore `path` into a freshly constructed simulator for the same
/// (workload, configuration) cell. Returns false with a message in
/// `*error` on missing/corrupt/truncated files, format-version mismatch,
/// or fingerprint mismatch.
bool load_snapshot(Simulator* simulator, const std::string& path,
                   std::string* error);

/// Checkpoint policy shared by the experiment and campaign runners.
struct CheckpointOptions {
  std::string dir;    ///< directory for snapshot/done files; empty = off
  u64 interval = 0;   ///< committed instructions between snapshots; 0 = only
                      ///< per-cell done records (campaign granularity)
  bool resume = false;  ///< pick up existing snapshots/done records in dir
};

/// Process-wide default installed by parse_checkpoint_flags() and read by
/// run_experiment/run_campaign when their spec leaves checkpointing unset
/// (same pattern as set_default_jobs).
void set_default_checkpoint(const CheckpointOptions& options);
const CheckpointOptions& default_checkpoint();

/// Scan argv for "--checkpoint-dir PATH", "--checkpoint-interval N" and
/// "--resume-from PATH" ("--flag=value" also accepted) and install the
/// result via set_default_checkpoint. --resume-from implies the directory
/// and resume=true. Unrelated arguments are left for the caller.
void parse_checkpoint_flags(int argc, char** argv);

/// Resumable Simulator::run. When `resume` and `path` exists, restores it
/// first (a load failure sets `*error` and returns a zeroed result — the
/// caller must not treat that as a simulation outcome). Then runs to
/// `instructions` total committed, snapshotting to `path` every `interval`
/// committed instructions. `interval == 0` or an empty `path` degrades to
/// a plain run.
SimResult run_with_checkpoints(Simulator* simulator, u64 instructions,
                               u64 interval, const std::string& path,
                               bool resume, std::string* error);

}  // namespace reese::sim

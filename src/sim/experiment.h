// Experiment grid runner: evaluates (workload x model) matrices and prints
// the tables behind the paper's figures.
//
// A "model" is one bar of the paper's figure groups:
//   Baseline            — no REESE
//   REESE               — time redundancy, no spare hardware
//   REESE+1 ALU         — one spare integer ALU
//   REESE+2 ALU         — two spare integer ALUs
//   REESE+2 ALU+1 Mult  — plus a spare integer multiplier/divider
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/config.h"
#include "core/pipeline.h"
#include "sim/checkpoint.h"
#include "sim/progress.h"
#include "workloads/workload.h"

namespace reese::sim {

enum class Model : u8 {
  kBaseline,
  kReese,
  kReese1Alu,
  kReese2Alu,
  kReese2Alu1Mult,
};

const char* model_name(Model model);

/// Stable machine-readable name ("baseline", "reese", "reese_1alu",
/// "reese_2alu", "reese_2alu_1mult") — the vocabulary of the service's
/// JSON specs and reports (DESIGN.md §11).
const char* model_slug(Model model);

/// Inverse of model_slug; false on an unknown name.
bool model_from_slug(const std::string& slug, Model* out);

/// The paper's five standard bars, in figure order.
const std::vector<Model>& standard_models();

/// Apply a model to a figure's base (baseline) configuration.
core::CoreConfig apply_model(core::CoreConfig base, Model model);

struct ExperimentSpec {
  std::string title;                    ///< e.g. "Figure 2: ..."
  core::CoreConfig base;                ///< baseline hardware for this figure
  std::vector<Model> models;            ///< bars (default: the standard five)
  std::vector<std::string> workloads;   ///< default: the six spec-like names
  u64 instructions = 0;                 ///< 0 = default_instruction_budget()
  u64 seed = 0x5EED5EED;
  /// Additional workload-data seeds; when non-empty, every cell is run
  /// once per seed (including `seed`) and the matrix holds the mean, with
  /// the sample standard deviation in ExperimentResult::ipc_stdev.
  std::vector<u64> extra_seeds;
  /// Worker threads for the grid. 0 = auto: the process-wide default from
  /// set_default_jobs()/--jobs, else $REESE_JOBS, else hardware
  /// concurrency. 1 = run every cell inline on the calling thread.
  u32 jobs = 0;
  /// Optional cooperative cancellation, polled once per grid cell before
  /// the cell's simulation starts (cells are sub-second at service
  /// budgets, so this is the natural preemption granularity). When it
  /// returns true, the remaining cells are skipped and the result carries
  /// `cancelled = true` with the untouched cells zero-filled. Used by the
  /// service's per-job wall-clock timeout and SIGTERM drain.
  std::function<bool()> cancel;
  /// Optional per-cell progress callback (see sim/progress.h for the
  /// threading contract). Observes only — results are bit-identical with
  /// or without a listener.
  ProgressFn progress;
  /// Optional metrics registry: each finished cell bumps the
  /// reese_grid_cells_completed_total and
  /// reese_grid_committed_instructions_total counters (kind="experiment").
  /// Must outlive the run.
  metrics::Registry* metrics = nullptr;
  /// Checkpoint policy (DESIGN.md §14). When `dir` is set, every finished
  /// cell writes a ".done" record there and, with a non-zero `interval`,
  /// long cells snapshot mid-run every `interval` committed instructions;
  /// with `resume`, done cells are skipped and partial cells restored, so
  /// a killed grid continues bit-identically (the interval is part of the
  /// result's identity — see sim/checkpoint.h). Left default, the
  /// process-wide default_checkpoint() from --checkpoint-interval /
  /// --resume-from applies.
  CheckpointOptions checkpoint;
};

/// Raw outcome of one grid cell's simulation (one workload/model/seed run).
struct ExperimentCell {
  double ipc = 0.0;
  Cycle cycles = 0;
  u64 committed = 0;
  core::StopReason stop = core::StopReason::kCommitTarget;

  bool operator==(const ExperimentCell&) const = default;
};

struct ExperimentResult {
  ExperimentSpec spec;
  /// ipc[workload_index][model_index] — mean over seeds
  std::vector<std::vector<double>> ipc;
  /// Sample standard deviation over seeds (zero when a single seed ran).
  std::vector<std::vector<double>> ipc_stdev;
  /// Per-cell raw samples: cells[workload_index][model_index][seed_index].
  /// Deterministic regardless of how many workers ran the grid — the
  /// parallel-vs-sequential bit-identity test compares these directly.
  std::vector<std::vector<std::vector<ExperimentCell>>> cells;
  /// True when ExperimentSpec::cancel fired before every cell ran; the
  /// matrix is then incomplete and must not be reported as a result.
  bool cancelled = false;

  /// Arithmetic mean over workloads for one model (the figures' AV bars).
  double average(usize model_index) const;
  /// REESE-vs-baseline IPC deficit in percent for one model (paper's
  /// headline "11-16%" / "8%" numbers). Requires models[0] == kBaseline.
  double overhead_pct(usize model_index) const;

  /// Render the figure's data as a table (workload rows, model columns,
  /// AV row), matching the bar groups in the paper.
  std::string table() const;

  /// Machine-readable CSV: workload,model,ipc,ipc_stdev — one row per
  /// cell, ready for plotting.
  std::string csv() const;

  /// Machine-readable report (schema "reese-experiment-v1"): the resolved
  /// spec, the ipc/ipc_stdev matrices, per-model averages, and the raw
  /// per-seed cells. Worker count is deliberately omitted — the matrix is
  /// jobs-invariant, so two runs of the same spec serialize identically.
  std::string json() const;
};

/// Run the grid. Independent (workload, model, seed) cells are fanned
/// across a thread pool (see ExperimentSpec::jobs); every cell owns its
/// Pipeline/memory/RNG and writes only its own result slot, so the matrix
/// is bit-identical to a sequential run. When the environment variable
/// REESE_CSV_DIR names a directory, the result is also written there as
/// "<slugified title>.csv".
ExperimentResult run_experiment(const ExperimentSpec& spec);

/// Process-wide default worker count used when ExperimentSpec::jobs == 0;
/// 0 restores auto ($REESE_JOBS, else hardware concurrency).
void set_default_jobs(u32 jobs);
u32 default_jobs();

/// Scan a bench binary's argv for "--jobs N" / "--jobs=N" / "-jobs N" and
/// install the value via set_default_jobs. Unrelated arguments are left
/// for the caller.
void parse_jobs_flag(int argc, char** argv);

}  // namespace reese::sim

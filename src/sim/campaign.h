// Fault-injection campaign runner: the robustness analogue of the
// experiment grid (sim/experiment.h) and the perf harness (sim/perf.h).
//
// A campaign fans (variant × workload × seed-replica) cells across the
// thread pool. Every cell is one independent simulation: it builds its own
// workload image, pipeline and Injector from a per-cell seed derived with
// SplitMix64 from (campaign seed, variant index, workload index, replica),
// and writes only its own CampaignMatrix slot — so the aggregated matrix is
// bit-identical no matter how many workers ran it (the same determinism
// contract as run_experiment).
//
// The paper's §4.2 claim is "100% detection of soft errors affecting
// instruction results". A claim at the boundary of a proportion needs a
// confidence interval that behaves there, so coverage is reported with
// Wilson-score 95% bounds (common/stats.h) over ~10⁵ injections, stratified
// per variant, per workload, per execution class and per fault side.
// Results serialize to BENCH_fault.json for tools/bench_diff.py and CI
// archiving. See DESIGN.md §10.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "core/config.h"
#include "faults/injector.h"
#include "isa/program.h"
#include "sim/checkpoint.h"
#include "sim/progress.h"

namespace reese::sim {

/// One row of the campaign: a pipeline configuration plus a fault target.
struct CampaignVariant {
  std::string label;
  core::CoreConfig config;
  faults::FaultTarget target = faults::FaultTarget::kEither;
  /// Full re-execution REESE: every resolved fault must be detected.
  bool expect_full_coverage = false;
  /// Baseline (no comparator): every resolved fault must escape.
  bool expect_zero_coverage = false;
  /// Component axis (DESIGN.md §16): kResult keeps the classic
  /// result-flipping model; any other value runs the Injector in site mode
  /// against that structure, and the cell's masked/sdc/coverage_loss
  /// columns become meaningful.
  core::FaultSite site = core::FaultSite::kResult;
};

/// The A5 bench's five standard rows: REESE with P-side, R-side and
/// either-side flips, the baseline, and REESE with 1-of-2 re-execution.
std::vector<CampaignVariant> standard_campaign_variants();

/// The two base configurations component campaigns cross with the site
/// axis: "reese" (full re-execution) and "baseline" (no checker).
std::vector<CampaignVariant> component_base_variants();

/// Parse a fault_site_name() string back to the enum. False on unknown.
bool fault_site_from_name(std::string_view name, core::FaultSite* site);

/// Resolve a variant label to a full CampaignVariant: either one of the
/// five standard labels, or a component label of the form "base@site"
/// (e.g. "reese@rqueue") with base from component_base_variants(). This is
/// how site variants travel through the service/fleet wire — labels only,
/// no new protocol field. False on unknown label.
bool campaign_variant_by_label(const std::string& label, CampaignVariant* out);

/// A fixed program image to campaign over in place of a named workload
/// (e.g. an assembled examples/srv file for srv-vuln cross-validation).
struct CampaignProgram {
  std::string name;
  isa::Program program;
};

struct CampaignSpec {
  std::vector<CampaignVariant> variants;  ///< empty = the standard five
  /// Component axis shorthand: when non-empty, the variant list is replaced
  /// by (base × site) for each site here, with labels "base@site". The
  /// bases are `variants` if set, else component_base_variants().
  std::vector<core::FaultSite> sites;
  std::vector<std::string> workloads;     ///< empty = the six spec-like names
  /// When non-empty, these images replace the workload axis entirely:
  /// cell (v, w, r) runs programs[w], spec.workloads is overwritten with
  /// their names, and cells may stop on HALT (example programs terminate)
  /// as well as on the commit target.
  std::vector<CampaignProgram> programs;
  /// Independent seed replicas per (variant, workload) cell. The default
  /// full campaign (12 × 5 × 6 cells × rate × instructions) lands at
  /// ~10⁵ total injections.
  u32 replicas = 12;
  u64 instructions = 0;   ///< per-cell budget; 0 = 60k (quick: 20k)
  double rate = 5e-3;     ///< per-instruction injection probability
  u64 seed = 0xFA17C0DE;  ///< campaign master seed
  /// Worker threads; 0 = auto (same resolution as ExperimentSpec::jobs).
  u32 jobs = 0;
  /// CI mode: one replica on a reduced budget, ≈10³ injections total.
  bool quick = false;
  /// Optional cooperative cancellation, polled once per grid cell (same
  /// contract as ExperimentSpec::cancel): when it returns true the
  /// remaining cells are skipped and the result carries `cancelled`.
  std::function<bool()> cancel;
  /// Optional per-cell progress callback (see sim/progress.h for the
  /// threading contract). Observes only.
  ProgressFn progress;
  /// Optional metrics registry: each finished cell bumps the
  /// reese_grid_* counters with kind="campaign" (and, in site mode, the
  /// reese_injector_strikes_total{site=,outcome=} breakdown). Must outlive
  /// the run.
  metrics::Registry* metrics = nullptr;
  /// Optional per-shard progress callback, honoured only by the fleet
  /// coordinator (run_fleet_campaign); single-node run_campaign never
  /// invokes it. See ShardProgressUpdate in sim/progress.h.
  ShardProgressFn shard_progress;
  /// Checkpoint policy (DESIGN.md §14). Campaign cells persist at whole-
  /// cell granularity only: each finished cell writes its CampaignCell to
  /// a ".done" record in `dir`, and with `resume` those cells are skipped
  /// on the next run (mid-cell snapshots are not taken — the injector's
  /// in-flight fault windows are not part of the snapshot surface, and
  /// cells are short relative to experiment cells). `interval` is
  /// therefore ignored here. Left default, the process-wide
  /// default_checkpoint() applies.
  CheckpointOptions checkpoint;
  /// Global index of this spec's first replica. 0 for a whole campaign; a
  /// shard produced by split_campaign_spec carries its offset here, so the
  /// cell seed (derive_cell_seed) and the checkpoint ".done" record name
  /// are computed from the *global* replica index `replica_begin + r`.
  /// That is the whole shard-identity contract: a shard runs exactly the
  /// cells the single-node run would, making sharding a pure partition of
  /// the replica axis (DESIGN.md §15).
  u32 replica_begin = 0;
};

/// Per-stratum injection counts (a stratum = exec class or fault side).
struct StratumCount {
  u64 injected = 0;
  u64 detected = 0;
  u64 undetected = 0;

  bool operator==(const StratumCount&) const = default;
};

/// Number of isa::ExecClass values (strata in CampaignCell::by_class).
inline constexpr usize kExecClassCount = 10;
const char* exec_class_label(usize class_index);

/// Per-static-instruction (program counter) injection outcomes, including
/// the injector's dynamic ACE-window measurements. This is the campaign
/// half of the srv-vuln cross-validation loop (bench/avf_validate.cpp).
struct PcStratum {
  u64 injected = 0;
  u64 detected = 0;
  u64 undetected = 0;      ///< escapes (the measured per-PC escape count)
  u64 ace = 0;             ///< faulted values read before redefinition
  u64 masked = 0;          ///< faulted values overwritten/dropped unread
  u64 window_pending = 0;  ///< windows still open at end of run
  u64 window_sum = 0;      ///< total live instructions across ACE faults

  bool operator==(const PcStratum&) const = default;
};

/// Raw outcome of one (variant, workload, replica) cell. Everything needed
/// for campaign-level aggregation is carried here in integer form so cells
/// merge exactly and compare bit-identically across worker counts.
struct CampaignCell {
  u64 injected = 0;
  u64 detected = 0;
  u64 undetected = 0;
  u64 pending = 0;            ///< injected but unresolved at budget end
  u64 duplicate_reports = 0;  ///< must stay 0; see Injector
  u64 committed = 0;
  Cycle cycles = 0;

  // Outcome lattice (DESIGN.md §16). In site mode masked + detected + sdc
  // == injected and undetected == sdc; in the legacy result-flip model the
  // pair is derived from escapes via the ACE measurement (an escape whose
  // value was never consumed is masked, a consumed one is SDC).
  u64 masked = 0;
  u64 sdc = 0;
  /// Site mode only: R-queue control-state strikes that silently disabled
  /// a pending re-execution (REESE coverage loss; the §16 headline).
  u64 coverage_loss = 0;

  // Detection-latency distribution, mergeable across cells: the Injector's
  // Histogram{4,64} finite buckets plus its clamped overflow bucket.
  u64 latency_sum = 0;
  u64 latency_count = 0;
  u64 latency_min = 0;
  u64 latency_max = 0;
  u64 latency_overflow = 0;
  std::vector<u64> latency_buckets;

  std::array<StratumCount, kExecClassCount> by_class{};
  StratumCount p_side;  ///< flips that landed in the stored P result
  StratumCount r_side;  ///< flips that landed in the R recomputation
  /// Outcomes keyed by static instruction address. An ordered map so that
  /// merge order, equality and serialization are deterministic — the
  /// --jobs bit-identity contract covers this stratum too.
  std::map<Addr, PcStratum> by_pc;

  u64 resolved() const { return detected + undetected; }
  double coverage() const { return safe_ratio(detected, resolved()); }
  /// Accumulate another cell (aggregation helper).
  void merge(const CampaignCell& other);

  bool operator==(const CampaignCell&) const = default;
};

/// The aggregation target: cells[variant][workload][replica]. Compared
/// directly by the --jobs bit-identity test.
struct CampaignMatrix {
  std::vector<std::vector<std::vector<CampaignCell>>> cells;

  bool operator==(const CampaignMatrix&) const = default;
};

struct CampaignResult {
  CampaignSpec spec;  ///< with defaults resolved (budget, lists, replicas)
  CampaignMatrix matrix;
  /// True when CampaignSpec::cancel fired before every cell ran; the
  /// matrix is then incomplete and must not be reported as a result.
  bool cancelled = false;

  /// Merged counts for one variant across workloads and replicas.
  CampaignCell variant_total(usize variant_index) const;
  /// Merged counts for one (variant, workload) across replicas.
  CampaignCell workload_total(usize variant_index, usize workload_index) const;
  u64 total_injections() const;

  /// Approximate percentile from a merged latency distribution.
  static u64 latency_percentile(const CampaignCell& cell, double fraction);

  /// Human-readable per-variant coverage table with Wilson 95% bounds.
  std::string table() const;
  /// Machine-readable report (BENCH_fault.json schema v1).
  std::string json() const;
  /// Machine-readable CSV, one row per variant:
  /// variant,injected,detected,undetected,pending,coverage,wilson_lower,
  /// wilson_upper,mean_latency,p95_latency. The service's text/csv view.
  std::string csv() const;
};

/// Derive one cell's injector seed. Exposed for tests: the derivation must
/// give distinct streams per cell and stay stable across PRs (BENCH_fault
/// comparability).
u64 derive_cell_seed(u64 campaign_seed, usize variant_index,
                     usize workload_index, usize replica);

/// Run the campaign across the thread pool (spec.jobs; same worker
/// resolution and sequential jobs==1 reference path as run_experiment).
CampaignResult run_campaign(const CampaignSpec& spec);

// --- Sharding (fleet mode, DESIGN.md §15) -----------------------------------
//
// A campaign shards along the replica axis only: because every cell seeds
// from derive_cell_seed(seed, v, w, global_replica) and writes only its own
// matrix slot, a shard covering replicas [begin, begin + n) computes
// exactly the cells a single-node run would — merging shards back is pure
// placement, and the merged matrix (hence json()/csv()) is byte-identical
// to the single-node run. place_shard() enforces that contract instead of
// assuming it.

/// Resolve every defaulted CampaignSpec field (variants, workloads,
/// quick-mode replica clamp, instruction budget, checkpoint policy) exactly
/// as run_campaign does, without running anything. Sharding must split a
/// *resolved* spec — otherwise each worker would re-resolve defaults that
/// depend on fields the shard narrows.
CampaignSpec resolve_campaign_defaults(const CampaignSpec& spec);

/// Split a resolved spec into up to `shards` sub-specs covering contiguous
/// replica ranges (sizes differ by at most one; fewer shards come back when
/// replicas < shards). Each shard carries replica_begin, has quick cleared
/// (defaults are already resolved) and drops the parent's cancel/progress/
/// metrics hooks — dispatchers attach their own.
std::vector<CampaignSpec> split_campaign_spec(const CampaignSpec& resolved,
                                              usize shards);

/// An empty matrix shaped [variants][workloads][replicas] for `resolved`,
/// the merge target for place_shard.
CampaignMatrix make_campaign_matrix(const CampaignSpec& resolved);

/// A shard result as it travels over the wire: the identity fields that
/// bind it to its parent campaign plus the per-cell matrix (lossless,
/// unlike the aggregated json() report).
struct CampaignWire {
  u64 seed = 0;
  u64 instructions = 0;
  double rate = 0.0;
  u32 replica_begin = 0;
  std::vector<std::string> variant_labels;
  std::vector<std::string> workload_names;
  CampaignMatrix matrix;
};

/// Serialize a (shard) result's full per-cell matrix plus identity fields
/// into the snapshot container wire form (served as ?format=cells).
std::string serialize_campaign_matrix(const CampaignResult& result);

/// Parse and validate a serialize_campaign_matrix buffer (magic, version,
/// checksum, shape). False with a diagnostic in `*error` on any mismatch.
bool deserialize_campaign_matrix(std::string_view data, CampaignWire* wire,
                                 std::string* error);

/// Place a shard's cells into `merged` (shaped by make_campaign_matrix for
/// `resolved`). Verifies the shard identity contract first — seed, budget,
/// rate, variant labels and workload names must match, the replica range
/// must fit, and no target slot may already be filled — and returns false
/// with a diagnostic instead of merging a shard from a different campaign.
bool place_shard(const CampaignSpec& resolved, const CampaignWire& shard,
                 CampaignMatrix* merged, std::string* error);

/// Write `result.json()` to `path`; returns false (with a message on
/// stderr) if the file cannot be written.
bool write_campaign_report(const CampaignResult& result,
                           const std::string& path);

}  // namespace reese::sim

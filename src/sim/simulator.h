// Simulator: owns a workload + pipeline pair and runs an instruction
// budget. This is the top-level object example programs and benches use.
#pragma once

#include <memory>
#include <string>

#include "core/pipeline.h"
#include "workloads/workload.h"

namespace reese::sim {

struct SimResult {
  std::string workload;
  core::StopReason stop = core::StopReason::kCommitTarget;
  double ipc = 0.0;
  Cycle cycles = 0;
  u64 committed = 0;
};

class Simulator {
 public:
  /// Takes ownership of the workload so the program outlives the pipeline.
  Simulator(workloads::Workload workload, const core::CoreConfig& config);

  /// Simulate until `instructions` have committed (cumulative across
  /// calls). A cycle limit (default_cycle_limit) guards against modelling
  /// deadlocks; when hit, the result carries StopReason::kCycleLimit and
  /// `cycles` holds the offending cycle count.
  SimResult run(u64 instructions);

  core::Pipeline& pipeline() { return *pipeline_; }
  const workloads::Workload& workload() const { return workload_; }

 private:
  workloads::Workload workload_;
  std::unique_ptr<core::Pipeline> pipeline_;
};

/// Instruction budget for figure reproduction: $REESE_SIM_INSTR if set,
/// otherwise 1M — the smallest budget at which the figures' per-model
/// overhead is converged (within 0.3pp of a 10M reference; see
/// EXPERIMENTS.md). The paper ran 100M on real SPEC binaries; the
/// `overnight` target reproduces that scale.
u64 default_instruction_budget();

/// Deadlock guard for Simulator::run: $REESE_SIM_CYCLE_LIMIT if set and
/// positive (an absolute cycle count), otherwise 64x the instruction
/// budget — generous slack over the worst credible CPI.
Cycle default_cycle_limit(u64 instructions);

}  // namespace reese::sim

#include "sim/campaign.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/diag.h"
#include "common/snapshot.h"
#include "common/strutil.h"
#include "common/thread_pool.h"
#include "sim/experiment.h"
#include "sim/simulator.h"

namespace reese::sim {

namespace {

// Latency histogram shape shared with faults::Injector (Histogram{4, 64}).
constexpr u64 kLatencyBucketWidth = 4;
constexpr usize kLatencyBucketCount = 64;

void accumulate_stratum(StratumCount* stratum, const faults::FaultRecord& r) {
  ++stratum->injected;
  if (!r.resolved) return;
  if (r.detected) {
    ++stratum->detected;
  } else {
    ++stratum->undetected;
  }
}

// Campaign cells checkpoint at whole-cell granularity: a ".done" record
// holds the finished CampaignCell, bound to the budget/rate/cell-seed so a
// record from a differently-shaped campaign is ignored and the cell
// re-runs (see CampaignSpec::checkpoint).
constexpr u32 kCampaignCellTag = 0x43414D50;    // "CAMP"
// Wire form of a whole (shard) matrix: identity fields + every cell.
constexpr u32 kCampaignMatrixTag = 0x4D545258;  // "MTRX"

void put_stratum(SnapshotWriter* writer, const StratumCount& stratum) {
  writer->put_u64(stratum.injected);
  writer->put_u64(stratum.detected);
  writer->put_u64(stratum.undetected);
}

void get_stratum(SnapshotReader* reader, StratumCount* stratum) {
  stratum->injected = reader->get_u64();
  stratum->detected = reader->get_u64();
  stratum->undetected = reader->get_u64();
}

void put_campaign_cell(SnapshotWriter* writer, const CampaignCell& cell) {
  writer->put_u64(cell.injected);
  writer->put_u64(cell.detected);
  writer->put_u64(cell.undetected);
  writer->put_u64(cell.pending);
  writer->put_u64(cell.duplicate_reports);
  writer->put_u64(cell.committed);
  writer->put_u64(cell.cycles);
  writer->put_u64(cell.masked);
  writer->put_u64(cell.sdc);
  writer->put_u64(cell.coverage_loss);
  writer->put_u64(cell.latency_sum);
  writer->put_u64(cell.latency_count);
  writer->put_u64(cell.latency_min);
  writer->put_u64(cell.latency_max);
  writer->put_u64(cell.latency_overflow);
  writer->put_u64(cell.latency_buckets.size());
  for (u64 bucket : cell.latency_buckets) writer->put_u64(bucket);
  for (const StratumCount& stratum : cell.by_class) {
    put_stratum(writer, stratum);
  }
  put_stratum(writer, cell.p_side);
  put_stratum(writer, cell.r_side);
  writer->put_u64(cell.by_pc.size());
  for (const auto& [pc, stratum] : cell.by_pc) {
    writer->put_u64(pc);
    writer->put_u64(stratum.injected);
    writer->put_u64(stratum.detected);
    writer->put_u64(stratum.undetected);
    writer->put_u64(stratum.ace);
    writer->put_u64(stratum.masked);
    writer->put_u64(stratum.window_pending);
    writer->put_u64(stratum.window_sum);
  }
}

bool get_campaign_cell(SnapshotReader* reader, CampaignCell* cell) {
  CampaignCell loaded;
  loaded.injected = reader->get_u64();
  loaded.detected = reader->get_u64();
  loaded.undetected = reader->get_u64();
  loaded.pending = reader->get_u64();
  loaded.duplicate_reports = reader->get_u64();
  loaded.committed = reader->get_u64();
  loaded.cycles = reader->get_u64();
  loaded.masked = reader->get_u64();
  loaded.sdc = reader->get_u64();
  loaded.coverage_loss = reader->get_u64();
  loaded.latency_sum = reader->get_u64();
  loaded.latency_count = reader->get_u64();
  loaded.latency_min = reader->get_u64();
  loaded.latency_max = reader->get_u64();
  loaded.latency_overflow = reader->get_u64();
  const u64 bucket_count = reader->get_u64();
  if (!reader->ok() || bucket_count > kLatencyBucketCount) return false;
  loaded.latency_buckets.resize(bucket_count);
  for (u64& bucket : loaded.latency_buckets) bucket = reader->get_u64();
  for (StratumCount& stratum : loaded.by_class) {
    get_stratum(reader, &stratum);
  }
  get_stratum(reader, &loaded.p_side);
  get_stratum(reader, &loaded.r_side);
  const u64 pc_count = reader->get_u64();
  for (u64 i = 0; reader->ok() && i < pc_count; ++i) {
    const Addr pc = reader->get_u64();
    PcStratum& stratum = loaded.by_pc[pc];
    stratum.injected = reader->get_u64();
    stratum.detected = reader->get_u64();
    stratum.undetected = reader->get_u64();
    stratum.ace = reader->get_u64();
    stratum.masked = reader->get_u64();
    stratum.window_pending = reader->get_u64();
    stratum.window_sum = reader->get_u64();
  }
  if (!reader->ok()) return false;
  *cell = std::move(loaded);
  return true;
}

void save_campaign_cell(const std::string& path, u64 instructions,
                        double rate, u64 cell_seed, const CampaignCell& cell) {
  SnapshotWriter writer;
  writer.put_section(kCampaignCellTag);
  writer.put_u64(instructions);
  writer.put_f64(rate);
  writer.put_u64(cell_seed);
  put_campaign_cell(&writer, cell);
  std::string error;
  if (!writer.write_file(path, kSnapshotFormatVersion, &error)) {
    std::fprintf(stderr, "campaign: %s\n", error.c_str());
  }
}

bool load_campaign_cell(const std::string& path, u64 instructions,
                        double rate, u64 cell_seed, CampaignCell* cell) {
  SnapshotReader reader;
  if (!reader.open_file(path, kSnapshotFormatVersion)) return false;
  if (!reader.expect_section(kCampaignCellTag)) return false;
  if (reader.get_u64() != instructions) return false;
  if (reader.get_f64() != rate) return false;
  if (reader.get_u64() != cell_seed) return false;
  CampaignCell loaded;
  if (!get_campaign_cell(&reader, &loaded)) return false;
  if (!reader.ok() || !reader.at_end()) return false;
  *cell = std::move(loaded);
  return true;
}

}  // namespace

const char* exec_class_label(usize class_index) {
  static const char* kLabels[kExecClassCount] = {
      "int_alu", "int_mul", "int_div", "fp_add",  "fp_mul",
      "fp_div",  "fp_sqrt", "load",    "store",   "none"};
  static_assert(static_cast<usize>(isa::ExecClass::kNone) ==
                kExecClassCount - 1);
  return class_index < kExecClassCount ? kLabels[class_index] : "?";
}

std::vector<CampaignVariant> standard_campaign_variants() {
  std::vector<CampaignVariant> variants;
  const core::CoreConfig reese = core::with_reese(core::starting_config());

  CampaignVariant p{"reese_p_flips", reese, faults::FaultTarget::kPResult};
  p.expect_full_coverage = true;
  variants.push_back(p);

  CampaignVariant r{"reese_r_flips", reese, faults::FaultTarget::kRResult};
  r.expect_full_coverage = true;
  variants.push_back(r);

  CampaignVariant either{"reese_either", reese, faults::FaultTarget::kEither};
  either.expect_full_coverage = true;
  variants.push_back(either);

  CampaignVariant baseline{"baseline", core::starting_config(),
                           faults::FaultTarget::kEither};
  baseline.expect_zero_coverage = true;
  variants.push_back(baseline);

  core::CoreConfig partial_config = reese;
  partial_config.reese.reexec_interval = 2;
  CampaignVariant partial{"reese_1of2", partial_config,
                          faults::FaultTarget::kEither};
  variants.push_back(partial);

  return variants;
}

std::vector<CampaignVariant> component_base_variants() {
  std::vector<CampaignVariant> bases;
  bases.push_back({"reese", core::with_reese(core::starting_config()),
                   faults::FaultTarget::kEither});
  bases.push_back(
      {"baseline", core::starting_config(), faults::FaultTarget::kEither});
  return bases;
}

bool fault_site_from_name(std::string_view name, core::FaultSite* site) {
  for (usize i = 0; i < core::kFaultSiteCount; ++i) {
    const core::FaultSite candidate = static_cast<core::FaultSite>(i);
    if (name == core::fault_site_name(candidate)) {
      *site = candidate;
      return true;
    }
  }
  return false;
}

bool campaign_variant_by_label(const std::string& label,
                               CampaignVariant* out) {
  for (const CampaignVariant& variant : standard_campaign_variants()) {
    if (variant.label == label) {
      *out = variant;
      return true;
    }
  }
  // Component form "base@site", e.g. "reese@rqueue". The '@' never appears
  // in a standard label, so the two namespaces cannot collide.
  const usize at = label.find('@');
  if (at == std::string::npos) return false;
  const std::string base_name = label.substr(0, at);
  core::FaultSite site;
  if (!fault_site_from_name(label.substr(at + 1), &site)) return false;
  for (const CampaignVariant& base : component_base_variants()) {
    if (base.label != base_name) continue;
    *out = base;
    out->label = label;
    out->site = site;
    return true;
  }
  return false;
}

u64 derive_cell_seed(u64 campaign_seed, usize variant_index,
                     usize workload_index, usize replica) {
  // Chain one SplitMix64 step per component: each index perturbs the state
  // through the full avalanche, so neighbouring cells get unrelated
  // streams. The +1 offsets keep index 0 from degenerating into a no-op.
  u64 state = campaign_seed;
  for (u64 component :
       {static_cast<u64>(variant_index) + 1,
        static_cast<u64>(workload_index) + 1, static_cast<u64>(replica) + 1}) {
    SplitMix64 rng(state ^ component * 0x9E3779B97F4A7C15ULL);
    state = rng.next();
  }
  return state;
}

void CampaignCell::merge(const CampaignCell& other) {
  injected += other.injected;
  detected += other.detected;
  undetected += other.undetected;
  pending += other.pending;
  duplicate_reports += other.duplicate_reports;
  committed += other.committed;
  cycles += other.cycles;
  masked += other.masked;
  sdc += other.sdc;
  coverage_loss += other.coverage_loss;

  latency_sum += other.latency_sum;
  if (other.latency_count > 0) {
    latency_min = latency_count == 0 ? other.latency_min
                                     : std::min(latency_min, other.latency_min);
    latency_max = std::max(latency_max, other.latency_max);
  }
  latency_count += other.latency_count;
  latency_overflow += other.latency_overflow;
  if (latency_buckets.empty()) {
    latency_buckets = other.latency_buckets;
  } else if (!other.latency_buckets.empty()) {
    assert(latency_buckets.size() == other.latency_buckets.size());
    for (usize i = 0; i < latency_buckets.size(); ++i) {
      latency_buckets[i] += other.latency_buckets[i];
    }
  }

  for (usize c = 0; c < kExecClassCount; ++c) {
    by_class[c].injected += other.by_class[c].injected;
    by_class[c].detected += other.by_class[c].detected;
    by_class[c].undetected += other.by_class[c].undetected;
  }
  for (auto [mine, theirs] :
       {std::pair{&p_side, &other.p_side}, std::pair{&r_side, &other.r_side}}) {
    mine->injected += theirs->injected;
    mine->detected += theirs->detected;
    mine->undetected += theirs->undetected;
  }
  for (const auto& [pc, theirs] : other.by_pc) {
    PcStratum& mine = by_pc[pc];
    mine.injected += theirs.injected;
    mine.detected += theirs.detected;
    mine.undetected += theirs.undetected;
    mine.ace += theirs.ace;
    mine.masked += theirs.masked;
    mine.window_pending += theirs.window_pending;
    mine.window_sum += theirs.window_sum;
  }
}

CampaignCell CampaignResult::variant_total(usize variant_index) const {
  CampaignCell total;
  for (const auto& replicas : matrix.cells[variant_index]) {
    for (const CampaignCell& cell : replicas) total.merge(cell);
  }
  return total;
}

CampaignCell CampaignResult::workload_total(usize variant_index,
                                            usize workload_index) const {
  CampaignCell total;
  for (const CampaignCell& cell : matrix.cells[variant_index][workload_index]) {
    total.merge(cell);
  }
  return total;
}

u64 CampaignResult::total_injections() const {
  u64 total = 0;
  for (usize v = 0; v < matrix.cells.size(); ++v) {
    total += variant_total(v).injected;
  }
  return total;
}

u64 CampaignResult::latency_percentile(const CampaignCell& cell,
                                       double fraction) {
  if (cell.latency_count == 0) return 0;
  // Nearest-rank, matching Histogram::percentile: samples in the overflow
  // bucket clamp the percentile to latency_max instead of vanishing.
  const u64 target = std::max<u64>(
      1, static_cast<u64>(std::ceil(
             fraction * static_cast<double>(cell.latency_count))));
  u64 seen = 0;
  for (usize i = 0; i < cell.latency_buckets.size(); ++i) {
    seen += cell.latency_buckets[i];
    if (seen >= target) return (i + 1) * kLatencyBucketWidth - 1;
  }
  return cell.latency_max;
}

std::string CampaignResult::table() const {
  std::string out =
      format("Fault campaign: %llu injections over %zu variants x %zu "
             "workloads x %u replicas (%llu instr/cell, rate %.0e, seed "
             "0x%llx)\n",
             static_cast<unsigned long long>(total_injections()),
             spec.variants.size(), spec.workloads.size(), spec.replicas,
             static_cast<unsigned long long>(spec.instructions), spec.rate,
             static_cast<unsigned long long>(spec.seed));
  out += format("  %-16s %9s %9s %8s %8s  %8s  %-17s %8s %6s\n", "variant",
                "injected", "detected", "escaped", "pending", "coverage",
                "wilson95", "mean lat", "p95");
  for (usize v = 0; v < spec.variants.size(); ++v) {
    const CampaignCell total = variant_total(v);
    const WilsonInterval ci = wilson_interval(total.detected, total.resolved());
    out += format(
        "  %-16s %9llu %9llu %8llu %8llu  %7.3f%%  [%6.3f%%,%7.3f%%] "
        "%7.1fcy %5llu\n",
        spec.variants[v].label.c_str(),
        static_cast<unsigned long long>(total.injected),
        static_cast<unsigned long long>(total.detected),
        static_cast<unsigned long long>(total.undetected),
        static_cast<unsigned long long>(total.pending),
        100.0 * total.coverage(), 100.0 * ci.lower, 100.0 * ci.upper,
        safe_ratio(total.latency_sum, total.latency_count),
        static_cast<unsigned long long>(latency_percentile(total, 0.95)));
  }
  return out;
}

std::string CampaignResult::json() const {
  std::string out = "{\n";
  out += "  \"schema\": \"reese-fault-campaign-v1\",\n";
  out += format("  \"seed\": %llu,\n",
                static_cast<unsigned long long>(spec.seed));
  out += format("  \"instructions\": %llu,\n",
                static_cast<unsigned long long>(spec.instructions));
  out += format("  \"replicas\": %u,\n", spec.replicas);
  out += format("  \"rate\": %g,\n", spec.rate);
  out += format("  \"quick\": %s,\n", spec.quick ? "true" : "false");
  out += format("  \"total_injections\": %llu,\n",
                static_cast<unsigned long long>(total_injections()));
  out += "  \"variants\": [\n";
  for (usize v = 0; v < spec.variants.size(); ++v) {
    const CampaignVariant& variant = spec.variants[v];
    const CampaignCell total = variant_total(v);
    const WilsonInterval ci = wilson_interval(total.detected, total.resolved());
    out += "    {\n";
    out += format("      \"label\": \"%s\",\n",
                  json_escape(variant.label).c_str());
    out += format("      \"target\": \"%s\",\n",
                  faults::fault_target_name(variant.target));
    out += format("      \"site\": \"%s\",\n",
                  core::fault_site_name(variant.site));
    out += format("      \"expect_full_coverage\": %s,\n",
                  variant.expect_full_coverage ? "true" : "false");
    out += format("      \"expect_zero_coverage\": %s,\n",
                  variant.expect_zero_coverage ? "true" : "false");
    out += format("      \"injected\": %llu,\n",
                  static_cast<unsigned long long>(total.injected));
    out += format("      \"detected\": %llu,\n",
                  static_cast<unsigned long long>(total.detected));
    out += format("      \"undetected\": %llu,\n",
                  static_cast<unsigned long long>(total.undetected));
    out += format("      \"pending\": %llu,\n",
                  static_cast<unsigned long long>(total.pending));
    out += format("      \"masked\": %llu,\n",
                  static_cast<unsigned long long>(total.masked));
    out += format("      \"sdc\": %llu,\n",
                  static_cast<unsigned long long>(total.sdc));
    out += format("      \"coverage_loss\": %llu,\n",
                  static_cast<unsigned long long>(total.coverage_loss));
    out += format("      \"coverage\": %.6f,\n", total.coverage());
    out += format("      \"wilson_lower\": %.6f,\n", ci.lower);
    out += format("      \"wilson_upper\": %.6f,\n", ci.upper);
    out += format("      \"mean_latency\": %.3f,\n",
                  safe_ratio(total.latency_sum, total.latency_count));
    out += format("      \"p95_latency\": %llu,\n",
                  static_cast<unsigned long long>(
                      latency_percentile(total, 0.95)));
    out += format("      \"max_latency\": %llu,\n",
                  static_cast<unsigned long long>(total.latency_max));
    out += "      \"by_class\": [\n";
    bool first = true;
    for (usize c = 0; c < kExecClassCount; ++c) {
      const StratumCount& stratum = total.by_class[c];
      if (stratum.injected == 0) continue;
      out += format("        %s{\"class\": \"%s\", \"injected\": %llu, "
                    "\"detected\": %llu, \"undetected\": %llu}",
                    first ? "" : ",", exec_class_label(c),
                    static_cast<unsigned long long>(stratum.injected),
                    static_cast<unsigned long long>(stratum.detected),
                    static_cast<unsigned long long>(stratum.undetected));
      out += "\n";
      first = false;
    }
    out += "      ],\n";
    out += "      \"by_side\": {\n";
    out += format("        \"p\": {\"injected\": %llu, \"detected\": %llu, "
                  "\"undetected\": %llu},\n",
                  static_cast<unsigned long long>(total.p_side.injected),
                  static_cast<unsigned long long>(total.p_side.detected),
                  static_cast<unsigned long long>(total.p_side.undetected));
    out += format("        \"r\": {\"injected\": %llu, \"detected\": %llu, "
                  "\"undetected\": %llu}\n",
                  static_cast<unsigned long long>(total.r_side.injected),
                  static_cast<unsigned long long>(total.r_side.detected),
                  static_cast<unsigned long long>(total.r_side.undetected));
    out += "      },\n";
    out += "      \"workloads\": [\n";
    for (usize w = 0; w < spec.workloads.size(); ++w) {
      const CampaignCell wl = workload_total(v, w);
      out += format("        {\"workload\": \"%s\", \"injected\": %llu, "
                    "\"detected\": %llu, \"undetected\": %llu, "
                    "\"coverage\": %.6f}%s\n",
                    json_escape(spec.workloads[w]).c_str(),
                    static_cast<unsigned long long>(wl.injected),
                    static_cast<unsigned long long>(wl.detected),
                    static_cast<unsigned long long>(wl.undetected),
                    wl.coverage(), w + 1 < spec.workloads.size() ? "," : "");
    }
    out += "      ]\n";
    out += format("    }%s\n", v + 1 < spec.variants.size() ? "," : "");
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

std::string CampaignResult::csv() const {
  std::string out =
      "variant,injected,detected,undetected,pending,masked,sdc,"
      "coverage_loss,coverage,wilson_lower,wilson_upper,mean_latency,"
      "p95_latency\n";
  for (usize v = 0; v < spec.variants.size(); ++v) {
    const CampaignCell total = variant_total(v);
    const WilsonInterval ci = wilson_interval(total.detected, total.resolved());
    out += format("%s,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.6f,%.6f,%.6f,"
                  "%.3f,%llu\n",
                  spec.variants[v].label.c_str(),
                  static_cast<unsigned long long>(total.injected),
                  static_cast<unsigned long long>(total.detected),
                  static_cast<unsigned long long>(total.undetected),
                  static_cast<unsigned long long>(total.pending),
                  static_cast<unsigned long long>(total.masked),
                  static_cast<unsigned long long>(total.sdc),
                  static_cast<unsigned long long>(total.coverage_loss),
                  total.coverage(), ci.lower, ci.upper,
                  safe_ratio(total.latency_sum, total.latency_count),
                  static_cast<unsigned long long>(
                      latency_percentile(total, 0.95)));
  }
  return out;
}

CampaignSpec resolve_campaign_defaults(const CampaignSpec& spec_in) {
  CampaignSpec spec = spec_in;
  if (!spec.sites.empty()) {
    // Component axis: cross (base × site). Labels become "base@site" —
    // the form campaign_variant_by_label resolves, which is how these
    // variants travel through the service/fleet wire.
    const std::vector<CampaignVariant> bases =
        spec.variants.empty() ? component_base_variants() : spec.variants;
    spec.variants.clear();
    for (const CampaignVariant& base : bases) {
      for (core::FaultSite site : spec.sites) {
        CampaignVariant variant = base;
        variant.label =
            base.label + "@" + core::fault_site_name(site);
        variant.site = site;
        // Coverage expectations are statements about the result-flip
        // model; site outcomes are judged by the masked/detected/SDC
        // lattice instead.
        variant.expect_full_coverage = false;
        variant.expect_zero_coverage = false;
        spec.variants.push_back(std::move(variant));
      }
    }
    spec.sites.clear();
  }
  if (spec.variants.empty()) spec.variants = standard_campaign_variants();
  if (!spec.programs.empty()) {
    // Fixed program images replace the workload axis; their names label
    // the workload dimension everywhere downstream.
    spec.workloads.clear();
    for (const CampaignProgram& program : spec.programs) {
      spec.workloads.push_back(program.name);
    }
  } else if (spec.workloads.empty()) {
    spec.workloads = workloads::spec_like_names();
  }
  if (spec.quick) spec.replicas = 1;
  if (spec.replicas == 0) spec.replicas = 1;
  if (spec.instructions == 0) spec.instructions = spec.quick ? 20'000 : 60'000;
  if (spec.checkpoint.dir.empty() && spec.checkpoint.interval == 0 &&
      !spec.checkpoint.resume) {
    spec.checkpoint = default_checkpoint();
  }
  return spec;
}

CampaignResult run_campaign(const CampaignSpec& spec_in) {
  CampaignSpec spec = resolve_campaign_defaults(spec_in);
  if (!spec.checkpoint.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(spec.checkpoint.dir, ec);
    if (ec) {
      std::fprintf(stderr, "campaign: cannot create checkpoint dir %s: %s\n",
                   spec.checkpoint.dir.c_str(), ec.message().c_str());
      std::exit(1);
    }
  }
  const CheckpointOptions& ckpt = spec.checkpoint;

  CampaignResult result;
  result.spec = spec;
  result.matrix.cells.assign(
      spec.variants.size(),
      std::vector<std::vector<CampaignCell>>(
          spec.workloads.size(), std::vector<CampaignCell>(spec.replicas)));

  struct Job {
    usize variant_index;
    usize workload_index;
    usize replica;
  };
  std::vector<Job> jobs;
  for (usize v = 0; v < spec.variants.size(); ++v) {
    for (usize w = 0; w < spec.workloads.size(); ++w) {
      for (usize r = 0; r < spec.replicas; ++r) jobs.push_back({v, w, r});
    }
  }

  // Progress accounting observes the grid without perturbing it (same
  // scheme as run_experiment).
  std::atomic<u64> cells_done{0};
  std::atomic<u64> committed_total{0};
  metrics::Counter* cells_counter =
      spec.metrics == nullptr
          ? nullptr
          : spec.metrics->counter("reese_grid_cells_completed_total",
                                  {{"kind", "campaign"}},
                                  "Grid cells finished");
  metrics::Counter* committed_counter =
      spec.metrics == nullptr
          ? nullptr
          : spec.metrics->counter(
                "reese_grid_committed_instructions_total",
                {{"kind", "campaign"}},
                "Instructions committed across grid cells");

  // Each cell is one independent simulation with its own workload image,
  // pipeline and injector, all seeded from derive_cell_seed alone; it
  // writes only its own matrix slot, so the matrix is bit-identical no
  // matter how many workers ran it.
  std::atomic<bool> cancelled{false};
  auto run_cell = [&](usize job_index) {
    if (spec.cancel &&
        (cancelled.load(std::memory_order_relaxed) || spec.cancel())) {
      cancelled.store(true, std::memory_order_relaxed);
      return;
    }
    const Job job = jobs[job_index];
    const CampaignVariant& variant = spec.variants[job.variant_index];
    // Seed and checkpoint identity use the *global* replica index, so a
    // shard covering replicas [replica_begin, replica_begin + n) runs
    // exactly the cells the single-node run would (DESIGN.md §15).
    const usize global_replica = spec.replica_begin + job.replica;
    const u64 cell_seed = derive_cell_seed(spec.seed, job.variant_index,
                                           job.workload_index, global_replica);

    CampaignCell& cell = result.matrix.cells[job.variant_index]
                             [job.workload_index][job.replica];
    const auto account_cell = [&](u64 committed) {
      const u64 done = cells_done.fetch_add(1, std::memory_order_relaxed) + 1;
      const u64 committed_now =
          committed_total.fetch_add(committed, std::memory_order_relaxed) +
          committed;
      if (cells_counter != nullptr) cells_counter->inc();
      if (committed_counter != nullptr) committed_counter->inc(committed);
      if (spec.progress) {
        spec.progress({done, static_cast<u64>(jobs.size()), committed_now});
      }
    };

    std::string done_path;
    if (!ckpt.dir.empty()) {
      done_path =
          ckpt.dir + "/" +
          format("campaign-v%zu-w%zu-r%zu.done", job.variant_index,
                 job.workload_index, global_replica);
    }
    if (ckpt.resume && !done_path.empty() &&
        load_campaign_cell(done_path, spec.instructions, spec.rate, cell_seed,
                           &cell)) {
      account_cell(cell.committed);
      return;
    }

    workloads::Workload workload_image;
    if (!spec.programs.empty()) {
      // Fixed image: the replica axis still varies the injector seed, so
      // the fault stream samples different instructions per replica.
      const CampaignProgram& program = spec.programs[job.workload_index];
      workload_image =
          workloads::Workload{program.name, "", "fixed image", program.program};
    } else {
      workloads::WorkloadOptions options;
      // Distinct data per replica: the fault stream should sample results
      // across data-dependent paths, not replay one execution twelve times.
      options.seed = SplitMix64(cell_seed).next();
      options.iterations = 0;
      auto workload =
          workloads::make_workload(spec.workloads[job.workload_index], options);
      if (!workload.ok()) {
        std::fprintf(stderr, "campaign: %s\n",
                     workload.error().to_string().c_str());
        std::exit(1);
      }
      workload_image = std::move(workload).value();
    }

    faults::InjectorConfig fault_config;
    fault_config.rate = spec.rate;
    fault_config.target = variant.target;
    fault_config.seed = cell_seed;
    fault_config.site = variant.site;
    faults::Injector injector(fault_config);

    Simulator simulator(std::move(workload_image), variant.config);
    simulator.pipeline().set_fault_hook(&injector);
    const SimResult sim_result = simulator.run(spec.instructions);
    const bool halt_ok =
        !spec.programs.empty() && sim_result.stop == core::StopReason::kHalted;
    if (sim_result.stop != core::StopReason::kCommitTarget && !halt_ok) {
      std::fprintf(stderr,
                   "campaign: %s/%s stopped early (%s) after %llu insts\n",
                   spec.workloads[job.workload_index].c_str(),
                   variant.label.c_str(),
                   core::stop_reason_name(sim_result.stop),
                   static_cast<unsigned long long>(sim_result.committed));
      std::exit(1);
    }
    // Close still-open ACE windows: for HALTing programs the stream is
    // complete, so an unread value is truly masked; commit-target stops
    // can over-count masking for at most the last few in-flight values.
    injector.finalize_windows();

    if (injector.site_mode()) {
      // Site mode: the strike/outcome counters are the whole story —
      // no FaultRecords exist. undetected mirrors sdc so resolved()/
      // coverage() keep their meaning (detected / all architecturally
      // consequential outcomes would be a different metric; reports
      // compute site-specific rates from masked/sdc directly).
      cell.injected = injector.site_fired();
      cell.detected = injector.site_detected();
      cell.undetected = injector.site_sdc();
      cell.masked = injector.site_masked();
      cell.sdc = injector.site_sdc();
      cell.coverage_loss = injector.checker_loss();
      cell.pending = 0;
      if (spec.metrics != nullptr) {
        // Per-site strike/outcome breakdown on /v1/metrics (DESIGN.md §17):
        // the same counts srv-vuln cross-validates, scrapeable live.
        const std::string site = core::fault_site_name(variant.site);
        const auto strikes = [&](const char* outcome, u64 count) {
          if (count == 0) return;
          if (metrics::Counter* counter = spec.metrics->counter(
                  "reese_injector_strikes_total",
                  {{"site", site}, {"outcome", outcome}},
                  "Site-mode fault strikes by injection site and outcome")) {
            counter->inc(count);
          }
        };
        strikes("detected", cell.detected);
        strikes("masked", cell.masked);
        strikes("sdc", cell.sdc);
        if (cell.coverage_loss != 0) {
          if (metrics::Counter* counter = spec.metrics->counter(
                  "reese_injector_coverage_loss_total", {{"site", site}},
                  "Strikes landing while the REESE checker was disabled")) {
            counter->inc(cell.coverage_loss);
          }
        }
      }
    } else {
      cell.injected = injector.injected();
      cell.detected = injector.detected();
      cell.undetected = injector.undetected();
      cell.pending = injector.pending();
    }
    cell.duplicate_reports = injector.duplicate_reports();
    cell.committed = sim_result.committed;
    cell.cycles = sim_result.cycles;

    const Histogram& latency = injector.latency();
    cell.latency_sum = latency.sum();
    cell.latency_count = latency.count();
    cell.latency_min = latency.min();
    cell.latency_max = latency.max();
    cell.latency_overflow = latency.overflow();
    cell.latency_buckets = latency.buckets();
    assert(cell.latency_buckets.size() == kLatencyBucketCount);
    assert(latency.bucket_width() == kLatencyBucketWidth);

    for (const faults::FaultRecord& record : injector.records()) {
      const usize class_index = static_cast<usize>(record.exec_class);
      assert(class_index < kExecClassCount);
      accumulate_stratum(&cell.by_class[class_index], record);
      accumulate_stratum(record.hit_p ? &cell.p_side : &cell.r_side, record);

      // Legacy-model outcome lattice: an escape whose value was consumed
      // (ACE) is an SDC; an unconsumed escape is masked.
      if (record.resolved && !record.detected) {
        if (record.window_closed && !record.ace) {
          ++cell.masked;
        } else {
          ++cell.sdc;
        }
      }

      PcStratum& pc_stratum = cell.by_pc[record.pc];
      ++pc_stratum.injected;
      if (record.resolved) {
        if (record.detected) {
          ++pc_stratum.detected;
        } else {
          ++pc_stratum.undetected;
        }
      }
      if (!record.window_closed) {
        ++pc_stratum.window_pending;
      } else if (record.ace) {
        ++pc_stratum.ace;
        pc_stratum.window_sum += record.live_window;
      } else {
        ++pc_stratum.masked;
      }
    }

    // Site mode root-cause attribution: fold the injector's per-PC outcome
    // tallies into the same by_pc stratum the srv-vuln cross-validation
    // reads (detected ~ covered, undetected/ace ~ SDC, masked ~ masked).
    for (const auto& [pc, tally] : injector.site_by_pc()) {
      PcStratum& pc_stratum = cell.by_pc[pc];
      pc_stratum.injected += tally.injected;
      pc_stratum.detected += tally.detected;
      pc_stratum.undetected += tally.sdc;
      pc_stratum.ace += tally.sdc;
      pc_stratum.masked += tally.masked;
    }

    if (!done_path.empty()) {
      save_campaign_cell(done_path, spec.instructions, spec.rate, cell_seed,
                         cell);
    }

    account_cell(sim_result.committed);
  };

  const u32 workers =
      resolve_job_count(spec.jobs != 0 ? spec.jobs : default_jobs());
  if (workers <= 1 || jobs.size() <= 1) {
    // Reference path: plain sequential loop on the calling thread.
    for (usize i = 0; i < jobs.size(); ++i) run_cell(i);
  } else {
    ThreadPool pool(workers);
    pool.parallel_for(jobs.size(), run_cell);
  }

  result.cancelled = cancelled.load(std::memory_order_relaxed);
  return result;
}

std::vector<CampaignSpec> split_campaign_spec(const CampaignSpec& resolved,
                                              usize shards) {
  std::vector<CampaignSpec> out;
  if (shards == 0) return out;
  const u32 replicas = resolved.replicas;
  const u32 base = replicas / static_cast<u32>(shards);
  const u32 extra = replicas % static_cast<u32>(shards);
  u32 begin = resolved.replica_begin;
  for (usize s = 0; s < shards; ++s) {
    const u32 count = base + (s < extra ? 1 : 0);
    if (count == 0) continue;
    CampaignSpec shard = resolved;
    shard.replica_begin = begin;
    shard.replicas = count;
    // Defaults are already resolved; quick left set would clamp the shard
    // back to one replica on the worker.
    shard.quick = false;
    // Hooks belong to whoever dispatches the shard, not to the template.
    shard.cancel = nullptr;
    shard.progress = nullptr;
    shard.metrics = nullptr;
    shard.shard_progress = nullptr;
    out.push_back(std::move(shard));
    begin += count;
  }
  return out;
}

CampaignMatrix make_campaign_matrix(const CampaignSpec& resolved) {
  CampaignMatrix matrix;
  matrix.cells.assign(
      resolved.variants.size(),
      std::vector<std::vector<CampaignCell>>(
          resolved.workloads.size(),
          std::vector<CampaignCell>(resolved.replicas)));
  return matrix;
}

std::string serialize_campaign_matrix(const CampaignResult& result) {
  const CampaignSpec& spec = result.spec;
  SnapshotWriter writer;
  writer.put_section(kCampaignMatrixTag);
  writer.put_u64(spec.seed);
  writer.put_u64(spec.instructions);
  writer.put_f64(spec.rate);
  writer.put_u32(spec.replica_begin);
  writer.put_u32(spec.replicas);
  writer.put_u32(static_cast<u32>(spec.variants.size()));
  for (const CampaignVariant& variant : spec.variants) {
    writer.put_string(variant.label);
  }
  writer.put_u32(static_cast<u32>(spec.workloads.size()));
  for (const std::string& name : spec.workloads) writer.put_string(name);
  for (const auto& workloads : result.matrix.cells) {
    for (const auto& replicas : workloads) {
      for (const CampaignCell& cell : replicas) {
        put_campaign_cell(&writer, cell);
      }
    }
  }
  return writer.to_buffer(kSnapshotFormatVersion);
}

bool deserialize_campaign_matrix(std::string_view data, CampaignWire* wire,
                                 std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  SnapshotReader reader;
  if (!reader.open_buffer(data, kSnapshotFormatVersion)) {
    return fail(reader.error());
  }
  if (!reader.expect_section(kCampaignMatrixTag)) return fail(reader.error());
  CampaignWire loaded;
  loaded.seed = reader.get_u64();
  loaded.instructions = reader.get_u64();
  loaded.rate = reader.get_f64();
  loaded.replica_begin = reader.get_u32();
  const u32 replicas = reader.get_u32();
  const u32 variant_count = reader.get_u32();
  if (!reader.ok() || variant_count > 1024) {
    return fail("campaign matrix: bad variant count");
  }
  for (u32 v = 0; v < variant_count; ++v) {
    loaded.variant_labels.push_back(reader.get_string());
  }
  const u32 workload_count = reader.get_u32();
  if (!reader.ok() || workload_count > 4096) {
    return fail("campaign matrix: bad workload count");
  }
  for (u32 w = 0; w < workload_count; ++w) {
    loaded.workload_names.push_back(reader.get_string());
  }
  loaded.matrix.cells.assign(
      variant_count, std::vector<std::vector<CampaignCell>>(
                         workload_count, std::vector<CampaignCell>(replicas)));
  for (auto& workloads : loaded.matrix.cells) {
    for (auto& cells : workloads) {
      for (CampaignCell& cell : cells) {
        if (!get_campaign_cell(&reader, &cell)) {
          return fail("campaign matrix: truncated or corrupt cell payload");
        }
      }
    }
  }
  if (!reader.ok() || !reader.at_end()) {
    return fail(reader.ok() ? "campaign matrix: trailing bytes"
                            : reader.error());
  }
  *wire = std::move(loaded);
  return true;
}

bool place_shard(const CampaignSpec& resolved, const CampaignWire& shard,
                 CampaignMatrix* merged, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = "shard identity: " + message;
    return false;
  };
  if (shard.seed != resolved.seed) {
    return fail(format("seed 0x%llx != campaign 0x%llx",
                       static_cast<unsigned long long>(shard.seed),
                       static_cast<unsigned long long>(resolved.seed)));
  }
  if (shard.instructions != resolved.instructions) {
    return fail(format("instruction budget %llu != campaign %llu",
                       static_cast<unsigned long long>(shard.instructions),
                       static_cast<unsigned long long>(resolved.instructions)));
  }
  if (shard.rate != resolved.rate) {
    return fail(format("rate %g != campaign %g", shard.rate, resolved.rate));
  }
  if (shard.variant_labels.size() != resolved.variants.size()) {
    return fail(format("%zu variants != campaign %zu",
                       shard.variant_labels.size(), resolved.variants.size()));
  }
  for (usize v = 0; v < resolved.variants.size(); ++v) {
    if (shard.variant_labels[v] != resolved.variants[v].label) {
      return fail(format("variant %zu is \"%s\", campaign has \"%s\"", v,
                         shard.variant_labels[v].c_str(),
                         resolved.variants[v].label.c_str()));
    }
  }
  if (shard.workload_names.size() != resolved.workloads.size()) {
    return fail(format("%zu workloads != campaign %zu",
                       shard.workload_names.size(),
                       resolved.workloads.size()));
  }
  for (usize w = 0; w < resolved.workloads.size(); ++w) {
    if (shard.workload_names[w] != resolved.workloads[w]) {
      return fail(format("workload %zu is \"%s\", campaign has \"%s\"", w,
                         shard.workload_names[w].c_str(),
                         resolved.workloads[w].c_str()));
    }
  }
  const usize shard_replicas =
      shard.matrix.cells.empty() || shard.matrix.cells[0].empty()
          ? 0
          : shard.matrix.cells[0][0].size();
  if (shard.replica_begin < resolved.replica_begin ||
      shard.replica_begin - resolved.replica_begin + shard_replicas >
          resolved.replicas) {
    return fail(format("replica range [%u, %zu) outside campaign [%u, %zu)",
                       shard.replica_begin,
                       shard.replica_begin + shard_replicas,
                       resolved.replica_begin,
                       resolved.replica_begin + resolved.replicas));
  }
  if (merged->cells.size() != resolved.variants.size() ||
      (merged->cells.size() > 0 &&
       (merged->cells[0].size() != resolved.workloads.size() ||
        merged->cells[0][0].size() != resolved.replicas))) {
    return fail("merge target not shaped by make_campaign_matrix");
  }

  const usize offset = shard.replica_begin - resolved.replica_begin;
  static const CampaignCell kEmptyCell;
  for (usize v = 0; v < shard.matrix.cells.size(); ++v) {
    for (usize w = 0; w < shard.matrix.cells[v].size(); ++w) {
      for (usize r = 0; r < shard.matrix.cells[v][w].size(); ++r) {
        if (!(merged->cells[v][w][offset + r] == kEmptyCell)) {
          return fail(format("cell (v%zu, w%zu, r%zu) already placed", v, w,
                             offset + r));
        }
      }
    }
  }
  for (usize v = 0; v < shard.matrix.cells.size(); ++v) {
    for (usize w = 0; w < shard.matrix.cells[v].size(); ++w) {
      for (usize r = 0; r < shard.matrix.cells[v][w].size(); ++r) {
        merged->cells[v][w][offset + r] = shard.matrix.cells[v][w][r];
      }
    }
  }
  return true;
}

bool write_campaign_report(const CampaignResult& result,
                           const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "campaign: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string json = result.json();
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  return true;
}

}  // namespace reese::sim

#include "sim/perf.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/diag.h"
#include "common/strutil.h"
#include "common/thread_pool.h"
#include "sim/simulator.h"

namespace reese::sim {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const usize mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

/// One timed simulation: fresh workload + pipeline, returns kIPS.
double time_one_run(const std::string& workload_name, u64 instructions) {
  workloads::WorkloadOptions options;
  options.iterations = 0;
  auto workload = workloads::make_workload(workload_name, options);
  if (!workload.ok()) {
    std::fprintf(stderr, "perf: %s\n", workload.error().to_string().c_str());
    std::exit(1);
  }
  Simulator simulator(std::move(workload).value(), core::starting_config());
  const auto start = Clock::now();
  const SimResult result = simulator.run(instructions);
  const double elapsed = seconds_since(start);
  if (result.stop != core::StopReason::kCommitTarget) {
    std::fprintf(stderr, "perf: %s stopped early (%s) after %llu insts\n",
                 workload_name.c_str(), core::stop_reason_name(result.stop),
                 static_cast<unsigned long long>(result.committed));
    std::exit(1);
  }
  if (elapsed <= 0.0) return 0.0;
  return static_cast<double>(result.committed) / elapsed / 1000.0;
}

}  // namespace

PerfReport run_perf(const PerfOptions& options_in) {
  PerfOptions options = options_in;
  if (options.workloads.empty()) {
    options.workloads = workloads::spec_like_names();
  }
  if (options.quick) {
    options.reps = std::min<u32>(options.reps, 3);
    options.warmup_reps = std::min<u32>(options.warmup_reps, 1);
  }

  PerfReport report;
  report.options = options;
  report.instructions = options.instructions != 0
                            ? options.instructions
                            : options.quick ? 60'000
                                            : default_instruction_budget();

  // Per-workload single-thread kIPS.
  std::vector<double> medians;
  for (const std::string& name : options.workloads) {
    for (u32 i = 0; i < options.warmup_reps; ++i) {
      time_one_run(name, report.instructions);
    }
    std::vector<double> samples;
    for (u32 i = 0; i < options.reps; ++i) {
      samples.push_back(time_one_run(name, report.instructions));
    }
    WorkloadPerf perf;
    perf.workload = name;
    perf.median_kips = median(samples);
    perf.min_kips = *std::min_element(samples.begin(), samples.end());
    perf.max_kips = *std::max_element(samples.begin(), samples.end());
    report.workloads.push_back(perf);
    medians.push_back(perf.median_kips);
    std::fprintf(stderr, "perf: %-10s %9.1f kIPS (min %.1f, max %.1f)\n",
                 name.c_str(), perf.median_kips, perf.min_kips,
                 perf.max_kips);
  }
  report.aggregate_kips = median(medians);

  // Grid measurement: the fig2-style matrix, sequential vs pooled. A
  // reduced budget keeps this phase comparable in cost to one rep of the
  // per-workload loop.
  ExperimentSpec grid;
  grid.title = "perf grid";
  grid.base = core::starting_config();
  grid.instructions = std::min<u64>(report.instructions, 60'000);

  grid.jobs = 1;
  auto start = Clock::now();
  const ExperimentResult seq = run_experiment(grid);
  report.grid_seq_seconds = seconds_since(start);

  grid.jobs = options.jobs;
  report.grid_jobs = resolve_job_count(options.jobs != 0 ? options.jobs
                                                         : default_jobs());
  start = Clock::now();
  const ExperimentResult par = run_experiment(grid);
  report.grid_par_seconds = seconds_since(start);

  report.grid_identical = seq.cells == par.cells;
  report.grid_speedup = report.grid_par_seconds > 0.0
                            ? report.grid_seq_seconds / report.grid_par_seconds
                            : 0.0;
  std::fprintf(stderr,
               "perf: grid %.2fs sequential, %.2fs with %u jobs "
               "(%.2fx, results %s)\n",
               report.grid_seq_seconds, report.grid_par_seconds,
               report.grid_jobs, report.grid_speedup,
               report.grid_identical ? "identical" : "DIFFER");
  return report;
}

std::string PerfReport::json() const {
  std::string out = "{\n";
  // Commit anchor: bench_diff.py records which commit (and budget) a
  // baseline artifact was measured at, so regressions are attributed to a
  // concrete revision instead of "some older run". $GITHUB_SHA in CI,
  // $REESE_GIT_SHA for local A/B runs, empty when neither is set.
  const char* sha = std::getenv("GITHUB_SHA");
  if (sha == nullptr || *sha == '\0') sha = std::getenv("REESE_GIT_SHA");
  out += format("  \"git_sha\": \"%s\",\n",
                json_escape(sha == nullptr ? "" : sha).c_str());
  out += format("  \"instructions\": %llu,\n",
                static_cast<unsigned long long>(instructions));
  out += format("  \"reps\": %u,\n", options.reps);
  out += format("  \"quick\": %s,\n", options.quick ? "true" : "false");
  out += "  \"workloads\": [\n";
  for (usize i = 0; i < workloads.size(); ++i) {
    const WorkloadPerf& perf = workloads[i];
    out += format(
        "    {\"workload\": \"%s\", \"median_kips\": %.2f, "
        "\"min_kips\": %.2f, \"max_kips\": %.2f}%s\n",
        json_escape(perf.workload).c_str(), perf.median_kips,
        perf.min_kips, perf.max_kips,
        i + 1 < workloads.size() ? "," : "");
  }
  out += "  ],\n";
  out += format("  \"aggregate_kips\": %.2f,\n", aggregate_kips);
  out += "  \"grid\": {\n";
  out += format("    \"sequential_seconds\": %.4f,\n", grid_seq_seconds);
  out += format("    \"parallel_seconds\": %.4f,\n", grid_par_seconds);
  out += format("    \"jobs\": %u,\n", grid_jobs);
  out += format("    \"speedup\": %.3f,\n", grid_speedup);
  out += format("    \"identical\": %s\n", grid_identical ? "true" : "false");
  out += "  }\n";
  out += "}\n";
  return out;
}

bool write_perf_report(const PerfReport& report, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "perf: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string json = report.json();
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  return true;
}

}  // namespace reese::sim

// Pre-run static checking of a program about to be simulated.
//
// `--prelint`/`-prelint 1` on the CLIs runs every srv-lint pass over the
// workload's program image before the first simulated cycle. Error-severity
// findings (wild branch targets, control running off the text segment,
// misaligned statically-known accesses) mean the program is malformed and
// would otherwise surface as a confusing mid-simulation divergence; the
// simulator refuses to start. Warnings are reported but do not block — the
// SPEC-like workloads intentionally loop forever, for example.
#pragma once

#include <vector>

#include "common/diag.h"
#include "isa/program.h"

namespace reese::sim {

struct PrelintResult {
  std::vector<Diagnostic> diagnostics;
  /// False iff any finding is error severity; the caller must not start
  /// simulation in that case.
  bool ok = true;
};

PrelintResult prelint_program(const isa::Program& program);

}  // namespace reese::sim

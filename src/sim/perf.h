// Simulator-throughput measurement: how many simulated instructions the
// simulator itself retires per wall-clock second (kIPS = thousands of
// committed instructions per second).
//
// Two measurements back the perf-tracking harness (bench/perf_kips):
//  * per-workload single-thread kIPS — warmup + repeated timed runs of one
//    Simulator, median over reps (robust to scheduler noise);
//  * grid wall time — the same small experiment grid run sequentially
//    (jobs = 1) and with the thread pool, giving the parallel speedup and
//    re-checking bit-identical results on the way.
//
// Reports serialize to JSON (BENCH_perf.json) so tools/bench_diff.py can
// compare two runs and CI can archive the numbers per commit.
#pragma once

#include <string>
#include <vector>

#include "sim/experiment.h"

namespace reese::sim {

struct PerfOptions {
  /// Workloads to time individually; empty = the six spec-like names.
  std::vector<std::string> workloads;
  /// Simulated instructions per timed run; 0 = default_instruction_budget().
  u64 instructions = 0;
  u32 warmup_reps = 1;   ///< untimed runs before measuring
  u32 reps = 5;          ///< timed runs; the median is reported
  /// Worker count for the parallel grid measurement; 0 = auto (see
  /// ExperimentSpec::jobs).
  u32 jobs = 0;
  /// Quick mode (CI): fewer reps and a reduced instruction budget.
  bool quick = false;
};

struct WorkloadPerf {
  std::string workload;
  double median_kips = 0.0;
  double min_kips = 0.0;
  double max_kips = 0.0;
};

struct PerfReport {
  PerfOptions options;
  u64 instructions = 0;           ///< resolved per-run budget
  std::vector<WorkloadPerf> workloads;
  double aggregate_kips = 0.0;    ///< median over the workload medians

  // Grid measurement (fig2-style matrix).
  double grid_seq_seconds = 0.0;
  double grid_par_seconds = 0.0;
  u32 grid_jobs = 1;              ///< resolved worker count of the parallel run
  double grid_speedup = 0.0;      ///< seq / par wall time
  bool grid_identical = false;    ///< parallel cells == sequential cells

  std::string json() const;
};

/// Run the measurement suite. Prints progress to stderr.
PerfReport run_perf(const PerfOptions& options);

/// Write `report.json()` to `path`; returns false (with a message on
/// stderr) if the file cannot be written.
bool write_perf_report(const PerfReport& report, const std::string& path);

}  // namespace reese::sim

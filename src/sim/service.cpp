#include "sim/service.h"

#include <algorithm>
#include <cstring>

#include "common/diag.h"
#include "common/json.h"
#include "common/strutil.h"
#include "workloads/workload.h"

namespace reese::sim {

namespace {

/// Pruned-id memory bound (see SimulationService::pruned_ids_).
constexpr usize kMaxPrunedIds = 4096;

/// The bearer token on a request, or "" when absent/malformed. Doubles as
/// the tenant identity for quota accounting.
std::string request_token(const http::Request& request) {
  const auto it = request.headers.find("authorization");
  if (it == request.headers.end()) return "";
  const std::string_view value = trim(it->second);
  if (!starts_with(value, "Bearer ")) return "";
  return std::string(trim(value.substr(7)));
}

http::Response json_response(int status, std::string body) {
  return http::Response{status, "application/json", std::move(body)};
}

http::Response error_response(int status, const std::string& message) {
  return json_response(
      status, format("{\"error\": \"%s\"}\n", json_escape(message).c_str()));
}

bool known_workload(const std::string& name) {
  const std::vector<std::string>& names = workloads::all_workload_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

/// Reject spec objects with keys outside the documented schema: a typo'd
/// field silently falling back to a default would run the wrong
/// simulation, which is worse than a 400.
bool check_allowed_keys(const json::Value& object,
                        std::initializer_list<const char*> allowed,
                        std::string* error) {
  for (const auto& [key, value] : object.object) {
    (void)value;
    bool known = false;
    for (const char* candidate : allowed) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      *error = "unknown field \"" + key + "\"";
      return false;
    }
  }
  return true;
}

/// Optional non-negative integer field; leaves *out untouched when absent.
bool parse_u64_field(const json::Value& object, const char* key, u64* out,
                     std::string* error) {
  const json::Value* value = object.find(key);
  if (value == nullptr) return true;
  if (!value->is_number() || !value->is_integer || value->number < 0) {
    *error = format("\"%s\" must be a non-negative integer", key);
    return false;
  }
  *out = value->uint_value;
  return true;
}

bool parse_double_field(const json::Value& object, const char* key,
                        double* out, std::string* error) {
  const json::Value* value = object.find(key);
  if (value == nullptr) return true;
  if (!value->is_number()) {
    *error = format("\"%s\" must be a number", key);
    return false;
  }
  *out = value->number;
  return true;
}

bool parse_bool_field(const json::Value& object, const char* key, bool* out,
                      std::string* error) {
  const json::Value* value = object.find(key);
  if (value == nullptr) return true;
  if (!value->is_bool()) {
    *error = format("\"%s\" must be a boolean", key);
    return false;
  }
  *out = value->boolean;
  return true;
}

bool parse_string_list_field(const json::Value& object, const char* key,
                             std::vector<std::string>* out,
                             std::string* error) {
  const json::Value* value = object.find(key);
  if (value == nullptr) return true;
  if (!value->is_array() || value->array.empty()) {
    *error = format("\"%s\" must be a non-empty array of strings", key);
    return false;
  }
  out->clear();
  for (const json::Value& element : value->array) {
    if (!element.is_string()) {
      *error = format("\"%s\" must contain only strings", key);
      return false;
    }
    out->push_back(element.string);
  }
  return true;
}

/// Grid worker count ("jobs"): the service is strict where the CLIs warn —
/// a request outside [1, kMaxJobRequest] is a client error, not a value to
/// be silently replaced.
bool parse_jobs_field(const json::Value& object, u32* out,
                      std::string* error) {
  const json::Value* value = object.find("jobs");
  if (value == nullptr) return true;
  if (!value->is_number() || !value->is_integer || value->number < 1 ||
      value->uint_value > kMaxJobRequest) {
    *error = format("\"jobs\" must be an integer in [1, %u]", kMaxJobRequest);
    return false;
  }
  *out = static_cast<u32>(value->uint_value);
  return true;
}

/// Checkpoint policy ("checkpoint": {"dir", "interval", "resume"}), passed
/// through to ExperimentSpec/CampaignSpec::checkpoint (DESIGN.md §14). The
/// dir is required when the object is present — a snapshot has to land
/// somewhere the client can find it again.
bool parse_checkpoint_field(const json::Value& object, CheckpointOptions* out,
                            std::string* error) {
  const json::Value* value = object.find("checkpoint");
  if (value == nullptr) return true;
  if (!value->is_object()) {
    *error = "\"checkpoint\" must be an object";
    return false;
  }
  if (!check_allowed_keys(*value, {"dir", "interval", "resume"}, error)) {
    return false;
  }
  const json::Value* dir = value->find("dir");
  if (dir == nullptr || !dir->is_string() || dir->string.empty()) {
    *error = "\"checkpoint.dir\" must be a non-empty string";
    return false;
  }
  out->dir = dir->string;
  if (!parse_u64_field(*value, "interval", &out->interval, error)) {
    return false;
  }
  return parse_bool_field(*value, "resume", &out->resume, error);
}

bool parse_timeout_field(const json::Value& object,
                         const ServiceConfig& config, double* out,
                         std::string* error) {
  double timeout_s = config.default_timeout_s;
  if (!parse_double_field(object, "timeout_s", &timeout_s, error)) {
    return false;
  }
  if (timeout_s < 0.0 || timeout_s > config.max_timeout_s) {
    *error = format("\"timeout_s\" must be in [0, %g]", config.max_timeout_s);
    return false;
  }
  *out = timeout_s;
  return true;
}

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kTimeout: return "timeout";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

SimulationService::SimulationService(const ServiceConfig& config)
    : config_(config),
      logger_(config.logger != nullptr ? config.logger : &log::global()),
      queue_(std::max(1u, config.workers), config.queue_capacity) {
  // Event volume becomes scrapeable (reese_fleet_events_total on
  // /v1/metrics). Detached in the destructor before registry_ dies.
  logger_->set_registry(&registry_);
}

SimulationService::~SimulationService() {
  // Detach before registry_ dies; still-running jobs (joined by queue_'s
  // destructor, which runs after this body) then log without a counter
  // rather than into a dead registry.
  if (logger_->registry() == &registry_) logger_->set_registry(nullptr);
}

void SimulationService::drain() { queue_.drain(); }

ServiceStats SimulationService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats stats;
  stats.queue_depth = queue_.queued();
  stats.running = queue_.running();
  stats.submitted = submitted_;
  stats.completed = completed_;
  stats.timeouts = timeouts_;
  stats.failed = failed_;
  stats.rejected_queue_full = rejected_queue_full_;
  stats.rejected_quota = rejected_quota_;
  stats.total_committed = total_committed_;
  stats.total_wall_seconds = total_wall_seconds_;
  return stats;
}

http::Response SimulationService::handle(const http::Request& request) {
  const std::string& path = request.path;
  if (path == "/v1/healthz") {
    // Liveness stays reachable without credentials: probes and load
    // balancers must be able to tell "down" from "locked out".
    if (request.method != "GET") return error_response(405, "use GET");
    return json_response(200, "{\"ok\": true}\n");
  }
  if (!config_.auth_tokens.empty()) {
    const std::string token = request_token(request);
    const bool known =
        !token.empty() &&
        std::find(config_.auth_tokens.begin(), config_.auth_tokens.end(),
                  token) != config_.auth_tokens.end();
    if (!known) {
      return error_response(401, "missing or invalid bearer token");
    }
  }
  if (path == "/v1/stats") {
    if (request.method != "GET") return error_response(405, "use GET");
    return stats_response();
  }
  if (path == "/v1/metrics") {
    if (request.method != "GET") return error_response(405, "use GET");
    return metrics_response();
  }
  if (path == "/v1/fleet/metrics") {
    if (request.method != "GET") return error_response(405, "use GET");
    return fleet_metrics_response();
  }
  if (path == "/v1/experiments" || path == "/v1/campaigns") {
    if (request.method != "POST") return error_response(405, "use POST");
    return submit(request, path == "/v1/campaigns");
  }
  if (starts_with(path, "/v1/jobs/")) {
    if (request.method != "GET") return error_response(405, "use GET");
    const std::vector<std::string_view> parts =
        split(std::string_view(path).substr(1), '/');
    // parts: ["v1", "jobs", "<id>"] optionally + "result" or "progress".
    i64 id = 0;
    if (parts.size() >= 3 && parse_int(parts[2], &id) && id > 0) {
      if (parts.size() == 3) return job_status(static_cast<u64>(id));
      if (parts.size() == 4 && parts[3] == "result") {
        return job_result(static_cast<u64>(id), request);
      }
      if (parts.size() == 4 && parts[3] == "progress") {
        return job_progress(static_cast<u64>(id));
      }
    }
    return error_response(404, "no such job resource");
  }
  return error_response(404, "no such endpoint");
}

std::string SimulationService::job_status_json(const Job& job) {
  std::string out = "{\n";
  out += format("  \"id\": %llu,\n", static_cast<unsigned long long>(job.id));
  out += format("  \"kind\": \"%s\",\n",
                job.is_campaign ? "campaign" : "experiment");
  out += format("  \"state\": \"%s\",\n", job_state_name(job.state));
  out += format("  \"timeout_s\": %g,\n", job.timeout_s);
  if (job.trace.valid()) {
    out += format("  \"trace\": \"%s\",\n", job.trace.header_value().c_str());
  }
  if (job.state == JobState::kFailed) {
    out += format("  \"error\": \"%s\",\n", json_escape(job.error).c_str());
  }
  if (job.state == JobState::kDone) {
    out += format("  \"committed\": %llu,\n",
                  static_cast<unsigned long long>(job.committed));
    out += format("  \"wall_seconds\": %.6f,\n", job.wall_seconds);
  }
  out += format("  \"result\": \"/v1/jobs/%llu/result\"\n",
                static_cast<unsigned long long>(job.id));
  out += "}\n";
  return out;
}

http::Response SimulationService::submit(const http::Request& request,
                                         bool is_campaign) {
  Result<json::Value> parsed = json::parse_json(request.body);
  if (!parsed.ok()) return error_response(400, parsed.error().message);
  const json::Value& body = parsed.value();
  if (!body.is_object()) {
    return error_response(400, "spec must be a JSON object");
  }

  std::string error;
  Job job;
  job.is_campaign = is_campaign;
  if (!parse_timeout_field(body, config_, &job.timeout_s, &error)) {
    return error_response(400, error);
  }

  u64 cells = 0;
  u64 instructions = 0;
  std::vector<std::string> workload_names;
  if (is_campaign) {
    CampaignSpec spec;
    spec.jobs = config_.grid_jobs;
    if (!check_allowed_keys(body,
                            {"workloads", "variants", "replicas",
                             "replica_begin", "instructions", "rate", "seed",
                             "jobs", "quick", "timeout_s", "checkpoint"},
                            &error) ||
        !parse_string_list_field(body, "workloads", &spec.workloads, &error) ||
        !parse_u64_field(body, "instructions", &spec.instructions, &error) ||
        !parse_u64_field(body, "seed", &spec.seed, &error) ||
        !parse_double_field(body, "rate", &spec.rate, &error) ||
        !parse_bool_field(body, "quick", &spec.quick, &error) ||
        !parse_jobs_field(body, &spec.jobs, &error) ||
        !parse_checkpoint_field(body, &spec.checkpoint, &error)) {
      return error_response(400, error);
    }
    u64 replicas = spec.replicas;
    if (!parse_u64_field(body, "replicas", &replicas, &error)) {
      return error_response(400, error);
    }
    // Million-replica specs are the fleet's whole point; the real guard
    // against runaway grids is the cell cap below.
    if (replicas < 1 || replicas > 1'000'000) {
      return error_response(400, "\"replicas\" must be in [1, 1000000]");
    }
    spec.replicas = static_cast<u32>(replicas);
    u64 replica_begin = 0;
    if (!parse_u64_field(body, "replica_begin", &replica_begin, &error)) {
      return error_response(400, error);
    }
    if (replica_begin + replicas > 1'000'000'000) {
      return error_response(
          400, "\"replica_begin\" + \"replicas\" must not exceed 1000000000");
    }
    spec.replica_begin = static_cast<u32>(replica_begin);
    if (spec.rate <= 0.0 || spec.rate > 1.0) {
      return error_response(400, "\"rate\" must be in (0, 1]");
    }
    std::vector<std::string> variant_labels;
    if (!parse_string_list_field(body, "variants", &variant_labels, &error)) {
      return error_response(400, error);
    }
    if (!variant_labels.empty()) {
      // Labels resolve to either the standard five or a component
      // "base@site" variant — the wire carries labels only.
      for (const std::string& label : variant_labels) {
        CampaignVariant variant;
        if (!campaign_variant_by_label(label, &variant)) {
          return error_response(400, "unknown variant \"" + label + "\"");
        }
        spec.variants.push_back(std::move(variant));
      }
    }
    const usize variant_count =
        spec.variants.empty() ? standard_campaign_variants().size()
                              : spec.variants.size();
    const usize workload_count =
        spec.workloads.empty() ? workloads::spec_like_names().size()
                               : spec.workloads.size();
    cells = variant_count * workload_count *
            (spec.quick ? 1 : spec.replicas);
    instructions = spec.instructions;
    workload_names = spec.workloads;
    job.campaign_spec = std::move(spec);
  } else {
    ExperimentSpec spec;
    spec.title = "service experiment";
    spec.base = core::starting_config();
    spec.jobs = config_.grid_jobs;
    std::vector<std::string> model_slugs;
    if (!check_allowed_keys(body,
                            {"title", "workloads", "models", "instructions",
                             "seed", "extra_seeds", "jobs", "timeout_s",
                             "checkpoint"},
                            &error) ||
        !parse_string_list_field(body, "workloads", &spec.workloads, &error) ||
        !parse_string_list_field(body, "models", &model_slugs, &error) ||
        !parse_u64_field(body, "instructions", &spec.instructions, &error) ||
        !parse_u64_field(body, "seed", &spec.seed, &error) ||
        !parse_jobs_field(body, &spec.jobs, &error) ||
        !parse_checkpoint_field(body, &spec.checkpoint, &error)) {
      return error_response(400, error);
    }
    if (const json::Value* title = body.find("title")) {
      if (!title->is_string()) {
        return error_response(400, "\"title\" must be a string");
      }
      spec.title = title->string;
    }
    if (const json::Value* extra = body.find("extra_seeds")) {
      if (!extra->is_array()) {
        return error_response(400, "\"extra_seeds\" must be an array");
      }
      for (const json::Value& seed : extra->array) {
        if (!seed.is_number() || !seed.is_integer || seed.number < 0) {
          return error_response(
              400, "\"extra_seeds\" must contain non-negative integers");
        }
        spec.extra_seeds.push_back(seed.uint_value);
      }
    }
    for (const std::string& slug : model_slugs) {
      Model model;
      if (!model_from_slug(slug, &model)) {
        return error_response(400, "unknown model \"" + slug + "\"");
      }
      spec.models.push_back(model);
    }
    const usize model_count = spec.models.empty() ? standard_models().size()
                                                  : spec.models.size();
    const usize workload_count =
        spec.workloads.empty() ? workloads::spec_like_names().size()
                               : spec.workloads.size();
    cells = workload_count * model_count * (1 + spec.extra_seeds.size());
    instructions = spec.instructions;
    workload_names = spec.workloads;
    job.experiment_spec = std::move(spec);
  }

  for (const std::string& name : workload_names) {
    if (!known_workload(name)) {
      return error_response(400, "unknown workload \"" + name + "\"");
    }
  }
  if (instructions > config_.max_instructions) {
    return error_response(
        400, format("\"instructions\" exceeds the per-cell cap %llu",
                    static_cast<unsigned long long>(config_.max_instructions)));
  }
  if (cells > config_.max_cells) {
    return error_response(
        400, format("spec expands to %llu grid cells (cap %llu)",
                    static_cast<unsigned long long>(cells),
                    static_cast<unsigned long long>(config_.max_cells)));
  }

  job.tenant = request_token(request);
  // A coordinator dispatching this job tags it with its campaign trace and
  // the shard attempt's span (X-Reese-Trace); the pair rides along on
  // status/progress JSON and every lifecycle log event.
  job.trace = http::trace_context_of(request);

  u64 id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (config_.tenant_max_active > 0) {
      u32 active = 0;
      for (const auto& [jid, entry] : jobs_) {
        (void)jid;
        if (entry.tenant == job.tenant &&
            (entry.state == JobState::kQueued ||
             entry.state == JobState::kRunning)) {
          ++active;
        }
      }
      if (active >= config_.tenant_max_active) {
        ++rejected_quota_;
        return error_response(
            429, format("tenant quota exceeded (%u active jobs; cap %u)",
                        active, config_.tenant_max_active));
      }
    }
    id = next_id_++;
    job.id = id;
    job.submitted_at = std::chrono::steady_clock::now();
    jobs_.emplace(id, std::move(job));
    ++submitted_;
    // Bound the table: drop the oldest finished jobs beyond the retention
    // window (ids are monotonic, so map order is submission order) —
    // preferring jobs whose result a client already fetched. A
    // never-fetched result is evicted only when fetched ones cannot cover
    // the excess; its id is remembered so a later fetch gets 410 Gone
    // instead of the 404 an id never issued gets.
    usize finished = 0;
    for (const auto& [jid, entry] : jobs_) {
      (void)jid;
      if (entry.state != JobState::kQueued &&
          entry.state != JobState::kRunning) {
        ++finished;
      }
    }
    const auto prune_pass = [this, &finished](bool fetched_only) {
      for (auto it = jobs_.begin();
           finished > config_.max_retained_jobs && it != jobs_.end();) {
        const Job& entry = it->second;
        const bool is_finished = entry.state != JobState::kQueued &&
                                 entry.state != JobState::kRunning;
        if (is_finished && (entry.fetched || !fetched_only)) {
          if (pruned_ids_.size() >= kMaxPrunedIds) {
            pruned_ids_.erase(pruned_ids_.begin());
          }
          pruned_ids_.insert(it->first);
          it = jobs_.erase(it);
          --finished;
        } else {
          ++it;
        }
      }
    };
    prune_pass(/*fetched_only=*/true);
    prune_pass(/*fetched_only=*/false);
  }

  if (!queue_.try_enqueue([this, id] { run_job(id); })) {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.erase(id);
    --submitted_;
    ++rejected_queue_full_;
    return error_response(429,
                          format("queue full (%zu waiting jobs; retry later)",
                                 queue_.capacity()));
  }

  {
    std::vector<log::Field> fields = {
        log::field("id", id),
        log::field("kind", is_campaign ? "campaign" : "experiment")};
    const http::TraceContext trace = http::trace_context_of(request);
    if (trace.valid()) {
      fields.push_back(log::field("trace", trace.header_value()));
    }
    logger_->info("job_submitted",
                  format("job %llu accepted",
                         static_cast<unsigned long long>(id)),
                  fields);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  // The job may already have started (or even finished) on a worker.
  return json_response(202, it != jobs_.end()
                                ? job_status_json(it->second)
                                : format("{\"id\": %llu}\n",
                                         static_cast<unsigned long long>(id)));
}

http::Response SimulationService::job_status(u64 id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return missing_job(id);
  return json_response(200, job_status_json(it->second));
}

http::Response SimulationService::job_progress(u64 id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return missing_job(id);
  const Job& job = it->second;

  // Elapsed wall time: frozen at the recorded duration once the job
  // finished, live while it runs, zero while it waits in the queue.
  double elapsed_s = 0.0;
  if (job.state == JobState::kRunning) {
    elapsed_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              job.started_at)
                    .count();
  } else if (job.state != JobState::kQueued) {
    elapsed_s = job.wall_seconds;
  }
  // Committed count: the live max-merged progress number until the final
  // tally lands (the final tally includes cells the callback never saw,
  // e.g. when the run was cancelled mid-cell). Coordinator jobs add the
  // per-shard rollup — each entry is itself max-merged, so the sums are
  // monotonic even across re-dispatch.
  u64 shard_cells_done = 0;
  u64 shard_cells_total = 0;
  u64 shard_committed = 0;
  for (const ShardProgressUpdate& shard : job.shards) {
    shard_cells_done += shard.cells_done;
    shard_cells_total += shard.cells_total;
    shard_committed += shard.committed;
  }
  const u64 cells_done = std::max(job.cells_done, shard_cells_done);
  const u64 cells_total = std::max(job.cells_total, shard_cells_total);
  const u64 committed = std::max(
      std::max(job.progress_committed, job.committed), shard_committed);
  const double kips =
      elapsed_s > 0.0 ? committed / elapsed_s / 1000.0 : 0.0;

  std::string out = "{\n";
  out += format("  \"id\": %llu,\n", static_cast<unsigned long long>(job.id));
  out += format("  \"state\": \"%s\",\n", job_state_name(job.state));
  if (job.trace.valid()) {
    out += format("  \"trace\": \"%s\",\n", job.trace.header_value().c_str());
  }
  out += format("  \"cells_done\": %llu,\n",
                static_cast<unsigned long long>(cells_done));
  out += format("  \"cells_total\": %llu,\n",
                static_cast<unsigned long long>(cells_total));
  out += format("  \"committed\": %llu,\n",
                static_cast<unsigned long long>(committed));
  if (!job.shards.empty()) {
    out += "  \"shards\": [\n";
    for (usize s = 0; s < job.shards.size(); ++s) {
      const ShardProgressUpdate& shard = job.shards[s];
      out += format(
          "    {\"shard\": %zu, \"replica_begin\": %u, \"replicas\": %u, "
          "\"state\": \"%s\", \"worker\": \"%s\", \"cells_done\": %llu, "
          "\"cells_total\": %llu, \"committed\": %llu, \"kips\": %.3f, "
          "\"dispatches\": %u}%s\n",
          s, shard.replica_begin, shard.replicas, shard.state,
          json_escape(shard.worker).c_str(),
          static_cast<unsigned long long>(shard.cells_done),
          static_cast<unsigned long long>(shard.cells_total),
          static_cast<unsigned long long>(shard.committed), shard.kips,
          shard.dispatches, s + 1 < job.shards.size() ? "," : "");
    }
    out += "  ],\n";
  }
  out += format("  \"elapsed_s\": %.6f,\n", elapsed_s);
  out += format("  \"kips\": %.3f\n", kips);
  out += "}\n";
  return json_response(200, out);
}

http::Response SimulationService::missing_job(u64 id) {
  // Caller holds mutex_. A pruned id gets a distinct 410 so a client can
  // tell "your result existed but aged out" from "you never submitted
  // this" — re-submission is the right reaction to the former only.
  return pruned_ids_.count(id) != 0
             ? error_response(410,
                              "job result pruned by the retention window")
             : error_response(404, "no such job");
}

http::Response SimulationService::job_result(u64 id,
                                             const http::Request& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return missing_job(id);
  Job& job = it->second;
  switch (job.state) {
    case JobState::kQueued:
    case JobState::kRunning:
      return json_response(202, job_status_json(it->second));
    case JobState::kFailed:
      job.fetched = true;
      return error_response(500, "job failed: " + job.error);
    case JobState::kTimeout:
      job.fetched = true;
      return error_response(
          408, format("job exceeded its %g s wall-clock timeout",
                      job.timeout_s));
    case JobState::kDone:
      break;
  }

  const auto format_it = request.query.find("format");
  const std::string fmt =
      format_it == request.query.end() ? "json" : format_it->second;
  const bool want_csv = fmt == "csv";
  // "cells" is the lossless per-cell matrix in snapshot wire form — what
  // the fleet coordinator merges; the JSON report aggregates per variant
  // and cannot reconstruct shard cells.
  const bool want_cells = fmt == "cells";
  if (fmt != "json" && !want_csv && !want_cells) {
    return error_response(400,
                          "format must be \"json\", \"csv\" or \"cells\"");
  }
  if (want_cells && !job.is_campaign) {
    return error_response(400,
                          "format \"cells\" applies to campaign jobs only");
  }
  job.fetched = true;
  if (job.is_campaign) {
    if (want_cells) {
      return http::Response{
          200, "application/octet-stream",
          serialize_campaign_matrix(*job.campaign_result)};
    }
    return want_csv
               ? http::Response{200, "text/csv", job.campaign_result->csv()}
               : json_response(200, job.campaign_result->json());
  }
  return want_csv
             ? http::Response{200, "text/csv", job.experiment_result->csv()}
             : json_response(200, job.experiment_result->json());
}

http::Response SimulationService::stats_response() {
  const ServiceStats stats = this->stats();
  std::string out = "{\n";
  out += format("  \"queue_depth\": %zu,\n", stats.queue_depth);
  out += format("  \"running\": %u,\n", stats.running);
  out += format("  \"queue_capacity\": %zu,\n", queue_.capacity());
  out += format("  \"workers\": %u,\n", queue_.worker_count());
  out += format("  \"submitted\": %llu,\n",
                static_cast<unsigned long long>(stats.submitted));
  out += format("  \"completed\": %llu,\n",
                static_cast<unsigned long long>(stats.completed));
  out += format("  \"timeouts\": %llu,\n",
                static_cast<unsigned long long>(stats.timeouts));
  out += format("  \"failed\": %llu,\n",
                static_cast<unsigned long long>(stats.failed));
  out += format("  \"rejected_queue_full\": %llu,\n",
                static_cast<unsigned long long>(stats.rejected_queue_full));
  out += format("  \"rejected_quota\": %llu,\n",
                static_cast<unsigned long long>(stats.rejected_quota));
  out += format("  \"total_committed_instructions\": %llu,\n",
                static_cast<unsigned long long>(stats.total_committed));
  out += format("  \"total_wall_seconds\": %.6f,\n",
                stats.total_wall_seconds);
  out += format("  \"cumulative_kips\": %.3f\n", stats.kips());
  out += "}\n";
  return json_response(200, out);
}

void export_service_stats(metrics::Registry* registry,
                          const ServiceStats& stats) {
  const auto set_counter = [registry](const char* name, u64 value,
                                      const char* help) {
    if (metrics::Counter* counter = registry->counter(name, {}, help)) {
      counter->set(value);
    }
  };
  const auto set_gauge = [registry](const char* name, double value,
                                    const char* help) {
    if (metrics::Gauge* gauge = registry->gauge(name, {}, help)) {
      gauge->set(value);
    }
  };
  set_counter("reese_service_submitted_total", stats.submitted,
              "Jobs accepted");
  set_counter("reese_service_completed_total", stats.completed,
              "Jobs finished in state done");
  set_counter("reese_service_timeouts_total", stats.timeouts,
              "Jobs finished in state timeout");
  set_counter("reese_service_failed_total", stats.failed,
              "Jobs finished in state failed");
  set_counter("reese_service_rejected_queue_full_total",
              stats.rejected_queue_full, "Submits refused with 429");
  set_counter("reese_service_rejected_quota_total", stats.rejected_quota,
              "Submits refused by the per-tenant active-job cap");
  set_counter("reese_service_committed_instructions_total",
              stats.total_committed,
              "Instructions committed across finished jobs");
  set_gauge("reese_service_queue_depth",
            static_cast<double>(stats.queue_depth), "Jobs waiting to run");
  set_gauge("reese_service_running_jobs", static_cast<double>(stats.running),
            "Jobs currently executing");
  set_gauge("reese_service_busy_seconds", stats.total_wall_seconds,
            "Cumulative job execution wall time");
  set_gauge("reese_service_kips", stats.kips(),
            "Cumulative throughput, thousand committed instructions per "
            "wall-second");
}

http::Response SimulationService::metrics_response() {
  // Service-level series are point-in-time mirrors refreshed per scrape;
  // the grid counters in registry_ are already live.
  export_service_stats(&registry_, stats());
  return http::Response{200, "text/plain; version=0.0.4",
                        registry_.prometheus()};
}

http::Response SimulationService::fleet_metrics_response() {
  // Federation (DESIGN.md §17): a fresh registry per scrape, filled by the
  // coordinator's collector — merged worker series never pollute this
  // daemon's own registry_, and a worker joining/leaving between scrapes
  // is reflected immediately.
  if (!config_.fleet_collector) {
    return error_response(404, "not a fleet coordinator");
  }
  metrics::Registry federated;
  std::string error;
  if (!config_.fleet_collector(&federated, &error)) {
    return error_response(502, "federation scrape failed: " + error);
  }
  return http::Response{200, "text/plain; version=0.0.4",
                        federated.prometheus()};
}

void SimulationService::run_job(u64 id) {
  bool is_campaign = false;
  double timeout_s = 0.0;
  http::TraceContext trace;
  ExperimentSpec experiment_spec;
  CampaignSpec campaign_spec;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return;
    Job& job = it->second;
    job.state = JobState::kRunning;
    job.started_at = std::chrono::steady_clock::now();
    is_campaign = job.is_campaign;
    timeout_s = job.timeout_s;
    trace = job.trace;
    if (is_campaign) {
      campaign_spec = *job.campaign_spec;
    } else {
      experiment_spec = *job.experiment_spec;
    }
  }

  const auto lifecycle_fields = [&](std::vector<log::Field> extra = {}) {
    std::vector<log::Field> fields = {
        log::field("id", id),
        log::field("kind", is_campaign ? "campaign" : "experiment")};
    if (trace.valid()) {
      fields.push_back(log::field("trace", trace.header_value()));
    }
    for (log::Field& field : extra) fields.push_back(std::move(field));
    return fields;
  };
  logger_->info("job_started",
                format("job %llu running", static_cast<unsigned long long>(id)),
                lifecycle_fields());

  // Per-cell progress lands in the job table (max-merged: worker threads
  // may report out of order) so /v1/jobs/<id>/progress sees a monotonic
  // stream; the grid counters accumulate daemon-wide in registry_.
  const ProgressFn progress = [this, id](const ProgressUpdate& update) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return;
    Job& job = it->second;
    job.cells_done = std::max(job.cells_done, update.cells_done);
    job.cells_total = update.cells_total;
    job.progress_committed =
        std::max(job.progress_committed, update.committed);
  };

  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(timeout_s));
  const auto expired = [deadline] {
    return std::chrono::steady_clock::now() >= deadline;
  };

  bool cancelled = false;
  bool runner_failed = false;
  std::string runner_error;
  u64 committed = 0;
  std::optional<ExperimentResult> experiment_result;
  std::optional<CampaignResult> campaign_result;
  if (is_campaign) {
    campaign_spec.cancel = expired;
    campaign_spec.progress = progress;
    campaign_spec.metrics = &registry_;
    // Per-shard rollup (fleet coordinator only; run_campaign ignores the
    // hook and split_campaign_spec strips it from wire shards). Max-merge
    // keeps each shard's numbers monotonic across re-dispatch: a fresh
    // attempt restarting at zero cells must not drag the rollup backwards.
    campaign_spec.shard_progress =
        [this, id](const ShardProgressUpdate& update) {
          std::lock_guard<std::mutex> lock(mutex_);
          const auto it = jobs_.find(id);
          if (it == jobs_.end()) return;
          Job& job = it->second;
          if (job.shards.size() <= update.shard_index) {
            job.shards.resize(update.shard_index + 1);
          }
          ShardProgressUpdate& entry = job.shards[update.shard_index];
          entry.shard_index = update.shard_index;
          entry.replica_begin = update.replica_begin;
          entry.replicas = update.replicas;
          if (update.cells_total != 0) entry.cells_total = update.cells_total;
          entry.cells_done = std::max(entry.cells_done, update.cells_done);
          entry.committed = std::max(entry.committed, update.committed);
          entry.dispatches = std::max(entry.dispatches, update.dispatches);
          entry.state = update.state;
          if (!update.worker.empty()) entry.worker = update.worker;
          if (update.kips > 0.0) entry.kips = update.kips;
        };
    if (config_.campaign_runner) {
      // Coordinator mode: the fleet dispatcher executes the campaign on
      // worker daemons (sim/fleet.h) under the same cancel/progress hooks.
      CampaignResult fleet_result;
      if (config_.campaign_runner(campaign_spec, &fleet_result,
                                  &runner_error)) {
        campaign_result = std::move(fleet_result);
      } else {
        runner_failed = true;
      }
    } else {
      campaign_result = run_campaign(campaign_spec);
    }
    if (campaign_result.has_value()) {
      cancelled = campaign_result->cancelled;
      for (const auto& per_workload : campaign_result->matrix.cells) {
        for (const auto& per_replica : per_workload) {
          for (const CampaignCell& cell : per_replica) {
            committed += cell.committed;
          }
        }
      }
    }
  } else {
    experiment_spec.cancel = expired;
    experiment_spec.progress = progress;
    experiment_spec.metrics = &registry_;
    experiment_result = run_experiment(experiment_spec);
    cancelled = experiment_result->cancelled;
    for (const auto& per_model : experiment_result->cells) {
      for (const auto& per_seed : per_model) {
        for (const ExperimentCell& cell : per_seed) {
          committed += cell.committed;
        }
      }
    }
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  JobState final_state = JobState::kDone;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return;
    Job& job = it->second;
    job.wall_seconds = wall_seconds;
    job.committed = committed;
    if (runner_failed) {
      job.state = JobState::kFailed;
      job.error = runner_error;
      ++failed_;
    } else if (cancelled) {
      job.state = JobState::kTimeout;
      ++timeouts_;
    } else {
      job.state = JobState::kDone;
      job.experiment_result = std::move(experiment_result);
      job.campaign_result = std::move(campaign_result);
      ++completed_;
      total_committed_ += committed;
      total_wall_seconds_ += wall_seconds;
    }
    final_state = job.state;
  }

  std::vector<log::Field> extra = {
      log::field("state", job_state_name(final_state)),
      log::field("wall_seconds", wall_seconds),
      log::field("committed", committed)};
  if (runner_failed) extra.push_back(log::field("error", runner_error));
  logger_->log(runner_failed ? log::Level::kWarn : log::Level::kInfo,
               "job_finished",
               format("job %llu finished in state %s",
                      static_cast<unsigned long long>(id),
                      job_state_name(final_state)),
               lifecycle_fields(std::move(extra)));
}

}  // namespace reese::sim

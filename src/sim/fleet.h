// Fleet coordinator: fan one fault campaign across N reesed worker
// daemons and merge the shards back byte-identically (DESIGN.md §15).
//
// The coordinator side of reesed --coordinator. A campaign splits along
// the replica axis (split_campaign_spec) into more shards than workers
// (shards_per_worker controls the granularity of failure re-dispatch);
// one thread per worker pulls shards from a shared queue, POSTs each to
// the worker's /v1/campaigns over a persistent keep-alive connection
// (http::Client), polls job state, and fetches the finished shard's
// lossless per-cell matrix (?format=cells). Shards land in the merged
// matrix through place_shard, which enforces the shard identity contract
// (seed / budget / rate / axes) instead of trusting the worker.
//
// Failure semantics:
//  * transient transport errors and 429 backpressure retry with bounded
//    exponential backoff + jitter (http::RequestOptions);
//  * a worker that stays unreachable past the retry budget is declared
//    dead: its in-flight shard goes back on the queue for the surviving
//    workers, and its thread exits — a SIGKILLed worker costs one shard's
//    worth of redone work, never the campaign;
//  * a worker that *rejects* a shard (4xx/5xx) or returns a result that
//    fails the identity check aborts the campaign with a diagnostic —
//    those are deterministic failures that retrying cannot fix;
//  * when every worker is dead with shards still pending, the campaign
//    fails rather than hangs.
//
// Determinism: a shard re-dispatched to a different worker computes
// exactly the same cells (derive_cell_seed is a pure function of the
// campaign seed and global cell coordinates), so worker death changes
// wall-clock time, never results.
//
// Observability (DESIGN.md §17): the coordinator mints one trace id per
// campaign and a fresh span id per shard dispatch; every worker request
// carries them on X-Reese-Trace, lifecycle events go to the structured
// log (common/log.h), per-shard state flows up through
// CampaignSpec::shard_progress, and an optional Chrome-trace sink gets a
// fleet timeline (one track per worker, dispatch/run/merge slices, flow
// arrows dispatch→merge, instants for probe failures, worker deaths and
// re-dispatches).
#pragma once

#include <string>
#include <vector>

#include "common/log.h"
#include "core/chrome_trace.h"
#include "sim/campaign.h"

namespace reese::sim::fleet {

struct Worker {
  std::string host;
  u16 port = 0;
};

/// Parse "host:port" (host may be a dotted IPv4 literal). False with a
/// diagnostic for anything else.
bool parse_worker_address(const std::string& address, Worker* out,
                          std::string* error);

/// Read a workers file: one host:port per line; blank lines and
/// '#'-comments skipped. False with a diagnostic on I/O or parse errors.
bool load_workers_file(const std::string& path, std::vector<Worker>* out,
                       std::string* error);

struct FleetConfig {
  std::vector<Worker> workers;
  /// Bearer token sent on every worker request ("" = none).
  std::string auth_token;
  /// Shards per *alive* worker; >1 makes re-dispatch after a worker death
  /// cheaper (smaller lost unit) at the cost of more requests.
  u32 shards_per_worker = 2;
  /// Wall-clock timeout_s requested for each shard job on the worker;
  /// 0 = the worker's default.
  double shard_timeout_s = 0.0;
  double probe_deadline_s = 5.0;    ///< /v1/healthz budget per attempt
  double request_deadline_s = 10.0; ///< submit/poll budget per attempt
  double fetch_deadline_s = 60.0;   ///< ?format=cells fetch budget
  /// Retries per request (exponential backoff + jitter); a worker is
  /// declared dead only after max_retries + 1 consecutive failures.
  int max_retries = 3;
  double backoff_ms = 100.0;
  double backoff_max_ms = 2000.0;
  double poll_interval_ms = 50.0;   ///< job-state poll cadence
  /// Structured event log target; nullptr = log::global().
  log::Logger* logger = nullptr;
  /// Fleet-timeline Chrome trace: a sink takes precedence over a path
  /// (tests inject a StringTraceSink); a non-empty path opens a
  /// FileTraceSink for the campaign (--fleet-trace-out). Both empty =
  /// no timeline.
  core::TraceSink* trace_sink = nullptr;
  std::string trace_path;
  /// Campaign trace id; 0 = minted from the campaign seed and a
  /// process-wide campaign counter (always nonzero).
  u64 trace_id = 0;
};

/// True when the worker answers /v1/healthz. Probes the worker up to
/// max_retries + 1 times, backing off deterministically (backoff_ms
/// doubling, capped at backoff_max_ms) between attempts — a worker that
/// refuses one transient probe (503 while draining, listen backlog hiccup)
/// is not declared dead. Each failed attempt is logged as a
/// probe_attempt_failed event; `attempts` (optional) reports how many
/// attempts were made.
bool probe_worker(const Worker& worker, const FleetConfig& config,
                  int* attempts = nullptr);

/// Metrics federation (DESIGN.md §17): scrape every configured worker's
/// /v1/metrics, parse_prometheus the body and merge_from it into `out`
/// with a {worker="host:port"} label, plus a reese_fleet_worker_up gauge
/// per worker (1 = answered this scrape). An unreachable worker is
/// reported down, not an error; false only when a reachable worker's
/// body cannot be parsed or merged. Deterministic: the merged registry's
/// prometheus() text is byte-identical across scrape orders.
bool collect_fleet_metrics(const FleetConfig& config, metrics::Registry* out,
                           std::string* error);

/// The JSON body POSTed to a worker for one shard (exposed for tests:
/// the wire spec must carry resolved values and the shard's
/// replica_begin, and must never set "quick"). `timeout_s` <= 0 omits
/// the field.
std::string campaign_spec_json(const CampaignSpec& shard, double timeout_s);

/// Run `spec` across the fleet and merge the shards into `*result`,
/// byte-identical (json()/csv()) to a single-node run_campaign of the
/// same spec. Honors spec.cancel (the merged result is then marked
/// cancelled, matching run_campaign) and reports shard completions
/// through spec.progress. Returns false with a diagnostic when the
/// campaign cannot complete: no reachable workers, a deterministic shard
/// rejection/failure, an identity-check violation, or every worker dead
/// with shards pending.
bool run_fleet_campaign(const FleetConfig& config, const CampaignSpec& spec,
                        CampaignResult* result, std::string* error);

}  // namespace reese::sim::fleet

#include "sim/experiment.h"

#include <atomic>
#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/diag.h"
#include "common/snapshot.h"
#include "common/strutil.h"
#include "common/thread_pool.h"
#include "sim/simulator.h"

namespace reese::sim {

const char* model_name(Model model) {
  switch (model) {
    case Model::kBaseline: return "Baseline";
    case Model::kReese: return "REESE";
    case Model::kReese1Alu: return "R+1ALU";
    case Model::kReese2Alu: return "R+2ALU";
    case Model::kReese2Alu1Mult: return "R+2ALU+1Mult";
  }
  return "?";
}

const char* model_slug(Model model) {
  switch (model) {
    case Model::kBaseline: return "baseline";
    case Model::kReese: return "reese";
    case Model::kReese1Alu: return "reese_1alu";
    case Model::kReese2Alu: return "reese_2alu";
    case Model::kReese2Alu1Mult: return "reese_2alu_1mult";
  }
  return "?";
}

bool model_from_slug(const std::string& slug, Model* out) {
  for (Model model : standard_models()) {
    if (slug == model_slug(model)) {
      *out = model;
      return true;
    }
  }
  return false;
}

const std::vector<Model>& standard_models() {
  static const auto* kModels = new std::vector<Model>{
      Model::kBaseline, Model::kReese, Model::kReese1Alu, Model::kReese2Alu,
      Model::kReese2Alu1Mult};
  return *kModels;
}

core::CoreConfig apply_model(core::CoreConfig base, Model model) {
  switch (model) {
    case Model::kBaseline: return base;
    case Model::kReese: return core::with_reese(base, 0, 0);
    case Model::kReese1Alu: return core::with_reese(base, 1, 0);
    case Model::kReese2Alu: return core::with_reese(base, 2, 0);
    case Model::kReese2Alu1Mult: return core::with_reese(base, 2, 1);
  }
  return base;
}

double ExperimentResult::average(usize model_index) const {
  if (ipc.empty()) return 0.0;
  double sum = 0.0;
  for (const std::vector<double>& row : ipc) sum += row[model_index];
  return sum / static_cast<double>(ipc.size());
}

double ExperimentResult::overhead_pct(usize model_index) const {
  assert(!spec.models.empty() && spec.models[0] == Model::kBaseline);
  const double base = average(0);
  if (base == 0.0) return 0.0;
  return 100.0 * (base - average(model_index)) / base;
}

std::string ExperimentResult::table() const {
  std::string out = spec.title + "\n";
  out += format("  (config: %s; %llu instructions/run)\n",
                spec.base.summary().c_str(),
                static_cast<unsigned long long>(spec.instructions));

  out += format("  %-10s", "workload");
  for (Model model : spec.models) out += format("%14s", model_name(model));
  out += "\n";

  for (usize w = 0; w < spec.workloads.size(); ++w) {
    out += format("  %-10s", spec.workloads[w].c_str());
    for (usize m = 0; m < spec.models.size(); ++m) {
      out += format("%14.3f", ipc[w][m]);
    }
    out += "\n";
  }

  out += format("  %-10s", "AV");
  for (usize m = 0; m < spec.models.size(); ++m) {
    out += format("%14.3f", average(m));
  }
  out += "\n";

  if (!spec.models.empty() && spec.models[0] == Model::kBaseline) {
    out += format("  %-10s", "vs base");
    out += format("%14s", "-");
    for (usize m = 1; m < spec.models.size(); ++m) {
      out += format("%13.1f%%", -overhead_pct(m));
    }
    out += "\n";
  }
  return out;
}

std::string ExperimentResult::csv() const {
  std::string out = "workload,model,ipc,ipc_stdev\n";
  for (usize w = 0; w < spec.workloads.size(); ++w) {
    for (usize m = 0; m < spec.models.size(); ++m) {
      out += format("%s,%s,%.6f,%.6f\n", spec.workloads[w].c_str(),
                    model_name(spec.models[m]), ipc[w][m], ipc_stdev[w][m]);
    }
  }
  return out;
}

std::string ExperimentResult::json() const {
  std::string out = "{\n";
  out += "  \"schema\": \"reese-experiment-v1\",\n";
  out += format("  \"title\": \"%s\",\n", json_escape(spec.title).c_str());
  out += format("  \"instructions\": %llu,\n",
                static_cast<unsigned long long>(spec.instructions));
  out += format("  \"seed\": %llu,\n",
                static_cast<unsigned long long>(spec.seed));
  out += "  \"extra_seeds\": [";
  for (usize s = 0; s < spec.extra_seeds.size(); ++s) {
    out += format("%s%llu", s == 0 ? "" : ", ",
                  static_cast<unsigned long long>(spec.extra_seeds[s]));
  }
  out += "],\n";
  out += "  \"workloads\": [";
  for (usize w = 0; w < spec.workloads.size(); ++w) {
    out += format("%s\"%s\"", w == 0 ? "" : ", ",
                  json_escape(spec.workloads[w]).c_str());
  }
  out += "],\n";
  out += "  \"models\": [";
  for (usize m = 0; m < spec.models.size(); ++m) {
    out += format("%s\"%s\"", m == 0 ? "" : ", ",
                  model_slug(spec.models[m]));
  }
  out += "],\n";
  const auto append_matrix =
      [&out](const char* key, const std::vector<std::vector<double>>& matrix) {
        out += format("  \"%s\": [\n", key);
        for (usize w = 0; w < matrix.size(); ++w) {
          out += "    [";
          for (usize m = 0; m < matrix[w].size(); ++m) {
            out += format("%s%.6f", m == 0 ? "" : ", ", matrix[w][m]);
          }
          out += format("]%s\n", w + 1 < matrix.size() ? "," : "");
        }
        out += "  ],\n";
      };
  append_matrix("ipc", ipc);
  append_matrix("ipc_stdev", ipc_stdev);
  out += "  \"average\": [";
  for (usize m = 0; m < spec.models.size(); ++m) {
    out += format("%s%.6f", m == 0 ? "" : ", ", average(m));
  }
  out += "],\n";
  out += "  \"cells\": [\n";
  for (usize w = 0; w < cells.size(); ++w) {
    out += "    [\n";
    for (usize m = 0; m < cells[w].size(); ++m) {
      out += "      [";
      for (usize s = 0; s < cells[w][m].size(); ++s) {
        const ExperimentCell& cell = cells[w][m][s];
        out += format(
            "%s{\"ipc\": %.6f, \"cycles\": %llu, \"committed\": %llu}",
            s == 0 ? "" : ", ", cell.ipc,
            static_cast<unsigned long long>(cell.cycles),
            static_cast<unsigned long long>(cell.committed));
      }
      out += format("]%s\n", m + 1 < cells[w].size() ? "," : "");
    }
    out += format("    ]%s\n", w + 1 < cells.size() ? "," : "");
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

namespace {

/// "Figure 2: initial comparison" -> "figure_2_initial_comparison".
std::string slugify(const std::string& title) {
  std::string slug;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug.empty() ? "experiment" : slug;
}

void maybe_write_csv(const ExperimentResult& result) {
  const char* dir = std::getenv("REESE_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path =
      std::string(dir) + "/" + slugify(result.spec.title) + ".csv";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "experiment: cannot write %s\n", path.c_str());
    return;
  }
  const std::string csv = result.csv();
  std::fwrite(csv.data(), 1, csv.size(), file);
  std::fclose(file);
}

u32 g_default_jobs = 0;

// One finished grid cell persisted as a ".done" record so a resumed grid
// skips the cell outright. The record is bound to the budget and workload
// seed: a record from a differently-shaped run is ignored (the cell simply
// re-runs), never misused.
constexpr u32 kCellRecordTag = 0x43454C4C;  // "CELL"

void save_cell_record(const std::string& path, u64 instructions, u64 seed,
                      const ExperimentCell& cell) {
  SnapshotWriter writer;
  writer.put_section(kCellRecordTag);
  writer.put_u64(instructions);
  writer.put_u64(seed);
  writer.put_u32(static_cast<u32>(cell.stop));
  writer.put_f64(cell.ipc);
  writer.put_u64(cell.cycles);
  writer.put_u64(cell.committed);
  std::string error;
  if (!writer.write_file(path, kSnapshotFormatVersion, &error)) {
    std::fprintf(stderr, "experiment: %s\n", error.c_str());
  }
}

bool load_cell_record(const std::string& path, u64 instructions, u64 seed,
                      ExperimentCell* cell) {
  SnapshotReader reader;
  if (!reader.open_file(path, kSnapshotFormatVersion)) return false;
  if (!reader.expect_section(kCellRecordTag)) return false;
  if (reader.get_u64() != instructions) return false;
  if (reader.get_u64() != seed) return false;
  ExperimentCell loaded;
  loaded.stop = static_cast<core::StopReason>(reader.get_u32());
  loaded.ipc = reader.get_f64();
  loaded.cycles = reader.get_u64();
  loaded.committed = reader.get_u64();
  if (!reader.ok() || !reader.at_end()) return false;
  *cell = loaded;
  return true;
}

}  // namespace

void set_default_jobs(u32 jobs) { g_default_jobs = jobs; }

u32 default_jobs() { return g_default_jobs; }

void parse_jobs_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--jobs") == 0 || std::strcmp(arg, "-jobs") == 0) {
      if (i + 1 < argc) value = argv[i + 1];
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      value = arg + 7;
    }
    if (value == nullptr) continue;
    // sanitize_job_count turns 0/negative/absurd requests into 0 (auto =
    // hardware concurrency) with a warning instead of silently ignoring
    // them — the old behaviour made "--jobs 0" keep whatever default was
    // installed earlier.
    set_default_jobs(sanitize_job_count(std::strtol(value, nullptr, 10)));
  }
}

ExperimentResult run_experiment(const ExperimentSpec& spec_in) {
  ExperimentSpec spec = spec_in;
  if (spec.models.empty()) spec.models = standard_models();
  if (spec.workloads.empty()) spec.workloads = workloads::spec_like_names();
  if (spec.instructions == 0) spec.instructions = default_instruction_budget();
  if (spec.checkpoint.dir.empty() && spec.checkpoint.interval == 0 &&
      !spec.checkpoint.resume) {
    spec.checkpoint = default_checkpoint();
  }
  if (!spec.checkpoint.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(spec.checkpoint.dir, ec);
    if (ec) {
      std::fprintf(stderr, "experiment: cannot create checkpoint dir %s: %s\n",
                   spec.checkpoint.dir.c_str(), ec.message().c_str());
      std::exit(1);
    }
  }
  const CheckpointOptions& ckpt = spec.checkpoint;

  std::vector<u64> seeds = {spec.seed};
  seeds.insert(seeds.end(), spec.extra_seeds.begin(),
               spec.extra_seeds.end());

  ExperimentResult result;
  result.spec = spec;
  result.ipc.assign(spec.workloads.size(),
                    std::vector<double>(spec.models.size(), 0.0));
  result.ipc_stdev.assign(spec.workloads.size(),
                          std::vector<double>(spec.models.size(), 0.0));
  result.cells.assign(
      spec.workloads.size(),
      std::vector<std::vector<ExperimentCell>>(
          spec.models.size(), std::vector<ExperimentCell>(seeds.size())));

  struct Job {
    usize workload_index;
    usize model_index;
    usize seed_index;
  };
  std::vector<Job> jobs;
  for (usize w = 0; w < spec.workloads.size(); ++w) {
    for (usize m = 0; m < spec.models.size(); ++m) {
      for (usize s = 0; s < seeds.size(); ++s) {
        jobs.push_back({w, m, s});
      }
    }
  }

  // Progress accounting observes the grid without perturbing it; the grid
  // counters live in the caller's registry so a long-lived service
  // accumulates across jobs.
  std::atomic<u64> cells_done{0};
  std::atomic<u64> committed_total{0};
  metrics::Counter* cells_counter =
      spec.metrics == nullptr
          ? nullptr
          : spec.metrics->counter("reese_grid_cells_completed_total",
                                  {{"kind", "experiment"}},
                                  "Grid cells finished");
  metrics::Counter* committed_counter =
      spec.metrics == nullptr
          ? nullptr
          : spec.metrics->counter(
                "reese_grid_committed_instructions_total",
                {{"kind", "experiment"}},
                "Instructions committed across grid cells");

  // Each cell is an independent simulation: it builds its own workload,
  // memory image and pipeline, and writes only its own result.cells slot,
  // so the matrix is identical no matter how many workers ran it or in
  // what order cells finished.
  std::atomic<bool> cancelled{false};
  auto run_cell = [&](usize job_index) {
    if (spec.cancel &&
        (cancelled.load(std::memory_order_relaxed) || spec.cancel())) {
      cancelled.store(true, std::memory_order_relaxed);
      return;
    }
    const Job job = jobs[job_index];

    ExperimentCell& cell =
        result.cells[job.workload_index][job.model_index][job.seed_index];
    const auto account_cell = [&](u64 committed) {
      const u64 done = cells_done.fetch_add(1, std::memory_order_relaxed) + 1;
      const u64 committed_now =
          committed_total.fetch_add(committed, std::memory_order_relaxed) +
          committed;
      if (cells_counter != nullptr) cells_counter->inc();
      if (committed_counter != nullptr) committed_counter->inc(committed);
      if (spec.progress) {
        spec.progress({done, static_cast<u64>(jobs.size()), committed_now});
      }
    };

    // Cell checkpoint files: "<slug>-wW-mM-sS.done" holds a finished
    // cell's result, "<...>.snap" a mid-cell pipeline snapshot.
    std::string cell_base;
    if (!ckpt.dir.empty()) {
      cell_base = ckpt.dir + "/" + slugify(spec.title) +
                  format("-w%zu-m%zu-s%zu", job.workload_index,
                         job.model_index, job.seed_index);
    }
    if (ckpt.resume && !cell_base.empty() &&
        load_cell_record(cell_base + ".done", spec.instructions,
                         seeds[job.seed_index], &cell)) {
      account_cell(cell.committed);
      return;
    }

    workloads::WorkloadOptions options;
    options.seed = seeds[job.seed_index];
    options.iterations = 0;  // run forever; budget bounds the simulation
    auto workload = workloads::make_workload(spec.workloads[job.workload_index],
                                             options);
    if (!workload.ok()) {
      std::fprintf(stderr, "experiment: %s\n",
                   workload.error().to_string().c_str());
      std::exit(1);
    }
    Simulator simulator(std::move(workload).value(),
                        apply_model(spec.base, spec.models[job.model_index]));
    SimResult sim_result;
    if (!cell_base.empty()) {
      std::string error;
      sim_result =
          run_with_checkpoints(&simulator, spec.instructions, ckpt.interval,
                               cell_base + ".snap", ckpt.resume, &error);
      if (!error.empty()) {
        std::fprintf(stderr, "experiment: %s\n", error.c_str());
        std::exit(1);
      }
    } else {
      sim_result = simulator.run(spec.instructions);
    }
    if (sim_result.stop != core::StopReason::kCommitTarget) {
      std::fprintf(stderr,
                   "experiment: %s/%s stopped early (%s) after %llu insts, "
                   "%llu cycles\n",
                   spec.workloads[job.workload_index].c_str(),
                   model_name(spec.models[job.model_index]),
                   core::stop_reason_name(sim_result.stop),
                   static_cast<unsigned long long>(sim_result.committed),
                   static_cast<unsigned long long>(sim_result.cycles));
      if (sim_result.stop == core::StopReason::kCycleLimit) {
        std::fprintf(stderr,
                     "experiment: cycle limit hit at cycle %llu — raise it "
                     "via REESE_SIM_CYCLE_LIMIT\n",
                     static_cast<unsigned long long>(sim_result.cycles));
      }
      std::exit(1);
    }
    cell.ipc = sim_result.ipc;
    cell.cycles = sim_result.cycles;
    cell.committed = sim_result.committed;
    cell.stop = sim_result.stop;
    if (!cell_base.empty()) {
      save_cell_record(cell_base + ".done", spec.instructions,
                       seeds[job.seed_index], cell);
      std::remove((cell_base + ".snap").c_str());
    }

    account_cell(sim_result.committed);
  };

  const u32 workers = resolve_job_count(
      spec.jobs != 0 ? spec.jobs : g_default_jobs);
  if (workers <= 1 || jobs.size() <= 1) {
    // Reference path: plain sequential loop on the calling thread.
    for (usize i = 0; i < jobs.size(); ++i) run_cell(i);
  } else {
    ThreadPool pool(workers);
    pool.parallel_for(jobs.size(), run_cell);
  }

  for (usize w = 0; w < spec.workloads.size(); ++w) {
    for (usize m = 0; m < spec.models.size(); ++m) {
      double sum = 0.0;
      for (const ExperimentCell& cell : result.cells[w][m]) sum += cell.ipc;
      const double mean = sum / static_cast<double>(seeds.size());
      result.ipc[w][m] = mean;
      if (seeds.size() > 1) {
        double variance = 0.0;
        for (const ExperimentCell& cell : result.cells[w][m]) {
          variance += (cell.ipc - mean) * (cell.ipc - mean);
        }
        variance /= static_cast<double>(seeds.size() - 1);
        result.ipc_stdev[w][m] = std::sqrt(variance);
      }
    }
  }

  result.cancelled = cancelled.load(std::memory_order_relaxed);
  if (result.cancelled) return result;  // incomplete matrix: no CSV export

  maybe_write_csv(result);
  return result;
}

}  // namespace reese::sim

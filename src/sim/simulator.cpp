#include "sim/simulator.h"

#include <cstdio>
#include <cstdlib>
#include <limits>

namespace reese::sim {

Simulator::Simulator(workloads::Workload workload,
                     const core::CoreConfig& config)
    : workload_(std::move(workload)) {
  pipeline_ = std::make_unique<core::Pipeline>(workload_.program, config);
}

SimResult Simulator::run(u64 instructions) {
  SimResult result;
  result.workload = workload_.name;
  result.stop = pipeline_->run(instructions, default_cycle_limit(instructions));
  result.ipc = pipeline_->stats().ipc();
  result.cycles = pipeline_->stats().cycles;
  result.committed = pipeline_->stats().committed;
  return result;
}

Cycle default_cycle_limit(u64 instructions) {
  if (const char* env = std::getenv("REESE_SIM_CYCLE_LIMIT")) {
    const long long value = std::atoll(env);
    if (value > 0) return static_cast<Cycle>(value);
  }
  constexpr Cycle kMaxCycle = std::numeric_limits<Cycle>::max();
  if (instructions > kMaxCycle / 64) {
    std::fprintf(stderr,
                 "reese: 64 x %llu instructions overflows the cycle counter; "
                 "clamping cycle limit to %llu\n",
                 static_cast<unsigned long long>(instructions),
                 static_cast<unsigned long long>(kMaxCycle));
    return kMaxCycle;
  }
  return 64 * instructions;
}

u64 default_instruction_budget() {
  if (const char* env = std::getenv("REESE_SIM_INSTR")) {
    const long long value = std::atoll(env);
    if (value > 0) return static_cast<u64>(value);
  }
  // Smallest budget at which the figures' per-model overhead converges:
  // at 1M every bar of fig2 is within 0.3pp of a 10M reference run, while
  // 300k is off by up to 0.5pp (see EXPERIMENTS.md).
  return 1'000'000;
}

}  // namespace reese::sim

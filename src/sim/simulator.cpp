#include "sim/simulator.h"

#include <cstdlib>

namespace reese::sim {

Simulator::Simulator(workloads::Workload workload,
                     const core::CoreConfig& config)
    : workload_(std::move(workload)) {
  pipeline_ = std::make_unique<core::Pipeline>(workload_.program, config);
}

SimResult Simulator::run(u64 instructions) {
  SimResult result;
  result.workload = workload_.name;
  result.stop = pipeline_->run(instructions, default_cycle_limit(instructions));
  result.ipc = pipeline_->stats().ipc();
  result.cycles = pipeline_->stats().cycles;
  result.committed = pipeline_->stats().committed;
  return result;
}

Cycle default_cycle_limit(u64 instructions) {
  if (const char* env = std::getenv("REESE_SIM_CYCLE_LIMIT")) {
    const long long value = std::atoll(env);
    if (value > 0) return static_cast<Cycle>(value);
  }
  return 64 * instructions;
}

u64 default_instruction_budget() {
  if (const char* env = std::getenv("REESE_SIM_INSTR")) {
    const long long value = std::atoll(env);
    if (value > 0) return static_cast<u64>(value);
  }
  return 300'000;
}

}  // namespace reese::sim

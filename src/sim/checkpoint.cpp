#include "sim/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/snapshot.h"

namespace reese::sim {

namespace {

constexpr u32 kTagMeta = 0x4D455441;  // "META"

CheckpointOptions g_default_checkpoint;

bool file_exists(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  std::fclose(file);
  return true;
}

/// Reads the value of "--flag VALUE" or "--flag=VALUE" at argv[i]; returns
/// nullptr when argv[i] is not `flag`.
const char* flag_value(int argc, char** argv, int* i, const char* flag) {
  const char* arg = argv[*i];
  const usize flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) != 0) return nullptr;
  if (arg[flag_len] == '=') return arg + flag_len + 1;
  if (arg[flag_len] == '\0' && *i + 1 < argc) {
    ++*i;
    return argv[*i];
  }
  return nullptr;
}

}  // namespace

u64 snapshot_fingerprint(const std::string& workload_name,
                         const core::CoreConfig& config) {
  // The instruction budget is deliberately not part of the identity: a
  // resumed run may target a larger budget than the run that snapshotted.
  const std::string summary = config.summary();
  u64 hash = snapshot_fnv1a(
      reinterpret_cast<const u8*>(workload_name.data()), workload_name.size());
  return snapshot_fnv1a(reinterpret_cast<const u8*>(summary.data()),
                        summary.size(), hash);
}

bool save_snapshot(Simulator* simulator, const std::string& path,
                   std::string* error) {
  core::Pipeline& pipeline = simulator->pipeline();
  if (!pipeline.drain_to_barrier()) {
    if (error != nullptr)
      *error = "pipeline failed to drain to the snapshot barrier";
    return false;
  }
  SnapshotWriter writer;
  writer.put_section(kTagMeta);
  writer.put_u64(snapshot_fingerprint(simulator->workload().name,
                                      pipeline.config()));
  writer.put_string(simulator->workload().name);
  writer.put_u64(pipeline.stats().committed);
  pipeline.save_state(&writer);
  return writer.write_file(path, kSnapshotFormatVersion, error);
}

bool load_snapshot(Simulator* simulator, const std::string& path,
                   std::string* error) {
  core::Pipeline& pipeline = simulator->pipeline();
  SnapshotReader reader;
  if (!reader.open_file(path, kSnapshotFormatVersion)) {
    if (error != nullptr) *error = reader.error();
    return false;
  }
  if (!reader.expect_section(kTagMeta)) {
    if (error != nullptr) *error = reader.error();
    return false;
  }
  const u64 fingerprint = reader.get_u64();
  const std::string workload_name = reader.get_string();
  reader.get_u64();  // committed-at-save, informational
  if (reader.ok() &&
      fingerprint !=
          snapshot_fingerprint(simulator->workload().name, pipeline.config())) {
    if (error != nullptr)
      *error = "snapshot fingerprint mismatch: file was taken from workload '" +
               workload_name + "' with a different configuration";
    return false;
  }
  pipeline.load_state(&reader);
  if (!reader.ok()) {
    if (error != nullptr) *error = reader.error();
    return false;
  }
  if (!reader.at_end()) {
    if (error != nullptr) *error = "snapshot has trailing payload bytes";
    return false;
  }
  return true;
}

void set_default_checkpoint(const CheckpointOptions& options) {
  g_default_checkpoint = options;
}

const CheckpointOptions& default_checkpoint() { return g_default_checkpoint; }

void parse_checkpoint_flags(int argc, char** argv) {
  CheckpointOptions options = g_default_checkpoint;
  for (int i = 1; i < argc; ++i) {
    if (const char* value = flag_value(argc, argv, &i, "--checkpoint-dir")) {
      options.dir = value;
    } else if (const char* value =
                   flag_value(argc, argv, &i, "--checkpoint-interval")) {
      const long long parsed = std::atoll(value);
      options.interval = parsed > 0 ? static_cast<u64>(parsed) : 0;
    } else if (const char* value =
                   flag_value(argc, argv, &i, "--resume-from")) {
      options.dir = value;
      options.resume = true;
    }
  }
  set_default_checkpoint(options);
}

SimResult run_with_checkpoints(Simulator* simulator, u64 instructions,
                               u64 interval, const std::string& path,
                               bool resume, std::string* error) {
  core::Pipeline& pipeline = simulator->pipeline();
  if (resume && !path.empty() && file_exists(path)) {
    if (!load_snapshot(simulator, path, error)) return SimResult{};
  }
  if (interval == 0 || path.empty()) return simulator->run(instructions);

  SimResult result;
  result.workload = simulator->workload().name;
  result.stop = core::StopReason::kCommitTarget;
  const Cycle cycle_limit = default_cycle_limit(instructions);
  while (pipeline.stats().committed < instructions) {
    const u64 boundary = std::min(
        instructions, (pipeline.stats().committed / interval + 1) * interval);
    result.stop = pipeline.run(boundary, cycle_limit);
    if (result.stop != core::StopReason::kCommitTarget) break;
    // The final boundary is not snapshotted: the run is complete, and the
    // drain would perturb the terminal stats relative to a plain run-out.
    if (pipeline.stats().committed >= instructions) break;
    std::string save_error;
    if (!save_snapshot(simulator, path, &save_error)) {
      // Best-effort: a failed snapshot write costs resumability, not
      // correctness, but the drain already happened so determinism vs a
      // same-interval reference run is preserved either way.
      std::fprintf(stderr, "reese: checkpoint save failed: %s\n",
                   save_error.c_str());
    }
  }
  result.ipc = pipeline.stats().ipc();
  result.cycles = pipeline.stats().cycles;
  result.committed = pipeline.stats().committed;
  return result;
}

}  // namespace reese::sim

// reesed's job manager: a long-lived simulation service in front of
// run_experiment (sim/experiment.h) and run_campaign (sim/campaign.h).
//
// The ROADMAP's "serve simulations, not just batch runs" step: instead of
// one process per figure, a resident daemon accepts JSON specs over HTTP
// (common/http.h), validates them against the same flag surface the batch
// CLIs expose, queues them in a bounded FIFO (common/thread_pool.h
// TaskQueue) and lets clients poll job state and fetch results as JSON or
// CSV. Simulations run on the queue's worker threads; HTTP handlers only
// touch the job table, so every request is answered in microseconds no
// matter how deep the backlog is.
//
// Endpoints (all JSON unless noted; see DESIGN.md §11 for full schemas):
//   POST /v1/experiments        submit an experiment spec      → 202 {id}
//   POST /v1/campaigns          submit a fault-campaign spec   → 202 {id}
//   GET  /v1/jobs/<id>          job status                     → 200
//   GET  /v1/jobs/<id>/progress live cells/instructions/kIPS   → 200
//   GET  /v1/jobs/<id>/result   result; ?format=csv for CSV    → 200/202/408
//   GET  /v1/healthz            liveness                       → 200
//   GET  /v1/stats              queue/jobs/throughput counters → 200
//   GET  /v1/metrics            Prometheus text exposition (daemon-wide
//                               counters + live grid counters; DESIGN.md §12)
//
// Job lifecycle: queued → running → {done, timeout, failed}. Robustness is
// part of the contract:
//   * a full queue refuses the submit with 429 (backpressure, never
//     unbounded memory);
//   * specs are capped (per-cell instruction budget, grid cell count)
//     at validation time — an over-budget spec is a 400, not a runaway;
//   * every job carries a wall-clock timeout enforced through the specs'
//     cooperative cancel hook; an expired job ends in state "timeout" and
//     its result fetch answers 408;
//   * drain() blocks until admitted jobs finish (reesed's SIGTERM path).
#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/http.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "sim/campaign.h"
#include "sim/experiment.h"
#include "sim/progress.h"

namespace reese::sim {

struct ServiceConfig {
  /// Concurrent jobs (TaskQueue worker threads). Each job additionally
  /// fans its grid over `grid_jobs` workers, so total simulation threads
  /// reach workers × grid_jobs; the defaults keep a laptop responsive.
  u32 workers = 2;
  /// Jobs allowed to wait in the queue; a submit beyond this is a 429.
  u32 queue_capacity = 16;
  /// Default grid worker count per job when a spec omits "jobs"
  /// (0 = auto: $REESE_JOBS, else hardware concurrency).
  u32 grid_jobs = 1;
  /// Per-cell instruction budget cap; a spec above it is a 400.
  u64 max_instructions = 10'000'000;
  /// Grid size cap (workloads × models/variants × seeds/replicas).
  u64 max_cells = 4096;
  /// Wall-clock timeout applied when a spec omits "timeout_s", and the
  /// upper bound a spec may request.
  double default_timeout_s = 300.0;
  double max_timeout_s = 3600.0;
  /// Bearer tokens accepted on every endpoint except /v1/healthz. Empty =
  /// open service (no Authorization header required). Each token doubles
  /// as a tenant identity for the quota below.
  std::vector<std::string> auth_tokens;
  /// Queued+running jobs one tenant (= one token; one anonymous tenant
  /// when auth is off) may hold; a submit beyond it is a 429 so one tenant
  /// fanning a million-replica spec cannot starve the fleet. 0 = no cap.
  u32 tenant_max_active = 0;
  /// Retained finished jobs; beyond this the oldest finished jobs are
  /// pruned at submit time, preferring jobs whose result was fetched.
  usize max_retained_jobs = 256;
  /// Campaign executor override: the fleet coordinator (sim/fleet.h) plugs
  /// in here so campaign jobs dispatch to workers instead of running
  /// locally. Must honor the spec's cancel/progress/shard_progress hooks;
  /// returns false with a diagnostic to fail the job. Experiments always
  /// run locally.
  std::function<bool(const CampaignSpec&, CampaignResult*, std::string*)>
      campaign_runner;
  /// Metrics federation source behind GET /v1/fleet/metrics (DESIGN.md
  /// §17): fills a fresh registry with every worker's merged series. The
  /// coordinator plugs collect_fleet_metrics in here; without it the
  /// endpoint answers 404. Returns false with a diagnostic → 502.
  std::function<bool(metrics::Registry*, std::string*)> fleet_collector;
  /// Structured event log for job lifecycle events; nullptr =
  /// log::global(). The service attaches its metrics registry to the
  /// logger for the reese_fleet_events_total counter.
  log::Logger* logger = nullptr;
};

enum class JobState { kQueued, kRunning, kDone, kTimeout, kFailed };

const char* job_state_name(JobState state);

/// Aggregate counters behind GET /v1/stats.
struct ServiceStats {
  usize queue_depth = 0;  ///< waiting (not yet running) jobs
  u32 running = 0;
  u64 submitted = 0;
  u64 completed = 0;
  u64 timeouts = 0;
  u64 failed = 0;
  u64 rejected_queue_full = 0;
  u64 rejected_quota = 0;      ///< submits refused by the per-tenant cap
  u64 total_committed = 0;     ///< instructions across finished jobs
  double total_wall_seconds = 0.0;  ///< execution time across finished jobs
  /// Cumulative simulation throughput: thousands of committed
  /// instructions per wall-second of job execution.
  double kips() const {
    return total_wall_seconds > 0.0
               ? total_committed / total_wall_seconds / 1000.0
               : 0.0;
  }
};

/// Mirror a ServiceStats snapshot into `registry` as reese_service_*
/// series (counters for the monotonic totals, gauges for queue depth /
/// running jobs / throughput). Called per scrape of GET /v1/metrics;
/// exposed for tests.
void export_service_stats(metrics::Registry* registry,
                          const ServiceStats& stats);

class SimulationService {
 public:
  explicit SimulationService(const ServiceConfig& config = {});
  ~SimulationService();

  SimulationService(const SimulationService&) = delete;
  SimulationService& operator=(const SimulationService&) = delete;

  /// Route one HTTP request. Thread-compatible with the serial
  /// http::Server loop; internal state is mutex-protected regardless, so
  /// tests may call it from multiple threads.
  http::Response handle(const http::Request& request);

  /// Block until every admitted job has finished (SIGTERM drain).
  void drain();

  ServiceStats stats() const;

 private:
  struct Job {
    u64 id = 0;
    bool is_campaign = false;
    JobState state = JobState::kQueued;
    std::string tenant;    ///< auth token that submitted it ("" = anonymous)
    bool fetched = false;  ///< a client has seen the terminal state
    std::string error;     ///< for kFailed
    double timeout_s = 0.0;
    std::chrono::steady_clock::time_point submitted_at;
    std::chrono::steady_clock::time_point started_at;  ///< set at kRunning
    double wall_seconds = 0.0;  ///< execution time once finished
    u64 committed = 0;          ///< instructions, once finished
    // Live progress, max-merged from the grid's ProgressFn (updates can
    // arrive out of order across workers), so each field is monotonic for
    // the job's lifetime — the progress endpoint never goes backwards.
    u64 cells_done = 0;
    u64 cells_total = 0;
    u64 progress_committed = 0;
    /// Trace context inherited from the X-Reese-Trace request header
    /// (invalid when absent); echoed on status/progress JSON and log
    /// events.
    http::TraceContext trace;
    /// Per-shard rollup for coordinator jobs, max-merged from the fleet's
    /// ShardProgressFn so cells_done/committed/dispatches stay monotonic
    /// across re-dispatch. Empty for locally-run jobs.
    std::vector<ShardProgressUpdate> shards;
    // Exactly one of these is engaged, matching is_campaign.
    std::optional<ExperimentSpec> experiment_spec;
    std::optional<CampaignSpec> campaign_spec;
    std::optional<ExperimentResult> experiment_result;
    std::optional<CampaignResult> campaign_result;
  };

  http::Response submit(const http::Request& request, bool is_campaign);
  /// 410 for a pruned id, 404 otherwise (caller holds mutex_).
  http::Response missing_job(u64 id);
  http::Response job_status(u64 id);
  http::Response job_progress(u64 id);
  http::Response job_result(u64 id, const http::Request& request);
  http::Response stats_response();
  http::Response metrics_response();
  http::Response fleet_metrics_response();
  void run_job(u64 id);
  std::string job_status_json(const Job& job);

  const ServiceConfig config_;
  log::Logger* logger_;  ///< never null (config.logger or log::global())
  mutable std::mutex mutex_;
  std::map<u64, Job> jobs_;
  u64 next_id_ = 1;
  u64 submitted_ = 0;
  u64 completed_ = 0;
  u64 timeouts_ = 0;
  u64 failed_ = 0;
  u64 rejected_queue_full_ = 0;
  u64 rejected_quota_ = 0;
  /// Ids of finished jobs evicted by retention pruning: their result fetch
  /// answers 410 Gone, distinct from 404 for an id never issued. Bounded
  /// (oldest ids fall off — a sufficiently ancient pruned id degrades to
  /// 404, which is the best a bounded daemon can promise).
  std::set<u64> pruned_ids_;
  u64 total_committed_ = 0;
  double total_wall_seconds_ = 0.0;
  /// Daemon-wide registry behind GET /v1/metrics. Grid runners bump its
  /// reese_grid_* counters live from worker threads (lock-free handles);
  /// service-level series are refreshed from ServiceStats at scrape time.
  /// Declared before queue_ so running jobs never outlive it.
  metrics::Registry registry_;
  /// Declared last: its destructor joins the workers before any state
  /// they touch is torn down.
  TaskQueue queue_;
};

}  // namespace reese::sim

// Cooperative progress reporting for the grid runners (DESIGN.md §12).
//
// run_experiment / run_campaign invoke an optional ProgressFn once per
// finished grid cell. The callback only observes — it cannot perturb the
// simulation, so reported matrices stay bit-identical with or without a
// listener installed. The service (sim/service.h) uses this to drive
// GET /v1/jobs/<id>/progress while a job is running.
#pragma once

#include <functional>

#include "common/types.h"

namespace reese::sim {

struct ProgressUpdate {
  u64 cells_done = 0;    ///< grid cells finished so far
  u64 cells_total = 0;   ///< cells in the whole grid
  u64 committed = 0;     ///< committed instructions across finished cells
};

/// Invoked from whichever worker thread finished the cell, so with
/// `jobs > 1` calls arrive concurrently and possibly out of order (a
/// worker that finished cell 7 may report after the one that finished
/// cell 8). Implementations must be thread-safe and should merge updates
/// as monotonic maxima. Keep it cheap: the worker blocks until it returns.
using ProgressFn = std::function<void(const ProgressUpdate&)>;

/// Per-shard progress from the fleet coordinator (DESIGN.md §17). The
/// coordinator reports each shard's lifecycle as it dispatches, polls and
/// merges; the service folds these into GET /v1/jobs/<id>/progress. A
/// shard whose worker dies is reported "re-dispatched" and then runs again
/// on another worker — consumers must merge cells_done/committed as
/// monotonic maxima so the rollup never regresses across re-dispatch.
struct ShardProgressUpdate {
  usize shard_index = 0;   ///< index into the split order
  u32 replica_begin = 0;   ///< global replica range [begin, begin+replicas)
  u32 replicas = 0;
  /// queued | dispatched | running | re-dispatched | merged.
  const char* state = "queued";
  std::string worker;      ///< "host:port" currently running the shard
  u64 cells_done = 0;      ///< cells finished on the current attempt
  u64 cells_total = 0;
  u64 committed = 0;
  double kips = 0.0;       ///< worker-reported simulation rate
  u32 dispatches = 0;      ///< attempts so far (>1 after re-dispatch)
};

/// Same threading contract as ProgressFn: invoked from coordinator worker
/// threads concurrently; must be thread-safe and cheap.
using ShardProgressFn = std::function<void(const ShardProgressUpdate&)>;

}  // namespace reese::sim

// Cooperative progress reporting for the grid runners (DESIGN.md §12).
//
// run_experiment / run_campaign invoke an optional ProgressFn once per
// finished grid cell. The callback only observes — it cannot perturb the
// simulation, so reported matrices stay bit-identical with or without a
// listener installed. The service (sim/service.h) uses this to drive
// GET /v1/jobs/<id>/progress while a job is running.
#pragma once

#include <functional>

#include "common/types.h"

namespace reese::sim {

struct ProgressUpdate {
  u64 cells_done = 0;    ///< grid cells finished so far
  u64 cells_total = 0;   ///< cells in the whole grid
  u64 committed = 0;     ///< committed instructions across finished cells
};

/// Invoked from whichever worker thread finished the cell, so with
/// `jobs > 1` calls arrive concurrently and possibly out of order (a
/// worker that finished cell 7 may report after the one that finished
/// cell 8). Implementations must be thread-safe and should merge updates
/// as monotonic maxima. Keep it cheap: the worker blocks until it returns.
using ProgressFn = std::function<void(const ProgressUpdate&)>;

}  // namespace reese::sim

#include "sim/fleet.h"

#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>

#include "common/diag.h"
#include "common/http.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/strutil.h"

namespace reese::sim::fleet {

namespace {

http::RequestOptions wire_options(const FleetConfig& config, double deadline_s,
                                  u64 jitter_seed) {
  http::RequestOptions options;
  options.deadline_s = deadline_s;
  options.max_retries = config.max_retries;
  options.backoff_ms = config.backoff_ms;
  options.backoff_max_ms = config.backoff_max_ms;
  options.jitter_seed = jitter_seed;
  if (!config.auth_token.empty()) {
    options.headers.push_back(
        {"Authorization", "Bearer " + config.auth_token});
  }
  return options;
}

std::string worker_name(const Worker& worker) {
  return format("%s:%u", worker.host.c_str(), worker.port);
}

/// Shared dispatch state: one shard queue, one merge target. Worker
/// threads block on `cv` for pending shards (a dead worker's shard comes
/// *back* onto the queue, so survivors must wake up for it).
struct Dispatch {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<usize> pending;
  usize completed = 0;
  usize total = 0;
  u32 alive_workers = 0;
  bool fatal = false;
  bool cancelled = false;
  std::string error;
  u64 cells_done = 0;
  u64 cells_total = 0;
  u64 committed = 0;
  CampaignMatrix merged;

  void fail(const std::string& message) {
    if (!fatal) {
      fatal = true;
      error = message;
    }
  }
  bool finished() const {
    return fatal || cancelled || completed == total;
  }
};

enum class ShardOutcome {
  kDone,        ///< placed into the merged matrix
  kRequeue,     ///< worker is alive but lost the job (restart); retry shard
  kWorkerDead,  ///< transport gone past the retry budget; requeue + exit
  kFatal,       ///< deterministic failure; campaign aborted
  kCancelled,   ///< spec.cancel fired
};

ShardOutcome run_shard(http::Client* client, const Worker& worker,
                       const FleetConfig& config,
                       const CampaignSpec& resolved,
                       const CampaignSpec& shard, Dispatch* dispatch,
                       const std::function<bool()>& cancel) {
  const u64 jitter_seed =
      SplitMix64(resolved.seed ^ (static_cast<u64>(shard.replica_begin) + 1))
          .next();
  const http::RequestOptions request_options =
      wire_options(config, config.request_deadline_s, jitter_seed);

  const auto fatal = [&](const std::string& message) {
    std::lock_guard<std::mutex> lock(dispatch->mutex);
    dispatch->fail(message);
    return ShardOutcome::kFatal;
  };

  // Submit the shard.
  const std::string body =
      campaign_spec_json(shard, config.shard_timeout_s);
  http::Response response =
      client->request("POST", "/v1/campaigns", body, request_options);
  if (response.status == 0) return ShardOutcome::kWorkerDead;
  if (response.status != 202) {
    const std::string detail(trim(response.body));
    return fatal(format("worker %s rejected shard r[%u,%u): %d %s",
                        worker_name(worker).c_str(), shard.replica_begin,
                        shard.replica_begin + shard.replicas, response.status,
                        detail.c_str()));
  }
  Result<json::Value> accepted = json::parse_json(response.body);
  const json::Value* id_value =
      accepted.ok() ? accepted.value().find("id") : nullptr;
  if (id_value == nullptr || !id_value->is_integer) {
    return fatal(format("worker %s returned an unparseable submit response",
                        worker_name(worker).c_str()));
  }
  const u64 job_id = id_value->uint_value;
  const std::string job_path = format("/v1/jobs/%llu",
                                      static_cast<unsigned long long>(job_id));

  // Poll until the shard job reaches a terminal state.
  while (true) {
    if (cancel && cancel()) {
      std::lock_guard<std::mutex> lock(dispatch->mutex);
      dispatch->cancelled = true;
      return ShardOutcome::kCancelled;
    }
    response = client->request("GET", job_path, "", request_options);
    if (response.status == 0) return ShardOutcome::kWorkerDead;
    if (response.status == 404 || response.status == 410) {
      // The worker restarted (fresh job table) or pruned the job: it is
      // alive, it just lost our work — resubmit the shard.
      return ShardOutcome::kRequeue;
    }
    if (response.status != 200) {
      return fatal(format("worker %s: job %llu status fetch failed: %d",
                          worker_name(worker).c_str(),
                          static_cast<unsigned long long>(job_id),
                          response.status));
    }
    Result<json::Value> status = json::parse_json(response.body);
    const json::Value* state =
        status.ok() ? status.value().find("state") : nullptr;
    if (state == nullptr || !state->is_string()) {
      return fatal(format("worker %s returned an unparseable job status",
                          worker_name(worker).c_str()));
    }
    if (state->string == "done") break;
    if (state->string == "failed" || state->string == "timeout") {
      // Deterministic on re-dispatch too (same cells, same budget): abort
      // with the worker's diagnosis instead of looping the fleet on it.
      const json::Value* job_error = status.value().find("error");
      return fatal(format(
          "worker %s: shard r[%u,%u) ended in state %s%s%s",
          worker_name(worker).c_str(), shard.replica_begin,
          shard.replica_begin + shard.replicas, state->string.c_str(),
          job_error != nullptr && job_error->is_string() ? ": " : "",
          job_error != nullptr && job_error->is_string()
              ? job_error->string.c_str()
              : ""));
    }
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        config.poll_interval_ms > 0.0 ? config.poll_interval_ms : 50.0));
  }

  // Fetch the lossless per-cell matrix and merge it.
  response = client->request(
      "GET", job_path + "/result?format=cells", "",
      wire_options(config, config.fetch_deadline_s, jitter_seed));
  if (response.status == 0) return ShardOutcome::kWorkerDead;
  if (response.status == 404 || response.status == 410) {
    return ShardOutcome::kRequeue;
  }
  if (response.status != 200) {
    return fatal(format("worker %s: shard result fetch failed: %d",
                        worker_name(worker).c_str(), response.status));
  }
  CampaignWire wire;
  std::string wire_error;
  if (!deserialize_campaign_matrix(response.body, &wire, &wire_error)) {
    return fatal(format("worker %s: %s", worker_name(worker).c_str(),
                        wire_error.c_str()));
  }

  u64 shard_committed = 0;
  u64 shard_cells = 0;
  for (const auto& workloads : wire.matrix.cells) {
    for (const auto& cells : workloads) {
      for (const CampaignCell& cell : cells) {
        shard_committed += cell.committed;
        ++shard_cells;
      }
    }
  }
  std::lock_guard<std::mutex> lock(dispatch->mutex);
  if (!place_shard(resolved, wire, &dispatch->merged, &wire_error)) {
    dispatch->fail(format("worker %s: %s", worker_name(worker).c_str(),
                          wire_error.c_str()));
    return ShardOutcome::kFatal;
  }
  ++dispatch->completed;
  dispatch->cells_done += shard_cells;
  dispatch->committed += shard_committed;
  return ShardOutcome::kDone;
}

void worker_loop(const FleetConfig& config, const Worker& worker,
                 const CampaignSpec& resolved,
                 const std::vector<CampaignSpec>& shards,
                 Dispatch* dispatch) {
  // One persistent keep-alive connection per worker thread: submit, every
  // poll and the result fetch ride the same socket.
  http::Client client(worker.host, worker.port);
  while (true) {
    usize shard_index = 0;
    {
      std::unique_lock<std::mutex> lock(dispatch->mutex);
      dispatch->cv.wait(lock, [dispatch] {
        return dispatch->finished() || !dispatch->pending.empty();
      });
      if (dispatch->finished()) return;
      shard_index = dispatch->pending.front();
      dispatch->pending.pop_front();
    }

    const ShardOutcome outcome =
        run_shard(&client, worker, config, resolved, shards[shard_index],
                  dispatch, resolved.cancel);
    switch (outcome) {
      case ShardOutcome::kDone: {
        u64 done = 0;
        u64 total = 0;
        u64 committed = 0;
        {
          std::lock_guard<std::mutex> lock(dispatch->mutex);
          done = dispatch->cells_done;
          total = dispatch->cells_total;
          committed = dispatch->committed;
        }
        if (resolved.progress) resolved.progress({done, total, committed});
        dispatch->cv.notify_all();
        break;
      }
      case ShardOutcome::kRequeue: {
        {
          std::lock_guard<std::mutex> lock(dispatch->mutex);
          dispatch->pending.push_front(shard_index);
        }
        dispatch->cv.notify_all();
        break;
      }
      case ShardOutcome::kWorkerDead: {
        {
          std::lock_guard<std::mutex> lock(dispatch->mutex);
          dispatch->pending.push_front(shard_index);
          --dispatch->alive_workers;
          if (dispatch->alive_workers == 0 &&
              dispatch->completed < dispatch->total) {
            dispatch->fail("every worker became unreachable with shards "
                           "still pending");
          }
        }
        std::fprintf(stderr,
                     "fleet: worker %s unreachable; re-dispatching shard\n",
                     worker_name(worker).c_str());
        dispatch->cv.notify_all();
        return;
      }
      case ShardOutcome::kFatal:
      case ShardOutcome::kCancelled:
        dispatch->cv.notify_all();
        return;
    }
  }
}

}  // namespace

bool parse_worker_address(const std::string& address, Worker* out,
                          std::string* error) {
  const usize colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    if (error != nullptr) {
      *error = "worker address must be host:port, got \"" + address + "\"";
    }
    return false;
  }
  i64 port = 0;
  if (!parse_int(std::string_view(address).substr(colon + 1), &port) ||
      port < 1 || port > 65535) {
    if (error != nullptr) {
      *error = "bad port in worker address \"" + address + "\"";
    }
    return false;
  }
  out->host = address.substr(0, colon);
  out->port = static_cast<u16>(port);
  return true;
}

bool load_workers_file(const std::string& path, std::vector<Worker>* out,
                       std::string* error) {
  FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open workers file " + path;
    return false;
  }
  std::string contents;
  char chunk[4096];
  usize got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    contents.append(chunk, got);
  }
  std::fclose(file);

  for (std::string_view raw_line : split(contents, '\n')) {
    const std::string_view line = trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    Worker worker;
    if (!parse_worker_address(std::string(line), &worker, error)) {
      return false;
    }
    out->push_back(std::move(worker));
  }
  if (out->empty()) {
    if (error != nullptr) *error = "workers file " + path + " lists no workers";
    return false;
  }
  return true;
}

bool probe_worker(const Worker& worker, const FleetConfig& config) {
  const http::Response response = http::request(
      worker.host, worker.port, "GET", "/v1/healthz", "",
      wire_options(config, config.probe_deadline_s, /*jitter_seed=*/0));
  return response.status == 200;
}

std::string campaign_spec_json(const CampaignSpec& shard, double timeout_s) {
  // Every field is the *resolved* value: a worker must not re-resolve
  // defaults (and must never see quick=true, which would clamp the shard
  // back to one replica).
  std::string out = "{";
  out += "\"workloads\": [";
  for (usize w = 0; w < shard.workloads.size(); ++w) {
    out += format("%s\"%s\"", w == 0 ? "" : ", ",
                  json_escape(shard.workloads[w]).c_str());
  }
  out += "], \"variants\": [";
  for (usize v = 0; v < shard.variants.size(); ++v) {
    out += format("%s\"%s\"", v == 0 ? "" : ", ",
                  json_escape(shard.variants[v].label).c_str());
  }
  out += format("], \"replicas\": %u", shard.replicas);
  out += format(", \"replica_begin\": %u", shard.replica_begin);
  out += format(", \"instructions\": %llu",
                static_cast<unsigned long long>(shard.instructions));
  // %.17g round-trips an IEEE double exactly, so the worker's injector
  // sees bit-identical rate.
  out += format(", \"rate\": %.17g", shard.rate);
  out += format(", \"seed\": %llu",
                static_cast<unsigned long long>(shard.seed));
  if (timeout_s > 0.0) out += format(", \"timeout_s\": %g", timeout_s);
  out += "}";
  return out;
}

bool run_fleet_campaign(const FleetConfig& config, const CampaignSpec& spec,
                        CampaignResult* result, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (config.workers.empty()) return fail("fleet has no workers configured");

  const CampaignSpec resolved = resolve_campaign_defaults(spec);
  if (!resolved.programs.empty()) {
    return fail("fleet mode cannot ship fixed program images to workers");
  }
  // The wire spec names variants by label; anything the worker cannot
  // reconstruct from the label alone (standard five or component
  // "base@site") would silently resolve differently over there.
  for (const CampaignVariant& variant : resolved.variants) {
    CampaignVariant reconstructed;
    if (!campaign_variant_by_label(variant.label, &reconstructed)) {
      return fail("fleet mode supports label-resolvable campaign variants "
                  "only (standard or \"base@site\"), got \"" +
                  variant.label + "\"");
    }
  }

  std::vector<Worker> alive;
  for (const Worker& worker : config.workers) {
    if (probe_worker(worker, config)) {
      alive.push_back(worker);
    } else {
      std::fprintf(stderr, "fleet: worker %s failed its health probe\n",
                   worker_name(worker).c_str());
    }
  }
  if (alive.empty()) return fail("no reachable workers");

  const usize shard_target =
      std::min<usize>(resolved.replicas,
                      alive.size() * std::max(1u, config.shards_per_worker));
  const std::vector<CampaignSpec> shards =
      split_campaign_spec(resolved, shard_target);

  Dispatch dispatch;
  dispatch.total = shards.size();
  for (usize s = 0; s < shards.size(); ++s) dispatch.pending.push_back(s);
  dispatch.alive_workers = static_cast<u32>(alive.size());
  dispatch.cells_total = static_cast<u64>(resolved.variants.size()) *
                         resolved.workloads.size() * resolved.replicas;
  dispatch.merged = make_campaign_matrix(resolved);

  std::vector<std::thread> threads;
  threads.reserve(alive.size());
  for (const Worker& worker : alive) {
    threads.emplace_back(worker_loop, std::cref(config), std::cref(worker),
                         std::cref(resolved), std::cref(shards), &dispatch);
  }
  for (std::thread& thread : threads) thread.join();

  if (dispatch.fatal) return fail(dispatch.error);
  result->spec = resolved;
  result->matrix = std::move(dispatch.merged);
  result->cancelled = dispatch.cancelled;
  return true;
}

}  // namespace reese::sim::fleet

#include "sim/fleet.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "common/diag.h"
#include "common/http.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/strutil.h"
#include "sim/progress.h"

namespace reese::sim::fleet {

namespace {

constexpr int kFleetPid = 1;
constexpr u32 kCoordinatorTid = 0;

log::Logger& logger_of(const FleetConfig& config) {
  return config.logger != nullptr ? *config.logger : log::global();
}

http::RequestOptions wire_options(const FleetConfig& config, double deadline_s,
                                  u64 jitter_seed) {
  http::RequestOptions options;
  options.deadline_s = deadline_s;
  options.max_retries = config.max_retries;
  options.backoff_ms = config.backoff_ms;
  options.backoff_max_ms = config.backoff_max_ms;
  options.jitter_seed = jitter_seed;
  if (!config.auth_token.empty()) {
    options.headers.push_back(
        {"Authorization", "Bearer " + config.auth_token});
  }
  return options;
}

std::string worker_name(const Worker& worker) {
  return format("%s:%u", worker.host.c_str(), worker.port);
}

/// Fleet-timeline emitter (DESIGN.md §17): the campaign's wall-clock
/// story as Chrome trace_event JSON on one "reese-fleet" process —
/// coordinator on tid 0, one track per worker, dispatch/run/merge X
/// slices per shard attempt, a flow arrow from each dispatch to its
/// merge, instants for probe failures, worker deaths and re-dispatches.
/// Timestamps are microseconds of real time since construction (unlike
/// ChromeTraceTracer's simulated-cycle clock). Thread-safe: coordinator
/// worker threads emit concurrently.
class FleetTracer {
 public:
  FleetTracer(core::TraceSink* sink, u64 trace_id)
      : sink_(sink),
        trace_id_(trace_id),
        epoch_(std::chrono::steady_clock::now()) {
    emit(format("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                "\"tid\":0,\"args\":{\"name\":\"reese-fleet\"}}",
                kFleetPid));
    thread_name(kCoordinatorTid, "coordinator");
  }
  ~FleetTracer() { finish(); }

  FleetTracer(const FleetTracer&) = delete;
  FleetTracer& operator=(const FleetTracer&) = delete;

  u64 trace_id() const { return trace_id_; }

  void thread_name(u32 tid, const std::string& name) {
    emit(format("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                kFleetPid, tid, json_escape(name).c_str()));
  }

  /// Microseconds of real time since the campaign started.
  u64 now_us() const {
    const auto elapsed = std::chrono::steady_clock::now() - epoch_;
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
  }

  void slice(u32 tid, const std::string& name, u64 begin_us, u64 end_us,
             const std::string& args_json) {
    const u64 duration = end_us >= begin_us ? end_us - begin_us : 0;
    emit(format("{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%u,"
                "\"ts\":%llu,\"dur\":%llu,\"args\":%s}",
                json_escape(name).c_str(), kFleetPid, tid,
                static_cast<unsigned long long>(begin_us),
                static_cast<unsigned long long>(duration),
                args_json.c_str()));
  }

  void instant(u32 tid, const char* name, u64 ts_us,
               const std::string& args_json) {
    emit(format("{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,"
                "\"tid\":%u,\"ts\":%llu,\"args\":%s}",
                name, kFleetPid, tid,
                static_cast<unsigned long long>(ts_us), args_json.c_str()));
  }

  /// One dispatch→merge arrow. Start and finish are emitted together (the
  /// start retroactively at the dispatch timestamp), so every flow in the
  /// document balances even when a worker dies mid-shard — a dead attempt
  /// simply has no arrow.
  void flow(u32 tid, u64 start_us, u64 finish_us, u64 flow_id) {
    emit(format("{\"name\":\"dispatch-to-merge\",\"cat\":\"fleet\","
                "\"ph\":\"s\",\"pid\":%d,\"tid\":%u,\"ts\":%llu,"
                "\"id\":%llu}",
                kFleetPid, tid, static_cast<unsigned long long>(start_us),
                static_cast<unsigned long long>(flow_id)));
    emit(format("{\"name\":\"dispatch-to-merge\",\"cat\":\"fleet\","
                "\"ph\":\"f\",\"bp\":\"e\",\"pid\":%d,\"tid\":%u,"
                "\"ts\":%llu,\"id\":%llu}",
                kFleetPid, tid,
                static_cast<unsigned long long>(
                    std::max(start_us, finish_us)),
                static_cast<unsigned long long>(flow_id)));
  }

  void finish() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_) return;
    finished_ = true;
    sink_->write("\n]}\n");
  }

 private:
  void emit(const std::string& event_json) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_) return;
    if (first_) {
      sink_->write("{\"traceEvents\": [\n");
      first_ = false;
    } else {
      sink_->write(",\n");
    }
    sink_->write(event_json);
  }

  core::TraceSink* sink_;
  u64 trace_id_;
  std::chrono::steady_clock::time_point epoch_;
  std::mutex mutex_;
  bool first_ = true;
  bool finished_ = false;
};

/// Shared dispatch state: one shard queue, one merge target. Worker
/// threads block on `cv` for pending shards (a dead worker's shard comes
/// *back* onto the queue, so survivors must wake up for it).
struct Dispatch {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<usize> pending;
  usize completed = 0;
  usize total = 0;
  u32 alive_workers = 0;
  bool fatal = false;
  bool cancelled = false;
  std::string error;
  u64 cells_done = 0;
  u64 cells_total = 0;
  u64 committed = 0;
  CampaignMatrix merged;

  // Observability plumbing (DESIGN.md §17). next_span and
  // dispatch_counts are guarded by `mutex`; logger/tracer are themselves
  // thread-safe.
  log::Logger* logger = nullptr;
  FleetTracer* tracer = nullptr;
  u64 trace_id = 0;
  u64 next_span = 1;
  std::vector<u32> dispatch_counts;  ///< attempts so far, per shard
  std::vector<u64> shard_cell_totals;  ///< const after setup

  void fail(const std::string& message) {
    if (!fatal) {
      fatal = true;
      error = message;
    }
  }
  bool finished() const {
    return fatal || cancelled || completed == total;
  }
};

/// Per-attempt identity: which shard, which try, which span. Minted under
/// the dispatch mutex when a worker thread claims a shard.
struct Attempt {
  usize shard_index = 0;
  u32 number = 0;  ///< 1-based dispatch count for this shard
  u64 span = 0;
};

std::string trace_header_value(u64 trace_id, u64 span) {
  http::TraceContext context;
  context.trace_id = trace_id;
  context.span_id = span;
  return context.header_value();
}

/// Standard structured-log fields tying an event to a shard attempt.
std::vector<log::Field> attempt_fields(const Worker& worker,
                                       const CampaignSpec& shard,
                                       const Attempt& attempt,
                                       u64 trace_id) {
  return {log::field("worker", worker_name(worker)),
          log::field("shard", static_cast<u64>(attempt.shard_index)),
          log::field("replica_begin", shard.replica_begin),
          log::field("replicas", shard.replicas),
          log::field("attempt", attempt.number),
          log::field("trace", trace_header_value(trace_id, attempt.span)),
          log::field("span", attempt.span)};
}

/// args payload shared by the timeline slices of one shard attempt.
std::string slice_args(const Worker& worker, const Attempt& attempt,
                       u64 trace_id) {
  return format("{\"shard\": %zu, \"span\": %llu, \"trace\": \"%s\", "
                "\"worker\": \"%s\"}",
                attempt.shard_index,
                static_cast<unsigned long long>(attempt.span),
                trace_header_value(trace_id, attempt.span).c_str(),
                json_escape(worker_name(worker)).c_str());
}

enum class ShardOutcome {
  kDone,        ///< placed into the merged matrix
  kRequeue,     ///< worker is alive but lost the job (restart); retry shard
  kWorkerDead,  ///< transport gone past the retry budget; requeue + exit
  kFatal,       ///< deterministic failure; campaign aborted
  kCancelled,   ///< spec.cancel fired
};

ShardOutcome run_shard(http::Client* client, const Worker& worker, u32 tid,
                       const FleetConfig& config,
                       const CampaignSpec& resolved,
                       const CampaignSpec& shard, const Attempt& attempt,
                       Dispatch* dispatch,
                       const std::function<bool()>& cancel) {
  const u64 jitter_seed =
      SplitMix64(resolved.seed ^ (static_cast<u64>(shard.replica_begin) + 1))
          .next();
  http::RequestOptions request_options =
      wire_options(config, config.request_deadline_s, jitter_seed);
  // Every request of this attempt carries the campaign trace id and the
  // attempt's span id; the worker tags its job and log events with them.
  request_options.headers.push_back(
      {http::kTraceHeader,
       trace_header_value(dispatch->trace_id, attempt.span)});

  const std::string shard_label =
      format("r[%u,%u)", shard.replica_begin,
             shard.replica_begin + shard.replicas);
  const u64 shard_cells = dispatch->shard_cell_totals[attempt.shard_index];

  // Per-shard rollup to CampaignSpec::shard_progress (the service folds
  // these into GET /v1/jobs/<id>/progress).
  const auto report = [&](const char* state, u64 cells_done, u64 committed,
                          double kips) {
    if (!resolved.shard_progress) return;
    ShardProgressUpdate update;
    update.shard_index = attempt.shard_index;
    update.replica_begin = shard.replica_begin;
    update.replicas = shard.replicas;
    update.state = state;
    update.worker = worker_name(worker);
    update.cells_done = cells_done;
    update.cells_total = shard_cells;
    update.committed = committed;
    update.kips = kips;
    update.dispatches = attempt.number;
    resolved.shard_progress(update);
  };

  const auto fatal = [&](const std::string& message) {
    {
      std::lock_guard<std::mutex> lock(dispatch->mutex);
      dispatch->fail(message);
    }
    dispatch->logger->error(
        "campaign_failed", message,
        attempt_fields(worker, shard, attempt, dispatch->trace_id));
    return ShardOutcome::kFatal;
  };

  // Submit the shard.
  FleetTracer* tracer = dispatch->tracer;
  const u64 t_dispatch_begin = tracer != nullptr ? tracer->now_us() : 0;
  const std::string body =
      campaign_spec_json(shard, config.shard_timeout_s);
  http::Response response =
      client->request("POST", "/v1/campaigns", body, request_options);
  if (response.status == 0) return ShardOutcome::kWorkerDead;
  if (response.status != 202) {
    const std::string detail(trim(response.body));
    return fatal(format("worker %s rejected shard %s: %d %s",
                        worker_name(worker).c_str(), shard_label.c_str(),
                        response.status, detail.c_str()));
  }
  Result<json::Value> accepted = json::parse_json(response.body);
  const json::Value* id_value =
      accepted.ok() ? accepted.value().find("id") : nullptr;
  if (id_value == nullptr || !id_value->is_integer) {
    return fatal(format("worker %s returned an unparseable submit response",
                        worker_name(worker).c_str()));
  }
  const u64 job_id = id_value->uint_value;
  const std::string job_path = format("/v1/jobs/%llu",
                                      static_cast<unsigned long long>(job_id));
  const u64 t_dispatch_end = tracer != nullptr ? tracer->now_us() : 0;
  if (tracer != nullptr) {
    tracer->slice(tid, "dispatch " + shard_label, t_dispatch_begin,
                  t_dispatch_end,
                  slice_args(worker, attempt, dispatch->trace_id));
  }
  dispatch->logger->info(
      "shard_dispatch",
      format("shard %s dispatched to %s as job %llu", shard_label.c_str(),
             worker_name(worker).c_str(),
             static_cast<unsigned long long>(job_id)),
      attempt_fields(worker, shard, attempt, dispatch->trace_id));
  report("dispatched", 0, 0, 0.0);

  // Poll the job's progress until it reaches a terminal state; each poll
  // carries the live per-shard numbers up into the coordinator's rollup.
  while (true) {
    if (cancel && cancel()) {
      std::lock_guard<std::mutex> lock(dispatch->mutex);
      dispatch->cancelled = true;
      return ShardOutcome::kCancelled;
    }
    response =
        client->request("GET", job_path + "/progress", "", request_options);
    if (response.status == 0) return ShardOutcome::kWorkerDead;
    if (response.status == 404 || response.status == 410) {
      // The worker restarted (fresh job table) or pruned the job: it is
      // alive, it just lost our work — resubmit the shard.
      return ShardOutcome::kRequeue;
    }
    if (response.status != 200) {
      return fatal(format("worker %s: job %llu progress fetch failed: %d",
                          worker_name(worker).c_str(),
                          static_cast<unsigned long long>(job_id),
                          response.status));
    }
    Result<json::Value> progress = json::parse_json(response.body);
    const json::Value* state =
        progress.ok() ? progress.value().find("state") : nullptr;
    if (state == nullptr || !state->is_string()) {
      return fatal(format("worker %s returned an unparseable job progress",
                          worker_name(worker).c_str()));
    }
    const auto number_field = [&](const char* key) -> double {
      const json::Value* value = progress.value().find(key);
      return value != nullptr && value->is_number() ? value->number : 0.0;
    };
    report("running", static_cast<u64>(number_field("cells_done")),
           static_cast<u64>(number_field("committed")),
           number_field("kips"));
    if (state->string == "done") break;
    if (state->string == "failed" || state->string == "timeout") {
      // Deterministic on re-dispatch too (same cells, same budget): abort
      // with the worker's diagnosis instead of looping the fleet on it.
      // The error detail lives on the status document, not the progress
      // rollup — fetch it for the diagnostic.
      std::string detail;
      const http::Response status_response =
          client->request("GET", job_path, "", request_options);
      if (status_response.status == 200) {
        Result<json::Value> status = json::parse_json(status_response.body);
        const json::Value* job_error =
            status.ok() ? status.value().find("error") : nullptr;
        if (job_error != nullptr && job_error->is_string()) {
          detail = job_error->string;
        }
      }
      return fatal(format("worker %s: shard %s ended in state %s%s%s",
                          worker_name(worker).c_str(), shard_label.c_str(),
                          state->string.c_str(), detail.empty() ? "" : ": ",
                          detail.c_str()));
    }
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        config.poll_interval_ms > 0.0 ? config.poll_interval_ms : 50.0));
  }
  const u64 t_run_end = tracer != nullptr ? tracer->now_us() : 0;
  if (tracer != nullptr) {
    tracer->slice(tid, "run " + shard_label, t_dispatch_end, t_run_end,
                  slice_args(worker, attempt, dispatch->trace_id));
  }

  // Fetch the lossless per-cell matrix and merge it.
  http::RequestOptions fetch_options =
      wire_options(config, config.fetch_deadline_s, jitter_seed);
  fetch_options.headers.push_back(
      {http::kTraceHeader,
       trace_header_value(dispatch->trace_id, attempt.span)});
  response = client->request("GET", job_path + "/result?format=cells", "",
                             fetch_options);
  if (response.status == 0) return ShardOutcome::kWorkerDead;
  if (response.status == 404 || response.status == 410) {
    return ShardOutcome::kRequeue;
  }
  if (response.status != 200) {
    return fatal(format("worker %s: shard result fetch failed: %d",
                        worker_name(worker).c_str(), response.status));
  }
  CampaignWire wire;
  std::string wire_error;
  if (!deserialize_campaign_matrix(response.body, &wire, &wire_error)) {
    return fatal(format("worker %s: %s", worker_name(worker).c_str(),
                        wire_error.c_str()));
  }

  u64 shard_committed = 0;
  u64 shard_cells_merged = 0;
  for (const auto& workloads : wire.matrix.cells) {
    for (const auto& cells : workloads) {
      for (const CampaignCell& cell : cells) {
        shard_committed += cell.committed;
        ++shard_cells_merged;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(dispatch->mutex);
    if (!place_shard(resolved, wire, &dispatch->merged, &wire_error)) {
      dispatch->fail(format("worker %s: %s", worker_name(worker).c_str(),
                            wire_error.c_str()));
      return ShardOutcome::kFatal;
    }
    ++dispatch->completed;
    dispatch->cells_done += shard_cells_merged;
    dispatch->committed += shard_committed;
  }
  const u64 t_merge_end = tracer != nullptr ? tracer->now_us() : 0;
  if (tracer != nullptr) {
    tracer->slice(tid, "merge " + shard_label, t_run_end, t_merge_end,
                  slice_args(worker, attempt, dispatch->trace_id));
    tracer->flow(tid, t_dispatch_end, t_run_end, attempt.span);
  }
  {
    std::vector<log::Field> fields =
        attempt_fields(worker, shard, attempt, dispatch->trace_id);
    fields.push_back(log::field("cells", shard_cells_merged));
    fields.push_back(log::field("committed", shard_committed));
    dispatch->logger->info(
        "shard_merged",
        format("shard %s merged from %s", shard_label.c_str(),
               worker_name(worker).c_str()),
        fields);
  }
  report("merged", shard_cells_merged, shard_committed, 0.0);
  return ShardOutcome::kDone;
}

void worker_loop(const FleetConfig& config, const Worker& worker, u32 tid,
                 const CampaignSpec& resolved,
                 const std::vector<CampaignSpec>& shards,
                 Dispatch* dispatch) {
  // One persistent keep-alive connection per worker thread: submit, every
  // poll and the result fetch ride the same socket.
  http::Client client(worker.host, worker.port);
  while (true) {
    Attempt attempt;
    {
      std::unique_lock<std::mutex> lock(dispatch->mutex);
      dispatch->cv.wait(lock, [dispatch] {
        return dispatch->finished() || !dispatch->pending.empty();
      });
      if (dispatch->finished()) return;
      attempt.shard_index = dispatch->pending.front();
      dispatch->pending.pop_front();
      attempt.number = ++dispatch->dispatch_counts[attempt.shard_index];
      attempt.span = dispatch->next_span++;
    }
    const CampaignSpec& shard = shards[attempt.shard_index];

    const ShardOutcome outcome =
        run_shard(&client, worker, tid, config, resolved, shard, attempt,
                  dispatch, resolved.cancel);
    switch (outcome) {
      case ShardOutcome::kDone: {
        u64 done = 0;
        u64 total = 0;
        u64 committed = 0;
        {
          std::lock_guard<std::mutex> lock(dispatch->mutex);
          done = dispatch->cells_done;
          total = dispatch->cells_total;
          committed = dispatch->committed;
        }
        if (resolved.progress) resolved.progress({done, total, committed});
        dispatch->cv.notify_all();
        break;
      }
      case ShardOutcome::kRequeue: {
        {
          std::lock_guard<std::mutex> lock(dispatch->mutex);
          dispatch->pending.push_front(attempt.shard_index);
        }
        dispatch->logger->info(
            "shard_redispatch",
            format("worker %s lost job for shard %zu; re-dispatching",
                   worker_name(worker).c_str(), attempt.shard_index),
            attempt_fields(worker, shard, attempt, dispatch->trace_id));
        if (dispatch->tracer != nullptr) {
          dispatch->tracer->instant(
              kCoordinatorTid, "re-dispatch", dispatch->tracer->now_us(),
              slice_args(worker, attempt, dispatch->trace_id));
        }
        if (resolved.shard_progress) {
          ShardProgressUpdate update;
          update.shard_index = attempt.shard_index;
          update.replica_begin = shard.replica_begin;
          update.replicas = shard.replicas;
          update.state = "re-dispatched";
          update.worker = worker_name(worker);
          update.cells_total =
              dispatch->shard_cell_totals[attempt.shard_index];
          update.dispatches = attempt.number;
          resolved.shard_progress(update);
        }
        dispatch->cv.notify_all();
        break;
      }
      case ShardOutcome::kWorkerDead: {
        {
          std::lock_guard<std::mutex> lock(dispatch->mutex);
          dispatch->pending.push_front(attempt.shard_index);
          --dispatch->alive_workers;
          if (dispatch->alive_workers == 0 &&
              dispatch->completed < dispatch->total) {
            dispatch->fail("every worker became unreachable with shards "
                           "still pending");
          }
        }
        dispatch->logger->warn(
            "worker_dead",
            format("worker %s unreachable; re-dispatching shard %zu",
                   worker_name(worker).c_str(), attempt.shard_index),
            attempt_fields(worker, shard, attempt, dispatch->trace_id));
        if (dispatch->tracer != nullptr) {
          const u64 now = dispatch->tracer->now_us();
          dispatch->tracer->instant(
              tid, "worker-dead", now,
              slice_args(worker, attempt, dispatch->trace_id));
          dispatch->tracer->instant(
              kCoordinatorTid, "re-dispatch", now,
              slice_args(worker, attempt, dispatch->trace_id));
        }
        if (resolved.shard_progress) {
          ShardProgressUpdate update;
          update.shard_index = attempt.shard_index;
          update.replica_begin = shard.replica_begin;
          update.replicas = shard.replicas;
          update.state = "re-dispatched";
          update.worker = worker_name(worker);
          update.cells_total =
              dispatch->shard_cell_totals[attempt.shard_index];
          update.dispatches = attempt.number;
          resolved.shard_progress(update);
        }
        dispatch->cv.notify_all();
        return;
      }
      case ShardOutcome::kFatal:
      case ShardOutcome::kCancelled:
        dispatch->cv.notify_all();
        return;
    }
  }
}

/// Nonzero campaign trace id: the configured one, or minted from the
/// campaign seed and a process-wide counter so two campaigns in one
/// coordinator process never collide.
u64 mint_trace_id(const FleetConfig& config, u64 seed) {
  if (config.trace_id != 0) return config.trace_id;
  static std::atomic<u64> campaign_counter{0};
  const u64 nonce =
      campaign_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  u64 trace_id = SplitMix64(seed ^ (nonce * 0x9E3779B97F4A7C15ull)).next();
  return trace_id != 0 ? trace_id : 1;
}

}  // namespace

bool parse_worker_address(const std::string& address, Worker* out,
                          std::string* error) {
  const usize colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    if (error != nullptr) {
      *error = "worker address must be host:port, got \"" + address + "\"";
    }
    return false;
  }
  i64 port = 0;
  if (!parse_int(std::string_view(address).substr(colon + 1), &port) ||
      port < 1 || port > 65535) {
    if (error != nullptr) {
      *error = "bad port in worker address \"" + address + "\"";
    }
    return false;
  }
  out->host = address.substr(0, colon);
  out->port = static_cast<u16>(port);
  return true;
}

bool load_workers_file(const std::string& path, std::vector<Worker>* out,
                       std::string* error) {
  FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open workers file " + path;
    return false;
  }
  std::string contents;
  char chunk[4096];
  usize got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    contents.append(chunk, got);
  }
  std::fclose(file);

  for (std::string_view raw_line : split(contents, '\n')) {
    const std::string_view line = trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    Worker worker;
    if (!parse_worker_address(std::string(line), &worker, error)) {
      return false;
    }
    out->push_back(std::move(worker));
  }
  if (out->empty()) {
    if (error != nullptr) *error = "workers file " + path + " lists no workers";
    return false;
  }
  return true;
}

bool probe_worker(const Worker& worker, const FleetConfig& config,
                  int* attempts) {
  log::Logger& logger = logger_of(config);
  const int max_attempts = std::max(1, config.max_retries + 1);
  // One attempt per iteration with the transport's own retries disabled:
  // the transport layer only retries transport failures and 429, so a
  // worker answering 503 while it drains (or any other transient refusal)
  // would be declared dead on its first word. This loop retries on *any*
  // non-200 with a deterministic backoff instead.
  double delay_ms = config.backoff_ms > 0.0 ? config.backoff_ms : 100.0;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    http::RequestOptions options;
    options.deadline_s = config.probe_deadline_s;
    options.max_retries = 0;
    if (!config.auth_token.empty()) {
      options.headers.push_back(
          {"Authorization", "Bearer " + config.auth_token});
    }
    const http::Response response = http::request(
        worker.host, worker.port, "GET", "/v1/healthz", "", options);
    if (response.status == 200) {
      if (attempts != nullptr) *attempts = attempt;
      return true;
    }
    logger.warn("probe_attempt_failed",
                format("worker %s probe attempt %d/%d failed (status %d)",
                       worker_name(worker).c_str(), attempt, max_attempts,
                       response.status),
                {log::field("worker", worker_name(worker)),
                 log::field("attempt", attempt),
                 log::field("max_attempts", max_attempts),
                 log::field("status", response.status)});
    if (attempt < max_attempts) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
      delay_ms = std::min(delay_ms * 2.0, config.backoff_max_ms > 0.0
                                              ? config.backoff_max_ms
                                              : delay_ms * 2.0);
    }
  }
  if (attempts != nullptr) *attempts = max_attempts;
  return false;
}

bool collect_fleet_metrics(const FleetConfig& config, metrics::Registry* out,
                           std::string* error) {
  for (const Worker& worker : config.workers) {
    const std::string name = worker_name(worker);
    metrics::Gauge* up = out->gauge(
        "reese_fleet_worker_up", {{"worker", name}},
        "1 when the worker answered the last federation scrape");
    http::RequestOptions options;
    options.deadline_s = config.request_deadline_s;
    if (!config.auth_token.empty()) {
      options.headers.push_back(
          {"Authorization", "Bearer " + config.auth_token});
    }
    const http::Response response = http::request(
        worker.host, worker.port, "GET", "/v1/metrics", "", options);
    if (response.status != 200) {
      if (up != nullptr) up->set(0.0);
      continue;
    }
    if (up != nullptr) up->set(1.0);
    std::vector<metrics::Sample> samples;
    std::string detail;
    if (!metrics::parse_prometheus(response.body, &samples, &detail)) {
      if (error != nullptr) {
        *error = format("worker %s: %s", name.c_str(), detail.c_str());
      }
      return false;
    }
    if (!out->merge_from(samples, {{"worker", name}}, &detail)) {
      if (error != nullptr) {
        *error = format("worker %s: %s", name.c_str(), detail.c_str());
      }
      return false;
    }
  }
  return true;
}

std::string campaign_spec_json(const CampaignSpec& shard, double timeout_s) {
  // Every field is the *resolved* value: a worker must not re-resolve
  // defaults (and must never see quick=true, which would clamp the shard
  // back to one replica).
  std::string out = "{";
  out += "\"workloads\": [";
  for (usize w = 0; w < shard.workloads.size(); ++w) {
    out += format("%s\"%s\"", w == 0 ? "" : ", ",
                  json_escape(shard.workloads[w]).c_str());
  }
  out += "], \"variants\": [";
  for (usize v = 0; v < shard.variants.size(); ++v) {
    out += format("%s\"%s\"", v == 0 ? "" : ", ",
                  json_escape(shard.variants[v].label).c_str());
  }
  out += format("], \"replicas\": %u", shard.replicas);
  out += format(", \"replica_begin\": %u", shard.replica_begin);
  out += format(", \"instructions\": %llu",
                static_cast<unsigned long long>(shard.instructions));
  // %.17g round-trips an IEEE double exactly, so the worker's injector
  // sees bit-identical rate.
  out += format(", \"rate\": %.17g", shard.rate);
  out += format(", \"seed\": %llu",
                static_cast<unsigned long long>(shard.seed));
  if (timeout_s > 0.0) out += format(", \"timeout_s\": %g", timeout_s);
  out += "}";
  return out;
}

bool run_fleet_campaign(const FleetConfig& config, const CampaignSpec& spec,
                        CampaignResult* result, std::string* error) {
  log::Logger& logger = logger_of(config);
  const auto fail = [error, &logger](const std::string& message) {
    if (error != nullptr) *error = message;
    logger.error("campaign_failed", message);
    return false;
  };
  if (config.workers.empty()) return fail("fleet has no workers configured");

  const CampaignSpec resolved = resolve_campaign_defaults(spec);
  if (!resolved.programs.empty()) {
    return fail("fleet mode cannot ship fixed program images to workers");
  }
  // The wire spec names variants by label; anything the worker cannot
  // reconstruct from the label alone (standard five or component
  // "base@site") would silently resolve differently over there.
  for (const CampaignVariant& variant : resolved.variants) {
    CampaignVariant reconstructed;
    if (!campaign_variant_by_label(variant.label, &reconstructed)) {
      return fail("fleet mode supports label-resolvable campaign variants "
                  "only (standard or \"base@site\"), got \"" +
                  variant.label + "\"");
    }
  }

  // Fleet timeline (DESIGN.md §17): an injected sink wins, else the
  // --fleet-trace-out path. A path that cannot be opened degrades to "no
  // timeline" with a logged error — tracing is observability, not
  // campaign correctness.
  const u64 trace_id = mint_trace_id(config, resolved.seed);
  std::unique_ptr<core::FileTraceSink> file_sink;
  core::TraceSink* sink = config.trace_sink;
  if (sink == nullptr && !config.trace_path.empty()) {
    file_sink = std::make_unique<core::FileTraceSink>(config.trace_path);
    if (file_sink->ok()) {
      sink = file_sink.get();
    } else {
      logger.error("trace_open_failed",
                   "cannot open fleet trace file " + config.trace_path,
                   {log::field("path", config.trace_path)});
      file_sink.reset();
    }
  }
  std::unique_ptr<FleetTracer> tracer;
  if (sink != nullptr) tracer = std::make_unique<FleetTracer>(sink, trace_id);

  std::vector<Worker> alive;
  for (const Worker& worker : config.workers) {
    int attempts = 0;
    if (probe_worker(worker, config, &attempts)) {
      alive.push_back(worker);
    } else {
      logger.warn("probe_failed",
                  format("worker %s failed its health probe after %d attempts",
                         worker_name(worker).c_str(), attempts),
                  {log::field("worker", worker_name(worker)),
                   log::field("attempts", attempts),
                   log::field("trace", trace_header_value(trace_id, 0))});
      if (tracer != nullptr) {
        tracer->instant(kCoordinatorTid, "probe-failure", tracer->now_us(),
                        format("{\"worker\": \"%s\", \"attempts\": %d}",
                               json_escape(worker_name(worker)).c_str(),
                               attempts));
      }
    }
  }
  if (alive.empty()) return fail("no reachable workers");
  if (tracer != nullptr) {
    for (usize w = 0; w < alive.size(); ++w) {
      tracer->thread_name(static_cast<u32>(w) + 1,
                          "worker " + worker_name(alive[w]));
    }
  }

  const usize shard_target =
      std::min<usize>(resolved.replicas,
                      alive.size() * std::max(1u, config.shards_per_worker));
  const std::vector<CampaignSpec> shards =
      split_campaign_spec(resolved, shard_target);

  Dispatch dispatch;
  dispatch.total = shards.size();
  for (usize s = 0; s < shards.size(); ++s) dispatch.pending.push_back(s);
  dispatch.alive_workers = static_cast<u32>(alive.size());
  dispatch.cells_total = static_cast<u64>(resolved.variants.size()) *
                         resolved.workloads.size() * resolved.replicas;
  dispatch.merged = make_campaign_matrix(resolved);
  dispatch.logger = &logger;
  dispatch.tracer = tracer.get();
  dispatch.trace_id = trace_id;
  dispatch.dispatch_counts.assign(shards.size(), 0);
  const u64 cells_per_replica = static_cast<u64>(resolved.variants.size()) *
                                resolved.workloads.size();
  dispatch.shard_cell_totals.reserve(shards.size());
  for (const CampaignSpec& shard : shards) {
    dispatch.shard_cell_totals.push_back(cells_per_replica * shard.replicas);
  }

  logger.info(
      "campaign_start",
      format("fleet campaign across %zu workers in %zu shards", alive.size(),
             shards.size()),
      {log::field("workers", static_cast<u64>(alive.size())),
       log::field("shards", static_cast<u64>(shards.size())),
       log::field("replicas", resolved.replicas),
       log::field("cells", dispatch.cells_total),
       log::field("trace", trace_header_value(trace_id, 0))});
  if (resolved.shard_progress) {
    for (usize s = 0; s < shards.size(); ++s) {
      ShardProgressUpdate update;
      update.shard_index = s;
      update.replica_begin = shards[s].replica_begin;
      update.replicas = shards[s].replicas;
      update.state = "queued";
      update.cells_total = dispatch.shard_cell_totals[s];
      resolved.shard_progress(update);
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(alive.size());
  for (usize w = 0; w < alive.size(); ++w) {
    threads.emplace_back(worker_loop, std::cref(config), std::cref(alive[w]),
                         static_cast<u32>(w) + 1, std::cref(resolved),
                         std::cref(shards), &dispatch);
  }
  for (std::thread& thread : threads) thread.join();
  if (tracer != nullptr) tracer->finish();

  if (dispatch.fatal) {
    if (error != nullptr) *error = dispatch.error;
    // run_shard/worker_loop already logged the specific failure.
    return false;
  }
  result->spec = resolved;
  result->matrix = std::move(dispatch.merged);
  result->cancelled = dispatch.cancelled;
  logger.info("campaign_done",
              format("fleet campaign merged %llu cells",
                     static_cast<unsigned long long>(dispatch.cells_done)),
              {log::field("cells", dispatch.cells_done),
               log::field("committed", dispatch.committed),
               log::field("cancelled", dispatch.cancelled),
               log::field("trace", trace_header_value(trace_id, 0))});
  return true;
}

}  // namespace reese::sim::fleet

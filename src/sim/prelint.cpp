#include "sim/prelint.h"

#include "analysis/passes.h"

namespace reese::sim {

PrelintResult prelint_program(const isa::Program& program) {
  PrelintResult result;
  result.diagnostics = analysis::run_lint(program);
  result.ok = count_severity(result.diagnostics, Severity::kError) == 0;
  return result;
}

}  // namespace reese::sim

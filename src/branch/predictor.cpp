#include "branch/predictor.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "common/bitutil.h"

namespace reese::branch {
namespace {

/// 2-bit saturating counter helpers; counters start weakly not-taken (1).
constexpr u8 kWeakNotTaken = 1;

u8 bump(u8 counter, bool taken) {
  if (taken) return counter < 3 ? counter + 1 : 3;
  return counter > 0 ? counter - 1 : 0;
}

bool counter_taken(u8 counter) { return counter >= 2; }

usize require_pow2(usize n, const char* what) {
  if (!is_pow2(n)) {
    std::fprintf(stderr, "branch predictor: %s must be a power of two\n", what);
    std::abort();
  }
  return n;
}

}  // namespace

// --- Bimodal ---------------------------------------------------------------

BimodalPredictor::BimodalPredictor(usize table_size)
    : table_(require_pow2(table_size, "bimodal table"), kWeakNotTaken),
      mask_(table_size - 1) {}

BranchPrediction BimodalPredictor::predict(Addr pc) {
  const usize index = (pc >> 2) & mask_;
  return {counter_taken(table_[index]), index};
}

void BimodalPredictor::update(Addr, bool taken, u64 meta) {
  table_[meta & mask_] = bump(table_[meta & mask_], taken);
}

// --- gshare ----------------------------------------------------------------

GsharePredictor::GsharePredictor(unsigned history_bits)
    : table_(usize{1} << history_bits, kWeakNotTaken),
      history_bits_(history_bits) {
  assert(history_bits >= 2 && history_bits <= 24);
}

usize GsharePredictor::index_of(Addr pc, u64 history) const {
  return static_cast<usize>(((pc >> 2) ^ history) & (table_.size() - 1));
}

BranchPrediction GsharePredictor::predict(Addr pc) {
  const u64 used_history = ghr_;
  const bool taken = counter_taken(table_[index_of(pc, used_history)]);
  // Speculative history update with the *predicted* outcome.
  ghr_ = ((ghr_ << 1) | (taken ? 1 : 0)) & ((u64{1} << history_bits_) - 1);
  return {taken, used_history};
}

void GsharePredictor::update(Addr pc, bool taken, u64 meta) {
  u8& counter = table_[index_of(pc, meta)];
  counter = bump(counter, taken);
}

void GsharePredictor::repair(u64 meta, bool taken) {
  // `meta` is the global history this branch predicted with; everything
  // shifted in since is wrong-path speculation.
  ghr_ = ((meta << 1) | (taken ? 1 : 0)) & ((u64{1} << history_bits_) - 1);
}

// --- local two-level ---------------------------------------------------------

LocalPredictor::LocalPredictor(usize history_entries, unsigned history_bits)
    : histories_(require_pow2(history_entries, "local history table"), 0),
      counters_(usize{1} << history_bits, kWeakNotTaken),
      history_bits_(history_bits) {
  assert(history_bits >= 2 && history_bits <= 16);
}

BranchPrediction LocalPredictor::predict(Addr pc) {
  const usize h_index = (pc >> 2) & (histories_.size() - 1);
  const u16 history = histories_[h_index];
  const usize c_index = history & (counters_.size() - 1);
  return {counter_taken(counters_[c_index]), c_index};
}

void LocalPredictor::update(Addr pc, bool taken, u64 meta) {
  u8& counter = counters_[meta & (counters_.size() - 1)];
  counter = bump(counter, taken);
  const usize h_index = (pc >> 2) & (histories_.size() - 1);
  histories_[h_index] = static_cast<u16>(
      ((histories_[h_index] << 1) | (taken ? 1 : 0)) &
      ((1u << history_bits_) - 1));
}

// --- tournament --------------------------------------------------------------

namespace {
// meta packing for the tournament: [0:31] gshare meta, [32:55] bimodal meta,
// [56] bimodal prediction, [57] gshare prediction.
constexpr u64 kBimodalPredBit = u64{1} << 56;
constexpr u64 kGsharePredBit = u64{1} << 57;
}  // namespace

TournamentPredictor::TournamentPredictor(usize bimodal_size,
                                         unsigned gshare_bits,
                                         usize chooser_size)
    : bimodal_(bimodal_size),
      gshare_(gshare_bits),
      chooser_(require_pow2(chooser_size, "chooser table"), 2),
      chooser_mask_(chooser_size - 1) {}

BranchPrediction TournamentPredictor::predict(Addr pc) {
  const BranchPrediction bimodal = bimodal_.predict(pc);
  const BranchPrediction gshare = gshare_.predict(pc);
  const u8 chooser = chooser_[(pc >> 2) & chooser_mask_];
  const bool use_gshare = chooser >= 2;
  u64 meta = (gshare.meta & 0xFFFFFFFFULL) | ((bimodal.meta & 0xFFFFFF) << 32);
  if (bimodal.taken) meta |= kBimodalPredBit;
  if (gshare.taken) meta |= kGsharePredBit;
  return {use_gshare ? gshare.taken : bimodal.taken, meta};
}

void TournamentPredictor::update(Addr pc, bool taken, u64 meta) {
  const bool bimodal_said = (meta & kBimodalPredBit) != 0;
  const bool gshare_said = (meta & kGsharePredBit) != 0;
  bimodal_.update(pc, taken, (meta >> 32) & 0xFFFFFF);
  gshare_.update(pc, taken, meta & 0xFFFFFFFFULL);
  if (bimodal_said != gshare_said) {
    u8& chooser = chooser_[(pc >> 2) & chooser_mask_];
    chooser = bump(chooser, gshare_said == taken);
  }
}

void TournamentPredictor::repair(u64 meta, bool taken) {
  gshare_.repair(meta & 0xFFFFFFFFULL, taken);
}

// --- factory -----------------------------------------------------------------

std::unique_ptr<DirectionPredictor> make_predictor(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kNotTaken:
      return std::make_unique<StaticPredictor>(false);
    case PredictorKind::kTaken:
      return std::make_unique<StaticPredictor>(true);
    case PredictorKind::kBtfn:
      return std::make_unique<BtfnPredictor>();
    case PredictorKind::kBimodal:
      return std::make_unique<BimodalPredictor>();
    case PredictorKind::kGshare:
      return std::make_unique<GsharePredictor>();
    case PredictorKind::kLocal:
      return std::make_unique<LocalPredictor>();
    case PredictorKind::kTournament:
      return std::make_unique<TournamentPredictor>();
  }
  return nullptr;
}

const char* predictor_kind_name(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kNotTaken: return "nottaken";
    case PredictorKind::kTaken: return "taken";
    case PredictorKind::kBtfn: return "btfn";
    case PredictorKind::kBimodal: return "bimodal";
    case PredictorKind::kGshare: return "gshare";
    case PredictorKind::kLocal: return "local";
    case PredictorKind::kTournament: return "tournament";
  }
  return "?";
}

// --- BTB ---------------------------------------------------------------------

Btb::Btb(usize entries, u32 associativity) : associativity_(associativity) {
  if (associativity == 0 || entries % associativity != 0) {
    std::fprintf(stderr, "btb: bad geometry\n");
    std::abort();
  }
  set_count_ = require_pow2(entries / associativity, "btb set count");
  entries_.resize(entries);
}

bool Btb::lookup(Addr pc, Addr* target) const {
  ++lookups_;
  ++tick_;
  const usize set_base = ((pc >> 2) & (set_count_ - 1)) * associativity_;
  for (u32 way = 0; way < associativity_; ++way) {
    Entry& entry = entries_[set_base + way];
    if (entry.valid && entry.pc == pc) {
      ++hits_;
      entry.stamp = tick_;
      *target = entry.target;
      return true;
    }
  }
  return false;
}

void Btb::update(Addr pc, Addr target) {
  ++tick_;
  const usize set_base = ((pc >> 2) & (set_count_ - 1)) * associativity_;
  usize victim = 0;
  u64 oldest = ~u64{0};
  for (u32 way = 0; way < associativity_; ++way) {
    Entry& entry = entries_[set_base + way];
    if (entry.valid && entry.pc == pc) {
      entry.target = target;
      entry.stamp = tick_;
      return;
    }
    if (!entry.valid) {
      victim = way;
      oldest = 0;
    } else if (entry.stamp < oldest) {
      oldest = entry.stamp;
      victim = way;
    }
  }
  entries_[set_base + victim] = Entry{pc, target, true, tick_};
}

// --- RAS ---------------------------------------------------------------------

ReturnAddressStack::ReturnAddressStack(usize depth)
    : stack_(depth, 0), depth_(depth) {
  assert(depth >= 1);
}

void ReturnAddressStack::push(Addr return_address) {
  stack_[top_ % depth_] = return_address;
  top_ = (top_ + 1) % depth_;
}

Addr ReturnAddressStack::pop() {
  top_ = (top_ + depth_ - 1) % depth_;
  return stack_[top_];
}

ReturnAddressStack::Checkpoint ReturnAddressStack::checkpoint() const {
  const usize newest = (top_ + depth_ - 1) % depth_;
  return {top_, stack_[newest]};
}

void ReturnAddressStack::restore(const Checkpoint& checkpoint) {
  top_ = checkpoint.top;
  const usize newest = (top_ + depth_ - 1) % depth_;
  stack_[newest] = checkpoint.top_value;
}

}  // namespace reese::branch

#include "branch/predictor.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "common/bitutil.h"
#include "common/snapshot.h"

namespace reese::branch {
namespace {

/// Shared helper: serialize a counter/history table with a size check on
/// load, failing the reader when the snapshot was built with a different
/// predictor geometry.
template <typename T>
void save_table(SnapshotWriter* writer, const std::vector<T>& table) {
  writer->put_u64(table.size());
  for (T value : table) writer->put_u64(value);
}

template <typename T>
void load_table(SnapshotReader* reader, std::vector<T>* table,
                const char* what) {
  const u64 size = reader->get_u64();
  if (!reader->ok()) return;
  if (size != table->size()) {
    reader->fail(std::string(what) + " table size mismatch (snapshot built "
                 "with a different predictor configuration)");
    return;
  }
  for (T& value : *table) value = static_cast<T>(reader->get_u64());
}

usize require_pow2(usize n, const char* what) {
  if (!is_pow2(n)) {
    std::fprintf(stderr, "branch predictor: %s must be a power of two\n", what);
    std::abort();
  }
  return n;
}

}  // namespace

// --- Bimodal ---------------------------------------------------------------

BimodalPredictor::BimodalPredictor(usize table_size)
    : table_(require_pow2(table_size, "bimodal table"), kWeakNotTaken),
      mask_(table_size - 1) {}

BranchPrediction BimodalPredictor::predict(Addr pc) {
  const usize index = (pc >> 2) & mask_;
  return {counter_taken(table_[index]), index};
}

void BimodalPredictor::update(Addr, bool taken, u64 meta) {
  table_[meta & mask_] = bump_counter(table_[meta & mask_], taken);
}

void BimodalPredictor::save_state(SnapshotWriter* writer) const {
  save_table(writer, table_);
}

void BimodalPredictor::load_state(SnapshotReader* reader) {
  load_table(reader, &table_, "bimodal");
}

// --- gshare ----------------------------------------------------------------

GsharePredictor::GsharePredictor(unsigned history_bits)
    : table_(usize{1} << history_bits, kWeakNotTaken),
      history_bits_(history_bits) {
  assert(history_bits >= 2 && history_bits <= 24);
}

void GsharePredictor::save_state(SnapshotWriter* writer) const {
  save_table(writer, table_);
  writer->put_u64(ghr_);
}

void GsharePredictor::load_state(SnapshotReader* reader) {
  load_table(reader, &table_, "gshare");
  ghr_ = reader->get_u64();
}

// --- local two-level ---------------------------------------------------------

LocalPredictor::LocalPredictor(usize history_entries, unsigned history_bits)
    : histories_(require_pow2(history_entries, "local history table"), 0),
      counters_(usize{1} << history_bits, kWeakNotTaken),
      history_bits_(history_bits) {
  assert(history_bits >= 2 && history_bits <= 16);
}

BranchPrediction LocalPredictor::predict(Addr pc) {
  const usize h_index = (pc >> 2) & (histories_.size() - 1);
  const u16 history = histories_[h_index];
  const usize c_index = history & (counters_.size() - 1);
  return {counter_taken(counters_[c_index]), c_index};
}

void LocalPredictor::update(Addr pc, bool taken, u64 meta) {
  u8& counter = counters_[meta & (counters_.size() - 1)];
  counter = bump_counter(counter, taken);
  const usize h_index = (pc >> 2) & (histories_.size() - 1);
  histories_[h_index] = static_cast<u16>(
      ((histories_[h_index] << 1) | (taken ? 1 : 0)) &
      ((1u << history_bits_) - 1));
}

void LocalPredictor::save_state(SnapshotWriter* writer) const {
  save_table(writer, histories_);
  save_table(writer, counters_);
}

void LocalPredictor::load_state(SnapshotReader* reader) {
  load_table(reader, &histories_, "local history");
  load_table(reader, &counters_, "local counter");
}

// --- tournament --------------------------------------------------------------

namespace {
// meta packing for the tournament: [0:31] gshare meta, [32:55] bimodal meta,
// [56] bimodal prediction, [57] gshare prediction.
constexpr u64 kBimodalPredBit = u64{1} << 56;
constexpr u64 kGsharePredBit = u64{1} << 57;
}  // namespace

TournamentPredictor::TournamentPredictor(usize bimodal_size,
                                         unsigned gshare_bits,
                                         usize chooser_size)
    : bimodal_(bimodal_size),
      gshare_(gshare_bits),
      chooser_(require_pow2(chooser_size, "chooser table"), 2),
      chooser_mask_(chooser_size - 1) {}

BranchPrediction TournamentPredictor::predict(Addr pc) {
  const BranchPrediction bimodal = bimodal_.predict(pc);
  const BranchPrediction gshare = gshare_.predict(pc);
  const u8 chooser = chooser_[(pc >> 2) & chooser_mask_];
  const bool use_gshare = chooser >= 2;
  u64 meta = (gshare.meta & 0xFFFFFFFFULL) | ((bimodal.meta & 0xFFFFFF) << 32);
  if (bimodal.taken) meta |= kBimodalPredBit;
  if (gshare.taken) meta |= kGsharePredBit;
  return {use_gshare ? gshare.taken : bimodal.taken, meta};
}

void TournamentPredictor::update(Addr pc, bool taken, u64 meta) {
  const bool bimodal_said = (meta & kBimodalPredBit) != 0;
  const bool gshare_said = (meta & kGsharePredBit) != 0;
  bimodal_.update(pc, taken, (meta >> 32) & 0xFFFFFF);
  gshare_.update(pc, taken, meta & 0xFFFFFFFFULL);
  if (bimodal_said != gshare_said) {
    u8& chooser = chooser_[(pc >> 2) & chooser_mask_];
    chooser = bump_counter(chooser, gshare_said == taken);
  }
}

void TournamentPredictor::repair(u64 meta, bool taken) {
  gshare_.repair(meta & 0xFFFFFFFFULL, taken);
}

void TournamentPredictor::save_state(SnapshotWriter* writer) const {
  bimodal_.save_state(writer);
  gshare_.save_state(writer);
  save_table(writer, chooser_);
}

void TournamentPredictor::load_state(SnapshotReader* reader) {
  bimodal_.load_state(reader);
  gshare_.load_state(reader);
  load_table(reader, &chooser_, "tournament chooser");
}

// --- factory -----------------------------------------------------------------

std::unique_ptr<DirectionPredictor> make_predictor(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kNotTaken:
      return std::make_unique<StaticPredictor>(false);
    case PredictorKind::kTaken:
      return std::make_unique<StaticPredictor>(true);
    case PredictorKind::kBtfn:
      return std::make_unique<BtfnPredictor>();
    case PredictorKind::kBimodal:
      return std::make_unique<BimodalPredictor>();
    case PredictorKind::kGshare:
      return std::make_unique<GsharePredictor>();
    case PredictorKind::kLocal:
      return std::make_unique<LocalPredictor>();
    case PredictorKind::kTournament:
      return std::make_unique<TournamentPredictor>();
  }
  return nullptr;
}

const char* predictor_kind_name(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kNotTaken: return "nottaken";
    case PredictorKind::kTaken: return "taken";
    case PredictorKind::kBtfn: return "btfn";
    case PredictorKind::kBimodal: return "bimodal";
    case PredictorKind::kGshare: return "gshare";
    case PredictorKind::kLocal: return "local";
    case PredictorKind::kTournament: return "tournament";
  }
  return "?";
}

// --- BTB ---------------------------------------------------------------------

Btb::Btb(usize entries, u32 associativity) : associativity_(associativity) {
  if (associativity == 0 || entries % associativity != 0) {
    std::fprintf(stderr, "btb: bad geometry\n");
    std::abort();
  }
  set_count_ = require_pow2(entries / associativity, "btb set count");
  entries_.resize(entries);
}

bool Btb::lookup(Addr pc, Addr* target) const {
  ++lookups_;
  ++tick_;
  const usize set_base = ((pc >> 2) & (set_count_ - 1)) * associativity_;
  for (u32 way = 0; way < associativity_; ++way) {
    Entry& entry = entries_[set_base + way];
    if (entry.valid && entry.pc == pc) {
      ++hits_;
      entry.stamp = tick_;
      *target = entry.target;
      return true;
    }
  }
  return false;
}

void Btb::update(Addr pc, Addr target) {
  ++tick_;
  const usize set_base = ((pc >> 2) & (set_count_ - 1)) * associativity_;
  usize victim = 0;
  u64 oldest = ~u64{0};
  for (u32 way = 0; way < associativity_; ++way) {
    Entry& entry = entries_[set_base + way];
    if (entry.valid && entry.pc == pc) {
      entry.target = target;
      entry.stamp = tick_;
      return;
    }
    if (!entry.valid) {
      victim = way;
      oldest = 0;
    } else if (entry.stamp < oldest) {
      oldest = entry.stamp;
      victim = way;
    }
  }
  entries_[set_base + victim] = Entry{pc, target, true, tick_};
}

void Btb::save(SnapshotWriter* writer) const {
  writer->put_u64(entries_.size());
  for (const Entry& entry : entries_) {
    writer->put_u64(entry.pc);
    writer->put_u64(entry.target);
    writer->put_bool(entry.valid);
    writer->put_u64(entry.stamp);
  }
  writer->put_u64(tick_);
  writer->put_u64(lookups_);
  writer->put_u64(hits_);
}

void Btb::load(SnapshotReader* reader) {
  const u64 entry_count = reader->get_u64();
  if (!reader->ok()) return;
  if (entry_count != entries_.size()) {
    reader->fail("btb geometry mismatch (snapshot built with a different "
                 "configuration)");
    return;
  }
  for (Entry& entry : entries_) {
    entry.pc = reader->get_u64();
    entry.target = reader->get_u64();
    entry.valid = reader->get_bool();
    entry.stamp = reader->get_u64();
  }
  tick_ = reader->get_u64();
  lookups_ = reader->get_u64();
  hits_ = reader->get_u64();
}

void ReturnAddressStack::save(SnapshotWriter* writer) const {
  writer->put_u64(stack_.size());
  for (Addr entry : stack_) writer->put_u64(entry);
  writer->put_u64(top_);
}

void ReturnAddressStack::load(SnapshotReader* reader) {
  const u64 depth = reader->get_u64();
  if (!reader->ok()) return;
  if (depth != stack_.size()) {
    reader->fail("return-address stack depth mismatch (snapshot built with "
                 "a different configuration)");
    return;
  }
  for (Addr& entry : stack_) entry = reader->get_u64();
  top_ = static_cast<usize>(reader->get_u64());
}

}  // namespace reese::branch

// Branch direction predictors, BTB, and return-address stack.
//
// The paper's configuration uses gshare (McFarling, "Combining Branch
// Predictors", DEC WRL TN-36). The zoo here also provides static schemes,
// bimodal, a two-level local predictor and a tournament combiner for
// ablation studies and tests.
//
// Interface contract: predict() may speculatively update internal global
// history; the returned `meta` word must be passed back to update() when
// the branch resolves (it carries the history/index the prediction used).
// checkpoint()/restore() save and repair speculative history around
// mispredictions.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace reese::branch {

struct BranchPrediction {
  bool taken = false;
  u64 meta = 0;  ///< implementation-defined resolve-time cookie
};

class DirectionPredictor {
 public:
  virtual ~DirectionPredictor() = default;
  virtual BranchPrediction predict(Addr pc) = 0;
  /// Called in program order when the branch resolves.
  virtual void update(Addr pc, bool taken, u64 meta) = 0;
  /// Speculative-history checkpointing (no-ops for history-free schemes).
  virtual u64 checkpoint() const { return 0; }
  virtual void restore(u64 /*checkpoint*/) {}
  /// Misprediction repair: rewind speculative global history to the state
  /// this branch predicted with (`meta`) and shift in the actual outcome.
  virtual void repair(u64 /*meta*/, bool /*taken*/) {}
  virtual std::string name() const = 0;
};

/// Always-not-taken / always-taken.
class StaticPredictor final : public DirectionPredictor {
 public:
  explicit StaticPredictor(bool predict_taken) : taken_(predict_taken) {}
  BranchPrediction predict(Addr) override { return {taken_, 0}; }
  void update(Addr, bool, u64) override {}
  std::string name() const override {
    return taken_ ? "static-taken" : "static-nottaken";
  }

 private:
  bool taken_;
};

/// Backward-taken / forward-not-taken. The core must tell it the branch
/// displacement sign; it does so by encoding it in the pc it passes — so
/// instead this class exposes a dedicated entry point.
class BtfnPredictor final : public DirectionPredictor {
 public:
  BranchPrediction predict(Addr) override { return {false, 0}; }
  BranchPrediction predict_with_direction(bool backward) {
    return {backward, 0};
  }
  void update(Addr, bool, u64) override {}
  std::string name() const override { return "btfn"; }
};

/// 2-bit saturating counter table indexed by PC.
class BimodalPredictor final : public DirectionPredictor {
 public:
  explicit BimodalPredictor(usize table_size = 2048);
  BranchPrediction predict(Addr pc) override;
  void update(Addr pc, bool taken, u64 meta) override;
  std::string name() const override { return "bimodal"; }

 private:
  std::vector<u8> table_;
  usize mask_;
};

/// gshare: global history XOR PC indexes a 2-bit counter table. Global
/// history is updated speculatively at predict time.
class GsharePredictor final : public DirectionPredictor {
 public:
  /// `history_bits` is also log2(table size).
  explicit GsharePredictor(unsigned history_bits = 12);
  BranchPrediction predict(Addr pc) override;
  void update(Addr pc, bool taken, u64 meta) override;
  u64 checkpoint() const override { return ghr_; }
  void restore(u64 checkpoint) override { ghr_ = checkpoint; }
  void repair(u64 meta, bool taken) override;
  std::string name() const override { return "gshare"; }

 private:
  usize index_of(Addr pc, u64 history) const;
  std::vector<u8> table_;
  unsigned history_bits_;
  u64 ghr_ = 0;
};

/// Two-level local (PAg): per-branch history table -> pattern counter table.
class LocalPredictor final : public DirectionPredictor {
 public:
  LocalPredictor(usize history_entries = 1024, unsigned history_bits = 10);
  BranchPrediction predict(Addr pc) override;
  void update(Addr pc, bool taken, u64 meta) override;
  std::string name() const override { return "local2level"; }

 private:
  std::vector<u16> histories_;
  std::vector<u8> counters_;
  unsigned history_bits_;
};

/// McFarling tournament: bimodal + gshare with a 2-bit chooser table.
class TournamentPredictor final : public DirectionPredictor {
 public:
  TournamentPredictor(usize bimodal_size = 2048, unsigned gshare_bits = 12,
                      usize chooser_size = 2048);
  BranchPrediction predict(Addr pc) override;
  void update(Addr pc, bool taken, u64 meta) override;
  u64 checkpoint() const override { return gshare_.checkpoint(); }
  void restore(u64 checkpoint) override { gshare_.restore(checkpoint); }
  void repair(u64 meta, bool taken) override;
  std::string name() const override { return "tournament"; }

 private:
  BimodalPredictor bimodal_;
  GsharePredictor gshare_;
  std::vector<u8> chooser_;
  usize chooser_mask_;
};

enum class PredictorKind : u8 {
  kNotTaken,
  kTaken,
  kBtfn,
  kBimodal,
  kGshare,
  kLocal,
  kTournament,
};

std::unique_ptr<DirectionPredictor> make_predictor(PredictorKind kind);
const char* predictor_kind_name(PredictorKind kind);

// ---------------------------------------------------------------------------

/// Branch target buffer: tagged, set-associative, LRU.
class Btb {
 public:
  Btb(usize entries = 512, u32 associativity = 4);

  /// Target for `pc` if present; a hit refreshes the entry's LRU stamp.
  bool lookup(Addr pc, Addr* target) const;
  void update(Addr pc, Addr target);

  u64 lookups() const { return lookups_; }
  u64 hits() const { return hits_; }

 private:
  struct Entry {
    Addr pc = 0;
    Addr target = 0;
    bool valid = false;
    u64 stamp = 0;
  };
  mutable std::vector<Entry> entries_;
  usize set_count_;
  u32 associativity_;
  mutable u64 tick_ = 0;
  mutable u64 lookups_ = 0;
  mutable u64 hits_ = 0;
};

/// Return-address stack with single-entry repair (standard TOS checkpoint).
class ReturnAddressStack {
 public:
  explicit ReturnAddressStack(usize depth = 16);

  void push(Addr return_address);
  /// Pops and returns the predicted return target; 0 if empty.
  Addr pop();

  struct Checkpoint {
    usize top;
    Addr top_value;
  };
  Checkpoint checkpoint() const;
  void restore(const Checkpoint& checkpoint);

 private:
  std::vector<Addr> stack_;
  usize top_ = 0;  ///< index one past the newest entry, wraps
  usize depth_;
};

}  // namespace reese::branch

// Branch direction predictors, BTB, and return-address stack.
//
// The paper's configuration uses gshare (McFarling, "Combining Branch
// Predictors", DEC WRL TN-36). The zoo here also provides static schemes,
// bimodal, a two-level local predictor and a tournament combiner for
// ablation studies and tests.
//
// Interface contract: predict() may speculatively update internal global
// history; the returned `meta` word must be passed back to update() when
// the branch resolves (it carries the history/index the prediction used).
// checkpoint()/restore() save and repair speculative history around
// mispredictions.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace reese {
class SnapshotReader;
class SnapshotWriter;
}  // namespace reese

namespace reese::branch {

struct BranchPrediction {
  bool taken = false;
  u64 meta = 0;  ///< implementation-defined resolve-time cookie
};

/// 2-bit saturating counter helpers shared by the table-based predictors;
/// counters start weakly not-taken (1). Inline because gshare's predict()
/// and update() are header-defined hot paths (fetch/commit rate).
inline constexpr u8 kWeakNotTaken = 1;

inline u8 bump_counter(u8 counter, bool taken) {
  if (taken) return counter < 3 ? counter + 1 : 3;
  return counter > 0 ? counter - 1 : 0;
}

inline bool counter_taken(u8 counter) { return counter >= 2; }

class DirectionPredictor {
 public:
  virtual ~DirectionPredictor() = default;
  virtual BranchPrediction predict(Addr pc) = 0;
  /// Called in program order when the branch resolves.
  virtual void update(Addr pc, bool taken, u64 meta) = 0;
  /// Speculative-history checkpointing (no-ops for history-free schemes).
  virtual u64 checkpoint() const { return 0; }
  virtual void restore(u64 /*checkpoint*/) {}
  /// Misprediction repair: rewind speculative global history to the state
  /// this branch predicted with (`meta`) and shift in the actual outcome.
  virtual void repair(u64 /*meta*/, bool /*taken*/) {}
  virtual std::string name() const = 0;
  /// Checkpoint serialization; no-ops for the stateless schemes.
  virtual void save_state(SnapshotWriter* /*writer*/) const {}
  virtual void load_state(SnapshotReader* /*reader*/) {}
};

/// Always-not-taken / always-taken.
class StaticPredictor final : public DirectionPredictor {
 public:
  explicit StaticPredictor(bool predict_taken) : taken_(predict_taken) {}
  BranchPrediction predict(Addr) override { return {taken_, 0}; }
  void update(Addr, bool, u64) override {}
  std::string name() const override {
    return taken_ ? "static-taken" : "static-nottaken";
  }

 private:
  bool taken_;
};

/// Backward-taken / forward-not-taken. The core must tell it the branch
/// displacement sign; it does so by encoding it in the pc it passes — so
/// instead this class exposes a dedicated entry point.
class BtfnPredictor final : public DirectionPredictor {
 public:
  BranchPrediction predict(Addr) override { return {false, 0}; }
  BranchPrediction predict_with_direction(bool backward) {
    return {backward, 0};
  }
  void update(Addr, bool, u64) override {}
  std::string name() const override { return "btfn"; }
};

/// 2-bit saturating counter table indexed by PC.
class BimodalPredictor final : public DirectionPredictor {
 public:
  explicit BimodalPredictor(usize table_size = 2048);
  BranchPrediction predict(Addr pc) override;
  void update(Addr pc, bool taken, u64 meta) override;
  std::string name() const override { return "bimodal"; }
  void save_state(SnapshotWriter* writer) const override;
  void load_state(SnapshotReader* reader) override;

 private:
  std::vector<u8> table_;
  usize mask_;
};

/// gshare: global history XOR PC indexes a 2-bit counter table. Global
/// history is updated speculatively at predict time.
///
/// predict()/update()/repair() are header-inline: gshare is the paper
/// configuration's predictor, and the pipeline holds a concrete pointer to
/// it (Pipeline::gshare_) so the per-branch calls skip the vtable and fold
/// into the fetch and commit stages.
class GsharePredictor final : public DirectionPredictor {
 public:
  /// `history_bits` is also log2(table size).
  explicit GsharePredictor(unsigned history_bits = 12);
  BranchPrediction predict(Addr pc) override {
    const u64 used_history = ghr_;
    const bool taken = counter_taken(table_[index_of(pc, used_history)]);
    // Speculative history update with the *predicted* outcome.
    ghr_ = ((ghr_ << 1) | (taken ? 1 : 0)) & ((u64{1} << history_bits_) - 1);
    return {taken, used_history};
  }
  void update(Addr pc, bool taken, u64 meta) override {
    u8& counter = table_[index_of(pc, meta)];
    counter = bump_counter(counter, taken);
  }
  u64 checkpoint() const override { return ghr_; }
  void restore(u64 checkpoint) override { ghr_ = checkpoint; }
  void repair(u64 meta, bool taken) override {
    // `meta` is the global history this branch predicted with; everything
    // shifted in since is wrong-path speculation.
    ghr_ = ((meta << 1) | (taken ? 1 : 0)) & ((u64{1} << history_bits_) - 1);
  }
  std::string name() const override { return "gshare"; }
  void save_state(SnapshotWriter* writer) const override;
  void load_state(SnapshotReader* reader) override;

  /// Component-site fault campaigns: flip one bit of a 2-bit pattern
  /// counter. Always lands (the table has no valid bits); returns the
  /// struck index for bookkeeping.
  usize flip_counter_bit(u64 cell, unsigned bit) {
    const usize index = static_cast<usize>(cell % table_.size());
    table_[index] ^= static_cast<u8>(u8{1} << (bit & 1));
    return index;
  }

 private:
  usize index_of(Addr pc, u64 history) const {
    return static_cast<usize>(((pc >> 2) ^ history) & (table_.size() - 1));
  }
  std::vector<u8> table_;
  unsigned history_bits_;
  u64 ghr_ = 0;
};

/// Two-level local (PAg): per-branch history table -> pattern counter table.
class LocalPredictor final : public DirectionPredictor {
 public:
  LocalPredictor(usize history_entries = 1024, unsigned history_bits = 10);
  BranchPrediction predict(Addr pc) override;
  void update(Addr pc, bool taken, u64 meta) override;
  std::string name() const override { return "local2level"; }
  void save_state(SnapshotWriter* writer) const override;
  void load_state(SnapshotReader* reader) override;

 private:
  std::vector<u16> histories_;
  std::vector<u8> counters_;
  unsigned history_bits_;
};

/// McFarling tournament: bimodal + gshare with a 2-bit chooser table.
class TournamentPredictor final : public DirectionPredictor {
 public:
  TournamentPredictor(usize bimodal_size = 2048, unsigned gshare_bits = 12,
                      usize chooser_size = 2048);
  BranchPrediction predict(Addr pc) override;
  void update(Addr pc, bool taken, u64 meta) override;
  u64 checkpoint() const override { return gshare_.checkpoint(); }
  void restore(u64 checkpoint) override { gshare_.restore(checkpoint); }
  void repair(u64 meta, bool taken) override;
  std::string name() const override { return "tournament"; }
  void save_state(SnapshotWriter* writer) const override;
  void load_state(SnapshotReader* reader) override;

 private:
  BimodalPredictor bimodal_;
  GsharePredictor gshare_;
  std::vector<u8> chooser_;
  usize chooser_mask_;
};

enum class PredictorKind : u8 {
  kNotTaken,
  kTaken,
  kBtfn,
  kBimodal,
  kGshare,
  kLocal,
  kTournament,
};

std::unique_ptr<DirectionPredictor> make_predictor(PredictorKind kind);
const char* predictor_kind_name(PredictorKind kind);

// ---------------------------------------------------------------------------

/// Branch target buffer: tagged, set-associative, LRU.
class Btb {
 public:
  Btb(usize entries = 512, u32 associativity = 4);

  /// Target for `pc` if present; a hit refreshes the entry's LRU stamp.
  bool lookup(Addr pc, Addr* target) const;
  void update(Addr pc, Addr target);

  u64 lookups() const { return lookups_; }
  u64 hits() const { return hits_; }

  void save(SnapshotWriter* writer) const;
  void load(SnapshotReader* reader);

  /// Component-site fault campaigns: flip one bit of a BTB entry's stored
  /// target. Returns false when the struck entry is invalid (no stored
  /// state to corrupt — the strike is trivially masked).
  bool flip_target_bit(u64 cell, unsigned bit) {
    Entry& entry = entries_[static_cast<usize>(cell % entries_.size())];
    if (!entry.valid) return false;
    entry.target ^= Addr{1} << (bit & 63);
    return true;
  }

 private:
  struct Entry {
    Addr pc = 0;
    Addr target = 0;
    bool valid = false;
    u64 stamp = 0;
  };
  mutable std::vector<Entry> entries_;
  usize set_count_;
  u32 associativity_;
  mutable u64 tick_ = 0;
  mutable u64 lookups_ = 0;
  mutable u64 hits_ = 0;
};

/// Return-address stack with single-entry repair (standard TOS checkpoint).
///
/// Header-inline with compare-subtract wraparound: push/pop run per
/// call/return and checkpoint() runs per fetched control transfer, and
/// `depth` is a config value (not necessarily a power of two), so a `%`
/// here was an integer divide on the fetch path.
class ReturnAddressStack {
 public:
  explicit ReturnAddressStack(usize depth = 16) : stack_(depth, 0),
                                                  depth_(depth) {
    assert(depth >= 1);
  }

  void push(Addr return_address) {
    stack_[top_] = return_address;
    ++top_;
    if (top_ == depth_) top_ = 0;
  }
  /// Pops and returns the predicted return target; 0 if empty.
  Addr pop() {
    top_ = (top_ == 0 ? depth_ : top_) - 1;
    return stack_[top_];
  }

  struct Checkpoint {
    usize top;
    Addr top_value;
  };
  Checkpoint checkpoint() const {
    const usize newest = (top_ == 0 ? depth_ : top_) - 1;
    return {top_, stack_[newest]};
  }
  void restore(const Checkpoint& checkpoint) {
    top_ = checkpoint.top;
    const usize newest = (top_ == 0 ? depth_ : top_) - 1;
    stack_[newest] = checkpoint.top_value;
  }

  void save(SnapshotWriter* writer) const;
  void load(SnapshotReader* reader);

 private:
  std::vector<Addr> stack_;
  usize top_ = 0;  ///< index one past the newest entry, wraps
  usize depth_;
};

}  // namespace reese::branch

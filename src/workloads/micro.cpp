// Microbenchmarks: single-behaviour kernels used by unit tests and the
// ablation benches to pin down one pipeline mechanism at a time.
#include <numeric>
#include <vector>

#include "common/strutil.h"
#include "workloads/builder.h"
#include "workloads/workload.h"

namespace reese::workloads {
namespace {

Workload wrap(const char* name, const char* description, std::string source) {
  Workload workload;
  workload.name = name;
  workload.mimics = "micro";
  workload.description = description;
  workload.program = assemble_or_die(source, name);
  return workload;
}

}  // namespace

Workload make_ilp_chain(const WorkloadOptions& options) {
  std::string source = program_shell("kernel", options.iterations);
  source += R"(
# Eight independent accumulator chains: as much ILP as the machine can eat.
kernel:
  li   t0, 64
  li   a1, 1
  li   a2, 2
  li   a3, 3
  li   a4, 4
  li   a5, 5
  li   a6, 6
  li   a7, 7
  li   t5, 8
ilp_loop:
  addi a1, a1, 1
  addi a2, a2, 2
  addi a3, a3, 3
  addi a4, a4, 4
  addi a5, a5, 5
  addi a6, a6, 6
  addi a7, a7, 7
  addi t5, t5, 8
  addi t0, t0, -1
  bnez t0, ilp_loop
  add  a1, a1, a2
  add  a3, a3, a4
  add  a5, a5, a6
  add  a7, a7, t5
  add  a1, a1, a3
  add  a5, a5, a7
  add  a1, a1, a5
  out  a1
  ret
)";
  return wrap("ilp_chain", "8 independent add chains (ILP ceiling)", source);
}

Workload make_dep_chain(const WorkloadOptions& options) {
  std::string source = program_shell("kernel", options.iterations);
  source += R"(
# One serial dependence chain: the ILP floor.
kernel:
  li   t0, 256
  li   a1, 1
dep_loop:
  addi a1, a1, 3
  xori a1, a1, 5
  addi a1, a1, 7
  addi t0, t0, -1
  bnez t0, dep_loop
  out  a1
  ret
)";
  return wrap("dep_chain", "single serial add/xor chain (ILP floor)", source);
}

Workload make_mem_stream(const WorkloadOptions& options) {
  const u64 bytes = 262144ULL * options.scale;  // 256 KiB: spills L1, fits L2
  std::string source = program_shell("kernel", options.iterations);
  source += format(R"(
# Streaming read-modify-write over a buffer larger than L1.
kernel:
  la   t0, buffer
  li   t1, %llu
  li   t6, 0
stream_loop:
  ld   t2, 0(t0)
  add  t6, t6, t2
  addi t2, t2, 1
  sd   t2, 0(t0)
  ld   t3, 8(t0)
  add  t6, t6, t3
  ld   t4, 16(t0)
  add  t6, t6, t4
  ld   t5, 24(t0)
  add  t6, t6, t5
  addi t0, t0, 32
  addi t1, t1, -32
  bnez t1, stream_loop
  out  t6
  ret

  .data
  .align 8
buffer: .space %llu
)",
                   static_cast<unsigned long long>(bytes),
                   static_cast<unsigned long long>(bytes));
  return wrap("mem_stream", "sequential RMW over 256 KiB (L1-missing)", source);
}

Workload make_pointer_chase(const WorkloadOptions& options) {
  SplitMix64 rng(options.seed ^ 0xC4A5E);
  const usize entries = 8192 * options.scale;  // 64 KiB of pointers

  // Random single-cycle permutation (Sattolo's algorithm) so the chase
  // visits every slot before repeating.
  std::vector<u64> order(entries);
  std::iota(order.begin(), order.end(), 0);
  for (usize i = entries - 1; i > 0; --i) {
    const usize j = static_cast<usize>(rng.next_below(i));
    std::swap(order[i], order[j]);
  }
  std::vector<u64> table(entries);
  const Addr base = isa::kDefaultDataBase;
  for (usize i = 0; i < entries; ++i) {
    table[order[i]] = base + order[(i + 1) % entries] * 8;
  }

  std::string source = program_shell("kernel", options.iterations);
  source += format(R"(
# Serial pointer chase through a random permutation: latency-bound loads.
kernel:
  la   t0, chain
  li   t1, %llu
chase_loop:
  ld   t0, 0(t0)
  addi t1, t1, -1
  bnez t1, chase_loop
  out  t0
  ret

  .data
)",
                   static_cast<unsigned long long>(entries / 2));
  source += dword_table("chain", table);
  return wrap("pointer_chase",
              "serial chase through a random 64 KiB permutation", source);
}

Workload make_branch_torture(const WorkloadOptions& options) {
  SplitMix64 rng(options.seed ^ 0xB7A9C4);
  std::vector<u8> bits(4096);
  for (u8& b : bits) b = static_cast<u8>(rng.next() & 1);

  std::string source = program_shell("kernel", options.iterations);
  source += R"(
# Branch on 4096 random bits: ~50% mispredictions for any predictor.
kernel:
  la   t0, bits
  li   t1, 4096
  li   t6, 0
bt_loop:
  lbu  t2, 0(t0)
  beqz t2, bt_zero
  addi t6, t6, 3
  j    bt_next
bt_zero:
  slli t6, t6, 1
  addi t6, t6, 1
bt_next:
  addi t0, t0, 1
  addi t1, t1, -1
  bnez t1, bt_loop
  out  t6
  ret

  .data
)";
  source += byte_table("bits", bits);
  return wrap("branch_torture", "data-dependent branches on random bits",
              source);
}

Workload make_matmul(const WorkloadOptions& options) {
  SplitMix64 rng(options.seed ^ 0x3A73);
  std::vector<u64> a(16 * 16), b(16 * 16);
  for (u64& v : a) v = rng.next_below(1000);
  for (u64& v : b) v = rng.next_below(1000);

  std::string source = program_shell("kernel", options.iterations);
  source += R"(
# 16x16 integer matrix multiply: multiplier-unit pressure.
kernel:
  la   t0, mat_a
  la   t1, mat_b
  la   t2, mat_c
  li   t6, 0
  li   t3, 0              # i
mm_i:
  li   t4, 0              # j
mm_j:
  li   a1, 0              # acc
  li   t5, 0              # k
mm_k:
  slli a2, t3, 7          # &a[i][k] = a + i*128 + k*8
  slli a3, t5, 3
  add  a2, a2, a3
  add  a2, a2, t0
  ld   a4, 0(a2)
  slli a2, t5, 7          # &b[k][j]
  slli a3, t4, 3
  add  a2, a2, a3
  add  a2, a2, t1
  ld   a5, 0(a2)
  mul  a4, a4, a5
  add  a1, a1, a4
  addi t5, t5, 1
  li   a2, 16
  blt  t5, a2, mm_k
  slli a2, t3, 7          # c[i][j] = acc
  slli a3, t4, 3
  add  a2, a2, a3
  add  a2, a2, t2
  sd   a1, 0(a2)
  add  t6, t6, a1
  addi t4, t4, 1
  li   a2, 16
  blt  t4, a2, mm_j
  addi t3, t3, 1
  blt  t3, a2, mm_i
  out  t6
  ret

  .data
)";
  source += dword_table("mat_a", a);
  source += dword_table("mat_b", b);
  source += "  .align 8\nmat_c: .space 2048\n";
  return wrap("matmul", "16x16 integer matmul (IntMult pressure)", source);
}

Workload make_div_heavy(const WorkloadOptions& options) {
  std::string source = program_shell("kernel", options.iterations);
  source += R"(
# Serial divides: the unpipelined unit dominates.
kernel:
  li   t0, 48
  li   a1, 0x7FFFFFFFFFFF
  li   a2, 37
  li   a5, 1000003
dh_loop:
  div  a3, a1, a2
  rem  a4, a1, a2
  add  a1, a3, a4
  add  a1, a1, a5
  addi t0, t0, -1
  bnez t0, dh_loop
  out  a1
  ret
)";
  return wrap("div_heavy", "serial div/rem chain (unpipelined unit)", source);
}

Workload make_fp_daxpy(const WorkloadOptions& options) {
  SplitMix64 rng(options.seed ^ 0xDA);
  std::vector<u64> x(512), y(512);
  for (u64& v : x) {
    v = std::bit_cast<u64>(1.0 + rng.next_double());
  }
  for (u64& v : y) {
    v = std::bit_cast<u64>(2.0 + rng.next_double());
  }

  std::string source = program_shell("kernel", options.iterations);
  source += R"(
# daxpy over 512 doubles: FP adder/multiplier traffic.
kernel:
  la   t0, vec_x
  la   t1, vec_y
  li   t2, 512
  li   t3, 3
  fcvt.d.l ft0, t3        # alpha = 3.0
fp_loop:
  fld  ft1, 0(t0)
  fld  ft2, 0(t1)
  fmul ft1, ft1, ft0
  fadd ft2, ft2, ft1
  fsd  ft2, 0(t1)
  addi t0, t0, 8
  addi t1, t1, 8
  addi t2, t2, -1
  bnez t2, fp_loop
  fld  ft3, -8(t1)
  fcvt.l.d t4, ft3
  out  t4
  ret

  .data
)";
  source += dword_table("vec_x", x);
  source += dword_table("vec_y", y);
  return wrap("fp_daxpy", "daxpy over 512 doubles (FP units)", source);
}

}  // namespace reese::workloads

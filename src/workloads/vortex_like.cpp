// vortex stand-in: an object store with a hashed index.
//
// vortex is a single-user OO database: lookups through an index, record
// copies, field updates, inserts. Each kernel iteration performs 32
// operations driven by an in-assembly LCG: probe the index for a key,
// on a hit copy the 64-byte record into a workspace and update a field
// (store-heavy, like vortex's object moves), on a miss insert a fresh
// record. Predictable control, high store fraction, dependent loads
// through the index.
#include "common/strutil.h"
#include "workloads/builder.h"
#include "workloads/workload.h"

namespace reese::workloads {

Workload make_vortex_like(const WorkloadOptions& options) {
  const u64 record_count = 256 * options.scale;

  std::string source;
  source += program_shell("kernel", options.iterations);
  source += format(R"(
# kernel(a0 = iteration): 32 keyed operations against the record store.
kernel:
  la   t0, index
  la   t1, recpool
  la   t2, wspace
  li   t6, 0                # checksum
  li   t3, 32               # operations per iteration
  addi t4, a0, 1            # LCG state seeded by iteration
  li   a6, 0x27BB2EE687B0B5  # multiplier (53-bit)
op_loop:
  mul  t4, t4, a6
  addi t4, t4, 13
  srli a1, t4, 33
  li   a2, %llu
  and  a1, a1, a2           # key in [0, record_count)
  andi a2, a1, 511          # index slot
  slli a2, a2, 4
  add  a2, a2, t0
  ld   a3, 0(a2)            # stored key+1 (0 = empty slot)
  addi a4, a1, 1
  beq  a3, a4, hit

  # Miss: insert. Record address = recpool + key*64.
  slli a5, a1, 6
  add  a5, a5, t1
  sd   a4, 0(a2)
  sd   a5, 8(a2)
  li   a3, 8                # initialize 8 fields
  mv   t5, a5
init_fields:
  sd   a1, 0(t5)
  addi t5, t5, 8
  addi a3, a3, -1
  bnez a3, init_fields
  addi t6, t6, 1
  j    next_op

hit:
  ld   a5, 8(a2)            # record pointer
  ld   t5, 0(a5)            # copy record into the workspace (unrolled)
  sd   t5, 0(t2)
  ld   t5, 8(a5)
  sd   t5, 8(t2)
  ld   t5, 16(a5)
  sd   t5, 16(t2)
  ld   t5, 24(a5)
  sd   t5, 24(t2)
  ld   t5, 32(a5)
  sd   t5, 32(t2)
  ld   t5, 40(a5)
  sd   t5, 40(t2)
  ld   t5, 48(a5)
  sd   t5, 48(t2)
  ld   t5, 56(a5)
  sd   t5, 56(t2)
  ld   t5, 0(a5)            # update field 0
  add  t5, t5, a1
  sd   t5, 0(a5)
  add  t6, t6, t5
  xor  t4, t4, t5           # object traversal: the next key visited depends
                            # on this record's contents (reference chasing)

next_op:
  addi t3, t3, -1
  bnez t3, op_loop
  out  t6
  ret

  .data
  .align 8
index:   .space 8192
recpool: .space %llu
wspace:  .space 64
)",
                   static_cast<unsigned long long>(record_count - 1),
                   static_cast<unsigned long long>(record_count * 64));

  Workload workload;
  workload.name = "vortex";
  workload.mimics = "SPECint95 147.vortex (train)";
  workload.description = format(
      "hashed-index object store: lookups, 64B record copies and inserts "
      "over %llu records",
      static_cast<unsigned long long>(record_count));
  workload.program = assemble_or_die(source, "vortex_like");
  return workload;
}

}  // namespace reese::workloads

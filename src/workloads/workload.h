// Benchmark workloads.
//
// The paper evaluates six SPECint95 integer benchmarks (Table 2: gcc, go,
// ijpeg, li, perl, vortex). Those binaries and inputs are not available to
// this reproduction, so each is substituted by a kernel written in SRV
// assembly that mimics the benchmark's dynamic character — branch
// predictability, pointer-chasing behaviour, multiply density, load/store
// mix and working-set size. See DESIGN.md §3/§4 for the substitution
// argument.
//
// Every workload:
//  * is generated deterministically from a seed (data tables are baked into
//    the .data image at build time),
//  * publishes a checksum through the OUT instruction every iteration, so
//    functional equivalence between the golden ISS and the pipelines is
//    checkable,
//  * runs forever when `iterations == 0` (the bench harness simulates a
//    fixed instruction budget) or HALTs after N iterations (tests).
#pragma once

#include <string>
#include <vector>

#include "common/error.h"
#include "isa/program.h"

namespace reese::workloads {

struct WorkloadOptions {
  u64 seed = 0x5EED5EED;
  /// Outer-loop iterations; 0 = loop forever.
  u64 iterations = 0;
  /// Scale factor >= 1 enlarging data structures (working-set studies).
  u32 scale = 1;
};

struct Workload {
  std::string name;
  std::string mimics;      ///< the SPEC95 benchmark this stands in for
  std::string description; ///< Table 2 "input" column analogue
  isa::Program program;
};

// --- the six SPECint95 stand-ins (Table 2) ---------------------------------

/// gcc: random expression-tree construction + recursive constant folding.
Workload make_gcc_like(const WorkloadOptions& options = {});
/// go: 19x19 board pattern scanning with data-dependent branches.
Workload make_go_like(const WorkloadOptions& options = {});
/// ijpeg: 8x8 integer DCT + quantization over an image.
Workload make_ijpeg_like(const WorkloadOptions& options = {});
/// li: cons-cell list building/reversal/traversal + mark phase.
Workload make_li_like(const WorkloadOptions& options = {});
/// perl: tokenizer + rolling hash + hash-table accounting.
Workload make_perl_like(const WorkloadOptions& options = {});
/// vortex: record store with hashed index, lookups and record copies.
Workload make_vortex_like(const WorkloadOptions& options = {});

// --- FP extension kernels (the paper's §5.2: "We did not study floating
// point programs"; these feed bench/ext_fp_workloads) ------------------------

/// SPECfp95 swim stand-in: 5-point double stencil over a 32x32 grid.
Workload make_swim_like(const WorkloadOptions& options = {});
/// SPECfp95 tomcatv stand-in: sqrt/divide point normalization.
Workload make_tomcatv_like(const WorkloadOptions& options = {});

// --- the two SPECint95 members the paper skipped (extensions) ---------------

/// compress: run-length scanning + dictionary hashing.
Workload make_compress_like(const WorkloadOptions& options = {});
/// m88ksim: interpreter with indirect jump-table dispatch.
Workload make_m88ksim_like(const WorkloadOptions& options = {});

// --- microbenchmarks (tests and ablations) ----------------------------------

Workload make_ilp_chain(const WorkloadOptions& options = {});
Workload make_dep_chain(const WorkloadOptions& options = {});
Workload make_mem_stream(const WorkloadOptions& options = {});
Workload make_pointer_chase(const WorkloadOptions& options = {});
Workload make_branch_torture(const WorkloadOptions& options = {});
Workload make_matmul(const WorkloadOptions& options = {});
Workload make_div_heavy(const WorkloadOptions& options = {});
Workload make_fp_daxpy(const WorkloadOptions& options = {});

// --- registry ----------------------------------------------------------------

/// Names of the six paper benchmarks, in the paper's order.
const std::vector<std::string>& spec_like_names();

/// Names of the FP extension kernels.
const std::vector<std::string>& fp_like_names();

/// Names of every registered workload (spec-like + micro).
const std::vector<std::string>& all_workload_names();

/// Factory by name; Error if unknown.
Result<Workload> make_workload(const std::string& name,
                               const WorkloadOptions& options = {});

}  // namespace reese::workloads

#include "workloads/builder.h"

#include <cstdio>
#include <cstdlib>

#include "common/strutil.h"
#include "isa/assembler.h"

namespace reese::workloads {

std::string dword_table(const std::string& label,
                        std::span<const u64> values) {
  std::string out = "  .align 8\n" + label + ":\n";
  for (usize i = 0; i < values.size(); i += 8) {
    out += "  .dword ";
    for (usize j = i; j < std::min(values.size(), i + 8); ++j) {
      if (j != i) out += ", ";
      out += format("0x%llx", static_cast<unsigned long long>(values[j]));
    }
    out += "\n";
  }
  return out;
}

std::string byte_table(const std::string& label, std::span<const u8> values) {
  std::string out = label + ":\n";
  for (usize i = 0; i < values.size(); i += 16) {
    out += "  .byte ";
    for (usize j = i; j < std::min(values.size(), i + 16); ++j) {
      if (j != i) out += ", ";
      out += std::to_string(values[j]);
    }
    out += "\n";
  }
  return out;
}

isa::Program assemble_or_die(const std::string& source, const char* name) {
  auto result = isa::assemble(source);
  if (!result.ok()) {
    std::fprintf(stderr, "workload '%s' failed to assemble: %s\n", name,
                 result.error().to_string().c_str());
    std::abort();
  }
  return std::move(result).value();
}

std::string program_shell(const std::string& kernel_label, u64 iterations) {
  std::string out;
  out += "main:\n";
  out += "  li   sp, 0x8000000\n";
  out += "  li   s10, 0\n";  // iteration index
  if (iterations > 0) {
    out += format("  li   s11, %llu\n",
                  static_cast<unsigned long long>(iterations));
  }
  out += "outer_loop:\n";
  out += "  mv   a0, s10\n";
  out += "  call " + kernel_label + "\n";
  out += "  addi s10, s10, 1\n";
  if (iterations > 0) {
    out += "  addi s11, s11, -1\n";
    out += "  bnez s11, outer_loop\n";
    out += "  halt\n";
  } else {
    out += "  j    outer_loop\n";
  }
  return out;
}

}  // namespace reese::workloads

// Random structured SRV program generation for differential testing.
//
// Programs are generated as assembly text from a seed: random ALU
// arithmetic over a register pool, loads/stores into a bounded arena,
// counted loops, data-dependent forward branches, leaf calls, and an
// occasional multiply/divide — always terminating, always ending in OUT
// checksums + HALT. The golden ISS result is the oracle; every pipeline
// configuration must match it bit-for-bit.
#pragma once

#include <string>

#include "common/rng.h"
#include "isa/program.h"

namespace reese::workloads {

struct FuzzOptions {
  u64 seed = 1;
  /// Top-level program segments (roughly proportional to size).
  u32 segments = 40;
  /// Maximum counted-loop trip count.
  u32 max_loop_trips = 12;
  /// Enable memory operations.
  bool with_memory = true;
  /// Enable mul/div.
  bool with_muldiv = true;
  /// Enable leaf calls.
  bool with_calls = true;
};

/// Generate the assembly text (useful for debugging failures).
std::string generate_fuzz_source(const FuzzOptions& options);

/// Generate and assemble; aborts on assembly failure (generator bug).
isa::Program generate_fuzz_program(const FuzzOptions& options);

}  // namespace reese::workloads

// go stand-in: board pattern scanning.
//
// go (the game-playing SPEC95 benchmark) is notorious for branch-predictor
// abuse: short data-dependent branches over 2-D board state with almost no
// loops long enough to learn. This kernel scans a 19x19 board (stride-32
// rows), counting "atari-like" patterns around empty points and measuring
// same-colour run lengths from occupied points — every branch outcome is a
// function of baked-in random board data, and one stone mutates per
// iteration so the history keeps shifting.
#include <vector>

#include "common/strutil.h"
#include "workloads/builder.h"
#include "workloads/workload.h"

namespace reese::workloads {

Workload make_go_like(const WorkloadOptions& options) {
  SplitMix64 rng(options.seed ^ 0x60);

  // 19 rows x 32-byte stride inside a 1024-byte arena (mutations may write
  // pad bytes; the scan never reads them).
  std::vector<u8> board(1024, 0);
  for (unsigned row = 0; row < 19; ++row) {
    for (unsigned col = 0; col < 19; ++col) {
      const u64 r = rng.next_below(10);
      board[row * 32 + col] = r < 4 ? 0 : (r < 7 ? 1 : 2);  // 40% empty
    }
  }

  std::string source;
  source += program_shell("kernel", options.iterations);
  source += R"(
# kernel(a0 = iteration): mutate one cell, then score the whole board.
kernel:
  la   t0, board
  li   t1, 131              # mutate cell (a0*131+89) & 1023
  mul  t1, a0, t1
  addi t1, t1, 89
  andi t1, t1, 1023
  add  t1, t0, t1
  lbu  t2, 0(t1)
  addi t2, t2, 1
  li   t3, 3
  blt  t2, t3, mut_ok
  li   t2, 0
mut_ok:
  sb   t2, 0(t1)

  li   t6, 0                # score accumulator
  li   t4, 1                # row 1..17
row_loop:
  li   t5, 1                # col 1..17
col_loop:
  slli t2, t4, 5
  add  t2, t2, t5
  add  t2, t2, t0           # &board[row][col]
  lbu  t3, 0(t2)
  bnez t3, occupied

  # Empty point: count colour-1 stones in the 4-neighbourhood.
  li   a1, 0
  li   a3, 1
  lbu  a2, -32(t2)
  bne  a2, a3, n_south
  addi a1, a1, 1
n_south:
  lbu  a2, 32(t2)
  bne  a2, a3, n_west
  addi a1, a1, 1
n_west:
  lbu  a2, -1(t2)
  bne  a2, a3, n_east
  addi a1, a1, 1
n_east:
  lbu  a2, 1(t2)
  bne  a2, a3, n_done
  addi a1, a1, 1
n_done:
  li   a3, 2
  blt  a1, a3, cell_done    # not surrounded enough: no score
  add  t6, t6, a1
  j    cell_done

occupied:
  # Same-colour run length to the east, capped at 6.
  li   a1, 0
  mv   a2, t2
run_loop:
  addi a2, a2, 1
  addi a1, a1, 1
  lbu  a4, 0(a2)
  bne  a4, t3, run_done
  li   a5, 6
  blt  a1, a5, run_loop
run_done:
  mul  a4, a1, a1
  add  t6, t6, a4

cell_done:
  addi t5, t5, 1
  li   a2, 18
  blt  t5, a2, col_loop
  addi t4, t4, 1
  blt  t4, a2, row_loop
  out  t6
  ret

  .data
)";
  source += byte_table("board", board);

  Workload workload;
  workload.name = "go";
  workload.mimics = "SPECint95 099.go (train)";
  workload.description =
      "19x19 board pattern scan; branch outcomes follow random board data";
  workload.program = assemble_or_die(source, "go_like");
  return workload;
}

}  // namespace reese::workloads

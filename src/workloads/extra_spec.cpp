// The two SPECint95 members the paper did not evaluate (it used six of the
// eight integer benchmarks). Provided as extension workloads so the full
// suite's behaviour can be explored; clearly labelled as such.
#include <vector>

#include "common/strutil.h"
#include "workloads/builder.h"
#include "workloads/workload.h"

namespace reese::workloads {

// compress stand-in: run-length + hash coding over a buffer. Byte-grained
// loads, short data-dependent runs, a hash-table of recent strings — the
// classic compress profile of unpredictable short loops.
Workload make_compress_like(const WorkloadOptions& options) {
  SplitMix64 rng(options.seed ^ 0xC0);

  // Compressible input: runs of repeated bytes with random lengths.
  std::vector<u8> input;
  while (input.size() < 3000) {
    const u8 byte = static_cast<u8>(rng.next_below(32));
    const usize run = 1 + rng.next_below(12);
    for (usize i = 0; i < run && input.size() < 3000; ++i) {
      input.push_back(byte);
    }
  }
  input.push_back(0xFF);  // terminator (never appears in data)
  input.resize(3072, 0xFF);

  std::string source = program_shell("kernel", options.iterations);
  source += R"(
# kernel(a0 = iteration): RLE-scan the input from a rotating offset,
# hashing each (byte, run-length) pair into a dictionary.
kernel:
  la   t0, input
  la   t1, dict
  li   t6, 0               # output "size" checksum
  li   t2, 97              # start offset = (iter*97) & 2047
  mul  t2, a0, t2
  andi t2, t2, 2047
  add  t0, t0, t2
cp_scan:
  lbu  t3, 0(t0)
  li   a1, 0xFF
  beq  t3, a1, cp_done
  # measure the run of t3
  li   a2, 0               # run length
cp_run:
  addi t0, t0, 1
  addi a2, a2, 1
  lbu  a3, 0(t0)
  beq  a3, t3, cp_run
  # hash (byte, run) -> dict slot; count distinct pairs
  slli a4, t3, 4
  xor  a4, a4, a2
  andi a4, a4, 255
  slli a4, a4, 3
  add  a4, a4, t1
  ld   a5, 0(a4)
  addi a5, a5, 1
  sd   a5, 0(a4)
  add  t6, t6, a2
  xor  t6, t6, a5
  j    cp_scan
cp_done:
  out  t6
  ret

  .data
)";
  source += byte_table("input", input);
  source += "  .align 8\ndict: .space 2048\n";

  Workload workload;
  workload.name = "compress";
  workload.mimics = "SPECint95 129.compress (extension; not in the paper)";
  workload.description =
      "run-length scan + dictionary hashing over 3 KiB of runs";
  workload.program = assemble_or_die(source, "compress_like");
  return workload;
}

// m88ksim stand-in: an interpreter interpreting a toy register machine —
// an indirect-dispatch loop (the jalr goes through a jump table), exactly
// the profile of a CPU simulator benchmark.
Workload make_m88ksim_like(const WorkloadOptions& options) {
  SplitMix64 rng(options.seed ^ 0x88);

  // Toy machine program: word-encoded {opcode, a, b} triples.
  // Opcodes: 0 add, 1 xor, 2 shift, 3 load-imm, 4 store-acc, 5 loop-back.
  std::vector<u64> toy_program;
  for (unsigned i = 0; i < 96; ++i) {
    const u64 op = rng.next_below(5);  // 0..4
    const u64 a = rng.next_below(8);
    const u64 b = rng.next_below(64);
    toy_program.push_back(op | (a << 8) | (b << 16));
  }
  toy_program.push_back(5);  // loop-back sentinel

  std::string source = program_shell("kernel", options.iterations);
  source += R"(
# kernel(a0 = iteration): interpret the toy program once. Dispatch is an
# indirect jump through a handler table (jalr), the signature pattern of
# m88ksim-style simulators.
kernel:
  addi sp, sp, -16
  sd   ra, 0(sp)
  sd   s1, 8(sp)
  la   t0, toy_prog        # toy PC
  la   t1, toy_regs
  la   t2, handlers
  mv   s1, a0              # accumulator seeded by iteration
mk_loop:
  ld   t3, 0(t0)           # fetch toy instruction
  andi t4, t3, 255         # opcode
  li   a1, 5
  beq  t4, a1, mk_halt
  slli t4, t4, 3
  add  t4, t4, t2
  ld   t4, 0(t4)           # handler address
  srli a2, t3, 8
  andi a2, a2, 255         # operand a (toy register index)
  srli a3, t3, 16
  andi a3, a3, 255         # operand b (immediate)
  jalr ra, t4, 0           # dispatch
  addi t0, t0, 8
  j    mk_loop
mk_halt:
  out  s1
  ld   ra, 0(sp)
  ld   s1, 8(sp)
  addi sp, sp, 16
  ret

# Handlers: a2 = toy reg index (0..7), a3 = immediate. Toy regs at t1.
h_add:
  slli a4, a2, 3
  add  a4, a4, t1
  ld   a5, 0(a4)
  add  a5, a5, a3
  sd   a5, 0(a4)
  add  s1, s1, a5
  ret
h_xor:
  slli a4, a2, 3
  add  a4, a4, t1
  ld   a5, 0(a4)
  xor  a5, a5, a3
  sd   a5, 0(a4)
  xor  s1, s1, a5
  ret
h_shift:
  slli a4, a2, 3
  add  a4, a4, t1
  ld   a5, 0(a4)
  andi a6, a3, 7
  sll  a5, a5, a6
  sd   a5, 0(a4)
  add  s1, s1, a5
  ret
h_loadi:
  slli a4, a2, 3
  add  a4, a4, t1
  sd   a3, 0(a4)
  ret
h_store:
  slli a4, a2, 3
  add  a4, a4, t1
  sd   s1, 0(a4)
  ret

  .data
  .align 8
toy_regs: .space 64
handlers: .dword h_add, h_xor, h_shift, h_loadi, h_store
)";
  source += dword_table("toy_prog", toy_program);

  Workload workload;
  workload.name = "m88ksim";
  workload.mimics = "SPECint95 124.m88ksim (extension; not in the paper)";
  workload.description =
      "toy-machine interpreter with indirect jump-table dispatch";
  workload.program = assemble_or_die(source, "m88ksim_like");
  return workload;
}

}  // namespace reese::workloads

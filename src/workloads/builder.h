// Helpers for generating workload assembly: data-table emission and the
// common program shell (stack setup + outer repeat loop).
#pragma once

#include <span>
#include <string>

#include "common/rng.h"
#include "common/types.h"
#include "isa/program.h"

namespace reese::workloads {

/// ".align 8\nlabel:\n  .dword v0, v1, ...\n" with line wrapping.
std::string dword_table(const std::string& label, std::span<const u64> values);

/// "label:\n  .byte ...\n".
std::string byte_table(const std::string& label, std::span<const u8> values);

/// Wrap `kernel_label` (a callable routine that OUTs a checksum) in the
/// standard shell:
///
///   main:  set up sp, loop `iterations` times (or forever) calling the
///          kernel, then HALT.
///
/// The shell passes the iteration index (0-based) in a0 so kernels can vary
/// their behaviour across iterations.
std::string program_shell(const std::string& kernel_label, u64 iterations);

/// Assemble `source` or abort with a diagnostic — workload sources are
/// build-time constants, so a failure is a programming error.
isa::Program assemble_or_die(const std::string& source, const char* name);

}  // namespace reese::workloads

// li stand-in: cons-cell list manipulation.
//
// xlisp (li) is dependent-load city: car/cdr chains, an allocator that
// recycles cells, and recursive list walks. Each iteration builds a 64-cell
// list from a wrap-around cell pool (so cell addresses scatter over time,
// like a heap after GC churn), reverses it in place, sums it iteratively
// and measures its length recursively. Serial pointer chasing keeps ILP
// low; the recursion exercises the return-address stack.
#include "common/strutil.h"
#include "workloads/builder.h"
#include "workloads/workload.h"

namespace reese::workloads {

Workload make_li_like(const WorkloadOptions& options) {
  const u64 pool_cells = 2048 * options.scale;

  std::string source;
  source += program_shell("kernel", options.iterations);
  source += format(R"(
# kernel(a0 = iteration): build, reverse, sum and measure one list.
kernel:
  addi sp, sp, -16
  sd   ra, 0(sp)
  sd   s0, 8(sp)
  la   t0, cellpool
  la   t1, alloc_ctr
  ld   t2, 0(t1)            # rolling allocation cursor
  li   a1, 0                # head = nil
  li   a2, 64               # list length
  mv   a3, a0               # value seed
build:
  li   a5, %llu
  and  a4, t2, a5           # cell index (pool wraps)
  slli a4, a4, 4
  add  a4, a4, t0
  addi t2, t2, 1
  sd   a3, 0(a4)            # car = value
  sd   a1, 8(a4)            # cdr = old head
  mv   a1, a4
  addi a3, a3, 7
  addi a2, a2, -1
  bnez a2, build
  sd   t2, 0(t1)

  li   a2, 0                # reverse: prev = nil
reverse:
  beqz a1, reverse_done
  ld   a3, 8(a1)
  sd   a2, 8(a1)
  mv   a2, a1
  mv   a1, a3
  j    reverse
reverse_done:
  mv   a1, a2

  li   s0, 0                # sum traversal (serial ld chain)
  mv   a3, a1
sum:
  beqz a3, sum_done
  ld   a4, 0(a3)
  add  s0, s0, a4
  ld   a3, 8(a3)
  j    sum
sum_done:
  call length               # recursive length(a1)
  add  s0, s0, a0
  out  s0
  ld   ra, 0(sp)
  ld   s0, 8(sp)
  addi sp, sp, 16
  ret

# length(a1 = list) -> a0, recursively.
length:
  bnez a1, length_rec
  li   a0, 0
  ret
length_rec:
  addi sp, sp, -8
  sd   ra, 0(sp)
  ld   a1, 8(a1)
  call length
  addi a0, a0, 1
  ld   ra, 0(sp)
  addi sp, sp, 8
  ret

  .data
  .align 8
alloc_ctr: .dword 0
cellpool:  .space %llu
)",
                   static_cast<unsigned long long>(pool_cells - 1),
                   static_cast<unsigned long long>(pool_cells * 16));

  Workload workload;
  workload.name = "li";
  workload.mimics = "SPECint95 130.li (train)";
  workload.description = format(
      "cons-cell build/reverse/sum/length over a %llu-cell recycling pool",
      static_cast<unsigned long long>(pool_cells));
  workload.program = assemble_or_die(source, "li_like");
  return workload;
}

}  // namespace reese::workloads

// Floating-point workload kernels — the paper's untried territory.
//
// §5.2: "We did not study floating point (FP) programs." These two
// SPECfp95-flavoured kernels let the extension bench (ext_fp_workloads)
// answer the obvious follow-up: what does REESE cost on FP code, and is
// the spare hardware it needs FP adders rather than integer ALUs?
#include <bit>
#include <vector>

#include "common/strutil.h"
#include "workloads/builder.h"
#include "workloads/workload.h"

namespace reese::workloads {

// swim stand-in: a 2-D shallow-water-style 5-point stencil over a 32x32
// double grid. FP adder traffic dominates; branches are loop-only and
// perfectly predictable; loads stream through the grid rows.
Workload make_swim_like(const WorkloadOptions& options) {
  SplitMix64 rng(options.seed ^ 0x5817);
  const unsigned n = 32;
  std::vector<u64> grid_u(n * n);
  std::vector<u64> grid_v(n * n);
  for (u64& value : grid_u) {
    value = std::bit_cast<u64>(1.0 + rng.next_double());
  }
  for (u64& value : grid_v) {
    value = std::bit_cast<u64>(0.5 * rng.next_double());
  }

  std::string source = program_shell("kernel", options.iterations);
  source += R"(
# kernel(a0 = iteration): one Jacobi sweep of
#   unew = 0.25*(N + S + W + E) - c*v, written back in place (interior).
kernel:
  la   t0, grid_u
  la   t1, grid_v
  li   t2, 1              # quarter = 0.25, built via 1.0 / 4.0
  fcvt.d.l ft0, t2
  li   t2, 4
  fcvt.d.l ft1, t2
  fdiv ft0, ft0, ft1      # 0.25
  li   t2, 10             # c = 0.1
  fcvt.d.l ft1, t2
  li   t3, 1
  fcvt.d.l ft2, t3
  fdiv ft1, ft2, ft1      # 0.1

  li   t3, 1              # row 1..30
sw_row:
  li   t4, 1              # col 1..30
sw_col:
  slli t5, t3, 8          # &u[row][col] = u + (row*32 + col)*8
  slli a1, t4, 3
  add  t5, t5, a1
  add  t5, t5, t0
  fld  ft3, -256(t5)      # north (row-1)
  fld  ft4, 256(t5)       # south
  fld  ft5, -8(t5)        # west
  fld  ft6, 8(t5)         # east
  fadd ft3, ft3, ft4
  fadd ft5, ft5, ft6
  fadd ft3, ft3, ft5
  fmul ft3, ft3, ft0      # * 0.25
  slli a2, t3, 8          # &v[row][col]
  slli a3, t4, 3
  add  a2, a2, a3
  add  a2, a2, t1
  fld  ft7, 0(a2)
  fmul ft7, ft7, ft1      # c*v
  fsub ft3, ft3, ft7
  fsd  ft3, 0(t5)
  addi t4, t4, 1
  li   a1, 31
  blt  t4, a1, sw_col
  addi t3, t3, 1
  blt  t3, a1, sw_row

  # checksum: scale a mid-grid sample and publish the integer part.
  la   t0, grid_u
  fld  ft3, 4104(t0)      # u[16][1]
  li   t2, 1000000
  fcvt.d.l ft4, t2
  fmul ft3, ft3, ft4
  fcvt.l.d t5, ft3
  out  t5
  ret

  .data
)";
  source += dword_table("grid_u", grid_u);
  source += dword_table("grid_v", grid_v);

  Workload workload;
  workload.name = "swim";
  workload.mimics = "SPECfp95 102.swim (extension; not in the paper)";
  workload.description = "5-point double-precision stencil over a 32x32 grid";
  workload.program = assemble_or_die(source, "swim_like");
  return workload;
}

// tomcatv stand-in: per-point normalization with sqrt and divide — the
// unpipelined FP unit is the star. Serial-ish chains keep FP latency
// exposed.
Workload make_tomcatv_like(const WorkloadOptions& options) {
  SplitMix64 rng(options.seed ^ 0x70C47);
  std::vector<u64> xs(512);
  std::vector<u64> ys(512);
  for (u64& value : xs) {
    value = std::bit_cast<u64>(1.0 + rng.next_double());
  }
  for (u64& value : ys) {
    value = std::bit_cast<u64>(1.0 + rng.next_double());
  }

  std::string source = program_shell("kernel", options.iterations);
  source += R"(
# kernel(a0 = iteration): normalize every (x, y) onto the unit circle and
# nudge it — r = sqrt(x^2 + y^2); x = x/r + eps; y = y/r.
kernel:
  la   t0, xs
  la   t1, ys
  li   t2, 512
  li   t3, 100
  fcvt.d.l ft5, t3
  li   t3, 1
  fcvt.d.l ft6, t3
  fdiv ft6, ft6, ft5      # eps = 0.01
tc_loop:
  fld  ft0, 0(t0)
  fld  ft1, 0(t1)
  fmul ft2, ft0, ft0
  fmul ft3, ft1, ft1
  fadd ft2, ft2, ft3
  fsqrt ft2, ft2
  fdiv ft0, ft0, ft2
  fdiv ft1, ft1, ft2
  fadd ft0, ft0, ft6
  fsd  ft0, 0(t0)
  fsd  ft1, 0(t1)
  addi t0, t0, 8
  addi t1, t1, 8
  addi t2, t2, -1
  bnez t2, tc_loop

  fld  ft0, -8(t0)        # last x
  li   t3, 1000000
  fcvt.d.l ft4, t3
  fmul ft0, ft0, ft4
  fcvt.l.d t5, ft0
  out  t5
  ret

  .data
)";
  source += dword_table("xs", xs);
  source += dword_table("ys", ys);

  Workload workload;
  workload.name = "tomcatv";
  workload.mimics = "SPECfp95 101.tomcatv (extension; not in the paper)";
  workload.description =
      "per-point sqrt/divide normalization over 512 double pairs";
  workload.program = assemble_or_die(source, "tomcatv_like");
  return workload;
}

}  // namespace reese::workloads

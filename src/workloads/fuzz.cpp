#include "workloads/fuzz.h"

#include <vector>

#include "common/strutil.h"
#include "workloads/builder.h"

namespace reese::workloads {
namespace {

/// Registers the generator plays with. sp/gp/ra and s0 (arena base) are
/// reserved.
constexpr const char* kPool[] = {"t0", "t1", "t2", "t3", "t4", "t5",
                                 "a0", "a1", "a2", "a3", "a4", "a5",
                                 "s1", "s2", "s3", "s4"};
constexpr usize kPoolSize = sizeof(kPool) / sizeof(kPool[0]);

class FuzzGenerator {
 public:
  explicit FuzzGenerator(const FuzzOptions& options)
      : options_(options), rng_(options.seed ^ 0xF022) {}

  std::string generate() {
    emit("main:");
    emit("  la   s0, arena");
    // Seed the register pool with random values.
    for (const char* reg : kPool) {
      emit(format("  li   %s, %lld", reg,
                  static_cast<long long>(
                      sign_extend_value(rng_.next(), 32))));
    }

    for (u32 i = 0; i < options_.segments; ++i) segment(/*depth=*/0);

    // Publish a handful of checksums and stop.
    for (int i = 0; i < 4; ++i) emit(format("  out  %s", pick_reg()));
    emit("  halt");

    if (options_.with_calls) emit_leaf_functions();

    emit("  .data");
    emit("  .align 8");
    emit("arena: .space 4096");
    return source_;
  }

 private:
  static i64 sign_extend_value(u64 value, unsigned bits) {
    const u64 mask = (u64{1} << bits) - 1;
    const u64 sign = u64{1} << (bits - 1);
    return static_cast<i64>(((value & mask) ^ sign) - sign);
  }

  void emit(const std::string& line) { source_ += line + "\n"; }

  const char* pick_reg() { return kPool[rng_.next_below(kPoolSize)]; }

  std::string fresh_label() { return format("L%u", label_counter_++); }

  void alu_op() {
    const char* rd = pick_reg();
    const char* rs1 = pick_reg();
    const char* rs2 = pick_reg();
    switch (rng_.next_below(10)) {
      case 0: emit(format("  add  %s, %s, %s", rd, rs1, rs2)); break;
      case 1: emit(format("  sub  %s, %s, %s", rd, rs1, rs2)); break;
      case 2: emit(format("  xor  %s, %s, %s", rd, rs1, rs2)); break;
      case 3: emit(format("  and  %s, %s, %s", rd, rs1, rs2)); break;
      case 4: emit(format("  or   %s, %s, %s", rd, rs1, rs2)); break;
      case 5:
        emit(format("  addi %s, %s, %lld", rd, rs1,
                    static_cast<long long>(rng_.next_range(0, 8000)) - 4000));
        break;
      case 6:
        emit(format("  slli %s, %s, %llu", rd, rs1,
                    static_cast<unsigned long long>(rng_.next_below(8))));
        break;
      case 7:
        emit(format("  srli %s, %s, %llu", rd, rs1,
                    static_cast<unsigned long long>(rng_.next_below(8))));
        break;
      case 8: emit(format("  slt  %s, %s, %s", rd, rs1, rs2)); break;
      case 9: emit(format("  sltu %s, %s, %s", rd, rs1, rs2)); break;
    }
  }

  void muldiv_op() {
    const char* rd = pick_reg();
    const char* rs1 = pick_reg();
    const char* rs2 = pick_reg();
    switch (rng_.next_below(4)) {
      case 0: emit(format("  mul  %s, %s, %s", rd, rs1, rs2)); break;
      case 1: emit(format("  mulh %s, %s, %s", rd, rs1, rs2)); break;
      case 2: emit(format("  div  %s, %s, %s", rd, rs1, rs2)); break;
      case 3: emit(format("  rem  %s, %s, %s", rd, rs1, rs2)); break;
    }
  }

  void mem_op() {
    // Offsets keep every access inside the 4 KiB arena.
    const u64 offset = rng_.next_below(512) * 8;
    const char* value = pick_reg();
    const char* dest = pick_reg();
    static const char* kStores[] = {"sd", "sw", "sh", "sb"};
    static const char* kLoads[] = {"ld", "lw", "lwu", "lh", "lhu", "lb", "lbu"};
    if (rng_.next_bool(0.5)) {
      emit(format("  %s   %s, %llu(s0)", kStores[rng_.next_below(4)], value,
                  static_cast<unsigned long long>(offset)));
    } else {
      emit(format("  %s  %s, %llu(s0)", kLoads[rng_.next_below(7)], dest,
                  static_cast<unsigned long long>(offset)));
    }
  }

  void counted_loop(u32 depth) {
    // A dedicated counter register keeps termination unconditional; s11 at
    // depth 0, s10 at depth 1.
    const char* counter = depth == 0 ? "s11" : "s10";
    const std::string label = fresh_label();
    emit(format("  li   %s, %llu", counter,
                static_cast<unsigned long long>(
                    1 + rng_.next_below(options_.max_loop_trips))));
    emit(label + ":");
    const u32 body = 1 + static_cast<u32>(rng_.next_below(4));
    for (u32 i = 0; i < body; ++i) segment(depth + 1);
    emit(format("  addi %s, %s, -1", counter, counter));
    emit(format("  bnez %s, %s", counter, label.c_str()));
  }

  void forward_branch(u32 depth) {
    const std::string label = fresh_label();
    const char* rs1 = pick_reg();
    const char* rs2 = pick_reg();
    static const char* kBranches[] = {"beq", "bne", "blt", "bge", "bltu",
                                      "bgeu"};
    emit(format("  %s %s, %s, %s", kBranches[rng_.next_below(6)], rs1, rs2,
                label.c_str()));
    const u32 skipped = 1 + static_cast<u32>(rng_.next_below(3));
    for (u32 i = 0; i < skipped; ++i) segment(depth + 1);
    emit(label + ":");
  }

  void leaf_call() {
    emit(format("  call leaf%llu",
                static_cast<unsigned long long>(rng_.next_below(3))));
    // The leaf's result lands in a6; fold it into the pool.
    emit(format("  xor  %s, %s, a6", pick_reg(), pick_reg()));
  }

  void segment(u32 depth) {
    // Deeper nesting restricts choices to straight-line work so programs
    // stay bounded.
    const u64 choice = rng_.next_below(depth == 0 ? 100 : 70);
    if (choice < 40) {
      const u32 run = 1 + static_cast<u32>(rng_.next_below(5));
      for (u32 i = 0; i < run; ++i) alu_op();
    } else if (choice < 55 && options_.with_memory) {
      mem_op();
    } else if (choice < 62 && options_.with_muldiv) {
      muldiv_op();
    } else if (choice < 70) {
      forward_branch(depth);
    } else if (choice < 90 && depth == 0) {
      counted_loop(depth);
    } else if (options_.with_calls && depth == 0) {
      leaf_call();
    } else {
      alu_op();
    }
  }

  void emit_leaf_functions() {
    // Three tiny leaf functions with distinct flavours: arithmetic, a
    // memory touch, and a small internal loop. Result in a6; they may only
    // clobber a6/a7.
    emit("leaf0:");
    emit("  slli a6, a0, 1");
    emit("  xor  a6, a6, a1");
    emit("  ret");
    emit("leaf1:");
    emit("  ld   a6, 128(s0)");
    emit("  add  a6, a6, a2");
    emit("  sd   a6, 136(s0)");
    emit("  ret");
    emit("leaf2:");
    emit("  li   a7, 5");
    emit("  li   a6, 1");
    emit("leaf2_loop:");
    emit("  add  a6, a6, a7");
    emit("  addi a7, a7, -1");
    emit("  bnez a7, leaf2_loop");
    emit("  ret");
  }

  FuzzOptions options_;
  SplitMix64 rng_;
  std::string source_;
  u32 label_counter_ = 0;
};

}  // namespace

std::string generate_fuzz_source(const FuzzOptions& options) {
  FuzzGenerator generator(options);
  return generator.generate();
}

isa::Program generate_fuzz_program(const FuzzOptions& options) {
  return assemble_or_die(generate_fuzz_source(options), "fuzz");
}

}  // namespace reese::workloads

// perl stand-in: tokenizing + hashing text into an associative table.
//
// perl (running scrabbl.pl) spends its time scanning strings byte-by-byte
// and banging on hash tables. This kernel walks a baked-in 2 KiB text of
// random words, computes each word's rolling hash (shift-add, as real
// interpreters do), and probes/updates an open-addressing hash table whose
// counts persist across iterations. Byte loads, variable-length inner
// loops and probe chains give a mixed, moderately-predictable profile.
#include <string>
#include <vector>

#include "common/strutil.h"
#include "workloads/builder.h"
#include "workloads/workload.h"

namespace reese::workloads {

Workload make_perl_like(const WorkloadOptions& options) {
  SplitMix64 rng(options.seed ^ 0x9E71);

  // ~2 KiB of words over a 96-word vocabulary so hash hits dominate after
  // warmup (like scrabble dictionary lookups).
  std::vector<std::string> vocabulary;
  for (unsigned i = 0; i < 96; ++i) {
    std::string word;
    const usize length = 2 + rng.next_below(8);
    for (usize j = 0; j < length; ++j) {
      word.push_back(static_cast<char>('a' + rng.next_below(26)));
    }
    vocabulary.push_back(word);
  }
  std::vector<u8> text;
  while (text.size() < 2000) {
    const std::string& word = vocabulary[rng.next_below(vocabulary.size())];
    text.insert(text.end(), word.begin(), word.end());
    text.push_back(' ');
  }
  text.push_back(0);  // NUL terminator
  text.resize(2048, 0);

  std::string source;
  source += program_shell("kernel", options.iterations);
  source += R"(
# kernel(a0 = iteration): scan the text from a rotating start offset,
# hash every word, count it in the table.
kernel:
  la   t0, text
  la   t1, htab
  li   t6, 0                # checksum
  li   t2, 53               # start = (iter*53) & 1023
  mul  t2, a0, t2
  andi t2, t2, 1023
  add  t0, t0, t2
scan:
  lbu  t3, 0(t0)
  beqz t3, scan_done
  li   a1, 32               # ' '
  beq  t3, a1, skip_space
  li   a2, 0                # rolling hash h = h*31 + c (shift-add)
word:
  slli a3, a2, 5
  sub  a3, a3, a2
  add  a2, a3, t3
  addi t0, t0, 1
  lbu  t3, 0(t0)
  beqz t3, word_end
  bne  t3, a1, word
word_end:
  li   a4, 8                # linear probes remaining
  andi a3, a2, 511
probe:
  slli a5, a3, 4
  add  a5, a5, t1
  ld   a6, 0(a5)
  beq  a6, a2, hit
  beqz a6, insert
  addi a3, a3, 1
  andi a3, a3, 511
  addi a4, a4, -1
  bnez a4, probe
  j    scan                 # neighbourhood full: drop the word
hit:
  ld   a7, 8(a5)
  addi a7, a7, 1
  sd   a7, 8(a5)
  add  t6, t6, a7
  j    scan
insert:
  sd   a2, 0(a5)
  li   a7, 1
  sd   a7, 8(a5)
  addi t6, t6, 1
  j    scan
skip_space:
  addi t0, t0, 1
  j    scan
scan_done:
  out  t6
  ret

  .data
)";
  source += byte_table("text", text);
  source += "  .align 8\nhtab: .space 8192\n";  // 512 slots x {hash, count}

  Workload workload;
  workload.name = "perl";
  workload.mimics = "SPECint95 134.perl (scrabbl.pl)";
  workload.description =
      "tokenize 2KiB of words, rolling-hash each, probe/update a 512-slot "
      "open-addressing table";
  workload.program = assemble_or_die(source, "perl_like");
  return workload;
}

}  // namespace reese::workloads

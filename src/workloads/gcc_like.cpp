// gcc stand-in: random expression trees + a recursive constant-folding
// evaluator.
//
// gcc's dynamic behaviour is dominated by walking pointer-linked IR with
// data-dependent multiway dispatch and deep call chains. This kernel bakes a
// forest of random binary expression trees into the data segment (node =
// {op, left, right, value}, 32 bytes) and evaluates every root each
// iteration with a recursive evaluator whose operator dispatch is a
// branch chain — unpredictable branches, dependent loads, heavy call/return
// traffic.
#include <vector>

#include "common/strutil.h"
#include "workloads/builder.h"
#include "workloads/workload.h"

namespace reese::workloads {
namespace {

constexpr u64 kNodeBytes = 32;

struct TreeForest {
  std::vector<u64> node_words;  // 4 words per node
  std::vector<u64> root_addrs;
};

class ForestBuilder {
 public:
  ForestBuilder(SplitMix64* rng, Addr nodes_base, usize max_nodes)
      : rng_(rng), nodes_base_(nodes_base), max_nodes_(max_nodes) {
    forest_.node_words.reserve(max_nodes * 4);
  }

  /// Build one tree; returns the node address, or 0 if the pool is full.
  u64 build(unsigned depth) {
    if (node_count_ >= max_nodes_) return 0;
    const usize index = node_count_++;
    const u64 address = nodes_base_ + index * kNodeBytes;
    forest_.node_words.resize((index + 1) * 4, 0);

    const bool leaf =
        depth == 0 || node_count_ + 2 > max_nodes_ || rng_->next_bool(0.30);
    if (leaf) {
      forest_.node_words[index * 4 + 0] = 0;  // op: leaf
      forest_.node_words[index * 4 + 3] = rng_->next_below(1 << 20);
      return address;
    }
    const u64 op = 1 + rng_->next_below(4);  // add/sub/mul/xor
    const u64 left = build(depth - 1);
    const u64 right = build(depth - 1);
    if (left == 0 || right == 0) {
      // Pool exhausted mid-build: degrade to a leaf.
      forest_.node_words[index * 4 + 0] = 0;
      forest_.node_words[index * 4 + 3] = rng_->next_below(1 << 20);
      return address;
    }
    forest_.node_words[index * 4 + 0] = op;
    forest_.node_words[index * 4 + 1] = left;
    forest_.node_words[index * 4 + 2] = right;
    return address;
  }

  TreeForest take() { return std::move(forest_); }
  void add_root(u64 address) { forest_.root_addrs.push_back(address); }

 private:
  SplitMix64* rng_;
  Addr nodes_base_;
  usize max_nodes_;
  usize node_count_ = 0;
  TreeForest forest_;
};

}  // namespace

Workload make_gcc_like(const WorkloadOptions& options) {
  SplitMix64 rng(options.seed ^ 0x6CC);
  const usize max_nodes = 768 * options.scale;
  const usize num_roots = 48 * options.scale;

  // Nodes table sits at the start of .data.
  const Addr nodes_base = isa::kDefaultDataBase;
  ForestBuilder builder(&rng, nodes_base, max_nodes);
  for (usize i = 0; i < num_roots; ++i) {
    const u64 root = builder.build(/*depth=*/7);
    if (root != 0) builder.add_root(root);
  }
  TreeForest forest = builder.take();
  forest.node_words.resize(max_nodes * 4, 0);  // fixed-size pool

  std::string source;
  source += program_shell("kernel", options.iterations);
  source += R"(
# kernel(a0 = iteration): fold every tree, OUT the checksum.
kernel:
  addi sp, sp, -16
  sd   ra, 0(sp)
  sd   s0, 8(sp)
  li   s0, 0                # checksum
  la   t0, roots
)";
  source += format("  li   t1, %llu\n",
                   static_cast<unsigned long long>(forest.root_addrs.size()));
  source += R"(
root_loop:
  ld   a1, 0(t0)
  addi sp, sp, -16
  sd   t0, 0(sp)
  sd   t1, 8(sp)
  call eval
  ld   t0, 0(sp)
  ld   t1, 8(sp)
  addi sp, sp, 16
  add  s0, s0, a0
  addi t0, t0, 8
  addi t1, t1, -1
  bnez t1, root_loop
  out  s0
  ld   ra, 0(sp)
  ld   s0, 8(sp)
  addi sp, sp, 16
  ret

# eval(a1 = node) -> a0. Node: {op, left, right, value}.
eval:
  ld   t2, 0(a1)            # op
  bnez t2, eval_inner
  ld   a0, 24(a1)           # leaf value
  ret
eval_inner:
  addi sp, sp, -32
  sd   ra, 0(sp)
  sd   a1, 8(sp)
  ld   a1, 8(a1)            # left child
  call eval
  sd   a0, 16(sp)
  ld   a1, 8(sp)
  ld   a1, 16(a1)           # right child
  call eval
  ld   t3, 16(sp)           # left result
  ld   a1, 8(sp)
  ld   t2, 0(a1)            # op (reload: clobbered by recursion)
  li   t4, 1
  beq  t2, t4, op_add
  li   t4, 2
  beq  t2, t4, op_sub
  li   t4, 3
  beq  t2, t4, op_mul
  xor  a0, t3, a0           # op 4
  j    eval_done
op_add:
  add  a0, t3, a0
  j    eval_done
op_sub:
  sub  a0, t3, a0
  j    eval_done
op_mul:
  mul  a0, t3, a0
eval_done:
  ld   ra, 0(sp)
  addi sp, sp, 32
  ret

  .data
)";
  source += dword_table("nodes", forest.node_words);
  source += dword_table("roots", forest.root_addrs);

  Workload workload;
  workload.name = "gcc";
  workload.mimics = "SPECint95 126.gcc (stmt-protoize.i)";
  workload.description = format(
      "fold %zu random expression trees over a %zu-node pool each iteration",
      forest.root_addrs.size(), max_nodes);
  workload.program = assemble_or_die(source, "gcc_like");
  return workload;
}

}  // namespace reese::workloads

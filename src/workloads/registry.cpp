#include <functional>
#include <map>

#include "workloads/workload.h"

namespace reese::workloads {
namespace {

using Factory = std::function<Workload(const WorkloadOptions&)>;

const std::map<std::string, Factory>& factories() {
  static const auto* kFactories = new std::map<std::string, Factory>{
      {"gcc", make_gcc_like},
      {"go", make_go_like},
      {"ijpeg", make_ijpeg_like},
      {"li", make_li_like},
      {"perl", make_perl_like},
      {"vortex", make_vortex_like},
      {"swim", make_swim_like},
      {"tomcatv", make_tomcatv_like},
      {"compress", make_compress_like},
      {"m88ksim", make_m88ksim_like},
      {"ilp_chain", make_ilp_chain},
      {"dep_chain", make_dep_chain},
      {"mem_stream", make_mem_stream},
      {"pointer_chase", make_pointer_chase},
      {"branch_torture", make_branch_torture},
      {"matmul", make_matmul},
      {"div_heavy", make_div_heavy},
      {"fp_daxpy", make_fp_daxpy},
  };
  return *kFactories;
}

}  // namespace

const std::vector<std::string>& spec_like_names() {
  // Paper order (Table 2 / the figures' x-axes).
  static const auto* kNames = new std::vector<std::string>{
      "gcc", "go", "ijpeg", "li", "perl", "vortex"};
  return *kNames;
}

const std::vector<std::string>& fp_like_names() {
  static const auto* kNames =
      new std::vector<std::string>{"swim", "tomcatv", "fp_daxpy"};
  return *kNames;
}

const std::vector<std::string>& all_workload_names() {
  static const auto* kNames = [] {
    auto* names = new std::vector<std::string>();
    for (const auto& [name, factory] : factories()) names->push_back(name);
    return names;
  }();
  return *kNames;
}

Result<Workload> make_workload(const std::string& name,
                               const WorkloadOptions& options) {
  auto it = factories().find(name);
  if (it == factories().end()) {
    return errorf("unknown workload '%s'", name.c_str());
  }
  return it->second(options);
}

}  // namespace reese::workloads

// ijpeg stand-in: blocked integer transform + quantization.
//
// ijpeg spends its time in dense, highly-predictable loop nests doing
// integer butterflies and multiplies over 8x8 pixel blocks. This kernel
// runs a 1-D DCT-flavoured butterfly (adds/subs, two fixed-point multiplies
// per row) plus quantization over every 8x8 block of a 64x64 greyscale
// image baked into .data. High ILP, predictable branches, moderate
// multiplier pressure — the opposite end of the spectrum from go.
#include <vector>

#include "common/strutil.h"
#include "workloads/builder.h"
#include "workloads/workload.h"

namespace reese::workloads {

Workload make_ijpeg_like(const WorkloadOptions& options) {
  SplitMix64 rng(options.seed ^ 0x13E6);

  std::vector<u8> image(64 * 64);
  for (u8& pixel : image) pixel = static_cast<u8>(rng.next_below(256));

  std::string source;
  source += program_shell("kernel", options.iterations);
  source += R"(
# kernel(a0 = iteration): perturb one pixel, transform + quantize all
# 8x8 blocks of the 64x64 image.
kernel:
  la   t0, image
  li   t2, 97               # mutate pixel (a0*97+13) & 4095
  mul  t1, a0, t2
  addi t1, t1, 13
  andi t1, t1, 4095
  add  t1, t1, t0
  lbu  t2, 0(t1)
  addi t2, t2, 31
  andi t2, t2, 255
  sb   t2, 0(t1)

  li   t6, 0                # checksum
  li   t3, 0                # block row
block_row:
  li   t4, 0                # block col
block_col:
  slli a1, t3, 9            # base = image + brow*8*64 + bcol*8
  slli a2, t4, 3
  add  a1, a1, a2
  add  a1, a1, t0
  li   a2, 8                # pixel rows in block
pixel_row:
  lbu  a3, 0(a1)
  lbu  a4, 7(a1)
  add  a5, a3, a4           # acc1 = p0+p7
  lbu  a6, 1(a1)
  lbu  a7, 6(a1)
  add  a6, a6, a7           # acc2 = p1+p6
  lbu  a7, 2(a1)
  lbu  t5, 5(a1)
  add  a7, a7, t5           # acc3 = p2+p5
  lbu  t5, 3(a1)
  lbu  t2, 4(a1)
  add  t5, t5, t2           # acc4 = p3+p4
  add  t2, a5, a6
  add  t2, t2, a7
  add  t2, t2, t5           # DC term
  sub  a5, a5, t5           # acc1-acc4
  sub  a6, a6, a7           # acc2-acc3
  li   a3, 181              # ~cos(pi/4) in Q7
  mul  a5, a5, a3
  li   a3, 59               # ~sin(3pi/8)-ish in Q7
  mul  a6, a6, a3
  add  a5, a5, a6
  srai a5, a5, 7            # first AC term
  # Adaptive quantization + zig-zag coding (rate control): the quantizer
  # step and coding order for this row depend on the running activity
  # accumulator — two dependent table loads, the loop-carried feedback real
  # encoders have between rate control and entropy coding.
  andi a4, t6, 7
  slli a4, a4, 3
  la   a3, qtable
  add  a4, a4, a3
  ld   a4, 0(a4)
  la   a3, zigzag
  andi t5, a4, 7
  slli t5, t5, 3
  add  t5, t5, a3
  ld   t5, 0(t5)
  add  a4, a4, t5
  add  a4, a4, a5
  srai t2, t2, 3            # quantized DC
  add  t6, t6, t2
  xor  t6, t6, a4
  addi a1, a1, 64           # next pixel row
  addi a2, a2, -1
  bnez a2, pixel_row
  addi t4, t4, 1
  li   a2, 8
  blt  t4, a2, block_col
  addi t3, t3, 1
  blt  t3, a2, block_row
  out  t6
  ret

  .data
)";
  source += byte_table("image", image);
  std::vector<u64> qtable;
  for (unsigned i = 0; i < 8; ++i) qtable.push_back(1 + rng.next_below(15));
  source += dword_table("qtable", qtable);
  std::vector<u64> zigzag;
  for (unsigned i = 0; i < 8; ++i) zigzag.push_back(rng.next_below(64));
  source += dword_table("zigzag", zigzag);

  Workload workload;
  workload.name = "ijpeg";
  workload.mimics = "SPECint95 132.ijpeg (specmun)";
  workload.description =
      "8x8 integer DCT-style transform + quantization over a 64x64 image";
  workload.program = assemble_or_die(source, "ijpeg_like");
  return workload;
}

}  // namespace reese::workloads

// Figure 4: "IPC for 16-wide datapath".
//
// The datapath width doubles from 8 to 16 (fetch/decode/issue/commit),
// keeping the Figure 3 RUU=32 / LSQ=16 sizes, to check that pipeline
// bandwidth is not artificially limiting either model.
#include <cstdio>

#include "sim/experiment.h"

int main(int argc, char** argv) {
  reese::sim::parse_jobs_flag(argc, argv);
  reese::sim::parse_checkpoint_flags(argc, argv);
  reese::sim::ExperimentSpec spec;
  spec.title = "Figure 4: IPC for 16-wide datapath (RUU=32, LSQ=16)";
  spec.base = reese::core::starting_config();
  spec.base.ruu_size = 32;
  spec.base.lsq_size = 16;
  spec.base.fetch_width = 16;
  spec.base.decode_width = 16;
  spec.base.issue_width = 16;
  spec.base.commit_width = 16;
  spec.base.ifq_size = 32;
  const reese::sim::ExperimentResult result = reese::sim::run_experiment(spec);
  std::fputs(result.table().c_str(), stdout);
  return 0;
}

// google-benchmark microbenches of the simulator's components: cache access
// throughput, branch-predictor throughput, assembler speed, functional
// executor speed, and whole-pipeline simulation rate (cycles/sec and
// instructions/sec) for baseline and REESE models.
#include <benchmark/benchmark.h>

#include "branch/predictor.h"
#include "core/pipeline.h"
#include "isa/assembler.h"
#include "isa/iss.h"
#include "mem/cache.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

using namespace reese;

namespace {

void BM_CacheAccess(benchmark::State& state) {
  mem::FlatMemoryLevel dram(60);
  mem::CacheConfig config;
  config.size_bytes = 32 * 1024;
  mem::Cache cache(config, &dram);
  SplitMix64 rng(1);
  u64 sink = 0;
  for (auto _ : state) {
    sink += cache.access(rng.next_below(256 * 1024), false);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_CacheAccess);

void BM_GsharePredict(benchmark::State& state) {
  branch::GsharePredictor predictor(12);
  SplitMix64 rng(2);
  u64 sink = 0;
  for (auto _ : state) {
    const Addr pc = 0x1000 + 4 * rng.next_below(4096);
    const branch::BranchPrediction prediction = predictor.predict(pc);
    predictor.update(pc, (rng.next() & 1) != 0, prediction.meta);
    sink += prediction.taken;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_GsharePredict);

void BM_Assembler(benchmark::State& state) {
  const workloads::Workload workload = workloads::make_gcc_like({});
  // Re-derive the source by size proxy: assemble the perl kernel repeatedly.
  for (auto _ : state) {
    const workloads::Workload rebuilt = workloads::make_perl_like({});
    benchmark::DoNotOptimize(rebuilt.program.code.size());
  }
  benchmark::DoNotOptimize(workload.program.code.size());
}
BENCHMARK(BM_Assembler);

void BM_IssExecution(benchmark::State& state) {
  const workloads::Workload workload = workloads::make_ijpeg_like({});
  isa::Iss iss(workload.program);
  for (auto _ : state) {
    iss.step_one();
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
  state.SetLabel("instructions/sec");
}
BENCHMARK(BM_IssExecution);

void BM_PipelineBaseline(benchmark::State& state) {
  const workloads::Workload workload = workloads::make_ijpeg_like({});
  core::Pipeline pipeline(workload.program, core::starting_config());
  for (auto _ : state) {
    pipeline.cycle();
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
  state.SetLabel("cycles/sec");
}
BENCHMARK(BM_PipelineBaseline);

void BM_PipelineReese(benchmark::State& state) {
  const workloads::Workload workload = workloads::make_ijpeg_like({});
  core::Pipeline pipeline(workload.program,
                          core::with_reese(core::starting_config()));
  for (auto _ : state) {
    pipeline.cycle();
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
  state.SetLabel("cycles/sec");
}
BENCHMARK(BM_PipelineReese);

}  // namespace

BENCHMARK_MAIN();

// Ablation A4 (§7 future work): partial re-execution.
//
// "Future work could explore the possibility of executing less than 100%
// of P-stream instructions in the R stream... This would speed up
// execution, but it would decrease the number of soft errors that REESE
// would be able to detect." This bench sweeps the re-execution interval k
// (re-execute 1 of every k) and reports both the IPC recovered and the
// fault coverage lost, using the fault injector as the measuring stick.
#include <cstdio>

#include "faults/injector.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

using namespace reese;

int main() {
  const u64 budget = sim::default_instruction_budget();
  std::printf("A4: partial re-execution (1 of every k instructions)\n");
  std::printf("  %4s %10s %14s %12s %12s\n", "k", "avg IPC", "vs baseline",
              "coverage", "expected");
  // Baseline (no REESE) reference.
  double base_sum = 0.0;
  for (const std::string& name : workloads::spec_like_names()) {
    auto workload = workloads::make_workload(name, {});
    sim::Simulator simulator(std::move(workload).value(),
                             core::starting_config());
    simulator.run(budget / 2);
    base_sum += simulator.pipeline().stats().ipc();
  }
  const double n = static_cast<double>(workloads::spec_like_names().size());
  const double base_avg = base_sum / n;

  for (u32 k : {1u, 2u, 4u, 8u}) {
    double ipc_sum = 0.0;
    u64 detected = 0;
    u64 injected = 0;
    for (const std::string& name : workloads::spec_like_names()) {
      auto workload = workloads::make_workload(name, {});
      core::CoreConfig config = core::with_reese(core::starting_config());
      config.reese.reexec_interval = k;
      faults::InjectorConfig fault_config;
      fault_config.rate = 1e-3;
      fault_config.seed = 0xFA17 + k;
      faults::Injector injector(fault_config);
      sim::Simulator simulator(std::move(workload).value(), config);
      simulator.pipeline().set_fault_hook(&injector);
      simulator.run(budget / 2);
      ipc_sum += simulator.pipeline().stats().ipc();
      detected += injector.detected();
      injected += injector.detected() + injector.undetected();
    }
    std::printf("  %4u %10.3f %13.1f%% %11.1f%% %11.1f%%\n", k, ipc_sum / n,
                100.0 * (ipc_sum / n / base_avg - 1.0),
                100.0 * safe_ratio(detected, injected), 100.0 / k);
  }
  return 0;
}

// Ablation A5: fault-injection coverage campaign.
//
// The paper's claim (§4.2): REESE "detects soft errors that affect
// instruction results" — arithmetic, logical, effective address and branch
// resolution. This campaign injects single-bit flips into the stored
// P-stream results or the R-stream recomputations across all six
// benchmarks and verifies:
//  * REESE detects 100% of injected result faults (either copy);
//  * the baseline detects none (no comparator);
//  * detection latency tracks the P->R separation plus queue drain.
#include <cstdio>

#include "faults/injector.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

using namespace reese;

namespace {

void campaign(const char* label, const core::CoreConfig& config,
              faults::FaultTarget target) {
  u64 injected = 0;
  u64 detected = 0;
  u64 undetected = 0;
  double latency_sum = 0.0;
  u64 latency_count = 0;
  for (const std::string& name : workloads::spec_like_names()) {
    auto workload = workloads::make_workload(name, {});
    faults::InjectorConfig fault_config;
    fault_config.rate = 2e-3;
    fault_config.target = target;
    faults::Injector injector(fault_config);
    sim::Simulator simulator(std::move(workload).value(), config);
    simulator.pipeline().set_fault_hook(&injector);
    simulator.run(sim::default_instruction_budget() / 2);
    injected += injector.injected();
    detected += injector.detected();
    undetected += injector.undetected();
    latency_sum += injector.latency().mean() *
                   static_cast<double>(injector.latency().count());
    latency_count += injector.latency().count();
  }
  std::printf("  %-26s injected %6llu  detected %6llu  escaped %6llu  "
              "coverage %5.1f%%  mean latency %5.1f cy\n",
              label, static_cast<unsigned long long>(injected),
              static_cast<unsigned long long>(detected),
              static_cast<unsigned long long>(undetected),
              100.0 * safe_ratio(detected, detected + undetected),
              latency_count ? latency_sum / static_cast<double>(latency_count)
                            : 0.0);
}

}  // namespace

int main() {
  std::printf("A5: fault-injection coverage (single-bit flips on "
              "instruction results)\n");
  campaign("REESE, P-side flips", core::with_reese(core::starting_config()),
           faults::FaultTarget::kPResult);
  campaign("REESE, R-side flips", core::with_reese(core::starting_config()),
           faults::FaultTarget::kRResult);
  campaign("REESE, either side", core::with_reese(core::starting_config()),
           faults::FaultTarget::kEither);
  campaign("baseline (no comparator)", core::starting_config(),
           faults::FaultTarget::kEither);

  core::CoreConfig partial = core::with_reese(core::starting_config());
  partial.reese.reexec_interval = 2;
  campaign("REESE, 1-of-2 re-exec", partial, faults::FaultTarget::kEither);
  return 0;
}

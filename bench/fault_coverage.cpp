// A5: fault-injection coverage campaign, at statistical scale.
//
// The paper's claim (§4.2): REESE "detects soft errors that affect
// instruction results" — arithmetic, logical, effective address and branch
// resolution. This campaign injects single-bit flips into the stored
// P-stream results or the R-stream recomputations across all six
// benchmarks and verifies, with Wilson 95% confidence bounds:
//  * REESE detects 100% of injected result faults (either copy);
//  * the baseline detects none (no comparator);
//  * detection latency tracks the P->R separation plus queue drain.
//
// The default (full) campaign runs ~10⁵ injections fanned across the
// thread pool: 5 variants x 6 workloads x 12 seed replicas, each cell an
// independent simulation with a derived seed (sim/campaign.h). Results are
// written to BENCH_fault.json for tools/bench_diff.py and CI archiving.
//
// Usage: fault_coverage [--quick] [--jobs N] [--replicas N]
//                       [--instructions N] [--rate R] [--seed S]
//                       [--out PATH] [--checkpoint-dir D] [--resume-from D]
//
//   --quick       CI mode: 1 replica, 20k-instruction cells (≈10³ injections)
//   --jobs N      worker threads (default: auto; also -jobs/--jobs=/REESE_JOBS)
//   --out PATH    report path (default: BENCH_fault.json in the CWD)
//   --checkpoint-dir D   write per-cell ".done" records into D
//   --resume-from D      skip cells already recorded in D (implies dir)
//
// Exit status 1 when a coverage expectation fails (a full-re-execution
// REESE variant escaped a fault, or the baseline "detected" one).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/thread_pool.h"
#include "sim/campaign.h"

using namespace reese;

int main(int argc, char** argv) {
  sim::CampaignSpec spec;
  std::string out_path = "BENCH_fault.json";

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fault_coverage: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--quick") == 0) {
      spec.quick = true;
    } else if (std::strcmp(arg, "--jobs") == 0) {
      spec.jobs = sanitize_job_count(std::strtol(next_value(), nullptr, 10));
    } else if (std::strcmp(arg, "--replicas") == 0) {
      spec.replicas = static_cast<u32>(std::atoi(next_value()));
    } else if (std::strcmp(arg, "--instructions") == 0) {
      spec.instructions = static_cast<u64>(std::atoll(next_value()));
    } else if (std::strcmp(arg, "--rate") == 0) {
      spec.rate = std::atof(next_value());
    } else if (std::strcmp(arg, "--seed") == 0) {
      spec.seed = static_cast<u64>(std::strtoull(next_value(), nullptr, 0));
    } else if (std::strcmp(arg, "--out") == 0) {
      out_path = next_value();
    } else if (std::strcmp(arg, "--checkpoint-dir") == 0) {
      spec.checkpoint.dir = next_value();
    } else if (std::strcmp(arg, "--checkpoint-interval") == 0) {
      spec.checkpoint.interval =
          static_cast<u64>(std::atoll(next_value()));
    } else if (std::strcmp(arg, "--resume-from") == 0) {
      spec.checkpoint.dir = next_value();
      spec.checkpoint.resume = true;
    } else {
      std::fprintf(stderr, "fault_coverage: unknown argument %s\n", arg);
      return 2;
    }
  }

  std::printf("A5: fault-injection coverage (single-bit flips on "
              "instruction results)\n");
  const sim::CampaignResult result = sim::run_campaign(spec);
  std::printf("%s", result.table().c_str());

  if (!sim::write_campaign_report(result, out_path)) return 1;
  std::fprintf(stderr, "fault_coverage: wrote %s\n", out_path.c_str());

  // Gate on the paper's claims: full-re-execution REESE catches every
  // resolved fault, the baseline none. (The 1-of-2 partial variant is
  // informational — roughly half its faults escape by construction.)
  bool ok = true;
  for (usize v = 0; v < result.spec.variants.size(); ++v) {
    const sim::CampaignVariant& variant = result.spec.variants[v];
    const sim::CampaignCell total = result.variant_total(v);
    if (total.duplicate_reports != 0) {
      std::fprintf(stderr, "fault_coverage: FAIL %s: %llu duplicate reports\n",
                   variant.label.c_str(),
                   static_cast<unsigned long long>(total.duplicate_reports));
      ok = false;
    }
    if (variant.expect_full_coverage && total.undetected != 0) {
      std::fprintf(stderr, "fault_coverage: FAIL %s: %llu escapes\n",
                   variant.label.c_str(),
                   static_cast<unsigned long long>(total.undetected));
      ok = false;
    }
    if (variant.expect_zero_coverage && total.detected != 0) {
      std::fprintf(stderr,
                   "fault_coverage: FAIL %s: %llu spurious detections\n",
                   variant.label.c_str(),
                   static_cast<unsigned long long>(total.detected));
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

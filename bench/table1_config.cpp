// Table 1: "Simulator options" — prints the starting configuration and
// verifies the paper's idle-capacity premise (§4.1): 30-40% of execution
// resources unused, average throughput around 2 IPC against an 8-wide
// machine.
#include <cstdio>

#include "common/strutil.h"
#include "core/fu_pool.h"
#include "core/pipeline.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

using namespace reese;

int main() {
  const core::CoreConfig config = core::starting_config();
  std::printf("Table 1: starting configuration\n");
  std::printf("  %-28s %u\n", "Fetch Queue Size", config.ifq_size);
  std::printf("  %-28s %u\n", "Max IPC for pipeline stages", config.issue_width);
  std::printf("  %-28s %u entries\n", "RUU size", config.ruu_size);
  std::printf("  %-28s %u entries\n", "LSQ size", config.lsq_size);
  std::printf("  %-28s %u IntAdd, %u IntM/D, %u FPAdd, %u FPM/D\n",
              "Functional units", config.int_alu_count, config.int_mult_count,
              config.fp_alu_count, config.fp_mult_count);
  std::printf("  %-28s %u\n", "Memory ports", config.mem_port_count);
  std::printf("  %-28s %llu KB, %u-way, %u-cycle hit\n", "L1 data cache",
              static_cast<unsigned long long>(config.memory.dl1.size_bytes / 1024),
              config.memory.dl1.associativity, config.memory.dl1.hit_latency);
  std::printf("  %-28s %llu KB, %u-way, %u-cycle hit\n", "L2 cache (shared I/D)",
              static_cast<unsigned long long>(config.memory.ul2.size_bytes / 1024),
              config.memory.ul2.associativity, config.memory.ul2.hit_latency);
  std::printf("  %-28s %llu KB, %u-way, %u-cycle hit\n", "L1 inst cache",
              static_cast<unsigned long long>(config.memory.il1.size_bytes / 1024),
              config.memory.il1.associativity, config.memory.il1.hit_latency);
  std::printf("  %-28s %s (McFarling [26])\n", "Branch predictor",
              branch::predictor_kind_name(config.predictor));
  std::printf("  %-28s 32 GP, 32 FP\n", "Registers");

  std::printf("\nIdle-capacity check on the baseline (paper: ~30-40%% of "
              "hardware idle, ~2 IPC):\n");
  const u64 budget = sim::default_instruction_budget();
  double ipc_sum = 0.0;
  double issue_util_sum = 0.0;
  for (const std::string& name : workloads::spec_like_names()) {
    auto workload = workloads::make_workload(name, {});
    sim::Simulator simulator(std::move(workload).value(), config);
    simulator.run(budget);
    const core::Pipeline& pipeline = simulator.pipeline();
    const core::CoreStats& stats = pipeline.stats();
    const double issue_slots_used =
        stats.issue_per_cycle.mean() / config.issue_width;
    const double alu_util = simulator.pipeline().fu_pool().utilization(
        core::FuKind::kIntAlu, stats.cycles);
    std::printf("  %-8s IPC %.3f | issue slots used %.1f%% | IntALU "
                "utilization %.1f%% (idle %.1f%%)\n",
                name.c_str(), stats.ipc(), 100.0 * issue_slots_used,
                100.0 * alu_util, 100.0 * (1.0 - alu_util));
    ipc_sum += stats.ipc();
    issue_util_sum += issue_slots_used;
  }
  const double n = static_cast<double>(workloads::spec_like_names().size());
  std::printf("  average: IPC %.3f of %u-wide; issue bandwidth idle %.1f%%\n",
              ipc_sum / n, config.issue_width,
              100.0 * (1.0 - issue_util_sum / n));
  return 0;
}

// Simulator-throughput tracker: measures simulated kIPS per workload plus
// sequential-vs-parallel grid wall time, and writes BENCH_perf.json for
// tools/bench_diff.py / CI archiving.
//
// Usage: perf_kips [--quick] [--jobs N] [--reps N] [--warmup N]
//                  [--instructions N] [--out PATH]
//
//   --quick          CI mode: 3 reps, 60k-instruction runs
//   --jobs N         workers for the parallel grid phase (default: auto)
//   --out PATH       report path (default: BENCH_perf.json in the CWD)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/thread_pool.h"
#include "sim/perf.h"

int main(int argc, char** argv) {
  reese::sim::PerfOptions options;
  std::string out_path = "BENCH_perf.json";

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "perf_kips: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--quick") == 0) {
      options.quick = true;
    } else if (std::strcmp(arg, "--jobs") == 0) {
      options.jobs =
          reese::sanitize_job_count(std::strtol(next_value(), nullptr, 10));
    } else if (std::strcmp(arg, "--reps") == 0) {
      options.reps = static_cast<reese::u32>(std::atoi(next_value()));
    } else if (std::strcmp(arg, "--warmup") == 0) {
      options.warmup_reps = static_cast<reese::u32>(std::atoi(next_value()));
    } else if (std::strcmp(arg, "--instructions") == 0) {
      options.instructions =
          static_cast<reese::u64>(std::atoll(next_value()));
    } else if (std::strcmp(arg, "--out") == 0) {
      out_path = next_value();
    } else {
      std::fprintf(stderr, "perf_kips: unknown argument %s\n", arg);
      return 2;
    }
  }

  const reese::sim::PerfReport report = reese::sim::run_perf(options);
  if (!reese::sim::write_perf_report(report, out_path)) return 1;
  std::printf("%s", report.json().c_str());
  std::fprintf(stderr, "perf_kips: wrote %s\n", out_path.c_str());
  return report.grid_identical ? 0 : 1;
}

// Ablation A3 (§4.3): early release of completed P instructions.
//
// "The R-stream Queue can be allowed to remove instructions from the
// pipeline before the instructions are ready to commit... This speeds up
// execution, but requires additional hardware complexity." With early
// release off, a P instruction holds its RUU slot until its R copy has
// executed and compared — shrinking the effective out-of-order window.
#include <cstdio>

#include "sim/simulator.h"
#include "workloads/workload.h"

using namespace reese;

int main() {
  const u64 budget = sim::default_instruction_budget();
  std::printf("A3: early release of completed P instructions from the RUU\n");
  std::printf("  %-8s %14s %14s %10s\n", "workload", "early-release",
              "hold-to-commit", "speedup");
  double on_sum = 0.0;
  double off_sum = 0.0;
  for (const std::string& name : workloads::spec_like_names()) {
    double ipc[2];
    for (int early = 0; early < 2; ++early) {
      auto workload = workloads::make_workload(name, {});
      core::CoreConfig config = core::with_reese(core::starting_config());
      config.reese.early_release = (early == 1);
      sim::Simulator simulator(std::move(workload).value(), config);
      simulator.run(budget);
      ipc[early] = simulator.pipeline().stats().ipc();
    }
    std::printf("  %-8s %14.3f %14.3f %9.1f%%\n", name.c_str(), ipc[1], ipc[0],
                100.0 * (ipc[1] / ipc[0] - 1.0));
    on_sum += ipc[1];
    off_sum += ipc[0];
  }
  std::printf("  %-8s %14.3f %14.3f %9.1f%%\n", "AV",
              on_sum / 6.0, off_sum / 6.0,
              100.0 * (on_sum / off_sum - 1.0));
  return 0;
}

// Extension E1: REESE on floating-point workloads.
//
// §5.2 of the paper: "We did not study floating point (FP) programs. [The
// integer benchmarks] help us to focus on how many integer units of spare
// capacity are necessary." This bench runs the question the paper left
// open: on FP-dominated code, how big is REESE's overhead, and is the
// spare hardware it wants FP adders rather than integer ALUs?
//
// Expected shape: FP kernels re-execute their FP operations through the
// (mirrored) 4 FPAdd + 1 FPM/D units; spare *FP* adders should do for FP
// code what spare integer ALUs did for SPECint — and spare integer ALUs
// should do little.
#include <cstdio>

#include "sim/simulator.h"
#include "workloads/workload.h"

using namespace reese;

namespace {

double run_ipc(const std::string& name, const core::CoreConfig& config,
               u64 budget) {
  auto workload = workloads::make_workload(name, {});
  sim::Simulator simulator(std::move(workload).value(), config);
  return simulator.run(budget).ipc;
}

}  // namespace

int main() {
  const u64 budget = sim::default_instruction_budget() / 2;
  std::printf("E1: REESE on floating-point workloads (extension; the paper "
              "studied integers only)\n");
  std::printf("  %-10s %9s %9s %12s %12s %12s\n", "workload", "baseline",
              "REESE", "R+2 IntALU", "R+2 FPAdd", "R+2FP+1FPM");

  for (const std::string& name : workloads::fp_like_names()) {
    const double baseline = run_ipc(name, core::starting_config(), budget);

    const double reese =
        run_ipc(name, core::with_reese(core::starting_config()), budget);

    const double int_spares =
        run_ipc(name, core::with_reese(core::starting_config(), 2), budget);

    core::CoreConfig fp_spares = core::with_reese(core::starting_config());
    fp_spares.fp_alu_count += 2;
    const double fp_alu = run_ipc(name, fp_spares, budget);

    core::CoreConfig fp_full = fp_spares;
    fp_full.fp_mult_count += 1;
    const double fp_both = run_ipc(name, fp_full, budget);

    std::printf("  %-10s %9.3f %9.3f %12.3f %12.3f %12.3f\n", name.c_str(),
                baseline, reese, int_spares, fp_alu, fp_both);
  }
  std::printf("\n  (columns: IPC. Spare integer ALUs do nothing for FP "
              "code; where an FP unit binds — tomcatv's unpipelined "
              "sqrt/divide — one spare FP mult/div more than erases the "
              "duplication cost. Bandwidth-bound FP kernels need memory "
              "ports, not arithmetic units.)\n");
  return 0;
}

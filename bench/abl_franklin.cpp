// Ablation A6 (§3 related work): REESE vs Franklin's dual-execution.
//
// Franklin [24] duplicates instructions at the dynamic scheduler: each one
// holds its RUU slot through two executions. REESE's claim to novelty is
// the R-stream Queue, which frees the slot after the first execution and
// schedules the duplicate from a cheap FIFO. This bench puts both schemes
// on the same hardware and reports the overhead of each, with and without
// spare ALUs, on the starting configuration and a 2x window.
#include <cstdio>

#include "sim/simulator.h"
#include "workloads/workload.h"

using namespace reese;

namespace {

double average_ipc(const core::CoreConfig& config, u64 budget) {
  double sum = 0.0;
  for (const std::string& name : workloads::spec_like_names()) {
    auto workload = workloads::make_workload(name, {});
    sim::Simulator simulator(std::move(workload).value(), config);
    sum += simulator.run(budget).ipc;
  }
  return sum / static_cast<double>(workloads::spec_like_names().size());
}

void report(const char* label, core::CoreConfig base, u64 budget) {
  const double baseline = average_ipc(base, budget);

  auto overhead = [&](core::RedundancyScheme scheme, u32 spares) {
    core::CoreConfig config = core::with_reese(base, spares);
    config.reese.scheme = scheme;
    const double ipc = average_ipc(config, budget);
    return 100.0 * (baseline - ipc) / baseline;
  };

  std::printf("  %-22s baseline %.3f | REESE %5.1f%% / +2ALU %5.1f%% | "
              "Franklin %5.1f%% / +2ALU %5.1f%%\n",
              label, baseline,
              overhead(core::RedundancyScheme::kReese, 0),
              overhead(core::RedundancyScheme::kReese, 2),
              overhead(core::RedundancyScheme::kFranklin, 0),
              overhead(core::RedundancyScheme::kFranklin, 2));
}

}  // namespace

int main() {
  const u64 budget = sim::default_instruction_budget() / 2;
  std::printf("A6: REESE vs Franklin dual-execution (average IPC overhead "
              "vs baseline)\n");
  report("starting config", core::starting_config(), budget);

  core::CoreConfig big = core::starting_config();
  big.ruu_size = 32;
  big.lsq_size = 16;
  report("RUU=32, LSQ=16", big, budget);

  core::CoreConfig huge = core::starting_config();
  huge.ruu_size = 64;
  huge.lsq_size = 32;
  report("RUU=64, LSQ=32", huge, budget);
  return 0;
}

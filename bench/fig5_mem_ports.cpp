// Figure 5: "IPC for additional memory ports".
//
// Memory ports double from 2 to 4 (on top of the Figure 4 configuration).
// The paper: "added memory ports significantly improved the performance of
// REESE", and the +2ALU+1Mult bar is omitted because it matched +2ALU.
#include <cstdio>

#include "sim/experiment.h"

int main(int argc, char** argv) {
  reese::sim::parse_jobs_flag(argc, argv);
  reese::sim::parse_checkpoint_flags(argc, argv);
  reese::sim::ExperimentSpec spec;
  spec.title = "Figure 5: IPC for additional memory ports (4 ports)";
  spec.base = reese::core::starting_config();
  spec.base.ruu_size = 32;
  spec.base.lsq_size = 16;
  spec.base.fetch_width = 16;
  spec.base.decode_width = 16;
  spec.base.issue_width = 16;
  spec.base.commit_width = 16;
  spec.base.ifq_size = 32;
  spec.base.mem_port_count = 4;
  // The paper drops the +2ALU+1Mult bar here (it matched +2ALU).
  spec.models = {reese::sim::Model::kBaseline, reese::sim::Model::kReese,
                 reese::sim::Model::kReese1Alu, reese::sim::Model::kReese2Alu};
  const reese::sim::ExperimentResult result = reese::sim::run_experiment(spec);
  std::fputs(result.table().c_str(), stdout);
  return 0;
}

// AVF cross-validation: does the static srv-vuln ranking predict measured
// per-instruction fault outcomes?
//
// The static analyzer (src/analysis/vuln.h) ranks every static instruction
// by freq × expected ACE window — a prediction made without running the
// program. This bench closes the loop dynamically: it assembles the
// examples/srv programs, runs a fault-injection campaign over the fixed
// images (baseline variant = exact program-order ACE-window measurement,
// REESE variant = detection behaviour, informational), joins the measured
// per-PC strata against the static ranking, and reports Spearman rank
// correlation per program.
//
// The headline statistic is rho between the static ace_score and the
// measured per-PC ACE-window mass (window_sum: live instructions summed
// over all faults whose value was read before redefinition — the dynamic
// realization of freq × window). rho against the raw per-PC escape count
// is reported alongside. The bench passes when at least two programs reach
// rho_window >= --min-rho (default 0.6).
//
// Usage: avf_validate [--quick] [--jobs N] [--replicas N] [--rate R]
//                     [--seed S] [--min-rho R] [--out PATH]
//                     [program.srv ...]
//
//   --quick       CI mode: 64 replicas per cell instead of 256
//   --jobs N      worker threads (default: auto; REESE_JOBS honoured)
//   --min-rho R   per-program pass threshold on rho_window (default 0.6)
//   --out PATH    report path (default: BENCH_avf.json in the CWD)
//
// With no positional programs, every examples/srv/*.srv under the source
// tree is used. Exit status 1 when a program fails to assemble, the
// report cannot be written, or fewer than two programs pass.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/vuln.h"
#include "common/diag.h"
#include "common/strutil.h"
#include "common/thread_pool.h"
#include "isa/assembler.h"
#include "sim/campaign.h"

using namespace reese;
namespace fs = std::filesystem;

namespace {

struct ProgramReport {
  std::string name;
  std::string path;
  usize static_instructions = 0;
  usize joined_pcs = 0;  ///< reachable static instructions in the join
  u64 injected = 0;      ///< baseline-variant injections into this program
  u64 escapes = 0;
  double rho_window = 0.0;  ///< static ace_score vs measured window_sum
  double rho_escape = 0.0;  ///< static ace_score vs per-PC escape count
  bool pass = false;
};

std::vector<std::string> default_programs() {
  std::vector<std::string> paths;
  const fs::path dir = fs::path(REESE_SOURCE_DIR) / "examples" / "srv";
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".srv") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace

int main(int argc, char** argv) {
  sim::CampaignSpec spec;
  spec.rate = 0.02;
  spec.seed = 0xAFF01DEA;
  bool quick = false;
  double min_rho = 0.6;
  std::string out_path = "BENCH_avf.json";
  std::vector<std::string> program_paths;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "avf_validate: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(arg, "--jobs") == 0) {
      spec.jobs = sanitize_job_count(std::strtol(next_value(), nullptr, 10));
    } else if (std::strcmp(arg, "--replicas") == 0) {
      spec.replicas = static_cast<u32>(std::atoi(next_value()));
    } else if (std::strcmp(arg, "--rate") == 0) {
      spec.rate = std::atof(next_value());
    } else if (std::strcmp(arg, "--seed") == 0) {
      spec.seed = static_cast<u64>(std::strtoull(next_value(), nullptr, 0));
    } else if (std::strcmp(arg, "--min-rho") == 0) {
      min_rho = std::atof(next_value());
    } else if (std::strcmp(arg, "--out") == 0) {
      out_path = next_value();
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "avf_validate: unknown argument %s\n", arg);
      return 2;
    } else {
      program_paths.push_back(arg);
    }
  }
  if (program_paths.empty()) program_paths = default_programs();
  if (program_paths.empty()) {
    std::fprintf(stderr, "avf_validate: no input programs\n");
    return 1;
  }
  // The statistics need many seed replicas over the short fixed images, so
  // this bench resolves its own quick mode instead of CampaignSpec::quick
  // (which would force a single replica).
  if (spec.replicas == 12) spec.replicas = quick ? 64 : 256;
  spec.instructions = quick ? 20'000 : 60'000;

  // Static half: assemble and rank each program.
  std::vector<analysis::VulnReport> statics;
  for (const std::string& path : program_paths) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "avf_validate: cannot open %s\n", path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    auto assembled = isa::assemble(buffer.str());
    if (!assembled.ok()) {
      std::fprintf(stderr, "avf_validate: %s: %s\n", path.c_str(),
                   assembled.error().to_string().c_str());
      return 1;
    }
    sim::CampaignProgram program;
    program.name = fs::path(path).stem().string();
    program.program = assembled.value();
    statics.push_back(analysis::analyze_vulnerability(program.program));
    spec.programs.push_back(std::move(program));
  }

  // Dynamic half: baseline measures exact program-order ACE windows (no
  // comparator, no flushes); REESE-either rides along for detection rates.
  sim::CampaignVariant baseline{"baseline", core::starting_config(),
                                faults::FaultTarget::kEither};
  baseline.expect_zero_coverage = true;
  sim::CampaignVariant reese{"reese_either",
                             core::with_reese(core::starting_config()),
                             faults::FaultTarget::kEither};
  reese.expect_full_coverage = true;
  spec.variants = {baseline, reese};
  constexpr usize kBaselineVariant = 0;

  std::printf("AVF validation: static srv-vuln ranking vs measured per-PC "
              "fault outcomes\n");
  const sim::CampaignResult result = sim::run_campaign(spec);

  std::vector<ProgramReport> reports;
  usize passing = 0;
  for (usize w = 0; w < spec.programs.size(); ++w) {
    const analysis::VulnReport& vuln = statics[w];
    const sim::CampaignCell measured =
        result.workload_total(kBaselineVariant, w);

    ProgramReport report;
    report.name = spec.programs[w].name;
    report.path = program_paths[w];
    report.static_instructions = vuln.instructions.size();

    std::vector<double> predicted;
    std::vector<double> window_mass;
    std::vector<double> escape_count;
    for (const analysis::InstVuln& inst : vuln.instructions) {
      if (!inst.reachable) continue;
      const auto it = measured.by_pc.find(inst.pc);
      const sim::PcStratum* stratum =
          it == measured.by_pc.end() ? nullptr : &it->second;
      predicted.push_back(inst.ace_score);
      window_mass.push_back(
          stratum == nullptr ? 0.0 : static_cast<double>(stratum->window_sum));
      escape_count.push_back(
          stratum == nullptr ? 0.0 : static_cast<double>(stratum->undetected));
      if (stratum != nullptr) {
        report.injected += stratum->injected;
        report.escapes += stratum->undetected;
      }
    }
    report.joined_pcs = predicted.size();
    report.rho_window = spearman_rank_correlation(predicted, window_mass);
    report.rho_escape = spearman_rank_correlation(predicted, escape_count);
    report.pass = report.rho_window >= min_rho;
    if (report.pass) ++passing;

    std::printf(
        "  %-12s static=%3zu joined=%3zu injected=%6llu escapes=%6llu "
        "rho_window=%+.3f rho_escape=%+.3f %s\n",
        report.name.c_str(), report.static_instructions, report.joined_pcs,
        static_cast<unsigned long long>(report.injected),
        static_cast<unsigned long long>(report.escapes), report.rho_window,
        report.rho_escape, report.pass ? "PASS" : "FAIL");
    reports.push_back(std::move(report));
  }

  const usize required = std::min<usize>(2, reports.size());
  const bool pass = passing >= required;

  std::string json;
  json += "{\n";
  json += "  \"schema\": \"reese-avf-v1\",\n";
  json += "  \"kind\": \"validation\",\n";
  json += format("  \"quick\": %s,\n", quick ? "true" : "false");
  json += format("  \"replicas\": %u,\n", spec.replicas);
  json += format("  \"rate\": %.6f,\n", spec.rate);
  json += format("  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(spec.seed));
  json += format("  \"min_rho\": %.3f,\n", min_rho);
  json += "  \"programs\": [\n";
  for (usize i = 0; i < reports.size(); ++i) {
    const ProgramReport& r = reports[i];
    json += "    {\n";
    json += format("      \"name\": \"%s\",\n", json_escape(r.name).c_str());
    json += format("      \"path\": \"%s\",\n", json_escape(r.path).c_str());
    json += format("      \"static_instructions\": %zu,\n",
                   r.static_instructions);
    json += format("      \"joined_pcs\": %zu,\n", r.joined_pcs);
    json += format("      \"injected\": %llu,\n",
                   static_cast<unsigned long long>(r.injected));
    json += format("      \"escapes\": %llu,\n",
                   static_cast<unsigned long long>(r.escapes));
    json += format("      \"rho_window\": %.6f,\n", r.rho_window);
    json += format("      \"rho_escape\": %.6f,\n", r.rho_escape);
    json += format("      \"pass\": %s\n", r.pass ? "true" : "false");
    json += i + 1 < reports.size() ? "    },\n" : "    }\n";
  }
  json += "  ],\n";
  json += format("  \"programs_passing\": %zu,\n", passing);
  json += format("  \"programs_required\": %zu,\n", required);
  json += format("  \"pass\": %s\n", pass ? "true" : "false");
  json += "}\n";

  std::ofstream out(out_path);
  if (!out || !(out << json)) {
    std::fprintf(stderr, "avf_validate: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out.close();
  std::fprintf(stderr, "avf_validate: wrote %s\n", out_path.c_str());

  if (!pass) {
    std::fprintf(stderr,
                 "avf_validate: FAIL — %zu/%zu programs reached rho_window "
                 ">= %.2f\n",
                 passing, reports.size(), min_rho);
    return 1;
  }
  std::printf("avf_validate: PASS — %zu/%zu programs reached rho_window >= "
              "%.2f\n",
              passing, reports.size(), min_rho);
  return 0;
}

// Figure 6: "Summary of results".
//
// Average IPC per hardware variation (None / RUU,LSQ 2X / Ex.Q 2X /
// MemPorts) for each model, i.e. the averages of Figures 2-5 side by side.
// The paper's reading: added memory ports significantly improve REESE.
#include <cstdio>
#include <string>
#include <vector>

#include "common/strutil.h"
#include "sim/experiment.h"

using namespace reese;

namespace {

core::CoreConfig variation(int which) {
  core::CoreConfig config = core::starting_config();
  if (which >= 1) {  // RUU,LSQ 2X
    config.ruu_size = 32;
    config.lsq_size = 16;
  }
  if (which >= 2) {  // Ex.Q 2X (16-wide datapath)
    config.fetch_width = 16;
    config.decode_width = 16;
    config.issue_width = 16;
    config.commit_width = 16;
    config.ifq_size = 32;
  }
  if (which >= 3) {  // MemPorts 2X
    config.mem_port_count = 4;
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  reese::sim::parse_jobs_flag(argc, argv);
  reese::sim::parse_checkpoint_flags(argc, argv);
  const std::vector<std::string> variations = {"None", "RUU,LSQ 2X", "Ex.Q 2X",
                                               "MemPorts"};
  std::printf("Figure 6: summary of results (average IPC per hardware "
              "variation)\n");
  std::printf("  %-12s", "variation");
  for (sim::Model model : sim::standard_models()) {
    std::printf("%14s", sim::model_name(model));
  }
  std::printf("%14s\n", "REESE gap");

  for (int which = 0; which < 4; ++which) {
    sim::ExperimentSpec spec;
    spec.title = variations[which];
    spec.base = variation(which);
    const sim::ExperimentResult result = sim::run_experiment(spec);
    std::printf("  %-12s", variations[which].c_str());
    for (usize m = 0; m < result.spec.models.size(); ++m) {
      std::printf("%14.3f", result.average(m));
    }
    std::printf("%13.1f%%\n", result.overhead_pct(1));
  }
  return 0;
}

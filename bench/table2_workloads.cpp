// Table 2: "Benchmark Programs and Inputs" — prints the six SPECint95
// stand-ins with their dynamic instruction mixes (from the golden ISS) so
// the substitution's character is inspectable: branch fraction, load/store
// fraction, multiply density, branch predictability.
#include <cstdio>

#include "core/pipeline.h"
#include "isa/iss.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

using namespace reese;

int main() {
  std::printf("Table 2: benchmark programs (SPECint95 stand-ins)\n");
  std::printf("  %-8s %-38s %7s %7s %7s %7s %7s %9s\n", "name", "mimics",
              "%alu", "%mul/dv", "%load", "%store", "%branch", "mispred%");
  for (const std::string& name : workloads::spec_like_names()) {
    workloads::WorkloadOptions options;
    options.iterations = 20;
    auto made = workloads::make_workload(name, options);
    const workloads::Workload workload = std::move(made).value();

    isa::Iss iss(workload.program);
    iss.run(10'000'000);
    const isa::InstMix& mix = iss.mix();
    const double total = static_cast<double>(mix.total);

    // Branch predictability from a baseline pipeline run.
    workloads::WorkloadOptions forever;
    auto wl2 = workloads::make_workload(name, forever);
    sim::Simulator simulator(std::move(wl2).value(), core::starting_config());
    simulator.run(sim::default_instruction_budget());
    const core::CoreStats& stats = simulator.pipeline().stats();

    std::printf("  %-8s %-38s %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %8.2f%%\n",
                workload.name.c_str(), workload.mimics.c_str(),
                100.0 * static_cast<double>(mix.int_alu) / total,
                100.0 * static_cast<double>(mix.int_mul + mix.int_div) / total,
                100.0 * static_cast<double>(mix.loads) / total,
                100.0 * static_cast<double>(mix.stores) / total,
                100.0 * static_cast<double>(mix.cond_branches + mix.jumps) /
                    total,
                100.0 * stats.mispredict_rate());
    std::printf("  %-8s   input: %s\n", "", workload.description.c_str());
  }
  return 0;
}

// Figure 3: "Comparing REESE and baseline: RUU size = 32 and LSQ size = 16".
//
// Doubling the RUU and LSQ separates window-capacity limits from REESE's
// own cost: if both models gain equally, the gap is REESE-specific; the
// paper uses this to show the gap stays in the 11-16% band.
#include <cstdio>

#include "sim/experiment.h"

int main(int argc, char** argv) {
  reese::sim::parse_jobs_flag(argc, argv);
  reese::sim::parse_checkpoint_flags(argc, argv);
  reese::sim::ExperimentSpec spec;
  spec.title = "Figure 3: REESE vs baseline with RUU=32, LSQ=16";
  spec.base = reese::core::starting_config();
  spec.base.ruu_size = 32;
  spec.base.lsq_size = 16;
  const reese::sim::ExperimentResult result = reese::sim::run_experiment(spec);
  std::fputs(result.table().c_str(), stdout);
  return 0;
}

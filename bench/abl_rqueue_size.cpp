// Ablation A2 (§4.3): R-stream Queue sizing.
//
// "Since a full R-stream Queue blocks the execution of P instructions, it
// is critical to set the buffer to an appropriate length." This bench
// sweeps the queue size and reports IPC plus the fraction of cycles the
// release stage was blocked by a full queue.
#include <cstdio>

#include "common/stats.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

using namespace reese;

int main() {
  const u64 budget = sim::default_instruction_budget();
  std::printf("A2: R-stream Queue size sweep (starting config + REESE)\n");
  std::printf("  %8s %10s %18s %18s\n", "rq size", "avg IPC",
              "full-stall cycles%", "avg occupancy");
  for (u32 size : {4u, 8u, 16u, 32u, 64u, 128u}) {
    double ipc_sum = 0.0;
    double stall_sum = 0.0;
    double occupancy_sum = 0.0;
    for (const std::string& name : workloads::spec_like_names()) {
      auto workload = workloads::make_workload(name, {});
      core::CoreConfig config = core::with_reese(core::starting_config());
      config.reese.rqueue_size = size;
      sim::Simulator simulator(std::move(workload).value(), config);
      simulator.run(budget / 2);
      const core::CoreStats& stats = simulator.pipeline().stats();
      ipc_sum += stats.ipc();
      stall_sum += safe_ratio(stats.rqueue_full_stall_cycles, stats.cycles);
      occupancy_sum += stats.rqueue_occupancy.mean();
    }
    const double n = static_cast<double>(workloads::spec_like_names().size());
    std::printf("  %8u %10.3f %17.1f%% %18.1f\n", size, ipc_sum / n,
                100.0 * stall_sum / n, occupancy_sum / n);
  }
  return 0;
}

// The paper-scale push: every figure experiment (figs 2-7) at the paper's
// 100M-instruction budget, fanned over the thread pool with periodic
// checkpoints so an interrupted night resumes instead of restarting.
//
// The DSN'01 paper ran 100M instructions per SPEC95 benchmark; the CI
// figures run the converged 1M default (see default_instruction_budget).
// This harness closes the gap: `cmake --build build --target overnight`
// runs the full grid and emits BENCH_overnight.json (schema
// "reese-overnight-v1", validated by tools/bench_diff.py).
//
// Usage: overnight_bench [--jobs N] [--instructions N] [--out PATH]
//                        [--checkpoint-dir D] [--checkpoint-interval N]
//                        [--resume-from D] [--no-checkpoint]
//
// Checkpointing defaults ON: cells snapshot every 10M committed
// instructions into ./overnight-ckpt and finished cells leave ".done"
// records, so rerunning the target after a kill continues bit-identically
// (same interval => same drain barriers; see sim/checkpoint.h). Figure 6
// is the summary of figures 2-5, so it is assembled from their averages
// rather than re-simulated.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/diag.h"
#include "common/strutil.h"
#include "sim/experiment.h"

using namespace reese;

namespace {

constexpr u64 kPaperBudget = 100'000'000;
constexpr u64 kDefaultInterval = 10'000'000;

struct Figure {
  std::string name;  ///< stable key in the JSON ("fig2", "fig7_ruu64", ...)
  sim::ExperimentSpec spec;
};

core::CoreConfig wide_config() {
  core::CoreConfig config = core::starting_config();
  config.ruu_size = 32;
  config.lsq_size = 16;
  config.fetch_width = 16;
  config.decode_width = 16;
  config.issue_width = 16;
  config.commit_width = 16;
  config.ifq_size = 32;
  return config;
}

core::CoreConfig fig7_config(u32 ruu, bool extra_fus) {
  core::CoreConfig config = wide_config();
  config.ruu_size = ruu;
  config.lsq_size = ruu / 2;
  if (extra_fus) {
    config.int_alu_count = 8;
    config.int_mult_count = 4;
    config.mem_port_count = 4;
  }
  return config;
}

std::vector<Figure> figure_set() {
  std::vector<Figure> figures;

  Figure fig2{"fig2", {}};
  fig2.spec.title = "Figure 2: initial comparison (starting configuration)";
  fig2.spec.base = core::starting_config();
  figures.push_back(fig2);

  Figure fig3{"fig3", {}};
  fig3.spec.title = "Figure 3: RUU=32, LSQ=16";
  fig3.spec.base = core::starting_config();
  fig3.spec.base.ruu_size = 32;
  fig3.spec.base.lsq_size = 16;
  figures.push_back(fig3);

  Figure fig4{"fig4", {}};
  fig4.spec.title = "Figure 4: 16-wide datapath (RUU=32, LSQ=16)";
  fig4.spec.base = wide_config();
  figures.push_back(fig4);

  Figure fig5{"fig5", {}};
  fig5.spec.title = "Figure 5: additional memory ports (4 ports)";
  fig5.spec.base = wide_config();
  fig5.spec.base.mem_port_count = 4;
  fig5.spec.models = {sim::Model::kBaseline, sim::Model::kReese,
                      sim::Model::kReese1Alu, sim::Model::kReese2Alu};
  figures.push_back(fig5);

  const struct {
    const char* key;
    const char* label;
    u32 ruu;
    bool extra_fus;
  } kPoints[] = {
      {"fig7_ruu64", "Figure 7: RUU=64", 64, false},
      {"fig7_ruu64_fus", "Figure 7: RUU=64 + extra FUs", 64, true},
      {"fig7_ruu256", "Figure 7: RUU=256", 256, false},
      {"fig7_ruu256_fus", "Figure 7: RUU=256 + extra FUs", 256, true},
  };
  for (const auto& point : kPoints) {
    Figure fig{point.key, {}};
    fig.spec.title = point.label;
    fig.spec.base = fig7_config(point.ruu, point.extra_fus);
    fig.spec.models = {sim::Model::kBaseline, sim::Model::kReese,
                       sim::Model::kReese2Alu};
    figures.push_back(fig);
  }
  return figures;
}

std::string figure_json(const Figure& figure, const sim::ExperimentResult& r,
                        double wall_seconds) {
  std::string out = "    {\n";
  out += format("      \"name\": \"%s\",\n", figure.name.c_str());
  out += format("      \"title\": \"%s\",\n",
                json_escape(r.spec.title).c_str());
  out += "      \"workloads\": [";
  for (usize w = 0; w < r.spec.workloads.size(); ++w) {
    out += format("%s\"%s\"", w == 0 ? "" : ", ",
                  json_escape(r.spec.workloads[w]).c_str());
  }
  out += "],\n";
  out += "      \"models\": [";
  for (usize m = 0; m < r.spec.models.size(); ++m) {
    out += format("%s\"%s\"", m == 0 ? "" : ", ",
                  sim::model_slug(r.spec.models[m]));
  }
  out += "],\n";
  out += "      \"ipc\": [\n";
  for (usize w = 0; w < r.ipc.size(); ++w) {
    out += "        [";
    for (usize m = 0; m < r.ipc[w].size(); ++m) {
      out += format("%s%.6f", m == 0 ? "" : ", ", r.ipc[w][m]);
    }
    out += format("]%s\n", w + 1 < r.ipc.size() ? "," : "");
  }
  out += "      ],\n";
  out += "      \"average\": [";
  for (usize m = 0; m < r.spec.models.size(); ++m) {
    out += format("%s%.6f", m == 0 ? "" : ", ", r.average(m));
  }
  out += "],\n";
  out += "      \"overhead_pct\": [";
  for (usize m = 0; m < r.spec.models.size(); ++m) {
    out += format("%s%.3f", m == 0 ? "" : ", ", r.overhead_pct(m));
  }
  out += "],\n";
  out += format("      \"wall_seconds\": %.3f\n", wall_seconds);
  out += "    }";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  sim::parse_jobs_flag(argc, argv);
  sim::parse_checkpoint_flags(argc, argv);

  u64 instructions = kPaperBudget;
  std::string out_path = "BENCH_overnight.json";
  bool checkpointing = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--instructions") == 0 && i + 1 < argc) {
      instructions = static_cast<u64>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--no-checkpoint") == 0) {
      checkpointing = false;
    }
  }

  sim::CheckpointOptions checkpoint = sim::default_checkpoint();
  if (checkpointing && checkpoint.dir.empty()) {
    checkpoint.dir = "overnight-ckpt";
    checkpoint.resume = true;  // rerunning the target continues the night
  }
  if (checkpointing && checkpoint.interval == 0) {
    checkpoint.interval = std::min(kDefaultInterval, instructions / 2);
  }
  if (!checkpointing) checkpoint = sim::CheckpointOptions{};

  std::vector<Figure> figures = figure_set();
  std::printf("overnight: %zu figure grids at %llu instructions/cell "
              "(checkpoints: %s)\n",
              figures.size(), static_cast<unsigned long long>(instructions),
              checkpoint.dir.empty() ? "off" : checkpoint.dir.c_str());

  std::string figures_json;
  std::vector<sim::ExperimentResult> results;
  double total_wall = 0.0;
  for (usize f = 0; f < figures.size(); ++f) {
    Figure& figure = figures[f];
    figure.spec.instructions = instructions;
    figure.spec.checkpoint = checkpoint;
    const auto start = std::chrono::steady_clock::now();
    const sim::ExperimentResult result = sim::run_experiment(figure.spec);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    total_wall += wall;
    std::fputs(result.table().c_str(), stdout);
    std::printf("  (%s: %.1fs wall)\n\n", figure.name.c_str(), wall);
    figures_json += figure_json(figure, result, wall);
    figures_json += f + 1 < figures.size() ? ",\n" : "\n";
    results.push_back(result);
  }

  // Figure 6 is the summary of figures 2-5: average IPC per hardware
  // variation, assembled from the grids already run.
  const char* kVariation[] = {"None", "RUU,LSQ 2X", "Ex.Q 2X", "MemPorts"};
  std::printf("Figure 6: summary of results\n");
  std::string fig6 = "  \"fig6_summary\": [\n";
  for (usize f = 0; f < 4; ++f) {
    const sim::ExperimentResult& r = results[f];
    std::printf("  %-12s", kVariation[f]);
    fig6 += format("    {\"variation\": \"%s\", \"average\": [", kVariation[f]);
    for (usize m = 0; m < r.spec.models.size(); ++m) {
      std::printf("%14.3f", r.average(m));
      fig6 += format("%s%.6f", m == 0 ? "" : ", ", r.average(m));
    }
    std::printf("\n");
    fig6 += format("]}%s\n", f + 1 < 4 ? "," : "");
  }
  fig6 += "  ],\n";

  std::string json = "{\n";
  json += "  \"schema\": \"reese-overnight-v1\",\n";
  json += format("  \"instructions\": %llu,\n",
                 static_cast<unsigned long long>(instructions));
  const char* sha = std::getenv("GITHUB_SHA");
  if (sha == nullptr || *sha == '\0') sha = std::getenv("REESE_GIT_SHA");
  json += format("  \"git_sha\": \"%s\",\n",
                 json_escape(sha == nullptr ? "" : sha).c_str());
  json += format("  \"total_wall_seconds\": %.3f,\n", total_wall);
  json += fig6;
  json += "  \"figures\": [\n" + figures_json + "  ]\n}\n";

  std::FILE* file = std::fopen(out_path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "overnight: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::fprintf(stderr, "overnight: wrote %s (%.1fs total)\n", out_path.c_str(),
               total_wall);
  return 0;
}

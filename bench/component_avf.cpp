// Per-component AVF tables: where do soft errors actually land, and what
// does REESE catch there?
//
// The classic campaigns (fault_coverage, A5) flip instruction *results* —
// the paper's §2 error model. This bench widens the lens to the structures
// themselves (DESIGN.md §16): RUU entries, the R-stream Queue (REESE's own
// checker state), LSQ address fields, predictor/BTB bits and D-L1/D-TLB
// lines each get their own campaign variant, and every strike resolves to
// masked/detected/SDC with the static PC that owned the corrupted state.
// Detection and AVF rates carry Wilson-score 95% intervals.
//
// The headline row is reese@rqueue: injections into the checker itself.
// Result flips are ~fully detected (§4.2); R-queue strikes are a mix of
// false-positive detections (corrupt operand copies), silently-lost
// re-executions (coverage_loss) and — for the stored result after its
// comparison window — silent corruption. The bench gates on that gap:
// R-queue detection must sit measurably below result-flip detection.
//
// Cross-validation: a second campaign injects RUU strikes into the
// assembled examples/srv programs and joins measured per-PC SDC counts
// against the static srv-vuln ace_score ranking (Spearman rho, reported
// per program; informational, not gated — RUU slot occupancy decouples
// strike frequency from the static frequency model more than result flips
// do).
//
// Usage: component_avf [--quick] [--jobs N] [--replicas N]
//                      [--instructions N] [--rate R] [--seed S]
//                      [--out PATH] [--skip-xval]
//
//   --quick          CI mode: 1 replica, 20k instructions per cell
//   --jobs N         worker threads (default: auto; REESE_JOBS honoured)
//   --rate R         per-cycle strike probability (default 5e-3)
//   --out PATH       report path (default: BENCH_cavf.json in the CWD)
//   --skip-xval      skip the srv-vuln cross-validation campaign
//
// Output: reese-cavf-v1 JSON. Exit 1 when a gate fails or the report
// cannot be written.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/vuln.h"
#include "common/diag.h"
#include "common/strutil.h"
#include "common/thread_pool.h"
#include "isa/assembler.h"
#include "sim/campaign.h"

using namespace reese;
namespace fs = std::filesystem;

namespace {

struct SiteRow {
  std::string label;
  std::string base;
  const char* site = "";
  u64 injected = 0;
  u64 detected = 0;
  u64 masked = 0;
  u64 sdc = 0;
  u64 coverage_loss = 0;
  double detection = 0.0;  ///< detected / injected
  WilsonInterval detection_ci;
  double avf = 0.0;  ///< (detected + sdc) / injected: architecturally visible
  WilsonInterval avf_ci;
  double mean_latency = 0.0;
  /// Root-cause attribution: the static PCs that owned the most strikes.
  struct TopPc {
    Addr pc = 0;
    u64 injected = 0;
    u64 detected = 0;
    u64 sdc = 0;
  };
  std::vector<TopPc> top_pcs;
};

struct Check {
  std::string name;
  bool pass = false;
  std::string detail;
};

struct XvalRow {
  std::string name;
  usize joined_pcs = 0;
  u64 injected = 0;
  u64 sdc = 0;
  double rho_sdc = 0.0;  ///< static ace_score vs measured per-PC SDC count
};

SiteRow make_row(const sim::CampaignResult& result, usize variant_index) {
  const sim::CampaignVariant& variant = result.spec.variants[variant_index];
  const sim::CampaignCell total = result.variant_total(variant_index);
  SiteRow row;
  row.label = variant.label;
  const usize at = variant.label.find('@');
  row.base = at == std::string::npos ? variant.label
                                     : variant.label.substr(0, at);
  row.site = core::fault_site_name(variant.site);
  row.injected = total.injected;
  row.detected = total.detected;
  row.masked = total.masked;
  row.sdc = total.sdc;
  row.coverage_loss = total.coverage_loss;
  row.detection = safe_ratio(total.detected, total.injected);
  row.detection_ci = wilson_interval(total.detected, total.injected);
  row.avf = safe_ratio(total.detected + total.sdc, total.injected);
  row.avf_ci = wilson_interval(total.detected + total.sdc, total.injected);
  row.mean_latency = safe_ratio(total.latency_sum, total.latency_count);

  std::vector<SiteRow::TopPc> pcs;
  for (const auto& [pc, stratum] : total.by_pc) {
    pcs.push_back({pc, stratum.injected, stratum.detected,
                   stratum.undetected});
  }
  std::sort(pcs.begin(), pcs.end(),
            [](const SiteRow::TopPc& a, const SiteRow::TopPc& b) {
              if (a.injected != b.injected) return a.injected > b.injected;
              return a.pc < b.pc;
            });
  if (pcs.size() > 3) pcs.resize(3);
  row.top_pcs = std::move(pcs);
  return row;
}

sim::CampaignVariant variant_or_die(const std::string& label) {
  sim::CampaignVariant variant;
  if (!sim::campaign_variant_by_label(label, &variant)) {
    std::fprintf(stderr, "component_avf: unresolvable variant \"%s\"\n",
                 label.c_str());
    std::exit(1);
  }
  return variant;
}

}  // namespace

int main(int argc, char** argv) {
  sim::CampaignSpec spec;
  spec.rate = 5e-3;
  spec.seed = 0xCAFC0DE5;
  bool quick = false;
  bool skip_xval = false;
  std::string out_path = "BENCH_cavf.json";

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "component_avf: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(arg, "--jobs") == 0) {
      spec.jobs = sanitize_job_count(std::strtol(next_value(), nullptr, 10));
    } else if (std::strcmp(arg, "--replicas") == 0) {
      spec.replicas = static_cast<u32>(std::atoi(next_value()));
    } else if (std::strcmp(arg, "--instructions") == 0) {
      spec.instructions =
          static_cast<u64>(std::strtoull(next_value(), nullptr, 0));
    } else if (std::strcmp(arg, "--rate") == 0) {
      spec.rate = std::atof(next_value());
    } else if (std::strcmp(arg, "--seed") == 0) {
      spec.seed = static_cast<u64>(std::strtoull(next_value(), nullptr, 0));
    } else if (std::strcmp(arg, "--out") == 0) {
      out_path = next_value();
    } else if (std::strcmp(arg, "--skip-xval") == 0) {
      skip_xval = true;
    } else {
      std::fprintf(stderr, "component_avf: unknown argument %s\n", arg);
      return 2;
    }
  }
  // This bench resolves its own quick mode (CampaignSpec::quick would also
  // clamp replicas after --replicas was parsed).
  if (spec.replicas == 12) spec.replicas = quick ? 1 : 8;
  if (spec.instructions == 0) spec.instructions = quick ? 20'000 : 60'000;

  // One reference row (the classic result-flip model, via the same label
  // machinery the service/fleet wire uses) + the seven component sites
  // under REESE + the baseline rows that ground-truth the sites REESE
  // cannot see at all.
  const std::vector<std::string> labels = {
      "reese@result",    "reese@ruu",     "reese@rqueue", "reese@lsq",
      "reese@predictor", "reese@btb",     "reese@dcache", "reese@dtlb",
      "baseline@ruu",    "baseline@lsq",  "baseline@dcache",
      "baseline@dtlb"};
  for (const std::string& label : labels) {
    spec.variants.push_back(variant_or_die(label));
  }

  std::printf("Component AVF: %zu variants x 6 workloads x %u replicas "
              "(%llu instr/cell, rate %.0e)\n",
              labels.size(), spec.replicas,
              static_cast<unsigned long long>(spec.instructions), spec.rate);
  const sim::CampaignResult result = sim::run_campaign(spec);

  std::vector<SiteRow> rows;
  for (usize v = 0; v < result.spec.variants.size(); ++v) {
    rows.push_back(make_row(result, v));
  }

  std::printf("  %-18s %9s %9s %9s %7s %8s  %9s %-19s %6s\n", "variant",
              "injected", "detected", "masked", "sdc", "cov_loss",
              "detection", "wilson95", "avf");
  for (const SiteRow& row : rows) {
    std::printf("  %-18s %9llu %9llu %9llu %7llu %8llu  %8.3f%% "
                "[%6.3f%%,%7.3f%%] %5.3f\n",
                row.label.c_str(),
                static_cast<unsigned long long>(row.injected),
                static_cast<unsigned long long>(row.detected),
                static_cast<unsigned long long>(row.masked),
                static_cast<unsigned long long>(row.sdc),
                static_cast<unsigned long long>(row.coverage_loss),
                100.0 * row.detection, 100.0 * row.detection_ci.lower,
                100.0 * row.detection_ci.upper, row.avf);
  }

  const auto row_by_label = [&rows](const std::string& label) -> SiteRow& {
    for (SiteRow& row : rows) {
      if (row.label == label) return row;
    }
    std::fprintf(stderr, "component_avf: missing row %s\n", label.c_str());
    std::exit(1);
  };
  const SiteRow& reference = row_by_label("reese@result");
  const SiteRow& rqueue = row_by_label("reese@rqueue");
  const SiteRow& predictor = row_by_label("reese@predictor");
  const SiteRow& btb = row_by_label("reese@btb");
  const SiteRow& baseline_ruu = row_by_label("baseline@ruu");

  std::vector<Check> checks;
  {
    usize covered = 0;
    for (const SiteRow& row : rows) {
      if (row.base == "reese" && std::strcmp(row.site, "result") != 0 &&
          row.injected > 0) {
        ++covered;
      }
    }
    checks.push_back({"sites_covered", covered >= 5,
                      format("%zu/7 component sites saw injections under "
                             "REESE (need >= 5)",
                             covered)});
  }
  checks.push_back(
      {"rqueue_detection_gap",
       rqueue.detection < reference.detection - 0.10,
       format("reese@rqueue detection %.3f vs reese@result %.3f: the "
              "checker does not protect its own state (need a >= 10pp gap)",
              rqueue.detection, reference.detection)});
  checks.push_back(
      {"rqueue_coverage_loss", rqueue.coverage_loss > 0,
       format("%llu re-executions silently killed by R-queue control-state "
              "strikes (need > 0)",
              static_cast<unsigned long long>(rqueue.coverage_loss))});
  checks.push_back(
      {"frontend_masked",
       predictor.detected == 0 && predictor.sdc == 0 && btb.detected == 0 &&
           btb.sdc == 0,
       "predictor/BTB strikes are architecturally masked (AVF 0 controls)"});
  checks.push_back(
      {"baseline_ruu_sdc", baseline_ruu.sdc > 0,
       format("baseline RUU strikes reach architectural state (%llu SDC)",
              static_cast<unsigned long long>(baseline_ruu.sdc))});

  // Cross-validation against the static srv-vuln ranking: strike RUU slots
  // while the assembled examples/srv programs run, and rank-correlate the
  // measured per-PC SDC counts with the static ace_score.
  std::vector<XvalRow> xval;
  if (!skip_xval) {
    sim::CampaignSpec xspec;
    xspec.rate = spec.rate;
    xspec.seed = spec.seed ^ 0x5EED;
    xspec.jobs = spec.jobs;
    xspec.replicas = quick ? 16 : 64;
    xspec.instructions = spec.instructions;
    xspec.variants = {variant_or_die("baseline@ruu")};

    std::vector<analysis::VulnReport> statics;
    std::vector<std::string> paths;
    const fs::path dir = fs::path(REESE_SOURCE_DIR) / "examples" / "srv";
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (entry.path().extension() == ".srv") {
        paths.push_back(entry.path().string());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string& path : paths) {
      std::ifstream file(path);
      std::stringstream buffer;
      buffer << file.rdbuf();
      auto assembled = isa::assemble(buffer.str());
      if (!assembled.ok()) {
        std::fprintf(stderr, "component_avf: %s: %s\n", path.c_str(),
                     assembled.error().to_string().c_str());
        return 1;
      }
      sim::CampaignProgram program;
      program.name = fs::path(path).stem().string();
      program.program = assembled.value();
      statics.push_back(analysis::analyze_vulnerability(program.program));
      xspec.programs.push_back(std::move(program));
    }

    if (!xspec.programs.empty()) {
      const sim::CampaignResult xresult = sim::run_campaign(xspec);
      for (usize w = 0; w < xresult.spec.workloads.size(); ++w) {
        const sim::CampaignCell measured = xresult.workload_total(0, w);
        std::vector<double> predicted;
        std::vector<double> sdc_count;
        XvalRow row;
        row.name = xresult.spec.workloads[w];
        for (const analysis::InstVuln& inst : statics[w].instructions) {
          if (!inst.reachable) continue;
          const auto it = measured.by_pc.find(inst.pc);
          const sim::PcStratum* stratum =
              it == measured.by_pc.end() ? nullptr : &it->second;
          predicted.push_back(inst.ace_score);
          sdc_count.push_back(stratum == nullptr
                                  ? 0.0
                                  : static_cast<double>(stratum->undetected));
          if (stratum != nullptr) {
            row.injected += stratum->injected;
            row.sdc += stratum->undetected;
          }
        }
        row.joined_pcs = predicted.size();
        row.rho_sdc = spearman_rank_correlation(predicted, sdc_count);
        std::printf("  xval %-12s joined=%3zu injected=%6llu sdc=%6llu "
                    "rho_sdc=%+.3f\n",
                    row.name.c_str(), row.joined_pcs,
                    static_cast<unsigned long long>(row.injected),
                    static_cast<unsigned long long>(row.sdc), row.rho_sdc);
        xval.push_back(std::move(row));
      }
    }
  }

  bool pass = true;
  for (const Check& check : checks) {
    std::printf("  check %-22s %s  (%s)\n", check.name.c_str(),
                check.pass ? "PASS" : "FAIL", check.detail.c_str());
    if (!check.pass) pass = false;
  }

  std::string json;
  json += "{\n";
  json += "  \"schema\": \"reese-cavf-v1\",\n";
  json += format("  \"quick\": %s,\n", quick ? "true" : "false");
  json += format("  \"instructions\": %llu,\n",
                 static_cast<unsigned long long>(spec.instructions));
  json += format("  \"replicas\": %u,\n", spec.replicas);
  json += format("  \"rate\": %g,\n", spec.rate);
  json += format("  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(spec.seed));
  json += "  \"sites\": [\n";
  for (usize i = 0; i < rows.size(); ++i) {
    const SiteRow& r = rows[i];
    json += "    {\n";
    json += format("      \"label\": \"%s\",\n", json_escape(r.label).c_str());
    json += format("      \"base\": \"%s\",\n", json_escape(r.base).c_str());
    json += format("      \"site\": \"%s\",\n", r.site);
    json += format("      \"injected\": %llu,\n",
                   static_cast<unsigned long long>(r.injected));
    json += format("      \"detected\": %llu,\n",
                   static_cast<unsigned long long>(r.detected));
    json += format("      \"masked\": %llu,\n",
                   static_cast<unsigned long long>(r.masked));
    json += format("      \"sdc\": %llu,\n",
                   static_cast<unsigned long long>(r.sdc));
    json += format("      \"coverage_loss\": %llu,\n",
                   static_cast<unsigned long long>(r.coverage_loss));
    json += format("      \"detection\": %.6f,\n", r.detection);
    json += format("      \"detection_lower\": %.6f,\n", r.detection_ci.lower);
    json += format("      \"detection_upper\": %.6f,\n", r.detection_ci.upper);
    json += format("      \"avf\": %.6f,\n", r.avf);
    json += format("      \"avf_lower\": %.6f,\n", r.avf_ci.lower);
    json += format("      \"avf_upper\": %.6f,\n", r.avf_ci.upper);
    json += format("      \"mean_latency\": %.3f,\n", r.mean_latency);
    json += "      \"top_pcs\": [";
    for (usize p = 0; p < r.top_pcs.size(); ++p) {
      json += format("%s{\"pc\": %llu, \"injected\": %llu, "
                     "\"detected\": %llu, \"sdc\": %llu}",
                     p == 0 ? "" : ", ",
                     static_cast<unsigned long long>(r.top_pcs[p].pc),
                     static_cast<unsigned long long>(r.top_pcs[p].injected),
                     static_cast<unsigned long long>(r.top_pcs[p].detected),
                     static_cast<unsigned long long>(r.top_pcs[p].sdc));
    }
    json += "]\n";
    json += i + 1 < rows.size() ? "    },\n" : "    }\n";
  }
  json += "  ],\n";
  json += "  \"cross_validation\": [\n";
  for (usize i = 0; i < xval.size(); ++i) {
    const XvalRow& r = xval[i];
    json += format("    {\"name\": \"%s\", \"joined_pcs\": %zu, "
                   "\"injected\": %llu, \"sdc\": %llu, \"rho_sdc\": %.6f}%s\n",
                   json_escape(r.name).c_str(), r.joined_pcs,
                   static_cast<unsigned long long>(r.injected),
                   static_cast<unsigned long long>(r.sdc), r.rho_sdc,
                   i + 1 < xval.size() ? "," : "");
  }
  json += "  ],\n";
  json += "  \"checks\": [\n";
  for (usize i = 0; i < checks.size(); ++i) {
    json += format("    {\"name\": \"%s\", \"pass\": %s, \"detail\": \"%s\"}%s\n",
                   checks[i].name.c_str(), checks[i].pass ? "true" : "false",
                   json_escape(checks[i].detail).c_str(),
                   i + 1 < checks.size() ? "," : "");
  }
  json += "  ],\n";
  json += format("  \"pass\": %s\n", pass ? "true" : "false");
  json += "}\n";

  std::ofstream out(out_path);
  if (!out || !(out << json)) {
    std::fprintf(stderr, "component_avf: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out.close();
  std::fprintf(stderr, "component_avf: wrote %s\n", out_path.c_str());

  if (!pass) {
    std::fprintf(stderr, "component_avf: FAIL — see checks above\n");
    return 1;
  }
  std::printf("component_avf: PASS\n");
  return 0;
}

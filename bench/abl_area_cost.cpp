// Ablation A7 (§7): the cost/benefit table — die area added vs residual
// IPC overhead, for the REESE configurations of interest.
//
// The paper's arithmetic: the R-stream Queue needs slightly more area than
// the RUU; with the RUU at 10% of the die, REESE adds about 20% area for
// 1.5% execution time on large configurations. This bench regenerates
// that trade-off for each hardware point, REESE and Franklin.
#include <cstdio>

#include "core/area.h"
#include "sim/simulator.h"
#include "workloads/workload.h"

using namespace reese;

namespace {

double average_ipc(const core::CoreConfig& config, u64 budget) {
  double sum = 0.0;
  for (const std::string& name : workloads::spec_like_names()) {
    auto workload = workloads::make_workload(name, {});
    sim::Simulator simulator(std::move(workload).value(), config);
    sum += simulator.run(budget).ipc;
  }
  return sum / static_cast<double>(workloads::spec_like_names().size());
}

void row(const char* label, const core::CoreConfig& baseline,
         const core::CoreConfig& config, double baseline_ipc, u64 budget) {
  const double ipc = average_ipc(config, budget);
  const core::AreaEstimate area = core::estimate_area(baseline, config);
  std::printf("  %-28s IPC %.3f (overhead %5.1f%%) | area %s\n", label, ipc,
              100.0 * (baseline_ipc - ipc) / baseline_ipc,
              core::area_report(area).c_str());
}

}  // namespace

int main() {
  const u64 budget = sim::default_instruction_budget() / 2;
  std::printf("A7: die-area cost vs residual execution-time overhead (§7)\n");

  const core::CoreConfig base = core::starting_config();
  const double baseline_ipc = average_ipc(base, budget);
  std::printf("  %-28s IPC %.3f (baseline die = 100%%)\n", "baseline",
              baseline_ipc);

  row("REESE", base, core::with_reese(base), baseline_ipc, budget);
  row("REESE +2 ALU", base, core::with_reese(base, 2), baseline_ipc, budget);
  row("REESE +2 ALU +1 Mult", base, core::with_reese(base, 2, 1),
      baseline_ipc, budget);

  core::CoreConfig big_queue = core::with_reese(base, 2);
  big_queue.reese.rqueue_size = 64;
  row("REESE +2 ALU, 64-entry RQ", base, big_queue, baseline_ipc, budget);

  core::CoreConfig franklin = core::with_reese(base, 2);
  franklin.reese.scheme = core::RedundancyScheme::kFranklin;
  row("Franklin +2 ALU", base, franklin, baseline_ipc, budget);

  std::printf("\n  (§7 expectation: the R-queue needs slightly more area "
              "than the RUU; with the RUU at 10%% of the die, REESE adds "
              "roughly 20%% area in exchange for full instruction-stream "
              "duplication.)\n");
  return 0;
}

// Figure 2: "Initial Comparison Between REESE and Baseline".
//
// Starting configuration (Table 1): 8-wide, fetch queue 16, RUU 16, LSQ 8,
// 4 integer ALUs + 1 mult/div, 2 memory ports, gshare. Bars: Baseline,
// REESE, REESE +1 ALU, +2 ALU, +2 ALU +1 Mult, per benchmark plus the
// average.
//
// Paper's observations this should reproduce:
//  * baseline IPC below 2 ("an RUU-based microprocessor cannot attain
//    2 IPC on a regular basis"),
//  * REESE 11-16% below baseline without spares,
//  * spare integer ALUs close most of the gap; the spare multiplier adds
//    little.
#include <cstdio>

#include "sim/experiment.h"

int main(int argc, char** argv) {
  reese::sim::parse_jobs_flag(argc, argv);
  reese::sim::parse_checkpoint_flags(argc, argv);
  reese::sim::ExperimentSpec spec;
  spec.title = "Figure 2: initial comparison between REESE and baseline "
               "(starting configuration)";
  spec.base = reese::core::starting_config();
  const reese::sim::ExperimentResult result = reese::sim::run_experiment(spec);
  std::fputs(result.table().c_str(), stdout);
  return 0;
}

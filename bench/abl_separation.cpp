// Ablation A1 (§2 of the paper): P->R separation.
//
// Detection of a transient of duration Δt is only guaranteed when the P
// and R executions are separated by more than Δt. The paper relies on the
// R-queue traversal delay for separation and never enforces a minimum;
// this bench (a) reports the natural separation distribution and (b)
// sweeps an enforced minimum separation to show the IPC price of
// guaranteeing larger Δt coverage.
#include <cstdio>

#include "sim/simulator.h"
#include "workloads/workload.h"

using namespace reese;

int main() {
  const u64 budget = sim::default_instruction_budget();

  std::printf("A1a: natural P->R issue separation (cycles), starting config\n");
  for (const std::string& name : workloads::spec_like_names()) {
    auto workload = workloads::make_workload(name, {});
    sim::Simulator simulator(std::move(workload).value(),
                             core::with_reese(core::starting_config()));
    simulator.run(budget);
    const core::CoreStats& stats = simulator.pipeline().stats();
    std::printf("  %-8s mean %6.1f  p50 %4llu  p95 %4llu  min %3llu  "
                "(IPC %.3f)\n",
                name.c_str(), stats.separation.mean(),
                static_cast<unsigned long long>(stats.separation.percentile(0.5)),
                static_cast<unsigned long long>(stats.separation.percentile(0.95)),
                static_cast<unsigned long long>(stats.separation.min()),
                stats.ipc());
  }

  std::printf("\nA1b: enforcing a minimum separation (guaranteed Δt "
              "coverage) vs IPC, averaged over the six benchmarks\n");
  std::printf("  %12s %10s %16s\n", "min_sep", "avg IPC", "avg separation");
  for (u32 min_sep : {0u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    double ipc_sum = 0.0;
    double sep_sum = 0.0;
    for (const std::string& name : workloads::spec_like_names()) {
      auto workload = workloads::make_workload(name, {});
      core::CoreConfig config = core::with_reese(core::starting_config());
      config.reese.min_separation = min_sep;
      sim::Simulator simulator(std::move(workload).value(), config);
      simulator.run(budget / 2);
      ipc_sum += simulator.pipeline().stats().ipc();
      sep_sum += simulator.pipeline().stats().separation.mean();
    }
    const double n = static_cast<double>(workloads::spec_like_names().size());
    std::printf("  %12u %10.3f %16.1f\n", min_sep, ipc_sum / n, sep_sum / n);
  }
  return 0;
}

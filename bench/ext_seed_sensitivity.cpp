// Extension E2: seed sensitivity of the headline result.
//
// Our SPEC stand-ins bake seeded random data into their images; the
// paper's benchmarks had fixed inputs. This bench re-runs the Figure 2
// comparison with five different data seeds and reports mean +/- sample
// standard deviation of the average IPC and the REESE gap — showing the
// headline "REESE costs ~15%, spares recover it" is a property of the
// workload *shape*, not of one lucky dataset.
#include <cmath>
#include <cstdio>

#include "sim/experiment.h"
#include "sim/simulator.h"

using namespace reese;

int main(int argc, char** argv) {
  reese::sim::parse_jobs_flag(argc, argv);
  reese::sim::parse_checkpoint_flags(argc, argv);
  sim::ExperimentSpec spec;
  spec.title = "E2: Figure 2 grid across 5 workload-data seeds";
  spec.base = core::starting_config();
  spec.models = {sim::Model::kBaseline, sim::Model::kReese,
                 sim::Model::kReese2Alu};
  spec.instructions = sim::default_instruction_budget() / 2;
  spec.extra_seeds = {0xA11CE, 0xB0B, 0xCAFE, 0xD00D};

  const sim::ExperimentResult result = sim::run_experiment(spec);
  std::printf("%s\n", spec.title.c_str());
  std::printf("  %-10s %18s %18s %18s\n", "workload", "Baseline", "REESE",
              "R+2ALU");
  for (usize w = 0; w < result.spec.workloads.size(); ++w) {
    std::printf("  %-10s", result.spec.workloads[w].c_str());
    for (usize m = 0; m < result.spec.models.size(); ++m) {
      std::printf("   %7.3f +-%6.3f", result.ipc[w][m],
                  result.ipc_stdev[w][m]);
    }
    std::printf("\n");
  }
  std::printf("  %-10s", "AV");
  for (usize m = 0; m < result.spec.models.size(); ++m) {
    std::printf("   %7.3f          ", result.average(m));
  }
  std::printf("\n  REESE gap %.1f%%, +2ALU gap %.1f%% (means over 5 seeds)\n",
              result.overhead_pct(1), result.overhead_pct(2));
  return 0;
}

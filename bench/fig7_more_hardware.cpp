// Figure 7: "REESE vs. baseline for even more hardware".
//
// Four configurations: RUU=64, RUU=64 + extra FUs, RUU=256, RUU=256 +
// extra FUs (LSQ always half the RUU). Series: Baseline, REESE,
// REESE+2ALU, reported as average IPC (normalized in the paper's plot).
//
// Paper's findings this must reproduce:
//  * growing only the RUU leaves the REESE gap at roughly 15%;
//  * additional functional units shrink it to about 1.5%;
//  * two spare ALUs alone already recover most of the loss.
#include <cstdio>
#include <string>
#include <vector>

#include "common/strutil.h"
#include "sim/experiment.h"

using namespace reese;

namespace {

struct Point {
  std::string label;
  u32 ruu;
  bool extra_fus;
};

core::CoreConfig config_for(const Point& point) {
  core::CoreConfig config = core::starting_config();
  config.ruu_size = point.ruu;
  config.lsq_size = point.ruu / 2;
  // Keep the wide datapath of the later figures so the big window can be
  // fed.
  config.fetch_width = 16;
  config.decode_width = 16;
  config.issue_width = 16;
  config.commit_width = 16;
  config.ifq_size = 32;
  if (point.extra_fus) {
    config.int_alu_count = 8;
    config.int_mult_count = 4;
    config.mem_port_count = 4;
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  reese::sim::parse_jobs_flag(argc, argv);
  reese::sim::parse_checkpoint_flags(argc, argv);
  const std::vector<Point> points = {
      {"RUU=64", 64, false},
      {"RUU=64+FUs", 64, true},
      {"RUU=256", 256, false},
      {"RUU=256+FUs", 256, true},
  };

  std::printf("Figure 7: REESE vs baseline for even more hardware\n");
  std::printf("  %-14s%14s%14s%14s%14s\n", "config", "Baseline", "REESE",
              "R+2ALU", "REESE gap");
  for (const Point& point : points) {
    sim::ExperimentSpec spec;
    spec.title = point.label;
    spec.base = config_for(point);
    spec.models = {sim::Model::kBaseline, sim::Model::kReese,
                   sim::Model::kReese2Alu};
    const sim::ExperimentResult result = sim::run_experiment(spec);
    std::printf("  %-14s%14.3f%14.3f%14.3f%13.1f%%\n", point.label.c_str(),
                result.average(0), result.average(1), result.average(2),
                result.overhead_pct(1));
  }
  return 0;
}

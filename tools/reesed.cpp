// reesed: the long-lived REESE simulation service.
//
// Wraps sim::SimulationService (job queue + run_experiment/run_campaign)
// in the dependency-free HTTP/1.1 server from common/http.h. Clients
// submit JSON experiment/campaign specs, poll job state (including live
// per-cell progress at /v1/jobs/<id>/progress) and fetch results as JSON
// or CSV; /v1/metrics exposes daemon-wide counters in Prometheus text
// format for scraping. See DESIGN.md §11–§12 for endpoints and schemas,
// and tools/reese_client.cpp for a ready-made client.
//
// Usage: reesed [--host ADDR] [--port N] [--workers N] [--queue-capacity N]
//               [--grid-jobs N] [--max-instructions N] [--max-cells N]
//               [--timeout-s SECONDS]
//
//   --host ADDR           bind address (default 127.0.0.1)
//   --port N              TCP port; 0 picks an ephemeral port (default 8642)
//   --workers N           concurrent jobs (default 2)
//   --queue-capacity N    waiting jobs before submits get 429 (default 16)
//   --grid-jobs N         grid workers per job when a spec omits "jobs"
//                         (default 1)
//   --max-instructions N  per-cell budget cap; larger specs are a 400
//   --max-cells N         grid-size cap (workloads × models × seeds)
//   --timeout-s SECONDS   default per-job wall-clock timeout (default 300)
//
// Prints exactly one "reesed: listening on HOST:PORT" line once the socket
// is bound (tests parse it to discover the ephemeral port). SIGTERM and
// SIGINT stop the accept loop, drain the admitted jobs, print final stats
// and exit 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/http.h"
#include "common/thread_pool.h"
#include "sim/service.h"

using namespace reese;

namespace {

http::Server* g_server = nullptr;

// Async-signal-safe: request_stop is an atomic store plus ::shutdown(2).
void handle_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 8642;
  sim::ServiceConfig config;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "reesed: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--host") == 0) {
      host = next_value();
    } else if (std::strcmp(arg, "--port") == 0) {
      port = std::atoi(next_value());
    } else if (std::strcmp(arg, "--workers") == 0) {
      config.workers = sanitize_job_count(
          std::strtol(next_value(), nullptr, 10), "--workers");
    } else if (std::strcmp(arg, "--queue-capacity") == 0) {
      config.queue_capacity =
          static_cast<u32>(std::strtoul(next_value(), nullptr, 10));
    } else if (std::strcmp(arg, "--grid-jobs") == 0) {
      config.grid_jobs = sanitize_job_count(
          std::strtol(next_value(), nullptr, 10), "--grid-jobs");
    } else if (std::strcmp(arg, "--max-instructions") == 0) {
      config.max_instructions =
          static_cast<u64>(std::strtoull(next_value(), nullptr, 10));
    } else if (std::strcmp(arg, "--max-cells") == 0) {
      config.max_cells =
          static_cast<u64>(std::strtoull(next_value(), nullptr, 10));
    } else if (std::strcmp(arg, "--timeout-s") == 0) {
      config.default_timeout_s = std::atof(next_value());
    } else {
      std::fprintf(stderr, "reesed: unknown argument %s\n", arg);
      return 2;
    }
  }
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "reesed: --port %d is not in [0, 65535]\n", port);
    return 2;
  }

  sim::SimulationService service(config);
  http::Server server(
      [&service](const http::Request& request) {
        return service.handle(request);
      });
  if (!server.listen(host, static_cast<u16>(port))) return 1;
  g_server = &server;
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);

  std::printf("reesed: listening on %s:%u\n", host.c_str(), server.port());
  std::fflush(stdout);

  server.serve();

  // Stop requested: refuse new work, finish what was admitted, report.
  std::fprintf(stderr, "reesed: draining in-flight jobs\n");
  service.drain();
  const sim::ServiceStats stats = service.stats();
  std::fprintf(stderr,
               "reesed: shut down (submitted %llu, completed %llu, "
               "timeouts %llu, failed %llu, rejected %llu, %.1f kIPS)\n",
               static_cast<unsigned long long>(stats.submitted),
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.timeouts),
               static_cast<unsigned long long>(stats.failed),
               static_cast<unsigned long long>(stats.rejected_queue_full),
               stats.kips());
  return 0;
}

// reesed: the long-lived REESE simulation service.
//
// Wraps sim::SimulationService (job queue + run_experiment/run_campaign)
// in the dependency-free HTTP/1.1 server from common/http.h. Clients
// submit JSON experiment/campaign specs, poll job state (including live
// per-cell progress at /v1/jobs/<id>/progress) and fetch results as JSON
// or CSV; /v1/metrics exposes daemon-wide counters in Prometheus text
// format for scraping. See DESIGN.md §11–§12 for endpoints and schemas,
// and tools/reese_client.cpp for a ready-made client.
//
// With --coordinator the daemon stops running campaigns itself and fans
// them across a fleet of plain reesed workers (sim/fleet.h, DESIGN.md
// §15): campaign specs shard along the replica axis, shards dispatch over
// keep-alive HTTP, dead workers' shards re-dispatch to survivors, and the
// merged result is byte-identical to a single-node run. Experiments still
// run locally.
//
// Usage: reesed [--host ADDR] [--port N] [--workers N] [--queue-capacity N]
//               [--grid-jobs N] [--max-instructions N] [--max-cells N]
//               [--timeout-s SECONDS] [--auth-token TOK]...
//               [--tenant-max-active N] [--retain-jobs N]
//               [--coordinator] [--worker HOST:PORT]...
//               [--workers-file PATH] [--fleet-token TOK]
//               [--shards-per-worker N]
//
//   --host ADDR            bind address (default 127.0.0.1)
//   --port N               TCP port; 0 picks an ephemeral port (default 8642)
//   --workers N            concurrent jobs (default 2)
//   --queue-capacity N     waiting jobs before submits get 429 (default 16)
//   --grid-jobs N          grid workers per job when a spec omits "jobs"
//                          (default 1)
//   --max-instructions N   per-cell budget cap; larger specs are a 400
//   --max-cells N          grid-size cap (workloads × models × seeds); in
//                          coordinator mode the effective cap is this times
//                          the fleet size
//   --timeout-s SECONDS    default per-job wall-clock timeout (default 300)
//   --auth-token TOK       require this bearer token (repeatable; each token
//                          is one tenant). Without the flag the service is
//                          open. /v1/healthz never requires a token.
//   --tenant-max-active N  queued+running jobs one tenant may hold; beyond
//                          it submits get 429 (default 0 = unlimited)
//   --retain-jobs N        finished jobs kept for result fetches; pruning
//                          prefers already-fetched results, and a pruned id
//                          answers 410 Gone (default 256)
//   --coordinator          dispatch campaign jobs to the worker fleet
//   --worker HOST:PORT     add a fleet worker (repeatable)
//   --workers-file PATH    read workers, one HOST:PORT per line ('#'
//                          comments and blank lines skipped)
//   --fleet-token TOK      bearer token sent to workers (when they run with
//                          --auth-token)
//   --shards-per-worker N  campaign shards per worker; >1 shrinks the unit
//                          of re-dispatched work after a worker death
//                          (default 2)
//
// Prints exactly one "reesed: listening on HOST:PORT" line once the socket
// is bound (tests parse it to discover the ephemeral port). SIGTERM and
// SIGINT stop the accept loop, drain the admitted jobs, print final stats
// and exit 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/http.h"
#include "common/thread_pool.h"
#include "sim/fleet.h"
#include "sim/service.h"

using namespace reese;

namespace {

http::Server* g_server = nullptr;

// Async-signal-safe: request_stop is an atomic store plus ::shutdown(2).
void handle_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 8642;
  sim::ServiceConfig config;
  sim::fleet::FleetConfig fleet;
  bool coordinator = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "reesed: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--host") == 0) {
      host = next_value();
    } else if (std::strcmp(arg, "--port") == 0) {
      port = std::atoi(next_value());
    } else if (std::strcmp(arg, "--workers") == 0) {
      config.workers = sanitize_job_count(
          std::strtol(next_value(), nullptr, 10), "--workers");
    } else if (std::strcmp(arg, "--queue-capacity") == 0) {
      config.queue_capacity =
          static_cast<u32>(std::strtoul(next_value(), nullptr, 10));
    } else if (std::strcmp(arg, "--grid-jobs") == 0) {
      config.grid_jobs = sanitize_job_count(
          std::strtol(next_value(), nullptr, 10), "--grid-jobs");
    } else if (std::strcmp(arg, "--max-instructions") == 0) {
      config.max_instructions =
          static_cast<u64>(std::strtoull(next_value(), nullptr, 10));
    } else if (std::strcmp(arg, "--max-cells") == 0) {
      config.max_cells =
          static_cast<u64>(std::strtoull(next_value(), nullptr, 10));
    } else if (std::strcmp(arg, "--timeout-s") == 0) {
      config.default_timeout_s = std::atof(next_value());
    } else if (std::strcmp(arg, "--auth-token") == 0) {
      config.auth_tokens.push_back(next_value());
    } else if (std::strcmp(arg, "--tenant-max-active") == 0) {
      config.tenant_max_active =
          static_cast<u32>(std::strtoul(next_value(), nullptr, 10));
    } else if (std::strcmp(arg, "--retain-jobs") == 0) {
      config.max_retained_jobs =
          static_cast<usize>(std::strtoull(next_value(), nullptr, 10));
    } else if (std::strcmp(arg, "--coordinator") == 0) {
      coordinator = true;
    } else if (std::strcmp(arg, "--worker") == 0) {
      sim::fleet::Worker worker;
      std::string error;
      if (!sim::fleet::parse_worker_address(next_value(), &worker, &error)) {
        std::fprintf(stderr, "reesed: %s\n", error.c_str());
        return 2;
      }
      fleet.workers.push_back(std::move(worker));
    } else if (std::strcmp(arg, "--workers-file") == 0) {
      std::string error;
      if (!sim::fleet::load_workers_file(next_value(), &fleet.workers,
                                         &error)) {
        std::fprintf(stderr, "reesed: %s\n", error.c_str());
        return 2;
      }
    } else if (std::strcmp(arg, "--fleet-token") == 0) {
      fleet.auth_token = next_value();
    } else if (std::strcmp(arg, "--shards-per-worker") == 0) {
      const long value = std::strtol(next_value(), nullptr, 10);
      if (value < 1) {
        std::fprintf(stderr, "reesed: --shards-per-worker must be >= 1\n");
        return 2;
      }
      fleet.shards_per_worker = static_cast<u32>(value);
    } else {
      std::fprintf(stderr, "reesed: unknown argument %s\n", arg);
      return 2;
    }
  }
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "reesed: --port %d is not in [0, 65535]\n", port);
    return 2;
  }
  if (coordinator && fleet.workers.empty()) {
    std::fprintf(stderr,
                 "reesed: --coordinator needs at least one --worker (or a "
                 "--workers-file)\n");
    return 2;
  }
  if (!coordinator && !fleet.workers.empty()) {
    std::fprintf(stderr, "reesed: --worker/--workers-file need "
                         "--coordinator\n");
    return 2;
  }

  if (coordinator) {
    // A fleet of N workers really can run N times the cell budget; the
    // per-shard cap on each worker still bounds any single node.
    config.max_cells *= fleet.workers.size();
    config.campaign_runner = [fleet](const sim::CampaignSpec& spec,
                                     sim::CampaignResult* result,
                                     std::string* error) {
      return sim::fleet::run_fleet_campaign(fleet, spec, result, error);
    };
    std::fprintf(stderr, "reesed: coordinating %zu workers\n",
                 fleet.workers.size());
  }

  sim::SimulationService service(config);
  http::Server server(
      [&service](const http::Request& request) {
        return service.handle(request);
      });
  if (!server.listen(host, static_cast<u16>(port))) return 1;
  g_server = &server;
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);

  std::printf("reesed: listening on %s:%u\n", host.c_str(), server.port());
  std::fflush(stdout);

  server.serve();

  // Stop requested: refuse new work, finish what was admitted, report.
  std::fprintf(stderr, "reesed: draining in-flight jobs\n");
  service.drain();
  const sim::ServiceStats stats = service.stats();
  std::fprintf(stderr,
               "reesed: shut down (submitted %llu, completed %llu, "
               "timeouts %llu, failed %llu, rejected %llu, %.1f kIPS)\n",
               static_cast<unsigned long long>(stats.submitted),
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.timeouts),
               static_cast<unsigned long long>(stats.failed),
               static_cast<unsigned long long>(stats.rejected_queue_full),
               stats.kips());
  return 0;
}

// reesed: the long-lived REESE simulation service.
//
// Wraps sim::SimulationService (job queue + run_experiment/run_campaign)
// in the dependency-free HTTP/1.1 server from common/http.h. Clients
// submit JSON experiment/campaign specs, poll job state (including live
// per-cell progress at /v1/jobs/<id>/progress) and fetch results as JSON
// or CSV; /v1/metrics exposes daemon-wide counters in Prometheus text
// format for scraping. See DESIGN.md §11–§12 for endpoints and schemas,
// and tools/reese_client.cpp for a ready-made client.
//
// With --coordinator the daemon stops running campaigns itself and fans
// them across a fleet of plain reesed workers (sim/fleet.h, DESIGN.md
// §15): campaign specs shard along the replica axis, shards dispatch over
// keep-alive HTTP, dead workers' shards re-dispatch to survivors, and the
// merged result is byte-identical to a single-node run. Experiments still
// run locally. Coordinators additionally federate worker metrics behind
// GET /v1/fleet/metrics and can emit a fleet-timeline Chrome trace
// (DESIGN.md §17).
//
// Usage: reesed [--host ADDR] [--port N] [--workers N] [--queue-capacity N]
//               [--grid-jobs N] [--max-instructions N] [--max-cells N]
//               [--timeout-s SECONDS] [--auth-token TOK]...
//               [--tenant-max-active N] [--retain-jobs N]
//               [--log-file PATH] [--log-level LEVEL]
//               [--coordinator] [--worker HOST:PORT]...
//               [--workers-file PATH] [--fleet-token TOK]
//               [--shards-per-worker N] [--fleet-trace-out PATH]
//
//   --host ADDR            bind address (default 127.0.0.1)
//   --port N               TCP port; 0 picks an ephemeral port (default 8642)
//   --workers N            concurrent jobs (default 2)
//   --queue-capacity N     waiting jobs before submits get 429 (default 16)
//   --grid-jobs N          grid workers per job when a spec omits "jobs"
//                          (default 1)
//   --max-instructions N   per-cell budget cap; larger specs are a 400
//   --max-cells N          grid-size cap (workloads × models × seeds); in
//                          coordinator mode the effective cap is this times
//                          the fleet size
//   --timeout-s SECONDS    default per-job wall-clock timeout (default 300)
//   --auth-token TOK       require this bearer token (repeatable; each token
//                          is one tenant). Without the flag the service is
//                          open. /v1/healthz never requires a token.
//   --tenant-max-active N  queued+running jobs one tenant may hold; beyond
//                          it submits get 429 (default 0 = unlimited)
//   --retain-jobs N        finished jobs kept for result fetches; pruning
//                          prefers already-fetched results, and a pruned id
//                          answers 410 Gone (default 256)
//   --log-file PATH        append structured JSON-lines events to PATH
//                          instead of stderr (DESIGN.md §17)
//   --log-level LEVEL      drop events below LEVEL: debug, info, warn or
//                          error (default info)
//   --coordinator          dispatch campaign jobs to the worker fleet
//   --worker HOST:PORT     add a fleet worker (repeatable)
//   --workers-file PATH    read workers, one HOST:PORT per line ('#'
//                          comments and blank lines skipped)
//   --fleet-token TOK      bearer token sent to workers (when they run with
//                          --auth-token)
//   --shards-per-worker N  campaign shards per worker; >1 shrinks the unit
//                          of re-dispatched work after a worker death
//                          (default 2)
//   --fleet-trace-out PATH write each fleet campaign's timeline as Chrome
//                          trace JSON to PATH (coordinator only; validate
//                          with tools/trace_check.py)
//
// Prints exactly one "reesed: listening on HOST:PORT" line once the socket
// is bound (tests parse it to discover the ephemeral port); everything
// else the daemon has to say is a structured log event. SIGTERM and
// SIGINT stop the accept loop, drain the admitted jobs, log final stats
// and exit 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/http.h"
#include "common/log.h"
#include "common/strutil.h"
#include "common/thread_pool.h"
#include "sim/fleet.h"
#include "sim/service.h"

using namespace reese;

namespace {

http::Server* g_server = nullptr;

// Async-signal-safe: request_stop is an atomic store plus ::shutdown(2).
void handle_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

/// Config errors are events too: one error-level line, then exit 2.
[[noreturn]] void config_error(const std::string& message) {
  log::global().error("config", message);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  // The log sink and level apply before any other flag is parsed, so a
  // bad --worker on the same command line already lands in the right
  // place (a pre-scan: flag order must not matter).
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--log-file") == 0) {
      if (!log::global().open_file(argv[i + 1])) {
        // open_file leaves the sink on stderr, so this event is visible.
        config_error(format("cannot open log file %s", argv[i + 1]));
      }
    } else if (std::strcmp(argv[i], "--log-level") == 0) {
      log::Level level;
      if (!log::level_from_name(argv[i + 1], &level)) {
        config_error(format("--log-level must be debug, info, warn or "
                            "error, got %s",
                            argv[i + 1]));
      }
      log::global().set_level(level);
    }
  }

  std::string host = "127.0.0.1";
  int port = 8642;
  sim::ServiceConfig config;
  sim::fleet::FleetConfig fleet;
  bool coordinator = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        config_error(format("%s needs a value", arg));
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--host") == 0) {
      host = next_value();
    } else if (std::strcmp(arg, "--port") == 0) {
      port = std::atoi(next_value());
    } else if (std::strcmp(arg, "--workers") == 0) {
      config.workers = sanitize_job_count(
          std::strtol(next_value(), nullptr, 10), "--workers");
    } else if (std::strcmp(arg, "--queue-capacity") == 0) {
      config.queue_capacity =
          static_cast<u32>(std::strtoul(next_value(), nullptr, 10));
    } else if (std::strcmp(arg, "--grid-jobs") == 0) {
      config.grid_jobs = sanitize_job_count(
          std::strtol(next_value(), nullptr, 10), "--grid-jobs");
    } else if (std::strcmp(arg, "--max-instructions") == 0) {
      config.max_instructions =
          static_cast<u64>(std::strtoull(next_value(), nullptr, 10));
    } else if (std::strcmp(arg, "--max-cells") == 0) {
      config.max_cells =
          static_cast<u64>(std::strtoull(next_value(), nullptr, 10));
    } else if (std::strcmp(arg, "--timeout-s") == 0) {
      config.default_timeout_s = std::atof(next_value());
    } else if (std::strcmp(arg, "--auth-token") == 0) {
      config.auth_tokens.push_back(next_value());
    } else if (std::strcmp(arg, "--tenant-max-active") == 0) {
      config.tenant_max_active =
          static_cast<u32>(std::strtoul(next_value(), nullptr, 10));
    } else if (std::strcmp(arg, "--retain-jobs") == 0) {
      config.max_retained_jobs =
          static_cast<usize>(std::strtoull(next_value(), nullptr, 10));
    } else if (std::strcmp(arg, "--log-file") == 0 ||
               std::strcmp(arg, "--log-level") == 0) {
      next_value();  // applied by the pre-scan above
    } else if (std::strcmp(arg, "--coordinator") == 0) {
      coordinator = true;
    } else if (std::strcmp(arg, "--worker") == 0) {
      sim::fleet::Worker worker;
      std::string error;
      if (!sim::fleet::parse_worker_address(next_value(), &worker, &error)) {
        config_error(error);
      }
      fleet.workers.push_back(std::move(worker));
    } else if (std::strcmp(arg, "--workers-file") == 0) {
      std::string error;
      if (!sim::fleet::load_workers_file(next_value(), &fleet.workers,
                                         &error)) {
        config_error(error);
      }
    } else if (std::strcmp(arg, "--fleet-token") == 0) {
      fleet.auth_token = next_value();
    } else if (std::strcmp(arg, "--shards-per-worker") == 0) {
      const long value = std::strtol(next_value(), nullptr, 10);
      if (value < 1) {
        config_error("--shards-per-worker must be >= 1");
      }
      fleet.shards_per_worker = static_cast<u32>(value);
    } else if (std::strcmp(arg, "--fleet-trace-out") == 0) {
      fleet.trace_path = next_value();
    } else {
      config_error(format("unknown argument %s", arg));
    }
  }
  if (port < 0 || port > 65535) {
    config_error(format("--port %d is not in [0, 65535]", port));
  }
  if (coordinator && fleet.workers.empty()) {
    config_error("--coordinator needs at least one --worker (or a "
                 "--workers-file)");
  }
  if (!coordinator && !fleet.workers.empty()) {
    config_error("--worker/--workers-file need --coordinator");
  }
  if (!coordinator && !fleet.trace_path.empty()) {
    config_error("--fleet-trace-out needs --coordinator");
  }

  if (coordinator) {
    // A fleet of N workers really can run N times the cell budget; the
    // per-shard cap on each worker still bounds any single node.
    config.max_cells *= fleet.workers.size();
    config.campaign_runner = [fleet](const sim::CampaignSpec& spec,
                                     sim::CampaignResult* result,
                                     std::string* error) {
      return sim::fleet::run_fleet_campaign(fleet, spec, result, error);
    };
    config.fleet_collector = [fleet](metrics::Registry* registry,
                                     std::string* error) {
      return sim::fleet::collect_fleet_metrics(fleet, registry, error);
    };
    log::global().info(
        "coordinator_start",
        format("coordinating %zu workers", fleet.workers.size()),
        {log::field("workers", static_cast<u64>(fleet.workers.size())),
         log::field("shards_per_worker", fleet.shards_per_worker)});
  }

  sim::SimulationService service(config);
  http::Server server(
      [&service](const http::Request& request) {
        return service.handle(request);
      });
  if (!server.listen(host, static_cast<u16>(port))) return 1;
  g_server = &server;
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);

  std::printf("reesed: listening on %s:%u\n", host.c_str(), server.port());
  std::fflush(stdout);

  server.serve();

  // Stop requested: refuse new work, finish what was admitted, report.
  log::global().info("draining", "draining in-flight jobs");
  service.drain();
  const sim::ServiceStats stats = service.stats();
  log::global().info(
      "shutdown",
      format("shut down (submitted %llu, completed %llu, %.1f kIPS)",
             static_cast<unsigned long long>(stats.submitted),
             static_cast<unsigned long long>(stats.completed), stats.kips()),
      {log::field("submitted", stats.submitted),
       log::field("completed", stats.completed),
       log::field("timeouts", stats.timeouts),
       log::field("failed", stats.failed),
       log::field("rejected", stats.rejected_queue_full),
       log::field("kips", stats.kips())});
  return 0;
}

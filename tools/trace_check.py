#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file emitted by ChromeTraceTracer
or the fleet coordinator's FleetTracer (sim/fleet.cpp).

Usage: trace_check.py TRACE.json [TRACE.json ...]

Checks that the file is loadable by Perfetto / chrome://tracing and that it
keeps the invariants DESIGN.md §12 (pipeline traces) and §17 (fleet
timelines) promise. Common to both modes:

  * top level is {"traceEvents": [...]};
  * every event has a name, a known phase, and integer pid/tid;
  * duration events ("X") carry ts >= 0 and dur >= 0;
  * every flow start ("s") has a matching finish ("f") with the same id,
    and the finish never happens before the start;
  * instant events ("i") are restricted to the documented names.

Pipeline mode (the default):

  * the P-stream and R-stream thread_name metadata events are present;
  * R-stream slices never begin before the matching P-stream slice's start
    (an R-execution cannot precede its own dispatch).

Fleet mode (detected by process_name metadata == "reese-fleet"):

  * tid 0 is named "coordinator" and every tid that carries events has a
    thread_name;
  * slices carry args.span (the shard attempt's span id), and the run /
    merge slices of an attempt never begin before its dispatch slice;
  * instants are probe-failure / re-dispatch / worker-dead.

Exit status: 0 when every file passes, 1 on any violation, 2 on usage or
unreadable input. Independent of the simulator build — CI can run it on an
archived trace artifact alone.
"""

import json
import sys

KNOWN_PHASES = {"X", "M", "i", "s", "f"}
KNOWN_INSTANTS = {"squash", "error-detected"}
KNOWN_FLEET_INSTANTS = {"probe-failure", "re-dispatch", "worker-dead"}
P_STREAM_TID = 0
R_STREAM_TID = 1
COORDINATOR_TID = 0


def fail(path, index, message):
    print(f"trace_check: {path}: event {index}: {message}")
    return False


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"trace_check: {path}: {error}")
        return False

    if not isinstance(document, dict) or "traceEvents" not in document:
        print(f"trace_check: {path}: top level must be {{\"traceEvents\": [...]}}")
        return False
    events = document["traceEvents"]
    if not isinstance(events, list):
        print(f"trace_check: {path}: traceEvents must be an array")
        return False

    fleet = any(
        isinstance(e, dict)
        and e.get("ph") == "M"
        and e.get("name") == "process_name"
        and e.get("args", {}).get("name") == "reese-fleet"
        for e in events
    )
    known_instants = KNOWN_FLEET_INSTANTS if fleet else KNOWN_INSTANTS

    ok = True
    thread_names = {}
    event_tids = set()  # non-metadata tids seen
    flow_starts = {}  # id -> ts
    flow_finishes = {}  # id -> ts
    p_slice_start = {}  # seq -> ts of the P-stream slice
    r_slices = []  # (index, seq, ts)
    dispatch_start = {}  # fleet: span -> ts of the dispatch slice
    follower_slices = []  # fleet: (index, span, ts) of run/merge slices

    for index, event in enumerate(events):
        if not isinstance(event, dict):
            ok = fail(path, index, "event is not an object")
            continue
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            ok = fail(path, index, f"unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            ok = fail(path, index, "missing or empty name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                ok = fail(path, index, f"missing integer {key}")

        if phase == "M":
            if event["name"] == "thread_name":
                thread_names[event.get("tid")] = event.get("args", {}).get("name")
            continue
        event_tids.add(event.get("tid"))

        ts = event.get("ts")
        if not isinstance(ts, int) or ts < 0:
            ok = fail(path, index, "missing non-negative integer ts")
            continue

        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                ok = fail(path, index, "duration event without dur >= 0")
                continue
            args = event.get("args", {})
            if fleet:
                span = args.get("span")
                if span is None:
                    ok = fail(path, index, "fleet slice without args.span")
                elif event["name"].startswith("dispatch "):
                    dispatch_start[span] = ts
                else:
                    follower_slices.append((index, span, ts))
            else:
                seq = args.get("seq")
                if seq is None:
                    ok = fail(path, index, "slice without args.seq")
                else:
                    # Wrong-path entries may reuse a true-path seq, so slices
                    # are matched on (seq, spec).
                    slice_key = (seq, bool(args.get("spec")))
                    if event["tid"] == P_STREAM_TID:
                        p_slice_start[slice_key] = ts
                    elif event["tid"] == R_STREAM_TID:
                        r_slices.append((index, slice_key, ts))
        elif phase == "i":
            if event["name"] not in known_instants:
                ok = fail(path, index, f"unknown instant {event['name']!r}")
        elif phase == "s":
            flow_id = event.get("id")
            if flow_id is None:
                ok = fail(path, index, "flow start without id")
            elif flow_id in flow_starts:
                ok = fail(path, index, f"duplicate flow start id {flow_id}")
            else:
                flow_starts[flow_id] = ts
        elif phase == "f":
            flow_id = event.get("id")
            if flow_id is None:
                ok = fail(path, index, "flow finish without id")
            elif flow_id in flow_finishes:
                ok = fail(path, index, f"duplicate flow finish id {flow_id}")
            else:
                flow_finishes[flow_id] = ts

    if fleet:
        if thread_names.get(COORDINATOR_TID) != "coordinator":
            print(f"trace_check: {path}: fleet trace must name tid 0 "
                  f"\"coordinator\" (got {thread_names})")
            ok = False
        unnamed = sorted(t for t in event_tids if t not in thread_names)
        if unnamed:
            print(f"trace_check: {path}: fleet tids {unnamed} carry events "
                  f"but have no thread_name metadata")
            ok = False
        for index, span, ts in follower_slices:
            if span in dispatch_start and ts < dispatch_start[span]:
                ok = fail(path, index,
                          f"slice for span {span} starts at {ts}, before "
                          f"its dispatch slice at {dispatch_start[span]}")
    else:
        if thread_names.get(P_STREAM_TID) != "P-stream" or (
            thread_names.get(R_STREAM_TID) != "R-stream"
        ):
            print(f"trace_check: {path}: missing P-stream/R-stream thread_name "
                  f"metadata (got {thread_names})")
            ok = False

    for flow_id, ts in flow_starts.items():
        if flow_id not in flow_finishes:
            print(f"trace_check: {path}: flow id {flow_id} starts but never "
                  f"finishes")
            ok = False
        elif flow_finishes[flow_id] < ts:
            print(f"trace_check: {path}: flow id {flow_id} finishes at "
                  f"{flow_finishes[flow_id]} before its start at {ts}")
            ok = False
    for flow_id in flow_finishes:
        if flow_id not in flow_starts:
            print(f"trace_check: {path}: flow id {flow_id} finishes but "
                  f"never starts")
            ok = False

    for index, slice_key, ts in r_slices:
        if slice_key in p_slice_start and ts < p_slice_start[slice_key]:
            ok = fail(path, index,
                      f"R-stream slice for seq {slice_key[0]} starts at {ts}, "
                      f"before its P-stream slice at {p_slice_start[slice_key]}")

    if ok:
        slices = sum(1 for e in events
                     if isinstance(e, dict) and e.get("ph") == "X")
        mode = "fleet" if fleet else "pipeline"
        print(f"trace_check: {path}: OK ({mode}, {len(events)} events, "
              f"{slices} slices, {len(flow_starts)} flows)")
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[3])
        return 2
    ok = True
    for path in argv[1:]:
        ok = check_file(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// srv-lint: static CFG/dataflow analyzer for SRV assembly programs.
//
//   $ ./build/tools/srv-lint examples/srv/sum_array.srv
//   $ ./build/tools/srv-lint --format=json examples/asm/fib.s
//   $ ./build/tools/srv-lint --pass=branch-target,static-mem prog.srv
//   $ ./build/tools/srv-lint --list-passes
//
// Assembles each input file and runs the src/analysis pass registry over
// the decoded image. Flags:
//   --format=text|json      output format (default text)
//   --pass=NAME[,NAME...]   run only the named passes (default: all)
//   --min-severity=SEV      note|warning|error; drop findings below SEV
//   --werror                treat warnings as errors for the exit status
//   --list-passes           print the registry and exit
//   --vuln                  vulnerability mode: run the srv-vuln analysis
//                           (src/analysis/vuln.h) instead of the lint
//                           passes and print its ranking report
//
// Exit status: 0 = clean (notes/warnings allowed unless --werror),
// 1 = at least one error-severity finding (or a file failed to assemble),
// 2 = usage error.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/passes.h"
#include "analysis/vuln.h"
#include "common/diag.h"
#include "common/flags.h"
#include "common/strutil.h"
#include "isa/assembler.h"

using namespace reese;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: srv-lint [--format=text|json] [--pass=NAME[,...]]\n"
               "                [--min-severity=note|warning|error] "
               "[--werror]\n"
               "                [--list-passes] [--vuln] "
               "file.srv [file2.srv ...]\n");
  return 2;
}

bool parse_severity(const std::string& name, Severity* out) {
  if (name == "note") *out = Severity::kNote;
  else if (name == "warning") *out = Severity::kWarning;
  else if (name == "error") *out = Severity::kError;
  else return false;
  return true;
}

/// Lint one file; appends its findings (assembly failures become a
/// diagnostic from a pseudo-pass "assemble"). Returns false on I/O error.
bool lint_file(const std::string& path, const analysis::LintOptions& options,
               std::vector<Diagnostic>* diags) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "srv-lint: cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  auto assembled = isa::assemble(buffer.str());
  if (!assembled.ok()) {
    diags->push_back(Diagnostic{
        Severity::kError, 0, "assemble",
        format("line %d: %s", assembled.error().line,
               assembled.error().message.c_str())});
    return true;
  }
  std::vector<Diagnostic> found =
      analysis::run_lint(assembled.value(), options);
  diags->insert(diags->end(), std::make_move_iterator(found.begin()),
                std::make_move_iterator(found.end()));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // FlagSet's SimpleScalar-style "-name value" form would swallow the file
  // operand after a bare boolean flag ("--vuln prog.srv" parses as
  // vuln=prog.srv with no positionals), so expand the known valueless flags
  // to their "=true" form before parsing.
  std::vector<std::string> arg_storage(argv, argv + argc);
  for (std::string& arg : arg_storage) {
    if (arg == "--vuln" || arg == "-vuln" || arg == "--werror" ||
        arg == "-werror" || arg == "--list-passes" || arg == "-list-passes") {
      arg += "=true";
    }
  }
  std::vector<const char*> arg_ptrs;
  arg_ptrs.reserve(arg_storage.size());
  for (const std::string& arg : arg_storage) arg_ptrs.push_back(arg.c_str());

  FlagSet flags;
  if (auto parsed = flags.parse(argc, arg_ptrs.data()); !parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.error().to_string().c_str());
    return usage();
  }

  if (flags.get_bool("list-passes", false)) {
    std::printf("registered passes:\n");
    for (const analysis::PassInfo& pass : analysis::all_passes()) {
      std::printf("  %-16.*s %.*s\n", static_cast<int>(pass.name.size()),
                  pass.name.data(), static_cast<int>(pass.description.size()),
                  pass.description.data());
    }
    return 0;
  }
  if (flags.positional().empty()) return usage();

  const std::string format_name = flags.get_string("format", "text");
  if (format_name != "text" && format_name != "json") return usage();
  const DiagFormat format =
      format_name == "json" ? DiagFormat::kJson : DiagFormat::kText;

  analysis::LintOptions options;
  if (flags.has("min-severity") &&
      !parse_severity(flags.get_string("min-severity", ""),
                      &options.min_severity)) {
    return usage();
  }
  if (flags.has("pass")) {
    for (std::string_view name : split(flags.get_string("pass", ""), ',')) {
      if (!analysis::find_pass(name)) {
        std::fprintf(stderr, "srv-lint: unknown pass '%.*s' (--list-passes)\n",
                     static_cast<int>(name.size()), name.data());
        return 2;
      }
      options.passes.emplace_back(name);
    }
  }

  if (flags.get_bool("vuln", false)) {
    // Vulnerability mode: same front end, srv-vuln analysis instead of the
    // lint registry (see tools/srv_vuln.cpp for the dedicated CLI).
    bool failed = false;
    for (const std::string& path : flags.positional()) {
      std::ifstream file(path);
      if (!file) {
        std::fprintf(stderr, "srv-lint: cannot open %s\n", path.c_str());
        failed = true;
        continue;
      }
      std::stringstream buffer;
      buffer << file.rdbuf();
      auto assembled = isa::assemble(buffer.str());
      if (!assembled.ok()) {
        std::fprintf(stderr, "srv-lint: %s: line %d: %s\n", path.c_str(),
                     assembled.error().line,
                     assembled.error().message.c_str());
        failed = true;
        continue;
      }
      const analysis::VulnReport report =
          analysis::analyze_vulnerability(assembled.value());
      std::fputs((format == DiagFormat::kJson ? report.json(path)
                                              : report.table(path))
                     .c_str(),
                 stdout);
    }
    return failed ? 1 : 0;
  }

  bool io_error = false;
  usize errors = 0;
  usize warnings = 0;
  for (const std::string& path : flags.positional()) {
    std::vector<Diagnostic> diags;
    if (!lint_file(path, options, &diags)) {
      io_error = true;
      continue;
    }
    errors += count_severity(diags, Severity::kError);
    warnings += count_severity(diags, Severity::kWarning);
    std::fputs(render_diagnostics(diags, format, path).c_str(), stdout);
  }
  if (io_error) return 2;
  if (errors > 0) return 1;
  if (warnings > 0 && flags.get_bool("werror", false)) return 1;
  return 0;
}

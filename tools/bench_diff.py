#!/usr/bin/env python3
"""Compare two BENCH_perf.json reports from bench/perf_kips.

Usage: bench_diff.py BEFORE.json AFTER.json [--threshold PCT]

Prints a per-workload kIPS table with the relative change, plus the
aggregate and grid-speedup deltas. Exits 1 when any workload regresses by
more than --threshold percent (default 10), so CI can optionally gate on
it; exits 2 on malformed input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def pct_change(before, after):
    if before == 0:
        return 0.0
    return 100.0 * (after - before) / before


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("before")
    parser.add_argument("after")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent (default 10)")
    args = parser.parse_args()

    before = load(args.before)
    after = load(args.after)

    before_kips = {w["workload"]: w["median_kips"]
                   for w in before.get("workloads", [])}
    after_kips = {w["workload"]: w["median_kips"]
                  for w in after.get("workloads", [])}

    if before.get("instructions") != after.get("instructions"):
        print(f"bench_diff: warning: instruction budgets differ "
              f"({before.get('instructions')} vs {after.get('instructions')}); "
              f"kIPS are still comparable but cache behaviour may not be",
              file=sys.stderr)

    print(f"{'workload':<12}{'before':>12}{'after':>12}{'change':>10}")
    regressions = []
    for name in sorted(set(before_kips) | set(after_kips)):
        b = before_kips.get(name)
        a = after_kips.get(name)
        if b is None or a is None:
            side = "before" if b is None else "after"
            print(f"{name:<12}{'(missing in ' + side + ')':>34}")
            continue
        change = pct_change(b, a)
        print(f"{name:<12}{b:>12.1f}{a:>12.1f}{change:>+9.1f}%")
        if change < -args.threshold:
            regressions.append((name, change))

    b_agg = before.get("aggregate_kips", 0.0)
    a_agg = after.get("aggregate_kips", 0.0)
    print(f"{'aggregate':<12}{b_agg:>12.1f}{a_agg:>12.1f}"
          f"{pct_change(b_agg, a_agg):>+9.1f}%")

    b_grid = before.get("grid", {})
    a_grid = after.get("grid", {})
    if b_grid and a_grid:
        print(f"grid speedup {b_grid.get('speedup', 0):.2f}x "
              f"({b_grid.get('jobs', '?')} jobs) -> "
              f"{a_grid.get('speedup', 0):.2f}x "
              f"({a_grid.get('jobs', '?')} jobs)")

    if regressions:
        for name, change in regressions:
            print(f"bench_diff: REGRESSION {name}: {change:+.1f}% "
                  f"(threshold -{args.threshold}%)", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
